
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/dma_engine.cc" "src/dma/CMakeFiles/genie_dma.dir/dma_engine.cc.o" "gcc" "src/dma/CMakeFiles/genie_dma.dir/dma_engine.cc.o.d"
  "/root/repo/src/dma/flush_model.cc" "src/dma/CMakeFiles/genie_dma.dir/flush_model.cc.o" "gcc" "src/dma/CMakeFiles/genie_dma.dir/flush_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
