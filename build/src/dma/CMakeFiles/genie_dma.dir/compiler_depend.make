# Empty compiler generated dependencies file for genie_dma.
# This may be replaced when dependencies are built.
