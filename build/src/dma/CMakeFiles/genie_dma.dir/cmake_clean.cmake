file(REMOVE_RECURSE
  "CMakeFiles/genie_dma.dir/dma_engine.cc.o"
  "CMakeFiles/genie_dma.dir/dma_engine.cc.o.d"
  "CMakeFiles/genie_dma.dir/flush_model.cc.o"
  "CMakeFiles/genie_dma.dir/flush_model.cc.o.d"
  "libgenie_dma.a"
  "libgenie_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
