file(REMOVE_RECURSE
  "libgenie_dma.a"
)
