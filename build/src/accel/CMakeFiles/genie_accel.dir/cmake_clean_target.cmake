file(REMOVE_RECURSE
  "libgenie_accel.a"
)
