file(REMOVE_RECURSE
  "CMakeFiles/genie_accel.dir/datapath.cc.o"
  "CMakeFiles/genie_accel.dir/datapath.cc.o.d"
  "CMakeFiles/genie_accel.dir/dddg.cc.o"
  "CMakeFiles/genie_accel.dir/dddg.cc.o.d"
  "CMakeFiles/genie_accel.dir/trace.cc.o"
  "CMakeFiles/genie_accel.dir/trace.cc.o.d"
  "CMakeFiles/genie_accel.dir/trace_io.cc.o"
  "CMakeFiles/genie_accel.dir/trace_io.cc.o.d"
  "libgenie_accel.a"
  "libgenie_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
