# Empty compiler generated dependencies file for genie_accel.
# This may be replaced when dependencies are built.
