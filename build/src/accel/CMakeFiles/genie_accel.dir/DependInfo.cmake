
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/datapath.cc" "src/accel/CMakeFiles/genie_accel.dir/datapath.cc.o" "gcc" "src/accel/CMakeFiles/genie_accel.dir/datapath.cc.o.d"
  "/root/repo/src/accel/dddg.cc" "src/accel/CMakeFiles/genie_accel.dir/dddg.cc.o" "gcc" "src/accel/CMakeFiles/genie_accel.dir/dddg.cc.o.d"
  "/root/repo/src/accel/trace.cc" "src/accel/CMakeFiles/genie_accel.dir/trace.cc.o" "gcc" "src/accel/CMakeFiles/genie_accel.dir/trace.cc.o.d"
  "/root/repo/src/accel/trace_io.cc" "src/accel/CMakeFiles/genie_accel.dir/trace_io.cc.o" "gcc" "src/accel/CMakeFiles/genie_accel.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/genie_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
