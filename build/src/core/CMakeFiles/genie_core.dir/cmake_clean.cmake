file(REMOVE_RECURSE
  "CMakeFiles/genie_core.dir/config_parse.cc.o"
  "CMakeFiles/genie_core.dir/config_parse.cc.o.d"
  "CMakeFiles/genie_core.dir/multi_soc.cc.o"
  "CMakeFiles/genie_core.dir/multi_soc.cc.o.d"
  "CMakeFiles/genie_core.dir/report.cc.o"
  "CMakeFiles/genie_core.dir/report.cc.o.d"
  "CMakeFiles/genie_core.dir/soc.cc.o"
  "CMakeFiles/genie_core.dir/soc.cc.o.d"
  "CMakeFiles/genie_core.dir/validation.cc.o"
  "CMakeFiles/genie_core.dir/validation.cc.o.d"
  "libgenie_core.a"
  "libgenie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
