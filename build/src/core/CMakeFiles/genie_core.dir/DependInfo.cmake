
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_parse.cc" "src/core/CMakeFiles/genie_core.dir/config_parse.cc.o" "gcc" "src/core/CMakeFiles/genie_core.dir/config_parse.cc.o.d"
  "/root/repo/src/core/multi_soc.cc" "src/core/CMakeFiles/genie_core.dir/multi_soc.cc.o" "gcc" "src/core/CMakeFiles/genie_core.dir/multi_soc.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/genie_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/genie_core.dir/report.cc.o.d"
  "/root/repo/src/core/soc.cc" "src/core/CMakeFiles/genie_core.dir/soc.cc.o" "gcc" "src/core/CMakeFiles/genie_core.dir/soc.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/core/CMakeFiles/genie_core.dir/validation.cc.o" "gcc" "src/core/CMakeFiles/genie_core.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/genie_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/genie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/genie_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/genie_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
