# Empty compiler generated dependencies file for genie_core.
# This may be replaced when dependencies are built.
