file(REMOVE_RECURSE
  "libgenie_cpu.a"
)
