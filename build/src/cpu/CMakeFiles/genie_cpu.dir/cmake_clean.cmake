file(REMOVE_RECURSE
  "CMakeFiles/genie_cpu.dir/driver_cpu.cc.o"
  "CMakeFiles/genie_cpu.dir/driver_cpu.cc.o.d"
  "libgenie_cpu.a"
  "libgenie_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
