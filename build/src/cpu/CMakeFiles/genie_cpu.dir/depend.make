# Empty dependencies file for genie_cpu.
# This may be replaced when dependencies are built.
