# Empty compiler generated dependencies file for genie_power.
# This may be replaced when dependencies are built.
