file(REMOVE_RECURSE
  "CMakeFiles/genie_power.dir/energy_model.cc.o"
  "CMakeFiles/genie_power.dir/energy_model.cc.o.d"
  "libgenie_power.a"
  "libgenie_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
