file(REMOVE_RECURSE
  "libgenie_power.a"
)
