# Empty dependencies file for genie_sim.
# This may be replaced when dependencies are built.
