file(REMOVE_RECURSE
  "CMakeFiles/genie_sim.dir/event_queue.cc.o"
  "CMakeFiles/genie_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/genie_sim.dir/logging.cc.o"
  "CMakeFiles/genie_sim.dir/logging.cc.o.d"
  "CMakeFiles/genie_sim.dir/stats.cc.o"
  "CMakeFiles/genie_sim.dir/stats.cc.o.d"
  "libgenie_sim.a"
  "libgenie_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
