
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aes.cc" "src/workloads/CMakeFiles/genie_workloads.dir/aes.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/aes.cc.o.d"
  "/root/repo/src/workloads/bfs_queue.cc" "src/workloads/CMakeFiles/genie_workloads.dir/bfs_queue.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/bfs_queue.cc.o.d"
  "/root/repo/src/workloads/fft_transpose.cc" "src/workloads/CMakeFiles/genie_workloads.dir/fft_transpose.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/fft_transpose.cc.o.d"
  "/root/repo/src/workloads/gemm.cc" "src/workloads/CMakeFiles/genie_workloads.dir/gemm.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/gemm.cc.o.d"
  "/root/repo/src/workloads/gemm_blocked.cc" "src/workloads/CMakeFiles/genie_workloads.dir/gemm_blocked.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/gemm_blocked.cc.o.d"
  "/root/repo/src/workloads/kmp.cc" "src/workloads/CMakeFiles/genie_workloads.dir/kmp.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/kmp.cc.o.d"
  "/root/repo/src/workloads/md_grid.cc" "src/workloads/CMakeFiles/genie_workloads.dir/md_grid.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/md_grid.cc.o.d"
  "/root/repo/src/workloads/md_knn.cc" "src/workloads/CMakeFiles/genie_workloads.dir/md_knn.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/md_knn.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/workloads/CMakeFiles/genie_workloads.dir/nw.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/nw.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/genie_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sort_merge.cc" "src/workloads/CMakeFiles/genie_workloads.dir/sort_merge.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/sort_merge.cc.o.d"
  "/root/repo/src/workloads/sort_radix.cc" "src/workloads/CMakeFiles/genie_workloads.dir/sort_radix.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/sort_radix.cc.o.d"
  "/root/repo/src/workloads/spmv_crs.cc" "src/workloads/CMakeFiles/genie_workloads.dir/spmv_crs.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/spmv_crs.cc.o.d"
  "/root/repo/src/workloads/spmv_ellpack.cc" "src/workloads/CMakeFiles/genie_workloads.dir/spmv_ellpack.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/spmv_ellpack.cc.o.d"
  "/root/repo/src/workloads/stencil2d.cc" "src/workloads/CMakeFiles/genie_workloads.dir/stencil2d.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/stencil2d.cc.o.d"
  "/root/repo/src/workloads/stencil3d.cc" "src/workloads/CMakeFiles/genie_workloads.dir/stencil3d.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/stencil3d.cc.o.d"
  "/root/repo/src/workloads/viterbi.cc" "src/workloads/CMakeFiles/genie_workloads.dir/viterbi.cc.o" "gcc" "src/workloads/CMakeFiles/genie_workloads.dir/viterbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/genie_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/genie_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
