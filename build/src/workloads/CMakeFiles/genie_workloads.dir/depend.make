# Empty dependencies file for genie_workloads.
# This may be replaced when dependencies are built.
