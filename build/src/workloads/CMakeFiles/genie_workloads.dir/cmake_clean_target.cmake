file(REMOVE_RECURSE
  "libgenie_workloads.a"
)
