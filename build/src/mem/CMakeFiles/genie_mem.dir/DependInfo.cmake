
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus.cc" "src/mem/CMakeFiles/genie_mem.dir/bus.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/genie_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/genie_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/full_empty.cc" "src/mem/CMakeFiles/genie_mem.dir/full_empty.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/full_empty.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/mem/CMakeFiles/genie_mem.dir/prefetcher.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/prefetcher.cc.o.d"
  "/root/repo/src/mem/scratchpad.cc" "src/mem/CMakeFiles/genie_mem.dir/scratchpad.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/scratchpad.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/genie_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/genie_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
