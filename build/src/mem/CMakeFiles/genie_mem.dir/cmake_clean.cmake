file(REMOVE_RECURSE
  "CMakeFiles/genie_mem.dir/bus.cc.o"
  "CMakeFiles/genie_mem.dir/bus.cc.o.d"
  "CMakeFiles/genie_mem.dir/cache.cc.o"
  "CMakeFiles/genie_mem.dir/cache.cc.o.d"
  "CMakeFiles/genie_mem.dir/dram.cc.o"
  "CMakeFiles/genie_mem.dir/dram.cc.o.d"
  "CMakeFiles/genie_mem.dir/full_empty.cc.o"
  "CMakeFiles/genie_mem.dir/full_empty.cc.o.d"
  "CMakeFiles/genie_mem.dir/prefetcher.cc.o"
  "CMakeFiles/genie_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/genie_mem.dir/scratchpad.cc.o"
  "CMakeFiles/genie_mem.dir/scratchpad.cc.o.d"
  "CMakeFiles/genie_mem.dir/tlb.cc.o"
  "CMakeFiles/genie_mem.dir/tlb.cc.o.d"
  "libgenie_mem.a"
  "libgenie_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
