file(REMOVE_RECURSE
  "CMakeFiles/genie_dse.dir/pareto.cc.o"
  "CMakeFiles/genie_dse.dir/pareto.cc.o.d"
  "CMakeFiles/genie_dse.dir/sweep.cc.o"
  "CMakeFiles/genie_dse.dir/sweep.cc.o.d"
  "libgenie_dse.a"
  "libgenie_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
