file(REMOVE_RECURSE
  "libgenie_dse.a"
)
