# Empty dependencies file for genie_dse.
# This may be replaced when dependencies are built.
