# Empty dependencies file for dma_vs_cache.
# This may be replaced when dependencies are built.
