file(REMOVE_RECURSE
  "CMakeFiles/dma_vs_cache.dir/dma_vs_cache.cpp.o"
  "CMakeFiles/dma_vs_cache.dir/dma_vs_cache.cpp.o.d"
  "dma_vs_cache"
  "dma_vs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_vs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
