file(REMOVE_RECURSE
  "CMakeFiles/genie_run.dir/genie_run.cpp.o"
  "CMakeFiles/genie_run.dir/genie_run.cpp.o.d"
  "genie_run"
  "genie_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
