# Empty dependencies file for genie_run.
# This may be replaced when dependencies are built.
