# Empty compiler generated dependencies file for genie_run.
# This may be replaced when dependencies are built.
