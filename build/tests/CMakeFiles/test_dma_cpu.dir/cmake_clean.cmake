file(REMOVE_RECURSE
  "CMakeFiles/test_dma_cpu.dir/test_dma_cpu.cc.o"
  "CMakeFiles/test_dma_cpu.dir/test_dma_cpu.cc.o.d"
  "test_dma_cpu"
  "test_dma_cpu.pdb"
  "test_dma_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
