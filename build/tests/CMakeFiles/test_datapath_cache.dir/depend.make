# Empty dependencies file for test_datapath_cache.
# This may be replaced when dependencies are built.
