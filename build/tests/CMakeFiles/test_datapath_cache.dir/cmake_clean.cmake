file(REMOVE_RECURSE
  "CMakeFiles/test_datapath_cache.dir/test_datapath_cache.cc.o"
  "CMakeFiles/test_datapath_cache.dir/test_datapath_cache.cc.o.d"
  "test_datapath_cache"
  "test_datapath_cache.pdb"
  "test_datapath_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapath_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
