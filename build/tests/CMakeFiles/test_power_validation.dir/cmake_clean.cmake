file(REMOVE_RECURSE
  "CMakeFiles/test_power_validation.dir/test_power_validation.cc.o"
  "CMakeFiles/test_power_validation.dir/test_power_validation.cc.o.d"
  "test_power_validation"
  "test_power_validation.pdb"
  "test_power_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
