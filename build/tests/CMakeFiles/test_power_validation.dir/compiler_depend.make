# Empty compiler generated dependencies file for test_power_validation.
# This may be replaced when dependencies are built.
