file(REMOVE_RECURSE
  "CMakeFiles/test_dse.dir/test_dse.cc.o"
  "CMakeFiles/test_dse.dir/test_dse.cc.o.d"
  "test_dse"
  "test_dse.pdb"
  "test_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
