file(REMOVE_RECURSE
  "CMakeFiles/test_multi_soc.dir/test_multi_soc.cc.o"
  "CMakeFiles/test_multi_soc.dir/test_multi_soc.cc.o.d"
  "test_multi_soc"
  "test_multi_soc.pdb"
  "test_multi_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
