# Empty compiler generated dependencies file for test_multi_soc.
# This may be replaced when dependencies are built.
