file(REMOVE_RECURSE
  "CMakeFiles/test_soc.dir/test_soc.cc.o"
  "CMakeFiles/test_soc.dir/test_soc.cc.o.d"
  "test_soc"
  "test_soc.pdb"
  "test_soc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
