
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_soc.cc" "tests/CMakeFiles/test_soc.dir/test_soc.cc.o" "gcc" "tests/CMakeFiles/test_soc.dir/test_soc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dse/CMakeFiles/genie_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/genie_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/genie_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/genie_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/genie_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/genie_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/genie_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/genie_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/genie_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
