# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_dma_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_power_validation[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_io_config[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_multi_soc[1]_include.cmake")
include("/root/repo/build/tests/test_datapath_cache[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_soc[1]_include.cmake")
