file(REMOVE_RECURSE
  "CMakeFiles/fig10_edp.dir/fig10_edp.cc.o"
  "CMakeFiles/fig10_edp.dir/fig10_edp.cc.o.d"
  "fig10_edp"
  "fig10_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
