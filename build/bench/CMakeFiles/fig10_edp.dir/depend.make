# Empty dependencies file for fig10_edp.
# This may be replaced when dependencies are built.
