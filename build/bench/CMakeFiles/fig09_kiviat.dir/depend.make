# Empty dependencies file for fig09_kiviat.
# This may be replaced when dependencies are built.
