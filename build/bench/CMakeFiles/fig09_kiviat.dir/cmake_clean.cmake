file(REMOVE_RECURSE
  "CMakeFiles/fig09_kiviat.dir/fig09_kiviat.cc.o"
  "CMakeFiles/fig09_kiviat.dir/fig09_kiviat.cc.o.d"
  "fig09_kiviat"
  "fig09_kiviat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kiviat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
