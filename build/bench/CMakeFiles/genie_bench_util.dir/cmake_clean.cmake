file(REMOVE_RECURSE
  "CMakeFiles/genie_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/genie_bench_util.dir/bench_util.cc.o.d"
  "lib/libgenie_bench_util.a"
  "lib/libgenie_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genie_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
