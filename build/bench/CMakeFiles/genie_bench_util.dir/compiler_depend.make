# Empty compiler generated dependencies file for genie_bench_util.
# This may be replaced when dependencies are built.
