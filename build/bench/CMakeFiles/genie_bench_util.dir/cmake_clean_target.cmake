file(REMOVE_RECURSE
  "lib/libgenie_bench_util.a"
)
