# Empty dependencies file for fig08_pareto.
# This may be replaced when dependencies are built.
