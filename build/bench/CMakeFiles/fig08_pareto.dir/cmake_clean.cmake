file(REMOVE_RECURSE
  "CMakeFiles/fig08_pareto.dir/fig08_pareto.cc.o"
  "CMakeFiles/fig08_pareto.dir/fig08_pareto.cc.o.d"
  "fig08_pareto"
  "fig08_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
