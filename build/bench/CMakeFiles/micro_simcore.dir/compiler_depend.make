# Empty compiler generated dependencies file for micro_simcore.
# This may be replaced when dependencies are built.
