file(REMOVE_RECURSE
  "CMakeFiles/micro_simcore.dir/micro_simcore.cc.o"
  "CMakeFiles/micro_simcore.dir/micro_simcore.cc.o.d"
  "micro_simcore"
  "micro_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
