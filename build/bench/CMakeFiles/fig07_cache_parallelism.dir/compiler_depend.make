# Empty compiler generated dependencies file for fig07_cache_parallelism.
# This may be replaced when dependencies are built.
