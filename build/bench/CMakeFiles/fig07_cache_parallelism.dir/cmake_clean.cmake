file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_parallelism.dir/fig07_cache_parallelism.cc.o"
  "CMakeFiles/fig07_cache_parallelism.dir/fig07_cache_parallelism.cc.o.d"
  "fig07_cache_parallelism"
  "fig07_cache_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
