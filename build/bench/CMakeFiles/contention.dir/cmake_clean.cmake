file(REMOVE_RECURSE
  "CMakeFiles/contention.dir/contention.cc.o"
  "CMakeFiles/contention.dir/contention.cc.o.d"
  "contention"
  "contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
