# Empty dependencies file for contention.
# This may be replaced when dependencies are built.
