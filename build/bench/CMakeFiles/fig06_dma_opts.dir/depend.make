# Empty dependencies file for fig06_dma_opts.
# This may be replaced when dependencies are built.
