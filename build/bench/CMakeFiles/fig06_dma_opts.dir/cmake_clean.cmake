file(REMOVE_RECURSE
  "CMakeFiles/fig06_dma_opts.dir/fig06_dma_opts.cc.o"
  "CMakeFiles/fig06_dma_opts.dir/fig06_dma_opts.cc.o.d"
  "fig06_dma_opts"
  "fig06_dma_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dma_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
