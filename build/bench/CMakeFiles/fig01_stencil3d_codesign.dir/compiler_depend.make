# Empty compiler generated dependencies file for fig01_stencil3d_codesign.
# This may be replaced when dependencies are built.
