file(REMOVE_RECURSE
  "CMakeFiles/fig01_stencil3d_codesign.dir/fig01_stencil3d_codesign.cc.o"
  "CMakeFiles/fig01_stencil3d_codesign.dir/fig01_stencil3d_codesign.cc.o.d"
  "fig01_stencil3d_codesign"
  "fig01_stencil3d_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_stencil3d_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
