file(REMOVE_RECURSE
  "CMakeFiles/fig05_dma_timeline.dir/fig05_dma_timeline.cc.o"
  "CMakeFiles/fig05_dma_timeline.dir/fig05_dma_timeline.cc.o.d"
  "fig05_dma_timeline"
  "fig05_dma_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dma_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
