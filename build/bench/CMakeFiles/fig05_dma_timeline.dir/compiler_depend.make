# Empty compiler generated dependencies file for fig05_dma_timeline.
# This may be replaced when dependencies are built.
