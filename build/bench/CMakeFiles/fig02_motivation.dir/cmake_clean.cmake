file(REMOVE_RECURSE
  "CMakeFiles/fig02_motivation.dir/fig02_motivation.cc.o"
  "CMakeFiles/fig02_motivation.dir/fig02_motivation.cc.o.d"
  "fig02_motivation"
  "fig02_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
