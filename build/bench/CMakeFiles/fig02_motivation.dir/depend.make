# Empty dependencies file for fig02_motivation.
# This may be replaced when dependencies are built.
