file(REMOVE_RECURSE
  "CMakeFiles/fig04_validation.dir/fig04_validation.cc.o"
  "CMakeFiles/fig04_validation.dir/fig04_validation.cc.o.d"
  "fig04_validation"
  "fig04_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
