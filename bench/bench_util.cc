#include "bench_util.hh"

#include <cstdlib>
#include <map>
#include <memory>

namespace genie::bench
{

const Prep &
prep(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<Prep>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto out = makeWorkload(name)->build();
        it = cache
                 .emplace(name, std::make_unique<Prep>(
                                    name, std::move(out.trace)))
                 .first;
    }
    return *it->second;
}

bool
fastMode()
{
    const char *env = std::getenv("GENIE_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

void
banner(const std::string &figure, const std::string &caption)
{
    std::printf("\n");
    std::printf("=================================================="
                "====================\n");
    std::printf("%s\n", figure.c_str());
    std::printf("%s\n", caption.c_str());
    std::printf("=================================================="
                "====================\n");
}

std::string
bar(double fraction, unsigned width)
{
    if (fraction < 0)
        fraction = 0;
    if (fraction > 1)
        fraction = 1;
    auto filled = static_cast<unsigned>(fraction * width + 0.5);
    std::string s(filled, '#');
    s += std::string(width - filled, '.');
    return s;
}

std::string
stackedBar(const std::vector<std::pair<char, double>> &parts,
           unsigned width)
{
    std::string s;
    for (const auto &[c, frac] : parts) {
        auto n = static_cast<unsigned>(frac * width + 0.5);
        s += std::string(n, c);
    }
    if (s.size() > width)
        s.resize(width);
    while (s.size() < width)
        s += '.';
    return s;
}

double
pct(double part, double whole)
{
    return whole > 0 ? 100.0 * part / whole : 0.0;
}

SocConfig
dmaAllOptsConfig(unsigned lanes, unsigned partitions, unsigned busWidth)
{
    SocConfig c;
    c.memType = MemInterface::ScratchpadDma;
    c.lanes = lanes;
    c.spadPartitions = partitions;
    c.busWidthBits = busWidth;
    c.dma.pipelined = true;
    c.dma.triggeredCompute = true;
    return c;
}

SocConfig
cacheConfig(unsigned lanes, unsigned sizeBytes, unsigned ports,
            unsigned busWidth, unsigned lineBytes, unsigned assoc)
{
    SocConfig c;
    c.memType = MemInterface::Cache;
    c.lanes = lanes;
    c.busWidthBits = busWidth;
    c.cache.sizeBytes = sizeBytes;
    c.cache.ports = ports;
    c.cache.lineBytes = lineBytes;
    c.cache.assoc = assoc;
    return c;
}

BreakdownPct
breakdownPct(const SocResults &r)
{
    double total = static_cast<double>(r.breakdown.total());
    return {pct(static_cast<double>(r.breakdown.flushOnly), total),
            pct(static_cast<double>(r.breakdown.dmaFlush), total),
            pct(static_cast<double>(r.breakdown.computeDma), total),
            pct(static_cast<double>(r.breakdown.computeOnly), total),
            pct(static_cast<double>(r.breakdown.other), total)};
}

void
printBreakdownRow(const std::string &label, const SocResults &r)
{
    BreakdownPct b = breakdownPct(r);
    std::string sb = stackedBar({{'F', b.flushOnly / 100.0},
                                 {'D', b.dmaFlush / 100.0},
                                 {'O', b.computeDma / 100.0},
                                 {'C', b.computeOnly / 100.0},
                                 {'.', b.other / 100.0}});
    std::printf("  %-22s %8.1f us |%s| F=%4.1f%% D=%4.1f%% O=%4.1f%% "
                "C=%4.1f%%\n",
                label.c_str(), r.totalUs(), sb.c_str(), b.flushOnly,
                b.dmaFlush, b.computeDma, b.computeOnly);
}

std::vector<SocConfig>
dmaSweepConfigs(unsigned busWidth)
{
    SocConfig base;
    base.busWidthBits = busWidth;
    auto configs = DesignSpace::dma(base);
    if (fastMode()) {
        std::vector<SocConfig> trimmed;
        for (const auto &c : configs) {
            if ((c.lanes == 1 || c.lanes == 4 || c.lanes == 16) &&
                (c.spadPartitions == 1 || c.spadPartitions == 16))
                trimmed.push_back(c);
        }
        return trimmed;
    }
    return configs;
}

std::vector<SocConfig>
acpSweepConfigs(unsigned busWidth)
{
    SocConfig base;
    base.busWidthBits = busWidth;
    auto configs = DesignSpace::acp(base);
    if (fastMode()) {
        std::vector<SocConfig> trimmed;
        for (const auto &c : configs) {
            if ((c.lanes == 1 || c.lanes == 4 || c.lanes == 16) &&
                (c.spadPartitions == 1 || c.spadPartitions == 16))
                trimmed.push_back(c);
        }
        return trimmed;
    }
    return configs;
}

std::vector<SocConfig>
cacheSweepConfigs(unsigned busWidth)
{
    SocConfig base;
    base.busWidthBits = busWidth;
    auto configs = DesignSpace::cache(base);
    if (fastMode()) {
        std::vector<SocConfig> trimmed;
        for (const auto &c : configs) {
            if ((c.lanes == 1 || c.lanes == 4 || c.lanes == 16) &&
                c.cache.lineBytes == 64 && c.cache.assoc == 4 &&
                (c.cache.ports == 1 || c.cache.ports == 4))
                trimmed.push_back(c);
        }
        return trimmed;
    }
    return configs;
}

std::vector<SocConfig>
isolatedSweepConfigs()
{
    return DesignSpace::isolated(SocConfig{});
}

} // namespace genie::bench
