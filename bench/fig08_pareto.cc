/**
 * @file
 * Figure 8: power-performance Pareto curves for DMA- vs cache-based
 * accelerators, with EDP-optimal stars.
 *
 * Full design sweep per benchmark (DMA: lanes x partitions with all
 * DMA optimizations; cache: lanes x size x line x ports x assoc; ACP:
 * lanes x partitions over the coherency port — the Genie-Iface third
 * interface regime) on a 32-bit bus. Benchmarks print in the paper's
 * order, left-to-right by preference for DMA vs cache:
 *   aes, nw        -> DMA strictly better,
 *   gemm           -> cache matches performance at more power,
 *   stencil2d      -> cache matches at lower power,
 *   stencil3d      -> cache faster at more power,
 *   md-knn         -> curves largely overlap,
 *   spmv, fft      -> cache better on both axes.
 */

#include <algorithm>

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
printFrontier(const char *label, const std::vector<DesignPoint> &pts)
{
    auto frontier = paretoFrontier(pts);
    std::size_t star = edpOptimal(pts);
    std::printf("  %s Pareto frontier (%zu of %zu designs):\n", label,
                frontier.size(), pts.size());
    for (std::size_t i : frontier) {
        const auto &p = pts[i];
        std::printf("    %10.1f us %8.2f mW   %s%s\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str(),
                    i == star ? "  * EDP optimal" : "");
    }
    if (std::find(frontier.begin(), frontier.end(), star) ==
        frontier.end()) {
        const auto &p = pts[star];
        std::printf("    %10.1f us %8.2f mW   %s  * EDP optimal\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str());
    }
}

int
run()
{
    banner("Figure 8",
           "power-performance Pareto curves, DMA vs ACP vs cache, "
           "32-bit bus (EDP optima starred)");

    for (const auto &name : figure8Workloads()) {
        const Prep &p = prep(name);
        std::printf("\n%s:\n", name.c_str());

        auto dmaPts = runSweep(dmaSweepConfigs(32), p.trace, p.dddg);
        auto acpPts = runSweep(acpSweepConfigs(32), p.trace, p.dddg);
        auto cachePts =
            runSweep(cacheSweepConfigs(32), p.trace, p.dddg);

        printFrontier("DMA", dmaPts);
        printFrontier("ACP", acpPts);
        printFrontier("cache", cachePts);

        const auto &dmaOpt = dmaPts[edpOptimal(dmaPts)].results;
        const auto &acpOpt = acpPts[edpOptimal(acpPts)].results;
        const auto &cacheOpt =
            cachePts[edpOptimal(cachePts)].results;
        double dmaEdp = dmaOpt.energyPj * dmaOpt.totalSeconds();
        double acpEdp = acpOpt.energyPj * acpOpt.totalSeconds();
        double cacheEdp =
            cacheOpt.energyPj * cacheOpt.totalSeconds();
        double best = std::min({dmaEdp, acpEdp, cacheEdp});
        const char *verdict = best == dmaEdp
                                  ? "prefers DMA"
                                  : (best == acpEdp ? "prefers ACP"
                                                    : "prefers cache");
        if (best > 0.8 * std::max({dmaEdp, acpEdp, cacheEdp}))
            verdict = "either works";
        std::printf("  EDP: dma %.4g  acp %.4g  cache %.4g  -> %s\n",
                    dmaEdp, acpEdp, cacheEdp, verdict);
    }
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
