/**
 * @file
 * Figure 8: power-performance Pareto curves for DMA- vs cache-based
 * accelerators, with EDP-optimal stars.
 *
 * Full design sweep per benchmark (DMA: lanes x partitions with all
 * DMA optimizations; cache: lanes x size x line x ports x assoc) on a
 * 32-bit bus. Benchmarks print in the paper's order, left-to-right by
 * preference for DMA vs cache:
 *   aes, nw        -> DMA strictly better,
 *   gemm           -> cache matches performance at more power,
 *   stencil2d      -> cache matches at lower power,
 *   stencil3d      -> cache faster at more power,
 *   md-knn         -> curves largely overlap,
 *   spmv, fft      -> cache better on both axes.
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
printFrontier(const char *label, const std::vector<DesignPoint> &pts)
{
    auto frontier = paretoFrontier(pts);
    std::size_t star = edpOptimal(pts);
    std::printf("  %s Pareto frontier (%zu of %zu designs):\n", label,
                frontier.size(), pts.size());
    for (std::size_t i : frontier) {
        const auto &p = pts[i];
        std::printf("    %10.1f us %8.2f mW   %s%s\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str(),
                    i == star ? "  * EDP optimal" : "");
    }
    if (std::find(frontier.begin(), frontier.end(), star) ==
        frontier.end()) {
        const auto &p = pts[star];
        std::printf("    %10.1f us %8.2f mW   %s  * EDP optimal\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str());
    }
}

int
run()
{
    banner("Figure 8",
           "power-performance Pareto curves, DMA vs cache, 32-bit "
           "bus (EDP optima starred)");

    for (const auto &name : figure8Workloads()) {
        const Prep &p = prep(name);
        std::printf("\n%s:\n", name.c_str());

        auto dmaPts = runSweep(dmaSweepConfigs(32), p.trace, p.dddg);
        auto cachePts =
            runSweep(cacheSweepConfigs(32), p.trace, p.dddg);

        printFrontier("DMA", dmaPts);
        printFrontier("cache", cachePts);

        const auto &dmaOpt = dmaPts[edpOptimal(dmaPts)].results;
        const auto &cacheOpt =
            cachePts[edpOptimal(cachePts)].results;
        double dmaEdp = dmaOpt.energyPj * dmaOpt.totalSeconds();
        double cacheEdp =
            cacheOpt.energyPj * cacheOpt.totalSeconds();
        const char *verdict =
            dmaEdp < cacheEdp * 0.8
                ? "prefers DMA"
                : (cacheEdp < dmaEdp * 0.8 ? "prefers cache"
                                           : "either works");
        std::printf("  EDP: dma %.4g  cache %.4g  -> %s\n", dmaEdp,
                    cacheEdp, verdict);
    }
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
