/**
 * @file
 * Simulator-core microbenchmarks (google-benchmark): event-queue
 * throughput, interval-set algebra, cache access rate, DDDG
 * construction, and end-to-end simulation rate. These guard the
 * sweep throughput the DSE figures depend on.
 */

#include <benchmark/benchmark.h>

#include "accel/dddg.hh"
#include "core/soc.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/interval_set.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < n; ++i)
            eq.schedule(i * 10, [&sink, i] { sink += i; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_EventQueueSelfRescheduling(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t count = 0;
        std::function<void()> tick = [&] {
            if (++count < 100000)
                eq.scheduleIn(10, tick);
        };
        eq.scheduleIn(10, tick);
        eq.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(100000 * state.iterations());
}
BENCHMARK(BM_EventQueueSelfRescheduling);

void
BM_IntervalSetAlgebra(benchmark::State &state)
{
    IntervalSet a, b;
    for (Tick i = 0; i < 10000; ++i) {
        a.add(i * 30, i * 30 + 20);
        b.add(i * 30 + 10, i * 30 + 25);
    }
    for (auto _ : state) {
        auto u = a.unionWith(b);
        auto x = a.intersectWith(b);
        auto d = a.subtract(b);
        benchmark::DoNotOptimize(u.measure() + x.measure() +
                                 d.measure());
    }
}
BENCHMARK(BM_IntervalSetAlgebra);

void
BM_CacheHitStream(benchmark::State &state)
{
    EventQueue eq;
    SystemBus::Params bp;
    SystemBus bus("bus", eq, ClockDomain(10000), bp);
    DramCtrl dram("dram", eq, ClockDomain(10000), bus, {});
    bus.setTarget(&dram);
    Cache::Params cp;
    cp.ports = 8;
    Cache cache("cache", eq, ClockDomain(10000), bus, cp);
    std::size_t done = 0;
    cache.setCallback([&](std::uint64_t, bool) { ++done; });
    // Warm one line.
    cache.access(0, 4, false, 0, 0);
    eq.run();

    std::uint64_t id = 1;
    for (auto _ : state) {
        cache.access(0, 4, false, id++, 0);
        eq.run();
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitStream);

void
BM_DddgConstruction(benchmark::State &state)
{
    auto out = makeWorkload("gemm-ncubed")->build();
    for (auto _ : state) {
        Dddg dddg(out.trace);
        benchmark::DoNotOptimize(dddg.numEdges());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(out.trace.ops.size()) *
        state.iterations());
}
BENCHMARK(BM_DddgConstruction);

void
BM_TraceGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        auto out = makeWorkload("stencil-stencil2d")->build();
        benchmark::DoNotOptimize(out.checksum);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_FullSocSimulation_Dma(benchmark::State &state)
{
    auto out = makeWorkload("spmv-crs")->build();
    Dddg dddg(out.trace);
    SocConfig cfg;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.dma.triggeredCompute = true;
    for (auto _ : state) {
        SocResults r = runDesign(cfg, out.trace, dddg);
        benchmark::DoNotOptimize(r.totalTicks);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(out.trace.ops.size()) *
        state.iterations());
}
BENCHMARK(BM_FullSocSimulation_Dma);

void
BM_FullSocSimulation_Cache(benchmark::State &state)
{
    auto out = makeWorkload("spmv-crs")->build();
    Dddg dddg(out.trace);
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 4;
    for (auto _ : state) {
        SocResults r = runDesign(cfg, out.trace, dddg);
        benchmark::DoNotOptimize(r.totalTicks);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(out.trace.ops.size()) *
        state.iterations());
}
BENCHMARK(BM_FullSocSimulation_Cache);

} // namespace
} // namespace genie

BENCHMARK_MAIN();
