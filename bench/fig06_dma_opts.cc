/**
 * @file
 * Figure 6: DMA optimization study.
 *
 * (a) Cumulatively applying pipelined DMA and DMA-triggered compute
 *     to 4-lane accelerators for benchmarks spanning the Figure 2b
 *     range: pipelined DMA nearly eliminates flush-only time for
 *     everyone; ready bits help streaming kernels (stencil2d, md-knn)
 *     and do little for strided/serial ones (fft-transpose, nw).
 * (b) Sweeping datapath parallelism with all optimizations applied:
 *     compute shrinks until it is fully overlapped with DMA, then
 *     performance saturates (the serial-data-arrival bound).
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

const char *const subset[] = {
    "md-knn",        "stencil-stencil2d", "gemm-ncubed",
    "fft-transpose", "kmp-kmp",           "nw-nw",
    "aes-aes",
};

SocConfig
config(unsigned lanes, bool pipe, bool trig)
{
    SocConfig c;
    c.memType = MemInterface::ScratchpadDma;
    c.lanes = lanes;
    c.spadPartitions = lanes;
    c.busWidthBits = 32;
    c.dma.pipelined = pipe;
    c.dma.triggeredCompute = trig;
    return c;
}

int
run()
{
    banner("Figure 6a",
           "performance gains from each DMA technique, 4-lane "
           "designs\n(F=flush-only D=DMA O=compute+DMA overlap "
           "C=compute-only)");

    for (const char *name : subset) {
        const Prep &p = prep(name);
        std::printf("\n%s:\n", name);
        SocResults base =
            runDesign(config(4, false, false), p.trace, p.dddg);
        SocResults piped =
            runDesign(config(4, true, false), p.trace, p.dddg);
        SocResults trig =
            runDesign(config(4, true, true), p.trace, p.dddg);
        printBreakdownRow("baseline", base);
        printBreakdownRow("+pipelined", piped);
        printBreakdownRow("+dma-triggered", trig);
        std::printf("  speedup over baseline: pipelined %.2fx, "
                    "+triggered %.2fx\n",
                    static_cast<double>(base.totalTicks) /
                        static_cast<double>(piped.totalTicks),
                    static_cast<double>(base.totalTicks) /
                        static_cast<double>(trig.totalTicks));
    }

    banner("Figure 6b",
           "effect of datapath parallelism with all DMA "
           "optimizations applied");

    for (const char *name : subset) {
        const Prep &p = prep(name);
        std::printf("\n%s:\n", name);
        Tick prev = 0;
        for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
            SocResults r =
                runDesign(config(lanes, true, true), p.trace, p.dddg);
            double overlapPct =
                pct(static_cast<double>(r.breakdown.computeDma),
                    static_cast<double>(r.breakdown.computeDma +
                                        r.breakdown.computeOnly));
            std::printf("  lanes=%2u  total %8.1f us  "
                        "compute/DMA overlap %5.1f%%%s\n",
                        lanes, r.totalUs(), overlapPct,
                        prev > 0 && r.totalTicks >
                                        prev - prev / 50
                            ? "   <-- saturated"
                            : "");
            prev = r.totalTicks;
        }
    }

    std::printf("\nExpected shape (paper): performance saturates once "
                "compute is hidden\nunder DMA; extra lanes beyond that "
                "point buy nothing (serial data arrival).\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
