/**
 * @file
 * Figure 7: effect of datapath parallelism on cache-based
 * accelerators, decomposed Burger-style.
 *
 * For each benchmark we first sweep cache sizes to find the smallest
 * cache at which performance saturates, then sweep lanes and split
 * total time into
 *   processing time: memory always hits in one cycle,
 *   latency time:    real cache, unlimited bus bandwidth,
 *   bandwidth time:  32-bit bus.
 * Parallelism improves processing AND latency time (more lanes =>
 * more memory-level parallelism) but not bandwidth time, which grows
 * as a fraction of the total for bandwidth-hungry kernels
 * (spmv-crs, md-knn).
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

const char *const subset[] = {
    "gemm-ncubed", "stencil-stencil2d", "stencil-stencil3d",
    "md-knn",      "spmv-crs",          "fft-transpose",
};

unsigned
saturatingCacheSize(const Prep &p)
{
    // Smallest size within 5% of the best observed runtime, evaluated
    // at the highest parallelism in the sweep (16 lanes keep the
    // largest number of iterations' working sets live at once).
    std::vector<std::pair<unsigned, Tick>> results;
    Tick best = maxTick;
    for (unsigned size : DesignSpace::cacheSizeValues()) {
        SocConfig c = cacheConfig(16, size, 2);
        Tick t = runDesign(c, p.trace, p.dddg).totalTicks;
        results.emplace_back(size, t);
        best = std::min(best, t);
    }
    for (const auto &[size, t] : results) {
        if (t <= best + best / 20)
            return size;
    }
    return results.back().first;
}

int
run()
{
    banner("Figure 7",
           "cache-based accelerators: processing / latency / "
           "bandwidth time vs datapath parallelism");

    for (const char *name : subset) {
        const Prep &p = prep(name);
        unsigned size = saturatingCacheSize(p);
        std::printf("\n%s (saturating cache: %u KB):\n", name,
                    size / 1024);
        std::printf("  %5s %10s %10s %10s %10s\n", "lanes",
                    "proc(us)", "lat(us)", "bw(us)", "total(us)");
        for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
            SocConfig processing = cacheConfig(lanes, size, 2);
            processing.perfectMemory = true;
            SocConfig latency = cacheConfig(lanes, size, 2);
            latency.infiniteBandwidth = true;
            SocConfig bandwidth = cacheConfig(lanes, size, 2);

            double tp =
                runDesign(processing, p.trace, p.dddg).totalUs();
            double tl = runDesign(latency, p.trace, p.dddg).totalUs();
            double tb =
                runDesign(bandwidth, p.trace, p.dddg).totalUs();
            // Clamp: second-order effects (prefetch timing) can make
            // a decomposition component slightly negative.
            double latTime = std::max(0.0, tl - tp);
            double bwTime = std::max(0.0, tb - tl);
            std::printf("  %5u %10.1f %10.1f %10.1f %10.1f\n", lanes,
                        tp, latTime, bwTime, tb);
        }
    }

    std::printf("\nExpected shape (paper): processing and latency "
                "time fall with lanes;\nbandwidth time does not and "
                "dominates bandwidth-bound kernels at high "
                "parallelism.\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
