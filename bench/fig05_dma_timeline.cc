/**
 * @file
 * Figure 5: demonstration of the DMA latency-reduction techniques.
 *
 * The paper's schematic shows, for one kernel: (1) the baseline flow
 * (flush everything, then DMA, then compute), (2) pipelined DMA
 * (flush and DMA in page-sized chunks, DMA of chunk b overlapped with
 * flush of chunk b+1), and (3) DMA-triggered compute (ready bits let
 * loop iteration 0 start as soon as its first lines arrive). This
 * bench prints the actual simulated timelines of the three schemes on
 * stencil2d.
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
runScheme(const char *label, bool pipelined, bool triggered)
{
    const Prep &p = prep("stencil-stencil2d");
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.busWidthBits = 32;
    cfg.dma.pipelined = pipelined;
    cfg.dma.triggeredCompute = triggered;
    // The strips are read back from the trace subsystem: every
    // component emits spans into the Tracer, and spans(category)
    // collapses them to the same IntervalSets the components track.
    cfg.tracing.enabled = true;

    Soc soc(cfg, p.trace, p.dddg);
    SocResults r = soc.run();
    const Tracer &tracer = *soc.tracer();

    std::printf("\n%s  (total %.1f us)\n", label, r.totalUs());

    // Draw each activity as a scaled timeline strip.
    auto strip = [&](const char *name, const IntervalSet &s, char c) {
        constexpr unsigned width = 64;
        std::string line(width, '.');
        auto total = static_cast<double>(r.totalTicks);
        for (const auto &iv : s.intervals()) {
            auto from = static_cast<unsigned>(
                static_cast<double>(iv.begin) / total * width);
            auto to = static_cast<unsigned>(
                static_cast<double>(iv.end) / total * width);
            for (unsigned i = from; i < std::max(to, from + 1) &&
                                    i < width;
                 ++i)
                line[i] = c;
        }
        std::printf("  %-8s |%s|\n", name, line.c_str());
    };
    strip("flush", tracer.spans(TraceCategory::Flush), 'F');
    strip("dma", tracer.spans(TraceCategory::Dma), 'D');
    strip("compute", tracer.spans(TraceCategory::Datapath), 'C');
    printBreakdownRow("breakdown", r);
}

int
run()
{
    banner("Figure 5",
           "DMA latency reduction techniques on stencil2d, 4 lanes "
           "(timeline strips, time left to right)");

    runScheme("Baseline: flush all -> DMA all -> compute", false,
              false);
    runScheme("+ Pipelined DMA: page-sized flush/DMA chunks "
              "overlapped",
              true, false);
    runScheme("+ DMA-triggered compute: ready bits start iteration 0 "
              "on first arrival",
              true, true);

    std::printf("\nExpected shape (paper): each technique removes "
                "serialized time;\nwith ready bits the compute strip "
                "slides left under the DMA strip.\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
