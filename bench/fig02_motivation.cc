/**
 * @file
 * Figure 2: data-movement overheads on MachSuite.
 *
 * (a) Execution timeline for a 16-lane md-knn accelerator under the
 *     baseline DMA flow: the computation occupies only a fraction of
 *     total cycles (~25% on the paper's Zynq platform), the rest is
 *     flush and DMA.
 * (b) Flush / DMA / compute runtime breakdown for 16-way parallel
 *     designs across the MachSuite-style suite: roughly half the
 *     benchmarks are compute-bound and half data-movement-bound, with
 *     flushes alone averaging ~20% of cycles.
 */

#include <algorithm>

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

SocConfig
baseline16()
{
    SocConfig c;
    c.memType = MemInterface::ScratchpadDma;
    c.lanes = 16;
    c.spadPartitions = 16;
    c.busWidthBits = 32;
    c.dma.pipelined = false;
    c.dma.triggeredCompute = false;
    return c;
}

int
run()
{
    banner("Figure 2a",
           "md-knn execution timeline, 16 lanes, baseline DMA flow");

    const Prep &md = prep("md-knn");
    Soc soc(baseline16(), md.trace, md.dddg);
    SocResults r = soc.run();

    auto printPhases = [&](const char *label, const IntervalSet &s) {
        std::printf("  %-10s:", label);
        for (const auto &iv : s.intervals()) {
            std::printf(" [%7.1f, %7.1f]us",
                        static_cast<double>(iv.begin) * 1e-6,
                        static_cast<double>(iv.end) * 1e-6);
        }
        std::printf("\n");
    };
    printPhases("flush", soc.flushEngine().busyIntervals());
    printPhases("dma", soc.dmaEngine().busyIntervals());
    printPhases("compute", soc.datapath().computeBusy());

    double computeShare =
        pct(static_cast<double>(r.breakdown.computeOnly +
                                r.breakdown.computeDma),
            static_cast<double>(r.totalTicks));
    std::printf("\n  total %.1f us; computation occupies %.0f%% of "
                "the run (paper: ~25%%)\n",
                r.totalUs(), computeShare);

    banner("Figure 2b",
           "flush/DMA/compute breakdown, 16-way parallel designs, "
           "baseline DMA\n(F=flush-only D=DMA O=compute+DMA overlap "
           "C=compute-only)");

    struct Row
    {
        std::string name;
        SocResults r;
        double computeShare;
    };
    std::vector<Row> rows;
    for (const auto &name : workloadNames()) {
        const Prep &p = prep(name);
        SocResults res = runDesign(baseline16(), p.trace, p.dddg);
        double share =
            pct(static_cast<double>(res.breakdown.computeOnly +
                                    res.breakdown.computeDma),
                static_cast<double>(res.totalTicks));
        rows.push_back({name, res, share});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.computeShare > b.computeShare;
              });

    double flushSum = 0;
    for (const auto &row : rows) {
        printBreakdownRow(row.name, row.r);
        flushSum += breakdownPct(row.r).flushOnly;
    }
    std::printf("\n  average flush-only share: %.1f%% (paper: ~20%%)\n",
                flushSum / static_cast<double>(rows.size()));
    std::size_t computeBound = 0;
    for (const auto &row : rows)
        computeBound += row.computeShare > 35.0 ? 1 : 0;
    std::printf("  benchmarks with compute >= 35%% of runtime: %zu / "
                "%zu (paper: about half\n  compute-bound, half "
                "data-movement-bound)\n",
                computeBound, rows.size());
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
