/**
 * @file
 * Figure 10: EDP improvement of co-designed accelerators, normalized
 * to the EDP of isolated designs evaluated under realistic system
 * effects.
 *
 * Three scenarios per benchmark: DMA with a 32-bit bus, cache with a
 * 32-bit bus, cache with a 64-bit bus. The isolated EDP optimum is
 * re-evaluated inside each scenario (DMA scenarios reuse its
 * lanes/partitions with the optimized DMA flow; cache scenarios map
 * it to the cache an isolation-minded designer would size to hold the
 * full working set). Paper headline: average improvements of 1.2x /
 * 2.2x / 2.0x, up to 7.4x, and co-design matters more on the more
 * contended (32-bit) bus.
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

double
edpOf(const SocResults &r)
{
    return r.energyPj * r.totalSeconds();
}

int
run()
{
    banner("Figure 10",
           "EDP improvement of co-designed vs isolated designs, "
           "three scenarios");

    std::printf("  %-20s %12s %14s %14s\n", "benchmark", "dma/32",
                "cache/32", "cache/64");

    double sums[3] = {0, 0, 0};
    double maxImp = 0;
    auto names = figure8Workloads();

    for (const auto &name : names) {
        const Prep &p = prep(name);
        auto iso = runSweep(isolatedSweepConfigs(), p.trace, p.dddg);
        const auto &isoOpt = iso[edpOptimal(iso)];
        std::uint64_t workingSet = p.trace.totalArrayBytes();

        double imps[3];
        for (int s = 0; s < 3; ++s) {
            unsigned bus = s == 2 ? 64 : 32;
            std::vector<DesignPoint> sys;
            SocConfig isoUnder;
            if (s == 0) {
                sys = runSweep(dmaSweepConfigs(bus), p.trace, p.dddg);
                isoUnder = isoOpt.config;
                isoUnder.isolated = false;
                isoUnder.busWidthBits = bus;
                isoUnder.dma.pipelined = true;
                isoUnder.dma.triggeredCompute = true;
            } else {
                sys = runSweep(cacheSweepConfigs(bus), p.trace,
                               p.dddg);
                isoUnder = DesignSpace::isolatedAsCache(
                    isoOpt.config, workingSet);
                isoUnder.busWidthBits = bus;
            }
            SocResults isoRes =
                runDesign(isoUnder, p.trace, p.dddg);
            const auto &coOpt = sys[edpOptimal(sys)].results;
            imps[s] = edpOf(coOpt) > 0
                          ? edpOf(isoRes) / edpOf(coOpt)
                          : 0.0;
            sums[s] += imps[s];
            maxImp = std::max(maxImp, imps[s]);
        }
        std::printf("  %-20s %11.2fx %13.2fx %13.2fx\n", name.c_str(),
                    imps[0], imps[1], imps[2]);
    }

    auto n = static_cast<double>(names.size());
    std::printf("\n  %-20s %11.2fx %13.2fx %13.2fx   (paper: 1.2x / "
                "2.2x / 2.0x)\n",
                "average", sums[0] / n, sums[1] / n, sums[2] / n);
    std::printf("  maximum improvement: %.1fx  (paper: up to 7.4x)\n",
                maxImp);
    std::printf("\nExpected shape (paper): cache scenarios gain more "
                "than DMA (an overly\naggressive cache design is a "
                "large multi-ported cache); the contended 32-bit\nbus "
                "gains more than the 64-bit bus.\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
