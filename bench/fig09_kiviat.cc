/**
 * @file
 * Figure 9: accelerator microarchitectural parameters across four
 * design scenarios, normalized to the isolated optimum (the paper's
 * Kiviat plots).
 *
 * Scenarios: (1) isolated baseline, (2) co-designed DMA on a 32-bit
 * bus, (3) co-designed cache on a 32-bit bus, (4) co-designed cache
 * on a 64-bit bus. Axes: datapath lanes, local SRAM size, local
 * memory bandwidth. Expected shape: almost every co-designed triangle
 * is smaller than the isolated one (isolation over-provisions), and
 * designs for the narrower bus provision less than for the wide bus.
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
printAxes(const char *label, const KiviatAxes &k)
{
    std::printf("    %-22s lanes %5.2f  sram %5.2f  bw %5.2f   "
                "|%s|\n",
                label, k.lanes, k.sramSize, k.memBandwidth,
                bar((k.lanes + k.sramSize + k.memBandwidth) / 3.0 /
                        2.0,
                    24)
                    .c_str());
}

int
run()
{
    banner("Figure 9",
           "EDP-optimal design parameters across scenarios, "
           "normalized to the isolated optimum\n(values < 1 mean the "
           "co-designed accelerator provisions less)");

    double sumLanes[3] = {0, 0, 0};
    double sumSram[3] = {0, 0, 0};
    double sumBw[3] = {0, 0, 0};
    auto names = figure8Workloads();

    for (const auto &name : names) {
        const Prep &p = prep(name);
        std::printf("\n%s:\n", name.c_str());

        auto iso = runSweep(isolatedSweepConfigs(), p.trace, p.dddg);
        const auto &isoOpt = iso[edpOptimal(iso)];
        printAxes("isolated (reference)", kiviatAxes(isoOpt, isoOpt));

        auto dma32 = runSweep(dmaSweepConfigs(32), p.trace, p.dddg);
        auto cache32 =
            runSweep(cacheSweepConfigs(32), p.trace, p.dddg);
        auto cache64 =
            runSweep(cacheSweepConfigs(64), p.trace, p.dddg);

        const DesignPoint *opts[3] = {
            &dma32[edpOptimal(dma32)],
            &cache32[edpOptimal(cache32)],
            &cache64[edpOptimal(cache64)],
        };
        const char *labels[3] = {"dma, 32-bit bus",
                                 "cache, 32-bit bus",
                                 "cache, 64-bit bus"};
        for (int s = 0; s < 3; ++s) {
            KiviatAxes k = kiviatAxes(*opts[s], isoOpt);
            printAxes(labels[s], k);
            sumLanes[s] += k.lanes;
            sumSram[s] += k.sramSize;
            sumBw[s] += k.memBandwidth;
        }
    }

    auto n = static_cast<double>(names.size());
    std::printf("\naverages over the eight benchmarks (isolated "
                "= 1.00):\n");
    const char *labels[3] = {"dma, 32-bit bus", "cache, 32-bit bus",
                             "cache, 64-bit bus"};
    for (int s = 0; s < 3; ++s) {
        std::printf("    %-22s lanes %5.2f  sram %5.2f  bw %5.2f\n",
                    labels[s], sumLanes[s] / n, sumSram[s] / n,
                    sumBw[s] / n);
    }
    std::printf("\nExpected shape (paper): co-designed triangles "
                "shrink, most strongly in local\nmemory bandwidth and "
                "(for caches) SRAM size; 32-bit-bus designs provision "
                "less\nthan 64-bit-bus designs.\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
