/**
 * @file
 * Shared support for the figure-reproduction benches: cached workload
 * preparation, table/bar rendering, and the standard configuration
 * factories used across experiments.
 *
 * Every bench prints the same rows/series as the corresponding paper
 * figure; EXPERIMENTS.md records paper-vs-measured shape comparisons.
 */

#ifndef GENIE_BENCH_BENCH_UTIL_HH
#define GENIE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "accel/dddg.hh"
#include "core/soc.hh"
#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "workloads/workload.hh"

namespace genie::bench
{

/** A workload prepared for simulation (trace + DDDG built once). */
struct Prep
{
    std::string name;
    Trace trace;
    Dddg dddg;

    Prep(std::string n, Trace t)
        : name(std::move(n)), trace(std::move(t)), dddg(trace)
    {}
};

/** Build (and cache) a workload's trace and DDDG. */
const Prep &prep(const std::string &name);

/** Fast mode (GENIE_BENCH_FAST=1): trims sweeps for smoke runs. */
bool fastMode();

/** Print a figure banner. */
void banner(const std::string &figure, const std::string &caption);

/** Render @p fraction (0..1) as a fixed-width ASCII bar. */
std::string bar(double fraction, unsigned width = 40);

/** Render a stacked bar from category fractions using one letter per
 * category (e.g. "F" flush, "D" dma, "O" overlap, "C" compute). */
std::string stackedBar(const std::vector<std::pair<char, double>> &parts,
                       unsigned width = 48);

/** Percentage of @p part in @p whole (0 if whole is 0). */
double pct(double part, double whole);

/** Baseline-but-optimized DMA config (paper Figure 8 DMA space). */
SocConfig dmaAllOptsConfig(unsigned lanes, unsigned partitions,
                           unsigned busWidth = 32);

/** Plain cache config. */
SocConfig cacheConfig(unsigned lanes, unsigned sizeBytes,
                      unsigned ports = 1, unsigned busWidth = 32,
                      unsigned lineBytes = 64, unsigned assoc = 4);

/** Breakdown of one run as fractions of total runtime. */
struct BreakdownPct
{
    double flushOnly;
    double dmaFlush;
    double computeDma;
    double computeOnly;
    double other;
};

BreakdownPct breakdownPct(const SocResults &r);

/** Print one breakdown row: name, total us, stacked bar, percents. */
void printBreakdownRow(const std::string &label, const SocResults &r);

/** The trimmed-but-faithful cache sweep used by the Figure 8/9/10
 * benches (full Figure 3 values; trimmed under fast mode). */
std::vector<SocConfig> cacheSweepConfigs(unsigned busWidth);

/** The DMA sweep (all optimizations applied, Figure 8 space). */
std::vector<SocConfig> dmaSweepConfigs(unsigned busWidth);

/** The ACP sweep (Genie-Iface third interface regime): every array
 * moved over the coherency port, no flush/invalidate. */
std::vector<SocConfig> acpSweepConfigs(unsigned busWidth);

/** The isolated sweep. */
std::vector<SocConfig> isolatedSweepConfigs();

} // namespace genie::bench

#endif // GENIE_BENCH_BENCH_UTIL_HH
