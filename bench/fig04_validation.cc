/**
 * @file
 * Figure 4: simulator validation.
 *
 * The paper validates gem5-Aladdin against a Zynq Zedboard and
 * reports per-benchmark cycle errors (6.4% average for the DMA model,
 * 5% for Aladdin, 5% for the flush/invalidate model). Without the
 * FPGA we validate the event-driven simulator against an independent
 * closed-form analytic model of the same flow (DESIGN.md substitution
 * #2): flush and invalidate from the per-line characterized costs,
 * DMA from bus bandwidth plus per-transaction overheads, and compute
 * from a per-wave resource/critical-path bound. The analytic model is
 * an uncalibrated near-lower bound, so errors are larger than the
 * paper's hardware-calibrated ones; the per-component agreement is
 * the point of the experiment.
 */

#include <cmath>

#include "bench_util.hh"

#include "core/validation.hh"

namespace genie::bench
{
namespace
{

int
run()
{
    banner("Figure 4",
           "validation: event-driven simulation vs analytic model "
           "(baseline DMA flow, 64-bit bus)");

    std::printf("  %-20s %10s %10s %7s | %8s %8s %8s\n", "benchmark",
                "sim(us)", "model(us)", "err%", "flush%", "dma%",
                "comp%");

    double errSum = 0, flushErrSum = 0, dmaErrSum = 0;
    auto names = figure8Workloads();
    for (const auto &name : names) {
        const Prep &p = prep(name);
        SocConfig cfg;
        cfg.memType = MemInterface::ScratchpadDma;
        cfg.lanes = 4;
        cfg.spadPartitions = 4;
        cfg.busWidthBits = 64;

        Soc soc(cfg, p.trace, p.dddg);
        SocResults sim = soc.run();
        Tick simFlush = soc.flushEngine().busyIntervals().measure();
        Tick simDma = soc.dmaEngine().busyIntervals().measure();

        ValidationPrediction pred =
            ValidationModel::predictDmaBaseline(cfg, p.trace, p.dddg);

        auto err = [](double a, double b) {
            return a > 0 ? 100.0 * std::abs(a - b) / a : 0.0;
        };
        double totalErr = err(static_cast<double>(sim.totalTicks),
                              static_cast<double>(pred.total()));
        double flushErr =
            err(static_cast<double>(simFlush),
                static_cast<double>(pred.flush + pred.invalidate));
        double dmaErr = err(static_cast<double>(simDma),
                            static_cast<double>(pred.dmaIn +
                                                pred.dmaOut));

        std::printf("  %-20s %10.1f %10.1f %6.1f%% | %7.1f%% %7.1f%% "
                    "%7.1f%%\n",
                    name.c_str(), sim.totalUs(),
                    static_cast<double>(pred.total()) * 1e-6,
                    totalErr, flushErr, dmaErr,
                    err(static_cast<double>(sim.accelCycles) *
                            periodFromMhz(cfg.accelMhz),
                        static_cast<double>(pred.compute)));

        errSum += totalErr;
        flushErrSum += flushErr;
        dmaErrSum += dmaErr;
    }

    auto n = static_cast<double>(names.size());
    std::printf("\n  average total error: %.1f%%  (paper, hardware-"
                "calibrated: 6.4%%)\n",
                errSum / n);
    std::printf("  average flush+invalidate model error: %.1f%% "
                "(paper: ~5%%)\n",
                flushErrSum / n);
    std::printf("  average DMA model error: %.1f%%\n", dmaErrSum / n);
    std::printf("  (our analytic stand-in assumes conflict-free "
                "banking and ideal issue;\n   see DESIGN.md "
                "substitution #2 for why errors exceed the paper's)\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
