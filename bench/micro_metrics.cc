/**
 * @file
 * Metrics-subsystem microbenchmarks (google-benchmark): the cost of
 * stat increments, registry lookups, sampler snapshots, profiled
 * versus unprofiled event dispatch, and the exporters. These bound
 * the observability overhead that genie_bench's MEPS number absorbs
 * when sampling or profiling is enabled.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <vector>

#include "metrics/export.hh"
#include "sim/logging.hh"
#include "metrics/profiler.hh"
#include "metrics/sampler.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace genie
{
namespace
{

/** A registry with @p groups groups of @p statsPer scalars each. */
struct Fixture
{
    StatRegistry registry;
    std::vector<std::unique_ptr<StatGroup>> groups;
    std::vector<Stat *> stats;

    Fixture(std::size_t numGroups, std::size_t statsPer)
    {
        for (std::size_t g = 0; g < numGroups; ++g) {
            auto group = std::make_unique<StatGroup>(
                format("sys.comp%zu", g));
            for (std::size_t s = 0; s < statsPer; ++s) {
                stats.push_back(&group->add(format("stat%zu", s),
                                            "bench counter"));
            }
            registry.registerGroup(*group);
            groups.push_back(std::move(group));
        }
    }
};

void
BM_StatIncrement(benchmark::State &state)
{
    Fixture f(1, 1);
    Stat &s = *f.stats[0];
    for (auto _ : state) {
        ++s;
        benchmark::DoNotOptimize(s.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatIncrement);

void
BM_RegistryLookup(benchmark::State &state)
{
    Fixture f(16, 8);
    for (auto _ : state) {
        const Stat *s = f.registry.lookup("sys.comp7.stat3");
        benchmark::DoNotOptimize(s);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookup);

void
BM_SamplerSnapshot(benchmark::State &state)
{
    const auto series = static_cast<std::size_t>(state.range(0));
    EventQueue eq;
    Fixture f(series, 1);
    MetricsSampler::Params p;
    p.period = 10;
    p.capacity = 1u << 20;
    MetricsSampler sampler(eq, f.registry, p);
    sampler.trackAllScalars();

    // Drive the sampler through its own event path: one sim event per
    // iteration keeps the queue non-empty so the sampler keeps
    // rescheduling itself.
    sampler.start();
    std::size_t fired = 0;
    for (auto _ : state) {
        eq.schedule(eq.curTick() + 10, [&fired] { ++fired; },
                    "bench.keepalive");
        eq.step();
        eq.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerSnapshot)->Arg(8)->Arg(64);

void
BM_EventDispatchUnprofiled(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.curTick() + 1, [&sink] { ++sink; },
                    "bench.event");
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDispatchUnprofiled);

void
BM_EventDispatchProfiled(benchmark::State &state)
{
    EventQueue eq;
    HostProfiler profiler;
    eq.setProfiler(&profiler);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        eq.schedule(eq.curTick() + 1, [&sink] { ++sink; },
                    "bench.event");
        eq.step();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDispatchProfiled);

void
BM_ExportStatsJson(benchmark::State &state)
{
    Fixture f(16, 8);
    for (auto _ : state) {
        std::ostringstream os;
        writeStatsJson(os, f.registry);
        benchmark::DoNotOptimize(os.str().size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExportStatsJson);

void
BM_ExportSamplesCsv(benchmark::State &state)
{
    EventQueue eq;
    Fixture f(8, 1);
    MetricsSampler::Params p;
    p.period = 1;
    p.capacity = 1024;
    MetricsSampler sampler(eq, f.registry, p);
    sampler.trackAllScalars();
    sampler.start();
    for (std::size_t i = 0; i < 1024; ++i)
        eq.schedule(eq.curTick() + 1, [] {}, "bench.keepalive");
    eq.run();

    for (auto _ : state) {
        std::ostringstream os;
        writeSamplesCsv(os, sampler);
        benchmark::DoNotOptimize(os.str().size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExportSamplesCsv);

} // namespace
} // namespace genie

BENCHMARK_MAIN();
