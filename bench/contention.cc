/**
 * @file
 * Shared-resource contention study (Section IV-A's fourth design
 * consideration, measured directly with multi-accelerator systems).
 *
 * The paper argues that a coarse-grained mechanism like DMA suffers
 * more under shared-resource contention than fine-grained cache
 * fills: the accelerator waits for the entire bulk transfer, while
 * cache misses are small and hit-under-miss lets independent work
 * proceed. Here we co-schedule each memory system with an
 * increasingly aggressive bus-hog neighbor and report the slowdown
 * relative to running alone, on 32- and 64-bit buses.
 */

#include "bench_util.hh"

#include "core/multi_soc.hh"

namespace genie::bench
{
namespace
{

AcceleratorSpec
makeSpec(const Prep &p, const SocConfig &design)
{
    AcceleratorSpec s;
    s.trace = &p.trace;
    s.dddg = &p.dddg;
    s.design = design;
    return s;
}

Tick
victimFinish(const Prep &victim, const SocConfig &victimDesign,
             unsigned hogs, unsigned busWidth)
{
    SocConfig platform;
    platform.busWidthBits = busWidth;
    std::vector<AcceleratorSpec> specs;
    specs.push_back(makeSpec(victim, victimDesign));
    const Prep &hog = prep("kmp-kmp"); // pure streaming bus hog
    for (unsigned i = 0; i < hogs; ++i) {
        SocConfig hogDesign;
        hogDesign.memType = MemInterface::ScratchpadDma;
        hogDesign.lanes = 16;
        hogDesign.spadPartitions = 16;
        hogDesign.dma.triggeredCompute = true;
        specs.push_back(makeSpec(hog, hogDesign));
    }
    MultiSoc soc(platform, std::move(specs));
    return soc.run().accelerators[0].finishTick;
}

int
run()
{
    banner("Contention",
           "DMA vs cache accelerators under shared-resource "
           "contention (streaming neighbors on one bus)");

    const Prep &victim = prep("stencil-stencil3d");

    SocConfig dmaDesign;
    dmaDesign.memType = MemInterface::ScratchpadDma;
    dmaDesign.lanes = 4;
    dmaDesign.spadPartitions = 4;
    dmaDesign.dma.triggeredCompute = true;

    SocConfig cacheDesign;
    cacheDesign.memType = MemInterface::Cache;
    cacheDesign.lanes = 4;
    cacheDesign.cache.sizeBytes = 16 * 1024;
    cacheDesign.cache.ports = 2;

    for (unsigned bus : {32u, 64u}) {
        std::printf("\n%u-bit bus, victim = stencil3d, neighbors = "
                    "streaming kmp accelerators:\n",
                    bus);
        std::printf("  %9s %16s %16s\n", "neighbors", "dma slowdown",
                    "cache slowdown");
        Tick dmaAlone = victimFinish(victim, dmaDesign, 0, bus);
        Tick cacheAlone = victimFinish(victim, cacheDesign, 0, bus);
        for (unsigned hogs : {1u, 2u, 3u}) {
            Tick dmaT = victimFinish(victim, dmaDesign, hogs, bus);
            Tick cacheT =
                victimFinish(victim, cacheDesign, hogs, bus);
            std::printf("  %9u %15.2fx %15.2fx\n", hogs,
                        static_cast<double>(dmaT) /
                            static_cast<double>(dmaAlone),
                        static_cast<double>(cacheT) /
                            static_cast<double>(cacheAlone));
        }
    }

    std::printf("\nExpected shape (paper, Section IV-A): the "
                "coarse-grained DMA victim degrades\nfaster with "
                "added neighbors than the fine-grained cache victim; "
                "the wide bus\nsoftens both.\n");
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
