/**
 * @file
 * Figure 1: design-space exploration for stencil3d, isolated vs
 * co-designed.
 *
 * Reproduces the paper's motivating scatter: sweeping compute
 * parallelism (datapath lanes) and scratchpad partitioning for (a) an
 * accelerator designed in isolation (compute phase only) and (b) the
 * same designs evaluated with system-level effects (flush, DMA, bus).
 * The isolated space leans toward parallel, power-hungry designs; the
 * co-designed space shifts toward less parallel, lower-power points,
 * and the isolated EDP optimum lands far from the co-designed one.
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
printSpace(const char *label, const std::vector<DesignPoint> &pts)
{
    std::printf("\n%s (exec time vs. accelerator power):\n", label);
    std::printf("  %-26s %12s %10s %14s\n", "design", "time (us)",
                "power(mW)", "EDP (pJ*s)");
    std::size_t star = edpOptimal(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const auto &p = pts[i];
        std::printf("  %-26s %12.1f %10.2f %14.4g%s\n",
                    p.config.describe().c_str(),
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.results.energyPj * p.results.totalSeconds(),
                    i == star ? "  <-- EDP optimal" : "");
    }
}

int
run()
{
    banner("Figure 1",
           "stencil3d design space: isolated vs co-designed (lanes x "
           "partitions sweep)");

    const Prep &p = prep("stencil-stencil3d");

    auto isolated = runSweep(isolatedSweepConfigs(), p.trace, p.dddg);
    auto codesigned =
        runSweep(dmaSweepConfigs(32), p.trace, p.dddg);

    printSpace("Isolated designs (compute phase only)", isolated);
    printSpace("Co-designed (full system: flush + DMA + compute)",
               codesigned);

    // The paper's key comparison: take the isolated EDP optimum and
    // re-evaluate it under system effects.
    const auto &isoOpt = isolated[edpOptimal(isolated)];
    SocConfig isoUnderSystem = isoOpt.config;
    isoUnderSystem.isolated = false;
    isoUnderSystem.dma.pipelined = true;
    isoUnderSystem.dma.triggeredCompute = true;
    SocResults isoSys = runDesign(isoUnderSystem, p.trace, p.dddg);
    const auto &coOpt = codesigned[edpOptimal(codesigned)];

    std::printf("\nIsolated EDP-optimal design:    %s\n",
                isoOpt.config.describe().c_str());
    std::printf("Co-designed EDP-optimal design: %s\n",
                coOpt.config.describe().c_str());
    double edpIso = isoSys.energyPj * isoSys.totalSeconds();
    double edpCo =
        coOpt.results.energyPj * coOpt.results.totalSeconds();
    std::printf("\nEDP (isolated design under system effects): %.4g\n",
                edpIso);
    std::printf("EDP (co-designed optimum):                  %.4g\n",
                edpCo);
    std::printf("Co-design EDP improvement: %.2fx\n",
                edpCo > 0 ? edpIso / edpCo : 0.0);
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
