/**
 * @file
 * Ablations: one-at-a-time sweeps of the Figure 3 parameters the
 * main figures hold fixed, plus on/off studies of the mechanisms
 * gem5-Aladdin adds over standalone Aladdin. Each block isolates one
 * design choice so its contribution is visible:
 *
 *   - cache line size (16/32/64 B) on a strided and a streaming kernel,
 *   - MSHR count (hit-under-miss depth),
 *   - strided prefetcher on/off,
 *   - accelerator TLB size and miss latency,
 *   - DMA beat window (outstanding transfers),
 *   - full/empty-bit granularity (line vs half-array double buffering).
 */

#include "bench_util.hh"

namespace genie::bench
{
namespace
{

void
cacheLineAblation()
{
    std::printf("\n-- cache line size (cache mode, 4 lanes) --\n");
    for (const char *name : {"fft-transpose", "stencil-stencil2d"}) {
        const Prep &p = prep(name);
        std::printf("  %s:\n", name);
        for (unsigned line : DesignSpace::cacheLineValues()) {
            SocConfig c = cacheConfig(4, 16 * 1024, 2, 32, line);
            SocResults r = runDesign(c, p.trace, p.dddg);
            std::printf("    line=%2uB  total %8.1f us  miss rate "
                        "%5.1f%%\n",
                        line, r.totalUs(), r.cacheMissRate * 100);
        }
    }
    std::printf("  expected: long lines amortize fills for streaming "
                "rows; strided\n  fft wastes most of each long "
                "line.\n");
}

void
mshrAblation()
{
    std::printf("\n-- MSHR count (cache mode, 8 lanes) --\n");
    const Prep &p = prep("spmv-crs");
    for (unsigned mshrs : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SocConfig c = cacheConfig(8, 16 * 1024, 2);
        c.cache.mshrs = mshrs;
        SocResults r = runDesign(c, p.trace, p.dddg);
        std::printf("    mshrs=%2u  total %8.1f us\n", mshrs,
                    r.totalUs());
    }
    std::printf("  expected: more outstanding misses -> more "
                "memory-level parallelism,\n  saturating near the "
                "lane count.\n");
}

void
prefetcherAblation()
{
    std::printf("\n-- strided prefetcher (cache mode, 4 lanes) --\n");
    for (const char *name :
         {"gemm-ncubed", "stencil-stencil2d", "spmv-crs"}) {
        const Prep &p = prep(name);
        SocConfig off = cacheConfig(4, 16 * 1024, 2);
        off.cache.prefetch = false;
        SocConfig on = cacheConfig(4, 16 * 1024, 2);
        SocResults roff = runDesign(off, p.trace, p.dddg);
        SocResults ron = runDesign(on, p.trace, p.dddg);
        std::printf("    %-20s off %8.1f us -> on %8.1f us "
                    "(%+5.1f%%)\n",
                    name, roff.totalUs(), ron.totalUs(),
                    100.0 * (ron.totalUs() - roff.totalUs()) /
                        roff.totalUs());
    }
    std::printf("  expected: wins on strided/streaming kernels, "
                "little or negative\n  effect on indirect gathers "
                "(spmv).\n");
}

void
tlbAblation()
{
    std::printf("\n-- accelerator TLB (cache mode, 8 lanes) --\n");
    const Prep &p = prep("gemm-ncubed");
    for (unsigned entries : {2u, 4u, 8u, 16u}) {
        SocConfig c = cacheConfig(8, 32 * 1024, 2);
        c.tlbEntries = entries;
        SocResults r = runDesign(c, p.trace, p.dddg);
        std::printf("    entries=%2u  total %8.1f us  TLB hit rate "
                    "%5.1f%%\n",
                    entries, r.totalUs(), r.tlbHitRate * 100);
    }
    for (Tick lat : {100u, 200u, 400u}) {
        SocConfig c = cacheConfig(8, 32 * 1024, 2);
        c.tlbMissLatency = lat * tickPerNs;
        SocResults r = runDesign(c, p.trace, p.dddg);
        std::printf("    miss=%3lluns  total %8.1f us\n",
                    (unsigned long long)lat, r.totalUs());
    }
}

void
dmaWindowAblation()
{
    std::printf("\n-- DMA outstanding-beat window (DMA mode, 4 "
                "lanes) --\n");
    const Prep &p = prep("stencil-stencil3d");
    for (unsigned window : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig c = dmaAllOptsConfig(4, 4);
        c.dma.maxOutstanding = window;
        SocResults r = runDesign(c, p.trace, p.dddg);
        std::printf("    window=%2u  total %8.1f us  bus util "
                    "%5.1f%%\n",
                    window, r.totalUs(), r.busUtilization * 100);
    }
    std::printf("  expected: a single outstanding beat exposes the "
                "DRAM round trip per\n  line; a modest window "
                "saturates the 32-bit bus.\n");
}

void
readyBitGranularityNote()
{
    std::printf("\n-- full/empty bit granularity --\n");
    const Prep &p = prep("stencil-stencil2d");
    // Line-granularity ready bits vs no ready bits (the coarse
    // extreme: wait for the whole transfer).
    SocConfig fine = dmaAllOptsConfig(4, 4);
    SocConfig coarse = dmaAllOptsConfig(4, 4);
    coarse.dma.triggeredCompute = false;
    SocResults rf = runDesign(fine, p.trace, p.dddg);
    SocResults rc = runDesign(coarse, p.trace, p.dddg);
    std::printf("    line-granularity bits: %8.1f us (overlap %4.1f "
                "us)\n    whole-transfer wait:   %8.1f us\n",
                rf.totalUs(),
                static_cast<double>(rf.breakdown.computeDma) * 1e-6,
                rc.totalUs());
    std::printf("  the paper notes double-buffering falls out of the "
                "same mechanism by\n  tracking at half-array "
                "granularity (Section IV-B2).\n");
}

int
run()
{
    banner("Ablations",
           "one-at-a-time parameter studies behind the Figure 3 "
           "design space");
    cacheLineAblation();
    mshrAblation();
    prefetcherAblation();
    tlbAblation();
    dmaWindowAblation();
    readyBitGranularityNote();
    return 0;
}

} // namespace
} // namespace genie::bench

int
main()
{
    return genie::bench::run();
}
