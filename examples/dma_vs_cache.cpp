/**
 * @file
 * Example: when should an accelerator use scratchpads+DMA, and when a
 * coherent cache?
 *
 * Runs the same kernel under both memory interfaces at matched
 * parallelism and prints a side-by-side comparison: runtime, power,
 * EDP, and the microarchitectural signals behind the difference
 * (flush time, DMA serialization, cache miss rate, TLB behavior,
 * cache-to-cache coherence transfers). Mirrors the Section V-A
 * discussion: try `spmv-crs` (indirect accesses -> cache-friendly)
 * vs `nw-nw` (tiny inputs, serial -> DMA-friendly).
 */

#include <cstdio>
#include <string>

#include "core/soc.hh"
#include "workloads/workload.hh"

namespace
{

void
report(const char *label, const genie::SocResults &r)
{
    std::printf("  %-24s %10.1f us %8.2f mW %12.4g pJ*s\n", label,
                r.totalUs(), r.avgPowerMw,
                r.energyPj * r.totalSeconds());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace genie;

    std::string name = argc > 1 ? argv[1] : "spmv-crs";
    auto workload = makeWorkload(name);
    auto out = workload->build();
    Dddg dddg(out.trace);

    std::printf("%s: %s\n\n", name.c_str(),
                workload->description().c_str());
    std::printf("  %-24s %13s %11s %13s\n", "design", "latency",
                "power", "EDP");

    // Scratchpad + DMA, with the paper's two DMA optimizations.
    SocConfig dmaCfg;
    dmaCfg.memType = MemInterface::ScratchpadDma;
    dmaCfg.lanes = 4;
    dmaCfg.spadPartitions = 4;
    dmaCfg.dma.pipelined = true;
    dmaCfg.dma.triggeredCompute = true;
    SocResults dmaRes = runDesign(dmaCfg, out.trace, dddg);
    report("scratchpad + DMA", dmaRes);

    // Coherent cache + TLB.
    SocConfig cacheCfg;
    cacheCfg.memType = MemInterface::Cache;
    cacheCfg.lanes = 4;
    cacheCfg.cache.sizeBytes = 16 * 1024;
    cacheCfg.cache.ports = 2;
    Soc cacheSoc(cacheCfg, out.trace, dddg);
    SocResults cacheRes = cacheSoc.run();
    report("coherent cache (16 KB)", cacheRes);

    std::printf("\nwhy:\n");
    std::printf("  DMA flow spent %.1f us flushing CPU caches and "
                "%.1f us on DMA without\n  overlapping compute; "
                "ready-bit stalls: %llu.\n",
                dmaRes.breakdown.flushOnly * 1e-6,
                dmaRes.breakdown.dmaFlush * 1e-6,
                (unsigned long long)dmaRes.readyBitStalls);
    std::printf("  Cache flow missed %.1f%% of accesses (TLB hit "
                "rate %.1f%%) and pulled\n  %llu lines directly from "
                "the dirty CPU cache via MOESI.\n",
                cacheRes.cacheMissRate * 100.0,
                cacheRes.tlbHitRate * 100.0,
                (unsigned long long)cacheRes.cacheToCacheTransfers);

    double dmaEdp = dmaRes.energyPj * dmaRes.totalSeconds();
    double cacheEdp = cacheRes.energyPj * cacheRes.totalSeconds();
    std::printf("\nverdict: %s has the better EDP here (%.4g vs "
                "%.4g).\n",
                dmaEdp < cacheEdp ? "scratchpad+DMA" : "the cache",
                std::min(dmaEdp, cacheEdp),
                std::max(dmaEdp, cacheEdp));
    return 0;
}
