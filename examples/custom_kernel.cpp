/**
 * @file
 * Example: bring your own kernel.
 *
 * Genie workloads are ordinary C++ functions that execute the kernel
 * while emitting its dynamic trace through the TraceBuilder DSL —
 * the same role LLVM instrumentation plays for Aladdin. This example
 * writes a small dot-product-with-bias kernel from scratch, builds
 * its DDDG, and sweeps datapath lanes under the full SoC model.
 *
 * The pattern to copy:
 *   - addArray() for every array the accelerator touches
 *     (isInput/isOutput control what gets flushed and DMA'd),
 *   - beginIteration() per unrollable work unit (lanes map to
 *     iterations),
 *   - load()/store()/op() with explicit dependences; memory
 *     (store->load) dependences are inferred automatically.
 */

#include <cstdio>
#include <vector>

#include "core/soc.hh"
#include "sim/random.hh"

int
main()
{
    using namespace genie;

    constexpr unsigned n = 1024;
    constexpr unsigned chunk = 16; // work unit per iteration

    // Input data, deterministic.
    Rng rng(1234);
    std::vector<double> a(n), b(n);
    for (unsigned i = 0; i < n; ++i) {
        a[i] = rng.range(-1.0, 1.0);
        b[i] = rng.range(-1.0, 1.0);
    }
    double bias = 0.5;

    // Execute functionally while emitting the trace.
    TraceBuilder tb;
    int arrA = tb.addArray("a", n * 8, 8, true, false);
    int arrB = tb.addArray("b", n * 8, 8, true, false);
    int arrOut = tb.addArray("out", (n / chunk) * 8, 8, false, true);

    double checksum = 0.0;
    for (unsigned base = 0; base < n; base += chunk) {
        tb.beginIteration();
        NodeId acc = invalidNode;
        double sum = bias;
        for (unsigned i = base; i < base + chunk; ++i) {
            NodeId la = tb.load(arrA, i * 8, 8);
            NodeId lb = tb.load(arrB, i * 8, 8);
            NodeId mul = tb.op(Opcode::FpMul, {la, lb});
            acc = acc == invalidNode ? mul
                                     : tb.op(Opcode::FpAdd, {acc, mul});
            sum += a[i] * b[i];
        }
        NodeId biased = tb.op(Opcode::FpAdd, {acc});
        tb.store(arrOut, (base / chunk) * 8, 8, {biased});
        checksum += sum;
    }
    Trace trace = tb.take();
    Dddg dddg(trace);

    std::printf("custom kernel: %zu trace ops, %u iterations, "
                "checksum %.4f\n\n",
                trace.ops.size(), trace.numIterations, checksum);

    // Sweep lanes under the full system model.
    std::printf("  %5s %12s %10s %12s\n", "lanes", "latency(us)",
                "power(mW)", "EDP(pJ*s)");
    for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.memType = MemInterface::ScratchpadDma;
        cfg.lanes = lanes;
        cfg.spadPartitions = lanes;
        cfg.dma.pipelined = true;
        cfg.dma.triggeredCompute = true;
        SocResults r = runDesign(cfg, trace, dddg);
        std::printf("  %5u %12.1f %10.2f %12.4g\n", lanes,
                    r.totalUs(), r.avgPowerMw,
                    r.energyPj * r.totalSeconds());
    }
    std::printf("\nNote how performance saturates once the transfer "
                "time dominates — the\nserial-data-arrival bound from "
                "the paper's Section IV-C2.\n");
    return 0;
}
