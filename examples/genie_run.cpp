/**
 * @file
 * genie-run: the command-line simulator driver.
 *
 * Run any registered workload under any design point without writing
 * code — the gem5-Aladdin "configuration file" workflow as a CLI:
 *
 *   genie_run --list
 *   genie_run stencil-stencil2d lanes=8 partitions=8 pipelined=1
 *   genie_run spmv-crs mem=cache cache_kb=32 cache_ports=2 --stats
 *   genie_run md-knn lanes=4 --record         # key=value, scriptable
 *   genie_run stencil-stencil2d pipelined=1 triggered=1 \
 *             --trace=out.json --trace-categories=dma,flush,datapath
 *
 * Options are `key=value` pairs (see core/config_parse.hh for the
 * full list); flags: --stats dumps every component's statistics,
 * --record prints a one-line machine-readable result, --trace=FILE
 * writes a Chrome trace-event JSON timeline (open in ui.perfetto.dev),
 * --trace-categories=LIST restricts which categories are recorded.
 *
 * Metrics flags: --stats-json=FILE / --stats-csv=FILE export final
 * stats machine-readably ("-" = stdout); --sample-period=N snapshots
 * every scalar stat each N accelerator cycles, written with
 * --samples-json=FILE / --samples-csv=FILE; --profile prints a
 * host-time attribution table per event kind after the run.
 *
 * --report[=FILE] renders the Genie-Scope single-run report (critical
 * path, per-category and per-component blame, what-if speedups) after
 * the run, forcing tracing on for the run; "-" or no value = stdout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "metrics/profiler.hh"
#include "scope/report.hh"
#include "scope/span_dag.hh"
#include "workloads/workload.hh"

namespace
{

int
usage()
{
    std::printf(
        "usage: genie_run <workload> [key=value ...] [--stats] "
        "[--record]\n"
        "       genie_run --list\n\n"
        "options: mem=dma|cache lanes=N partitions=N bus=32|64\n"
        "         pipelined=0|1 triggered=0|1 cache_kb=N "
        "cache_line=N\n"
        "         cache_assoc=N cache_ports=N cache_mshrs=N "
        "prefetch=0|1\n"
        "         tlb_entries=N isolated=0|1 perfect_mem=0|1 "
        "inf_bw=0|1\n"
        "         queue=heap|ladder (or --queue=; host-speed knob, "
        "results\n"
        "           are byte-identical across strategies)\n"
        "iface (Genie-Iface):\n"
        "         mem_type=dma|acp|cache mem_type.<array>=dma|acp\n"
        "         completion=spin|interrupt irq_latency_ns=N\n"
        "         queue_depth=N invocations=N\n"
        "flags:   --stats --record --trace=FILE.json\n"
        "         --trace-categories=flush,dma,bus,cache,dram,"
        "datapath,tlb,spad,iface|all\n"
        "         --stats-json=FILE --stats-csv=FILE (\"-\" = "
        "stdout)\n"
        "         --sample-period=N --samples-json=FILE "
        "--samples-csv=FILE\n"
        "         --profile --report[=FILE]  (critical-path blame "
        "report;\n"
        "           forces tracing on; \"-\" or no value = stdout)\n"
        "fault campaign (Genie-Resilience):\n"
        "         --faults=SITE=RATE[,SITE=RATE...] with sites\n"
        "           dram_read bus_resp dma_beat tlb_walk acp_snoop "
        "irq_drop\n"
        "         --fault-seed=N --fault-max-retries=N "
        "--fault-backoff=N\n"
        "         --watchdog-interval=N  (accel cycles between "
        "progress checks)\n"
        "exit:    0 ok, 1 error, 3 watchdog declared the run "
        "stalled\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace genie;

    if (argc < 2)
        return usage();

    if (std::strcmp(argv[1], "--list") == 0) {
        for (const auto &name : workloadNames()) {
            auto w = makeWorkload(name);
            std::printf("  %-20s %s\n", name.c_str(),
                        w->description().c_str());
        }
        return 0;
    }

    std::string workloadName = argv[1];
    std::vector<std::string> options;
    bool wantStats = false;
    bool wantRecord = false;
    bool wantProfile = false;
    bool wantReport = false;
    std::string reportPath = "-";
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0)
            wantStats = true;
        else if (std::strcmp(argv[i], "--record") == 0)
            wantRecord = true;
        else if (std::strcmp(argv[i], "--profile") == 0)
            wantProfile = true;
        else if (std::strcmp(argv[i], "--report") == 0)
            wantReport = true;
        else if (std::strncmp(argv[i], "--report=", 9) == 0) {
            wantReport = true;
            reportPath = argv[i] + 9;
        }
        else if (std::strncmp(argv[i], "--queue=", 8) == 0)
            options.emplace_back(std::string("queue=") +
                                 (argv[i] + 8));
        else if (std::strncmp(argv[i], "--trace=", 8) == 0)
            options.emplace_back(std::string("trace_out=") +
                                 (argv[i] + 8));
        else if (std::strncmp(argv[i], "--trace-categories=", 19) == 0)
            options.emplace_back(std::string("trace_categories=") +
                                 (argv[i] + 19));
        else if (std::strncmp(argv[i], "--stats-json=", 13) == 0)
            options.emplace_back(std::string("stats_json=") +
                                 (argv[i] + 13));
        else if (std::strncmp(argv[i], "--stats-csv=", 12) == 0)
            options.emplace_back(std::string("stats_csv=") +
                                 (argv[i] + 12));
        else if (std::strncmp(argv[i], "--sample-period=", 16) == 0)
            options.emplace_back(std::string("sample_period=") +
                                 (argv[i] + 16));
        else if (std::strncmp(argv[i], "--samples-json=", 15) == 0)
            options.emplace_back(std::string("samples_json=") +
                                 (argv[i] + 15));
        else if (std::strncmp(argv[i], "--samples-csv=", 14) == 0)
            options.emplace_back(std::string("samples_csv=") +
                                 (argv[i] + 14));
        else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
            // Comma list of site=rate pairs, e.g.
            //   --faults=dram_read=0.001,dma_beat=0.01
            // Each expands to the matching fault_<site>= option, so
            // the parser does all the validation.
            std::string list = argv[i] + 9;
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string item = list.substr(pos, comma - pos);
                if (!item.empty())
                    options.emplace_back("fault_" + item);
                pos = comma + 1;
            }
        } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0)
            options.emplace_back(std::string("fault_seed=") +
                                 (argv[i] + 13));
        else if (std::strncmp(argv[i], "--fault-max-retries=", 20) ==
                 0)
            options.emplace_back(std::string("fault_max_retries=") +
                                 (argv[i] + 20));
        else if (std::strncmp(argv[i], "--fault-backoff=", 16) == 0)
            options.emplace_back(std::string("fault_backoff=") +
                                 (argv[i] + 16));
        else if (std::strncmp(argv[i], "--watchdog-interval=", 20) ==
                 0)
            options.emplace_back(std::string("watchdog_interval=") +
                                 (argv[i] + 20));
        else if (std::strncmp(argv[i], "--", 2) == 0)
            return usage();
        else
            options.emplace_back(argv[i]);
    }

    try {
        auto workload = makeWorkload(workloadName);
        auto out = workload->build();
        Dddg dddg(out.trace);
        SocConfig config = parseConfig(options);
        // The report needs spans and flows; tracing is passive, so
        // forcing it on changes no simulated result (test_scope.cc).
        if (wantReport)
            config.tracing.enabled = true;

        Soc soc(config, out.trace, dddg);
        HostProfiler profiler;
        if (wantProfile)
            soc.eventQueue().setProfiler(&profiler);
        SocResults results = soc.run();

        if (wantRecord) {
            printRecord(std::cout, config, results);
        } else {
            std::printf("workload: %s (%zu trace ops)\n",
                        workloadName.c_str(), out.trace.ops.size());
            printSummary(std::cout, config, results);
        }
        if (wantStats) {
            std::printf("\n--- component statistics ---\n");
            dumpAllStats(std::cout, soc);
        }
        if (wantProfile) {
            std::printf("\n--- host profile ---\n");
            profiler.report(std::cout);
        }
        if (wantReport) {
            SpanDag dag = buildSpanDag(*soc.tracer());
            BlameReport blame = genie::blame(dag);
            RunReportInput input;
            input.title = workloadName;
            input.configLine = config.describe();
            input.results = &results;
            input.blame = &blame;
            input.dag = &dag;
            std::string report = renderRunReport(input);
            if (reportPath == "-") {
                std::printf("\n");
                std::fwrite(report.data(), 1, report.size(), stdout);
            } else {
                std::ofstream os(reportPath);
                if (!os)
                    fatal("cannot write %s", reportPath.c_str());
                os << report;
                std::printf("report: %s\n", reportPath.c_str());
            }
        }
        if (!config.tracing.outPath.empty()) {
            std::printf("trace: %s (%zu events; open in "
                        "ui.perfetto.dev or chrome://tracing)\n",
                        config.tracing.outPath.c_str(),
                        soc.tracer()->numEvents());
        }
        if (results.stalled) {
            std::fprintf(stderr,
                         "warning: watchdog declared the run stalled; "
                         "results above are partial\n");
            return 3;
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
