/**
 * @file
 * Quickstart: simulate one accelerator design end to end.
 *
 * This example walks through the whole public API in ~50 lines:
 *   1. pick a workload (a MachSuite-style kernel) and build its
 *      dynamic trace + DDDG,
 *   2. describe a design point (memory interface, lanes, partitions,
 *      DMA optimizations, bus width),
 *   3. run the full SoC simulation (flush -> DMA -> compute -> DMA
 *      back -> CPU notices completion),
 *   4. read out runtime, the flush/DMA/compute breakdown, energy,
 *      power, and EDP.
 *
 * Build: part of the default CMake build; run ./quickstart [workload].
 */

#include <cstdio>
#include <string>

#include "core/soc.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace genie;

    // 1. Prepare a workload: executes the kernel functionally while
    //    recording its dynamic trace, then builds the dependence graph.
    std::string name = argc > 1 ? argv[1] : "stencil-stencil2d";
    WorkloadPtr workload = makeWorkload(name);
    std::printf("workload: %s\n  %s\n", workload->name().c_str(),
                workload->description().c_str());

    WorkloadOutput out = workload->build();
    Dddg dddg(out.trace);
    std::printf("  trace: %zu ops, %u iterations, %zu arrays, "
                "%llu B in / %llu B out\n",
                out.trace.ops.size(), out.trace.numIterations,
                out.trace.arrays.size(),
                (unsigned long long)out.trace.totalInputBytes(),
                (unsigned long long)out.trace.totalOutputBytes());

    // 2. Describe a design point (see core/soc_config.hh for every
    //    knob -- this is the paper's Figure 3 parameter table).
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.busWidthBits = 32;
    cfg.dma.pipelined = true;        // overlap flush with DMA
    cfg.dma.triggeredCompute = true; // full/empty ready bits

    // 3. Run the full offload flow.
    SocResults r = runDesign(cfg, out.trace, dddg);

    // 4. Results.
    std::printf("\ndesign: %s\n", cfg.describe().c_str());
    std::printf("  end-to-end latency : %.1f us\n", r.totalUs());
    std::printf("  accelerator cycles : %llu\n",
                (unsigned long long)r.accelCycles);
    std::printf("  breakdown          : flush-only %.1f us, DMA %.1f "
                "us,\n                       compute+DMA %.1f us, "
                "compute-only %.1f us\n",
                r.breakdown.flushOnly * 1e-6,
                r.breakdown.dmaFlush * 1e-6,
                r.breakdown.computeDma * 1e-6,
                r.breakdown.computeOnly * 1e-6);
    std::printf("  energy             : %.2f nJ (dynamic %.2f, "
                "leakage %.2f)\n",
                r.energyPj * 1e-3, r.dynamicPj * 1e-3,
                r.leakagePj * 1e-3);
    std::printf("  average power      : %.2f mW\n", r.avgPowerMw);
    std::printf("  EDP                : %.4g pJ*s\n",
                r.energyPj * r.totalSeconds());
    return 0;
}
