/**
 * @file
 * Example: a small co-design exploration for one kernel.
 *
 * Shows the DSE API: enumerate a design space, simulate every point
 * through the SweepEngine, extract the Pareto frontier and the EDP
 * optimum, and quantify how badly an accelerator designed in
 * isolation behaves once real system effects (cache flushes, DMA, bus
 * contention) are applied — the paper's central experiment, on any
 * workload you pick.
 *
 *   codesign_explorer [workload] [--threads=N] [--resume=FILE]
 *
 * Both sweeps share one ResultCache, and --resume=FILE adds a
 * checkpoint journal: an interrupted exploration re-run with the same
 * command line loads every already-simulated point from FILE and
 * continues where it stopped (see dse/sweep_engine.hh).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace genie;

    std::string name = "md-knn";
    SweepOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            options.threads = static_cast<unsigned>(
                std::strtoul(argv[i] + 10, nullptr, 10));
        } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
            options.resumePath = argv[i] + 9;
            options.journalPath = options.resumePath;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: codesign_explorer [workload] "
                         "[--threads=N] [--resume=FILE]\n");
            return 2;
        } else {
            name = argv[i];
        }
    }

    auto out = makeWorkload(name)->build();
    Dddg dddg(out.trace);

    std::printf("co-design exploration for %s\n\n", name.c_str());

    // Sweep the isolated space (compute phase only) and the
    // co-designed DMA space (full system, all DMA optimizations).
    // One cache and one journal serve both sweeps: identical points
    // dedupe, and a resumed exploration skips everything already
    // journaled.
    ResultCache cache;
    options.cache = &cache;
    SocConfig base;
    SweepEngine engine(std::move(options));
    auto isolated =
        engine.run(DesignSpace::isolated(base), out.trace, dddg);
    auto system = engine.run(DesignSpace::dma(base), out.trace, dddg);
    if (cache.hits() > 0) {
        std::printf("(%llu of %zu points served from the result "
                    "cache)\n\n",
                    (unsigned long long)cache.hits(),
                    isolated.size() + system.size());
    }

    // Pareto frontier of the co-designed space.
    std::printf("co-designed Pareto frontier:\n");
    for (std::size_t i : paretoFrontier(system)) {
        const auto &p = system[i];
        std::printf("  %10.1f us %8.2f mW   %s\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str());
    }

    // Compare the isolated and co-designed EDP optima.
    auto cmp = compareCodesign(
        isolated, system, [&](const SocConfig &iso) {
            SocConfig full = iso;
            full.isolated = false;
            full.dma.pipelined = true;
            full.dma.triggeredCompute = true;
            DesignPoint p;
            p.config = full;
            p.results = runDesign(full, out.trace, dddg);
            return p;
        });

    std::printf("\nisolated optimum:    %s\n",
                cmp.isolatedOptimal.config.describe().c_str());
    std::printf("  looked like: %.1f us at %.2f mW\n",
                cmp.isolatedOptimal.results.totalUs(),
                cmp.isolatedOptimal.results.avgPowerMw);
    std::printf("  actually is: %.1f us at %.2f mW once flush/DMA "
                "are accounted\n",
                cmp.isolatedUnderSystem.results.totalUs(),
                cmp.isolatedUnderSystem.results.avgPowerMw);
    std::printf("co-designed optimum: %s\n",
                cmp.codesignedOptimal.config.describe().c_str());
    std::printf("  %.1f us at %.2f mW\n",
                cmp.codesignedOptimal.results.totalUs(),
                cmp.codesignedOptimal.results.avgPowerMw);
    std::printf("\nEDP improvement from co-design: %.2fx\n",
                cmp.edpImprovement);

    // Kiviat-style normalized parameters (Figure 9 axes).
    KiviatAxes k =
        kiviatAxes(cmp.codesignedOptimal, cmp.isolatedOptimal);
    std::printf("co-designed vs isolated provisioning: lanes %.2f, "
                "sram %.2f, bandwidth %.2f\n",
                k.lanes, k.sramSize, k.memBandwidth);
    return 0;
}
