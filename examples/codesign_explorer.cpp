/**
 * @file
 * Example: a small co-design exploration for one kernel.
 *
 * Shows the DSE API: enumerate a design space, simulate every point,
 * extract the Pareto frontier and the EDP optimum, and quantify how
 * badly an accelerator designed in isolation behaves once real
 * system effects (cache flushes, DMA, bus contention) are applied —
 * the paper's central experiment, on any workload you pick.
 */

#include <cstdio>
#include <string>

#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace genie;

    std::string name = argc > 1 ? argv[1] : "md-knn";
    auto out = makeWorkload(name)->build();
    Dddg dddg(out.trace);

    std::printf("co-design exploration for %s\n\n", name.c_str());

    // Sweep the isolated space (compute phase only) and the
    // co-designed DMA space (full system, all DMA optimizations).
    SocConfig base;
    auto isolated =
        runSweep(DesignSpace::isolated(base), out.trace, dddg);
    auto system = runSweep(DesignSpace::dma(base), out.trace, dddg);

    // Pareto frontier of the co-designed space.
    std::printf("co-designed Pareto frontier:\n");
    for (std::size_t i : paretoFrontier(system)) {
        const auto &p = system[i];
        std::printf("  %10.1f us %8.2f mW   %s\n",
                    p.results.totalUs(), p.results.avgPowerMw,
                    p.config.describe().c_str());
    }

    // Compare the isolated and co-designed EDP optima.
    auto cmp = compareCodesign(
        isolated, system, [&](const SocConfig &iso) {
            SocConfig full = iso;
            full.isolated = false;
            full.dma.pipelined = true;
            full.dma.triggeredCompute = true;
            DesignPoint p;
            p.config = full;
            p.results = runDesign(full, out.trace, dddg);
            return p;
        });

    std::printf("\nisolated optimum:    %s\n",
                cmp.isolatedOptimal.config.describe().c_str());
    std::printf("  looked like: %.1f us at %.2f mW\n",
                cmp.isolatedOptimal.results.totalUs(),
                cmp.isolatedOptimal.results.avgPowerMw);
    std::printf("  actually is: %.1f us at %.2f mW once flush/DMA "
                "are accounted\n",
                cmp.isolatedUnderSystem.results.totalUs(),
                cmp.isolatedUnderSystem.results.avgPowerMw);
    std::printf("co-designed optimum: %s\n",
                cmp.codesignedOptimal.config.describe().c_str());
    std::printf("  %.1f us at %.2f mW\n",
                cmp.codesignedOptimal.results.totalUs(),
                cmp.codesignedOptimal.results.avgPowerMw);
    std::printf("\nEDP improvement from co-design: %.2fx\n",
                cmp.edpImprovement);

    // Kiviat-style normalized parameters (Figure 9 axes).
    KiviatAxes k =
        kiviatAxes(cmp.codesignedOptimal, cmp.isolatedOptimal);
    std::printf("co-designed vs isolated provisioning: lanes %.2f, "
                "sram %.2f, bandwidth %.2f\n",
                k.lanes, k.sramSize, k.memBandwidth);
    return 0;
}
