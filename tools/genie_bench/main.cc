/**
 * @file
 * genie_bench: the self-profiling benchmark harness.
 *
 * Runs a fixed set of figure-style benchmark scenarios (workload +
 * design point), times each one on the host, counts simulated events
 * via the queue's retired-event counter (the timed run carries no
 * profiler or tracer), and writes BENCH_genie.json:
 *
 *   genie_bench --quick                 # CI subset (3 scenarios)
 *   genie_bench --out=BENCH_genie.json  # full set
 *   genie_bench --queue=heap            # pin the queue strategy
 *   genie_bench --quick --baseline=bench/BENCH_baseline.json \
 *               --max-regress=20        # fail if MEPS drops >20%
 *
 * The JSON (schema "genie-bench-1") records, per scenario: wall-clock
 * milliseconds, events executed, MEPS (millions of simulated events
 * retired per host second), and the headline simulation metrics
 * (latency, accelerator cycles, energy, EDP, bus utilization). The
 * totals block carries the aggregate MEPS that the CI regression gate
 * tracks against the checked-in baseline, and the queues block holds
 * one MEPS entry per event-queue strategy (Genie-Turbo) — same
 * scenarios, same event counts, host time only differing — so the
 * strategy comparison ships in every bench artifact.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "core/soc.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "metrics/export.hh"
#include "scope/report.hh"
#include "scope/span_dag.hh"
#include "workloads/workload.hh"

namespace
{

using namespace genie;

struct Scenario
{
    const char *name;     ///< stable key in BENCH_genie.json
    const char *workload; ///< workload registry name
    const char *options;  ///< space-separated key=value config
    bool quick;           ///< part of the --quick CI subset
};

// The paper's evaluation axes: DMA baseline, the optimized DMA flow
// (Figure 6), and the cache interface (Figure 7), plus a wider spread
// of kernels for the full run.
const Scenario scenarios[] = {
    {"stencil2d-dma-opt", "stencil-stencil2d",
     "mem=dma lanes=8 partitions=8 pipelined=1 triggered=1", true},
    {"gemm-dma-baseline", "gemm-ncubed",
     "mem=dma lanes=4 partitions=4", true},
    {"md-knn-cache", "md-knn",
     "mem=cache lanes=4 cache_kb=16 cache_ports=2", true},
    {"stencil3d-dma-opt", "stencil-stencil3d",
     "mem=dma lanes=8 partitions=8 pipelined=1 triggered=1", false},
    {"spmv-crs-cache", "spmv-crs",
     "mem=cache lanes=4 cache_kb=32 cache_ports=2", false},
    {"fft-dma-pipelined", "fft-transpose",
     "mem=dma lanes=8 partitions=8 pipelined=1", false},
};

/** Critical-path attribution of the scenario (from a separate traced
 * run, so the timed run stays tracer-free). All simulated-time
 * quantities: deterministic across machines. */
struct BenchBlame
{
    std::string topCategory;  ///< largest on-path category ("-" none)
    double topShare = 0.0;    ///< its share of covered ticks
    double coverage = 0.0;    ///< covered / end tick
};

struct BenchResult
{
    const Scenario *scenario = nullptr;
    double wallMs = 0.0;
    std::uint64_t events = 0;
    double meps = 0.0;
    SocResults sim;
    BenchBlame blame;
};

std::vector<std::string>
splitOptions(const char *options)
{
    std::vector<std::string> out;
    std::istringstream iss(options);
    std::string tok;
    while (iss >> tok)
        out.push_back(tok);
    return out;
}

BenchResult
runScenario(const Scenario &s, QueueStrategy strat)
{
    auto workload = makeWorkload(s.workload);
    auto out = workload->build();
    Dddg dddg(out.trace);
    SocConfig config = parseConfig(splitOptions(s.options));
    config.queue = strat;

    // The timed run is bare: no profiler, no tracer. The queue's own
    // retired-event counter supplies the event count, so the MEPS
    // number measures the kernel itself, not the observability hooks.
    Soc soc(config, out.trace, dddg);

    auto t0 = std::chrono::steady_clock::now();
    SocResults results = soc.run();
    auto t1 = std::chrono::steady_clock::now();

    BenchResult r;
    r.scenario = &s;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.events = soc.eventQueue().numExecuted();
    r.meps = r.wallMs > 0
                 ? static_cast<double>(r.events) / (r.wallMs * 1e3)
                 : 0.0;
    r.sim = results;

    // Blame from a second, traced run: attaching the tracer to the
    // timed run would tax the MEPS numbers the harness exists to
    // track. Genie-Trace passivity keeps both runs byte-identical in
    // simulated results.
    SocConfig tracedConfig = config;
    tracedConfig.tracing.enabled = true;
    tracedConfig.tracing.categories = allTraceCategories;
    Soc tracedSoc(tracedConfig, out.trace, dddg);
    tracedSoc.run();
    BlameReport b = blameRun(*tracedSoc.tracer());
    r.blame.topCategory = topBlameCategory(b);
    r.blame.coverage = b.coverage;
    Tick topTicks = 0;
    for (const auto &e : b.byCategory)
        topTicks = std::max(topTicks, e.onPathTicks);
    r.blame.topShare =
        b.coveredTicks > 0 ? static_cast<double>(topTicks) /
                                 static_cast<double>(b.coveredTicks)
                           : 0.0;
    return r;
}

/** Aggregate MEPS for one event-queue strategy across the scenario
 * subset. Event counts are deterministic and identical across
 * strategies; only the host time (and so MEPS) differs. */
struct QueueAxis
{
    QueueStrategy strategy = QueueStrategy::Ladder;
    double wallMs = 0.0;
    std::uint64_t events = 0;
    double meps = 0.0;
};

/** Bare timed run (no blame pass) for the queue-strategy axis. */
void
timedRun(const Scenario &s, QueueStrategy strat, QueueAxis &axis)
{
    auto workload = makeWorkload(s.workload);
    auto out = workload->build();
    Dddg dddg(out.trace);
    SocConfig config = parseConfig(splitOptions(s.options));
    config.queue = strat;
    Soc soc(config, out.trace, dddg);
    auto t0 = std::chrono::steady_clock::now();
    soc.run();
    auto t1 = std::chrono::steady_clock::now();
    axis.wallMs +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    axis.events += soc.eventQueue().numExecuted();
}

/** SweepEngine throughput on a reduced Fig. 6 + Fig. 8 DMA space.
 * The two spaces overlap in their all-optimizations points, so the
 * result cache dedupes part of the second sweep — cached > 0 proves
 * the memoization path is live in the measured configuration. */
struct SweepBench
{
    std::size_t points = 0;    ///< design points swept (both spaces)
    std::size_t simulated = 0; ///< fresh simulations
    std::size_t cached = 0;    ///< served from the result cache
    double wallMs = 0.0;
    std::uint64_t events = 0;
    double meps = 0.0;
};

SweepBench
runSweepBench(QueueStrategy strat)
{
    auto workload = makeWorkload("stencil-stencil2d")->build();
    Dddg dddg(workload.trace);
    SpaceFilter filter =
        SpaceFilter::parse("lanes=1,4;partitions=1,4");
    SocConfig base;
    base.queue = strat;
    auto fig6 = filterConfigs(DesignSpace::dmaOptions(base), filter);
    auto fig8dma = filterConfigs(DesignSpace::dma(base), filter);

    ResultCache cache;
    SweepOptions options;
    options.cache = &cache;
    SweepEngine engine(std::move(options));

    SweepBench b;
    auto t0 = std::chrono::steady_clock::now();
    engine.run(fig6, workload.trace, dddg);
    b.simulated += engine.progress().done;
    b.events += engine.simulatedEvents();
    engine.run(fig8dma, workload.trace, dddg);
    auto t1 = std::chrono::steady_clock::now();
    b.simulated += engine.progress().done;
    b.events += engine.simulatedEvents();
    b.points = fig6.size() + fig8dma.size();
    b.cached = cache.hits();
    b.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    b.meps = b.wallMs > 0 ? static_cast<double>(b.events) /
                                (b.wallMs * 1e3)
                          : 0.0;
    return b;
}

std::string
benchJson(const std::vector<BenchResult> &results,
          const SweepBench &sweep, bool quick,
          const std::vector<QueueAxis> &queues)
{
    std::string j = "{\n  \"schema\": \"genie-bench-1\",\n";
    j += format("  \"quick\": %s,\n", quick ? "true" : "false");
    j += "  \"benches\": [\n";
    double totalWallMs = 0.0;
    std::uint64_t totalEvents = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        totalWallMs += r.wallMs;
        totalEvents += r.events;
        j += "    {";
        j += format("\"name\": \"%s\", ", r.scenario->name);
        j += format("\"workload\": \"%s\", ", r.scenario->workload);
        j += format("\"config\": \"%s\",\n      ",
                    r.scenario->options);
        j += format("\"wall_ms\": %.3f, ", r.wallMs);
        j += format("\"events\": %llu, ",
                    (unsigned long long)r.events);
        j += format("\"meps\": %.3f,\n      ", r.meps);
        j += "\"sim\": {";
        j += format("\"total_us\": %.3f, ", r.sim.totalUs());
        j += format("\"accel_cycles\": %llu, ",
                    (unsigned long long)r.sim.accelCycles);
        j += format("\"energy_pj\": %.1f, ", r.sim.energyPj);
        j += format("\"edp\": %s, ",
                    formatStatNumber(r.sim.edp).c_str());
        j += format("\"bus_utilization\": %.4f, ",
                    r.sim.busUtilization);
        j += format("\"dma_bytes\": %llu, ",
                    (unsigned long long)r.sim.dmaBytes);
        j += format("\"cache_miss_rate\": %.4f", r.sim.cacheMissRate);
        j += "},\n      ";
        j += format("\"blame\": {\"top_category\": \"%s\", "
                    "\"top_share\": %.4f, \"coverage\": %.4f}}",
                    r.blame.topCategory.c_str(), r.blame.topShare,
                    r.blame.coverage);
        j += i + 1 < results.size() ? ",\n" : "\n";
    }
    j += "  ],\n";
    j += format("  \"sweep\": {\"workload\": \"stencil-stencil2d\", "
                "\"points\": %zu, \"simulated\": %zu, "
                "\"cached\": %zu,\n    \"wall_ms\": %.3f, "
                "\"events\": %llu, \"meps\": %.3f},\n",
                sweep.points, sweep.simulated, sweep.cached,
                sweep.wallMs, (unsigned long long)sweep.events,
                sweep.meps);
    // One entry per queue strategy over the same scenario subset.
    // Identical event counts across entries witness that the strategy
    // is a host-speed knob only (tests/test_queue_diff.cc proves the
    // stronger byte-identity claim); the wall_ms/meps spread is the
    // measured speedup.
    j += "  \"queues\": [\n";
    for (std::size_t i = 0; i < queues.size(); ++i) {
        const QueueAxis &q = queues[i];
        j += format("    {\"strategy\": \"%s\", \"wall_ms\": %.3f, "
                    "\"events\": %llu, \"meps\": %.3f}",
                    queueStrategyName(q.strategy), q.wallMs,
                    (unsigned long long)q.events, q.meps);
        j += i + 1 < queues.size() ? ",\n" : "\n";
    }
    j += "  ],\n";
    double totalMeps =
        totalWallMs > 0
            ? static_cast<double>(totalEvents) / (totalWallMs * 1e3)
            : 0.0;
    j += format("  \"totals\": {\"wall_ms\": %.3f, \"events\": %llu, "
                "\"meps\": %.3f}\n",
                totalWallMs, (unsigned long long)totalEvents,
                totalMeps);
    j += "}\n";
    return j;
}

/** Extract the totals-block MEPS from a BENCH_genie.json file.
 * Returns a negative value when the file or field is missing. */
double
baselineTotalMeps(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1.0;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    std::size_t totals = text.find("\"totals\"");
    if (totals == std::string::npos)
        return -1.0;
    std::size_t meps = text.find("\"meps\":", totals);
    if (meps == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + meps + 7, nullptr);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: genie_bench [--quick] [--out=FILE] "
                 "[--queue=heap|ladder] "
                 "[--baseline=FILE] [--max-regress=PCT]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string outPath = "BENCH_genie.json";
    std::string baselinePath;
    double maxRegressPct = 20.0;
    QueueStrategy strat = SocConfig{}.queue;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            outPath = argv[i] + 6;
        else if (std::strncmp(argv[i], "--queue=", 8) == 0)
            strat = parseQueueStrategy(argv[i] + 8);
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baselinePath = argv[i] + 11;
        else if (std::strncmp(argv[i], "--max-regress=", 14) == 0)
            maxRegressPct = std::strtod(argv[i] + 14, nullptr);
        else
            return usage();
    }

    std::vector<BenchResult> results;
    SweepBench sweep;
    std::vector<QueueAxis> queues;
    try {
        for (const Scenario &s : scenarios) {
            if (quick && !s.quick)
                continue;
            std::printf("bench %-20s %-18s %s\n", s.name, s.workload,
                        s.options);
            BenchResult r = runScenario(s, strat);
            std::printf("  wall %8.2f ms, %8llu events, %7.3f MEPS, "
                        "sim %10.2f us\n",
                        r.wallMs, (unsigned long long)r.events,
                        r.meps, r.sim.totalUs());
            std::printf("  blame: %s (%.1f%% of path, coverage "
                        "%.1f%%)\n",
                        r.blame.topCategory.c_str(),
                        r.blame.topShare * 100.0,
                        r.blame.coverage * 100.0);
            results.push_back(r);
        }
        std::printf("bench %-20s reduced fig6+fig8 DMA spaces\n",
                    "sweep-engine");
        sweep = runSweepBench(strat);
        std::printf("  wall %8.2f ms, %8llu events, %7.3f MEPS, "
                    "%zu points (%zu cached)\n",
                    sweep.wallMs, (unsigned long long)sweep.events,
                    sweep.meps, sweep.points, sweep.cached);

        // The queue-strategy axis: the strategy the main loop ran
        // with is aggregated from those timings; the other strategy
        // gets one bare timed pass over the same scenario subset.
        QueueAxis ran;
        ran.strategy = strat;
        for (const BenchResult &r : results) {
            ran.wallMs += r.wallMs;
            ran.events += r.events;
        }
        QueueAxis other;
        other.strategy = strat == QueueStrategy::Ladder
                             ? QueueStrategy::Heap
                             : QueueStrategy::Ladder;
        std::printf("bench %-20s queue strategy axis\n",
                    queueStrategyName(other.strategy));
        for (const Scenario &s : scenarios) {
            if (quick && !s.quick)
                continue;
            timedRun(s, other.strategy, other);
        }
        for (QueueAxis *q : {&ran, &other}) {
            q->meps = q->wallMs > 0
                          ? static_cast<double>(q->events) /
                                (q->wallMs * 1e3)
                          : 0.0;
        }
        // Ladder first: stable artifact layout independent of the
        // strategy the main loop happened to run with.
        queues = strat == QueueStrategy::Ladder
                     ? std::vector<QueueAxis>{ran, other}
                     : std::vector<QueueAxis>{other, ran};
        for (const QueueAxis &q : queues) {
            std::printf("  %-6s wall %8.2f ms, %8llu events, "
                        "%7.3f MEPS\n",
                        queueStrategyName(q.strategy), q.wallMs,
                        (unsigned long long)q.events, q.meps);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::string json = benchJson(results, sweep, quick, queues);
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    out << json;
    out.close();
    std::printf("wrote %s (%zu benches)\n", outPath.c_str(),
                results.size());

    if (!baselinePath.empty()) {
        double baseMeps = baselineTotalMeps(baselinePath);
        if (baseMeps <= 0) {
            std::fprintf(stderr,
                         "error: no totals.meps in baseline %s\n",
                         baselinePath.c_str());
            return 1;
        }
        double curMeps = baselineTotalMeps(outPath);
        double floor = baseMeps * (1.0 - maxRegressPct / 100.0);
        std::printf("regression gate: %.3f MEPS vs baseline %.3f "
                    "(floor %.3f)\n",
                    curMeps, baseMeps, floor);
        if (curMeps < floor) {
            std::fprintf(stderr,
                         "error: MEPS regressed more than %.0f%% "
                         "(%.3f < %.3f)\n",
                         maxRegressPct, curMeps, floor);
            return 1;
        }
    }
    return 0;
}
