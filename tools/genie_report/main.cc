/**
 * @file
 * genie_report: explain a run (or a sweep) in one markdown document.
 *
 * Single-run mode simulates one design point with tracing and flow
 * links enabled, builds the Genie-Scope span DAG, and renders the
 * critical-path attribution report:
 *
 *   genie_report stencil-stencil2d lanes=4 partitions=4 pipelined=1
 *   genie_report md-knn mem=cache cache_kb=32 --out=report.md
 *
 * Sweep mode runs a design space under the SweepEngine (untraced —
 * full speed), then re-simulates a blame subset with tracing to
 * annotate the cross-run table:
 *
 *   genie_report stencil-stencil2d --sweep --space=fig6 \
 *                --threads=8 --out=sweep-report.md
 *
 * When the space exceeds --blame-points (default 64), only the
 * Pareto-frontier points are re-run for blame; the report says so.
 *
 * Reports are deterministic: byte-identical across repeated runs,
 * machines, and --threads values. Host-derived numbers (wall time,
 * MEPS) never appear. "-" or no --out writes to stdout.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "core/soc.hh"
#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "scope/report.hh"
#include "scope/span_dag.hh"
#include "workloads/workload.hh"

namespace
{

using namespace genie;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: genie_report <workload> [key=value ...] "
        "[--out=FILE]\n"
        "       genie_report <workload> --sweep "
        "[--space=isolated|dma|fig6|cache|fig8|acp|iface]\n"
        "                    [--filter=SPEC] [--threads=N] "
        "[--blame-points=N]\n"
        "                    [key=value ...] [--out=FILE]\n"
        "       genie_report --list\n"
        "exit:  0 ok, 1 error, 2 usage\n");
    return 2;
}

std::vector<SocConfig>
enumerateSpace(const std::string &space, const SocConfig &base)
{
    if (space == "isolated")
        return DesignSpace::isolated(base);
    if (space == "dma")
        return DesignSpace::dma(base);
    if (space == "fig6" || space == "dma-options")
        return DesignSpace::dmaOptions(base);
    if (space == "cache")
        return DesignSpace::cache(base);
    if (space == "fig8") {
        auto configs = DesignSpace::dma(base);
        auto cacheConfigs = DesignSpace::cache(base);
        configs.insert(configs.end(), cacheConfigs.begin(),
                       cacheConfigs.end());
        return configs;
    }
    if (space == "acp")
        return DesignSpace::acp(base);
    if (space == "iface")
        return DesignSpace::iface(base);
    fatal("unknown space '%s' "
          "(isolated|dma|fig6|cache|fig8|acp|iface)",
          space.c_str());
}

/** Re-simulate @p config traced (in-memory) and blame the run. */
BlameReport
blamePoint(SocConfig config, const Trace &trace, const Dddg &dddg)
{
    config.tracing.enabled = true;
    config.tracing.categories = allTraceCategories;
    config.tracing.outPath.clear();
    Soc soc(config, trace, dddg);
    soc.run();
    return blameRun(*soc.tracer());
}

int
emit(const std::string &outPath, const std::string &text)
{
    if (outPath.empty() || outPath == "-") {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    std::ofstream out(outPath, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     outPath.c_str());
        return 1;
    }
    out << text;
    std::printf("wrote %s (%zu bytes)\n", outPath.c_str(),
                text.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string space = "fig6";
    std::string filterSpec;
    std::string outPath;
    bool sweepMode = false;
    unsigned threads = 0;
    std::size_t blamePoints = 64;
    std::vector<std::string> baseOptions;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            for (const auto &name : workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (std::strcmp(arg, "--sweep") == 0) {
            sweepMode = true;
        } else if (std::strncmp(arg, "--space=", 8) == 0) {
            space = arg + 8;
        } else if (std::strncmp(arg, "--filter=", 9) == 0) {
            filterSpec = arg + 9;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--blame-points=", 15) == 0) {
            blamePoints = std::strtoul(arg + 15, nullptr, 10);
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            outPath = arg + 6;
        } else if (arg[0] == '-') {
            return usage();
        } else if (workload.empty()) {
            workload = arg;
        } else {
            baseOptions.push_back(arg);
        }
    }
    if (workload.empty())
        return usage();

    try {
        auto built = makeWorkload(workload)->build();
        Dddg dddg(built.trace);
        SocConfig base = parseConfig(baseOptions);

        if (!sweepMode) {
            // One traced run serves both the results block and the
            // blame: Genie-Trace is passive, so traced results are
            // byte-identical to what an untraced run would report.
            SocConfig cfg = base;
            cfg.tracing.enabled = true;
            cfg.tracing.categories = allTraceCategories;
            cfg.tracing.outPath.clear();
            Soc soc(cfg, built.trace, dddg);
            SocResults results = soc.run();
            SpanDag dag = buildSpanDag(*soc.tracer());
            BlameReport b = blame(dag);

            RunReportInput in;
            in.title = workload;
            in.configLine = base.describe();
            in.results = &results;
            in.blame = &b;
            in.dag = &dag;
            return emit(outPath, renderRunReport(in));
        }

        auto configs = enumerateSpace(space, base);
        if (!filterSpec.empty()) {
            configs = filterConfigs(configs,
                                    SpaceFilter::parse(filterSpec));
        }
        if (configs.empty())
            fatal("the filter rejected every design point");

        auto points =
            runSweep(configs, built.trace, dddg, threads);

        // Blame every point when the space is small; otherwise only
        // the Pareto frontier (the designs anyone asks "why?" about).
        std::vector<std::size_t> toBlame;
        std::string note;
        if (points.size() <= blamePoints) {
            for (std::size_t i = 0; i < points.size(); ++i)
                toBlame.push_back(i);
            note = format("blame: all %zu points re-run traced",
                          points.size());
        } else {
            toBlame = paretoFrontier(points);
            note = format("blame: Pareto frontier only (%zu of %zu "
                          "points; raise --blame-points to widen)",
                          toBlame.size(), points.size());
        }
        std::vector<IndexedBlame> blames;
        for (std::size_t i : toBlame) {
            blames.emplace_back(
                i, blamePoint(points[i].config, built.trace, dddg));
        }

        SweepReportInput in;
        in.title = format("%s (%s)", workload.c_str(),
                          space.c_str());
        in.points = &points;
        in.blames = std::move(blames);
        in.blameScopeNote = note;
        return emit(outPath, renderSweepReport(in));
    } catch (const SweepError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
