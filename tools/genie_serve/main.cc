/**
 * @file
 * genie_serve: the crash-tolerant simulation service daemon.
 *
 *   genie_serve --socket=/tmp/genie.sock --state=/var/lib/genie \
 *               [--workers=N] [--max-queue=N] [--max-attempts=N] \
 *               [--timeout-ms=N] [--term-grace-ms=N] \
 *               [--backoff-ms=N] [--store-budget=BYTES]
 *
 * The daemon accepts `genie-serve-1` submissions over the Unix-domain
 * socket (see serve/protocol.hh and the genie_submit client) and runs
 * each job in a forked worker subprocess — this same binary,
 * re-executed as `genie_serve --worker ...`. Worker crashes are
 * retried with exponential backoff; jobs that keep crashing or
 * timing out are quarantined; submissions beyond the queue bound are
 * refused with "busy". Accepted jobs are spooled durably and results
 * are written through the content-addressed ResultStore under the
 * state directory, so the daemon itself can be SIGKILLed and
 * restarted without losing accepted work — unfinished jobs re-run,
 * their completed points replay as store hits, and the output is
 * byte-identical to an uninterrupted run.
 *
 * SIGTERM/SIGINT drain gracefully: running jobs finish (or
 * checkpoint), then the daemon exits 0.
 *
 * exit: 0 clean drain, 1 startup/runtime error, 2 usage.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>

#include "serve/server.hh"
#include "serve/worker.hh"
#include "sim/logging.hh"

namespace
{

using namespace genie;

/** Set by SIGTERM/SIGINT. Daemon: drain and exit. Worker: stop
 * dealing points, checkpoint, exit 6. */
std::atomic<bool> gStopRequested{false};

void
onStopSignal(int)
{
    gStopRequested.store(true);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: genie_serve --socket=PATH --state=DIR\n"
        "         [--workers=N] [--max-queue=N] [--max-attempts=N]\n"
        "         [--timeout-ms=N] [--term-grace-ms=N] "
        "[--backoff-ms=N]\n"
        "         [--store-budget=BYTES] [--worker-command=CMD]\n"
        "       genie_serve --worker --job=FILE --out=FILE "
        "--err=FILE\n"
        "         [--store=DIR] [--store-budget=BYTES]\n"
        "exit:  0 clean drain, 1 error, 2 usage\n");
    return 2;
}

/** The path workers are exec'd from: /proc/self/exe when available
 * (robust against PATH lookups and cwd changes), else argv[0]. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Daemons log to files; a fully buffered stdout would hold
    // status lines (job recovery, drain progress) invisible until
    // exit. Line-buffer it so operators see them as they happen.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);

    bool workerMode = false;
    ServeWorkerArgs workerArgs;
    ServeOptions opts;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--worker") == 0) {
            workerMode = true;
        } else if (std::strncmp(arg, "--job=", 6) == 0) {
            workerArgs.jobPath = arg + 6;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            workerArgs.outPath = arg + 6;
        } else if (std::strncmp(arg, "--err=", 6) == 0) {
            workerArgs.errPath = arg + 6;
        } else if (std::strncmp(arg, "--store=", 8) == 0) {
            workerArgs.storeDir = arg + 8;
        } else if (std::strncmp(arg, "--store-budget=", 15) == 0) {
            workerArgs.storeBudgetBytes =
                std::strtoull(arg + 15, nullptr, 10);
            opts.storeBudgetBytes = workerArgs.storeBudgetBytes;
        } else if (std::strncmp(arg, "--socket=", 9) == 0) {
            opts.socketPath = arg + 9;
        } else if (std::strncmp(arg, "--state=", 8) == 0) {
            opts.stateDir = arg + 8;
        } else if (std::strncmp(arg, "--workers=", 10) == 0) {
            opts.workers = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--max-queue=", 12) == 0) {
            opts.maxQueue = std::strtoul(arg + 12, nullptr, 10);
        } else if (std::strncmp(arg, "--max-attempts=", 15) == 0) {
            opts.maxAttempts = static_cast<unsigned>(
                std::strtoul(arg + 15, nullptr, 10));
        } else if (std::strncmp(arg, "--timeout-ms=", 13) == 0) {
            opts.timeoutMs = std::strtoull(arg + 13, nullptr, 10);
        } else if (std::strncmp(arg, "--term-grace-ms=", 16) == 0) {
            opts.termGraceMs = std::strtoull(arg + 16, nullptr, 10);
        } else if (std::strncmp(arg, "--backoff-ms=", 13) == 0) {
            opts.backoffMs = std::strtoull(arg + 13, nullptr, 10);
        } else if (std::strncmp(arg, "--worker-command=", 17) == 0) {
            opts.workerCommand = arg + 17;
        } else {
            return usage();
        }
    }

    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    if (workerMode) {
        if (workerArgs.jobPath.empty() || workerArgs.outPath.empty())
            return usage();
        workerArgs.stopRequested = &gStopRequested;
        return runServeWorker(workerArgs);
    }

    if (opts.socketPath.empty() || opts.stateDir.empty())
        return usage();
    if (opts.workers == 0)
        opts.workers = 1;
    opts.selfExe = selfExePath(argv[0]);
    opts.drainFlag = &gStopRequested;

    try {
        Server server(std::move(opts));
        server.start();
        inform("genie_serve: listening");
        int rc = server.run();
        inform("genie_serve: drained cleanly");
        return rc;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
