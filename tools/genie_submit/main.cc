/**
 * @file
 * genie_submit: the genie_serve client.
 *
 *   genie_submit --socket=PATH submit <workload> [key=value ...]
 *                [--space=S] [--filter=F] [--threads=N]
 *                [--wait] [--out=FILE]
 *   genie_submit --socket=PATH status  <job>
 *   genie_submit --socket=PATH wait    <job> [--out=FILE]
 *   genie_submit --socket=PATH results <job> [--out=FILE]
 *   genie_submit --socket=PATH stats | ping | drain
 *
 * Speaks the `genie-serve-1` line protocol. `submit --wait` blocks
 * until the job is terminal; with `--out` it then fetches the
 * results document ("-" = stdout) — the one-command equivalent of a
 * plain genie_sweep run, except crash-tolerant on the server side.
 *
 * exit: 0 ok, 1 connection/protocol error or server-side refusal
 *       ("busy", "draining", validation), 2 usage, 3 the awaited job
 *       ended failed or quarantined.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "scope/json.hh"
#include "serve/protocol.hh"

namespace
{

using namespace genie;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: genie_submit --socket=PATH submit <workload> "
        "[key=value ...]\n"
        "         [--space=S] [--filter=F] [--threads=N] [--wait] "
        "[--out=FILE]\n"
        "       genie_submit --socket=PATH status <job>\n"
        "       genie_submit --socket=PATH wait <job> [--out=FILE]\n"
        "       genie_submit --socket=PATH results <job> "
        "[--out=FILE]\n"
        "       genie_submit --socket=PATH stats | ping | drain\n"
        "exit:  0 ok, 1 error/refused, 2 usage, 3 awaited job "
        "failed\n");
    return 2;
}

/** One connection to the daemon: line-oriented reads over a stream
 * socket, with the greeting consumed and verified up front. */
class Connection
{
  public:
    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool
    open(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
            std::fprintf(stderr, "error: bad socket path\n");
            return false;
        }
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                         path.c_str(), std::strerror(errno));
            return false;
        }
        std::string greeting;
        if (!readLine(greeting) ||
            greeting.find(serveSchemaName()) == std::string::npos) {
            std::fprintf(stderr,
                         "error: %s is not a genie-serve-1 socket\n",
                         path.c_str());
            return false;
        }
        return true;
    }

    bool
    send(const std::string &line)
    {
        std::size_t off = 0;
        while (off < line.size()) {
            ssize_t n = ::send(fd, line.data() + off,
                               line.size() - off, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                std::fprintf(stderr, "error: send: %s\n",
                             std::strerror(errno));
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    readLine(std::string &out)
    {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                out = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            if (!fill())
                return false;
        }
    }

    bool
    readExact(std::size_t bytes, std::string &out)
    {
        while (buf.size() < bytes) {
            if (!fill())
                return false;
        }
        out = buf.substr(0, bytes);
        buf.erase(0, bytes);
        return true;
    }

  private:
    bool
    fill()
    {
        char chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                return true;
            std::fprintf(stderr,
                         "error: connection closed by daemon\n");
            return false;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        return true;
    }

    int fd = -1;
    std::string buf;
};

/** Parse a response line; prints and fails on malformed input. */
bool
parseResponse(const std::string &line, JsonValue &out)
{
    JsonParseResult parsed = parseJson(line);
    if (!parsed.ok || !parsed.value.isObject()) {
        std::fprintf(stderr, "error: malformed response: %s\n",
                     line.c_str());
        return false;
    }
    out = parsed.value;
    return true;
}

bool
responseOk(const JsonValue &doc)
{
    const JsonValue *ok = doc.get("ok");
    return ok && ok->isBool() && ok->boolean();
}

std::string
responseField(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.get(key);
    return v && v->isString() ? v->string() : "";
}

/** Round-trip one request; prints the response line. Returns the
 * parsed response through @p doc. */
bool
transact(Connection &conn, const std::string &request, JsonValue &doc,
         bool echo = true)
{
    std::string line;
    if (!conn.send(request) || !conn.readLine(line))
        return false;
    if (!parseResponse(line, doc))
        return false;
    if (echo)
        std::printf("%s\n", line.c_str());
    if (!responseOk(doc)) {
        std::fprintf(stderr, "error: %s\n",
                     responseField(doc, "error").c_str());
        return false;
    }
    return true;
}

/** Fetch a done job's results document into @p file ("-" = stdout). */
bool
fetchResults(Connection &conn, const std::string &jobId,
             const std::string &file)
{
    JsonValue doc;
    if (!transact(conn, serveJobOpLine("results", jobId), doc,
                  /*echo=*/false))
        return false;
    const JsonValue *bytes = doc.get("bytes");
    if (!bytes || !bytes->isNumber()) {
        std::fprintf(stderr, "error: results framing lacks bytes\n");
        return false;
    }
    std::string payload;
    if (!conn.readExact(
            static_cast<std::size_t>(bytes->number()), payload))
        return false;
    if (file == "-") {
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        return true;
    }
    std::ofstream out(file, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     file.c_str());
        return false;
    }
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    std::fprintf(stderr, "wrote %s (%zu bytes)\n", file.c_str(),
                 payload.size());
    return true;
}

/** Wait for @p jobId; 0 done, 3 failed/quarantined, 1 error. Fetches
 * results into @p outFile when set and the job finished. */
int
waitAndFetch(Connection &conn, const std::string &jobId,
             const std::string &outFile)
{
    JsonValue doc;
    if (!transact(conn, serveJobOpLine("wait", jobId), doc))
        return 1;
    if (responseField(doc, "state") != "done")
        return 3;
    if (!outFile.empty() && !fetchResults(conn, jobId, outFile))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string command;
    std::string jobId;
    std::string outFile;
    bool wait = false;
    JobDescriptor job;
    job.threads = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--socket=", 9) == 0) {
            socketPath = arg + 9;
        } else if (std::strncmp(arg, "--space=", 8) == 0) {
            job.space = arg + 8;
        } else if (std::strncmp(arg, "--filter=", 9) == 0) {
            job.filter = arg + 9;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            job.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strcmp(arg, "--wait") == 0) {
            wait = true;
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            outFile = arg + 6;
        } else if (arg[0] == '-') {
            return usage();
        } else if (command.empty()) {
            command = arg;
        } else if (command == "submit") {
            if (job.workload.empty())
                job.workload = arg;
            else
                job.config.push_back(arg);
        } else if (jobId.empty()) {
            jobId = arg;
        } else {
            return usage();
        }
    }
    if (socketPath.empty() || command.empty())
        return usage();

    Connection conn;
    if (!conn.open(socketPath))
        return 1;

    if (command == "ping" || command == "stats" ||
        command == "drain") {
        JsonValue doc;
        return transact(conn, serveSimpleOpLine(command.c_str()),
                        doc)
                   ? 0
                   : 1;
    }
    if (command == "submit") {
        if (job.workload.empty())
            return usage();
        JsonValue doc;
        if (!transact(conn, serveSubmitLine(job), doc))
            return 1;
        if (!wait)
            return 0;
        return waitAndFetch(conn, responseField(doc, "job"),
                            outFile);
    }
    if (jobId.empty())
        return usage();
    if (command == "status") {
        JsonValue doc;
        return transact(conn, serveJobOpLine("status", jobId), doc)
                   ? 0
                   : 1;
    }
    if (command == "wait")
        return waitAndFetch(conn, jobId, outFile);
    if (command == "results") {
        return fetchResults(conn, jobId,
                            outFile.empty() ? "-" : outFile)
                   ? 0
                   : 1;
    }
    return usage();
}
