/**
 * @file
 * genie_lint CLI: the Genie-Analyze driver. Runs the per-file line
 * rules (lint.hh) plus the cross-TU declaration index and concurrency
 * rule family (index.hh, concurrency.hh) and exits non-zero if any
 * unsuppressed finding remains (or, with --baseline, any *new*
 * finding).
 *
 * Usage:
 *   genie_lint [--root DIR] [--suppressions FILE] [--json]
 *              [--baseline FILE] [--write-baseline FILE]
 *              [--inventory FILE] [SUBDIR...]
 *
 * DIR defaults to the current directory; SUBDIR defaults to "src".
 *
 *  --json             print findings as a JSON array on stdout
 *                     (machine-readable; CI artifact)
 *  --baseline FILE    compare findings against a checked-in baseline
 *                     and exit non-zero only on findings not in it.
 *                     Matching is a multiset over (rule, file,
 *                     message) — line numbers are excluded so
 *                     unrelated edits don't churn the baseline.
 *  --write-baseline F write the current findings as a baseline file
 *  --inventory FILE   write the shared-state inventory JSON
 *                     (concurrency.hh) to FILE ("-" for stdout)
 *
 * Run as a ctest from the build tree:
 *   ctest -R genie_lint
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "concurrency.hh"
#include "index.hh"
#include "lint.hh"

namespace
{

/** Baseline key: line numbers are deliberately excluded so edits
 * above a grandfathered finding don't invalidate the baseline. */
std::string
baselineKey(const genie::lint::Finding &f)
{
    return f.rule + "\t" + f.file + "\t" + f.message;
}

std::map<std::string, int>
loadBaseline(const std::string &path, bool &ok)
{
    std::map<std::string, int> counts;
    std::ifstream in(path);
    ok = static_cast<bool>(in);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        ++counts[line];
    }
    return counts;
}

void
printJson(const std::vector<genie::lint::Finding> &findings)
{
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const auto &f = findings[i];
        std::printf("%s\n  {\"rule\": \"%s\", \"file\": \"%s\", "
                    "\"line\": %d, \"message\": \"%s\"}",
                    i ? "," : "",
                    genie::lint::jsonEscape(f.rule).c_str(),
                    genie::lint::jsonEscape(f.file).c_str(), f.line,
                    genie::lint::jsonEscape(f.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string suppressionsPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::string inventoryPath;
    bool json = false;
    std::vector<std::string> subdirs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--suppressions") == 0 &&
                   i + 1 < argc) {
            suppressionsPath = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--write-baseline") == 0 &&
                   i + 1 < argc) {
            writeBaselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--inventory") == 0 &&
                   i + 1 < argc) {
            inventoryPath = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf(
                "usage: genie_lint [--root DIR] [--suppressions FILE] "
                "[--json] [--baseline FILE] [--write-baseline FILE] "
                "[--inventory FILE] [SUBDIR...]\n");
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "genie_lint: unknown option '%s'\n",
                         argv[i]);
            return 2;
        } else {
            subdirs.emplace_back(argv[i]);
        }
    }
    if (subdirs.empty())
        subdirs.emplace_back("src");

    genie::lint::Suppressions suppressions;
    if (!suppressionsPath.empty()) {
        // A typo'd path must not silently lint with zero suppressions:
        // that flips the meaning of every sanctioned finding.
        if (!std::ifstream(suppressionsPath)) {
            std::fprintf(stderr,
                         "genie_lint: cannot read suppressions file "
                         "'%s'\n",
                         suppressionsPath.c_str());
            return 2;
        }
        suppressions = genie::lint::Suppressions::load(suppressionsPath);
    }

    std::size_t totalFiles = 0;
    std::vector<genie::lint::Finding> findings;
    for (const auto &subdir : subdirs) {
        std::size_t files = 0;
        // An absent tree means a typo'd --root/SUBDIR; "OK (0 files
        // scanned)" would let a misconfigured CI job pass vacuously.
        if (!std::filesystem::is_directory(
                std::filesystem::path(root) / subdir)) {
            std::fprintf(stderr,
                         "genie_lint: no such directory '%s' under "
                         "root '%s'\n",
                         subdir.c_str(), root.c_str());
            return 2;
        }
        auto sub = genie::lint::lintTree(root, subdir, suppressions,
                                         &files);
        totalFiles += files;
        findings.insert(findings.end(), sub.begin(), sub.end());
    }

    // Cross-TU pass: build the declaration index over every scanned
    // subdir, then run the concurrency rule family on it.
    genie::lint::DeclIndex index =
        genie::lint::DeclIndex::build(root, subdirs);
    for (auto &f : genie::lint::analyzeConcurrency(index)) {
        if (!suppressions.matches(f.rule, f.file))
            findings.push_back(std::move(f));
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const genie::lint::Finding &a,
                        const genie::lint::Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });

    if (!inventoryPath.empty()) {
        std::string inv =
            genie::lint::sharedStateInventoryJson(index);
        if (inventoryPath == "-") {
            std::fwrite(inv.data(), 1, inv.size(), stdout);
        } else {
            std::ofstream out(inventoryPath);
            if (!out) {
                std::fprintf(stderr,
                             "genie_lint: cannot write inventory "
                             "'%s'\n",
                             inventoryPath.c_str());
                return 2;
            }
            out << inv;
        }
    }

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath);
        if (!out) {
            std::fprintf(stderr,
                         "genie_lint: cannot write baseline '%s'\n",
                         writeBaselinePath.c_str());
            return 2;
        }
        out << "# genie_lint baseline: one finding per line as\n"
               "# <rule>\\t<file>\\t<message>; line numbers excluded "
               "on purpose.\n";
        for (const auto &f : findings)
            out << baselineKey(f) << "\n";
    }

    // Baseline diff: only findings beyond the baselined multiset
    // count against the exit code, so a grandfathered finding can be
    // burned down incrementally while new regressions still fail CI.
    std::vector<genie::lint::Finding> newFindings;
    if (!baselinePath.empty()) {
        bool ok = false;
        std::map<std::string, int> counts =
            loadBaseline(baselinePath, ok);
        if (!ok) {
            std::fprintf(stderr,
                         "genie_lint: cannot read baseline '%s'\n",
                         baselinePath.c_str());
            return 2;
        }
        for (const auto &f : findings) {
            auto it = counts.find(baselineKey(f));
            if (it != counts.end() && it->second > 0)
                --it->second;
            else
                newFindings.push_back(f);
        }
    } else {
        newFindings = findings;
    }

    if (json) {
        printJson(findings);
    } else {
        for (const auto &f : findings) {
            bool isNew =
                baselinePath.empty() ||
                std::find_if(newFindings.begin(), newFindings.end(),
                             [&](const genie::lint::Finding &n) {
                                 return n.file == f.file &&
                                        n.line == f.line &&
                                        n.rule == f.rule;
                             }) != newFindings.end();
            std::fprintf(stderr, "%s:%d: [%s]%s %s\n", f.file.c_str(),
                         f.line, f.rule.c_str(),
                         isNew ? "" : " (baselined)",
                         f.message.c_str());
        }
    }

    if (!newFindings.empty()) {
        std::fprintf(stderr,
                     "genie_lint: %zu finding(s) (%zu new) in %zu "
                     "file(s) scanned\n",
                     findings.size(), newFindings.size(), totalFiles);
        return 1;
    }
    if (!json) {
        // Keep stdout machine-clean when it carries the inventory.
        std::fprintf(
            inventoryPath == "-" ? stderr : stdout,
            "genie_lint: OK (%zu files scanned, %zu indexed, %zu "
            "suppression entries%s)\n",
            totalFiles, index.numFiles(), suppressions.size(),
            findings.empty() ? "" : ", all findings baselined");
    }
    return 0;
}
