/**
 * @file
 * genie_lint CLI. Scans source trees for simulator-specific rule
 * violations and exits non-zero if any unsuppressed finding remains.
 *
 * Usage:
 *   genie_lint [--root DIR] [--suppressions FILE] [SUBDIR...]
 *
 * DIR defaults to the current directory; SUBDIR defaults to "src".
 * Run as a ctest from the build tree:
 *   ctest -R genie_lint
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string suppressionsPath;
    std::vector<std::string> subdirs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--suppressions") == 0 &&
                   i + 1 < argc) {
            suppressionsPath = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: genie_lint [--root DIR] "
                        "[--suppressions FILE] [SUBDIR...]\n");
            return 0;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "genie_lint: unknown option '%s'\n",
                         argv[i]);
            return 2;
        } else {
            subdirs.emplace_back(argv[i]);
        }
    }
    if (subdirs.empty())
        subdirs.emplace_back("src");

    genie::lint::Suppressions suppressions;
    if (!suppressionsPath.empty()) {
        // A typo'd path must not silently lint with zero suppressions:
        // that flips the meaning of every sanctioned finding.
        if (!std::ifstream(suppressionsPath)) {
            std::fprintf(stderr,
                         "genie_lint: cannot read suppressions file "
                         "'%s'\n",
                         suppressionsPath.c_str());
            return 2;
        }
        suppressions = genie::lint::Suppressions::load(suppressionsPath);
    }

    std::size_t totalFiles = 0;
    std::vector<genie::lint::Finding> findings;
    for (const auto &subdir : subdirs) {
        std::size_t files = 0;
        // An absent tree means a typo'd --root/SUBDIR; "OK (0 files
        // scanned)" would let a misconfigured CI job pass vacuously.
        if (!std::filesystem::is_directory(
                std::filesystem::path(root) / subdir)) {
            std::fprintf(stderr,
                         "genie_lint: no such directory '%s' under "
                         "root '%s'\n",
                         subdir.c_str(), root.c_str());
            return 2;
        }
        auto sub = genie::lint::lintTree(root, subdir, suppressions,
                                         &files);
        totalFiles += files;
        findings.insert(findings.end(), sub.begin(), sub.end());
    }

    for (const auto &f : findings) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
    }

    if (!findings.empty()) {
        std::fprintf(stderr,
                     "genie_lint: %zu finding(s) in %zu file(s) "
                     "scanned\n",
                     findings.size(), totalFiles);
        return 1;
    }
    std::printf("genie_lint: OK (%zu files scanned, %zu suppression "
                "entries)\n",
                totalFiles, suppressions.size());
    return 0;
}
