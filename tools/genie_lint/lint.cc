#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace genie
{
namespace lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Find @p token in @p text as a lexical token: the characters
 * immediately before and after the match must not extend an
 * identifier. Tokens may themselves contain '::' or '(' (e.g.
 * "std::chrono::system_clock", "rand("). Returns npos if absent.
 */
std::size_t
findToken(const std::string &text, const std::string &token,
          std::size_t from = 0)
{
    std::size_t pos = text.find(token, from);
    while (pos != std::string::npos) {
        bool okBefore = pos == 0 || !identChar(text[pos - 1]);
        std::size_t end = pos + token.size();
        bool okAfter = end >= text.size() ||
                       !identChar(text[end]) ||
                       !identChar(token.back());
        if (okBefore && okAfter)
            return pos;
        pos = text.find(token, pos + 1);
    }
    return std::string::npos;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** The previous non-whitespace character before @p pos, or '\0'. */
char
prevNonSpace(const std::string &text, std::size_t pos)
{
    while (pos > 0) {
        char c = text[--pos];
        if (c != ' ' && c != '\t')
            return c;
    }
    return '\0';
}

struct TokenRule
{
    const char *token;
    const char *message;
};

// Wall-clock / libc-randomness entry points that break bit-exact
// reproducibility across runs and hosts.
const TokenRule determinismTokens[] = {
    {"rand(", "libc rand() is nondeterministic across hosts; use "
              "genie::Rng (src/sim/random.hh)"},
    {"srand(", "seeding libc rand() hides nondeterminism; use "
               "genie::Rng (src/sim/random.hh)"},
    {"drand48(", "drand48() is nondeterministic; use genie::Rng"},
    {"std::time", "wall-clock time breaks reproducible sweeps; derive "
                  "times from the EventQueue tick"},
    {"time(nullptr", "wall-clock time breaks reproducible sweeps"},
    {"time(NULL", "wall-clock time breaks reproducible sweeps"},
    {"gettimeofday", "wall-clock time breaks reproducible sweeps"},
    {"clock_gettime", "wall-clock time breaks reproducible sweeps"},
    {"std::chrono::system_clock", "wall-clock time breaks "
                                  "reproducible sweeps"},
    {"std::chrono::steady_clock", "host timing must not influence "
                                  "simulated behavior"},
    {"std::chrono::high_resolution_clock", "host timing must not "
                                           "influence simulated "
                                           "behavior"},
    {"std::random_device", "std::random_device is nondeterministic; "
                           "use genie::Rng with a fixed seed"},
    {"std::mt19937", "use genie::Rng so all randomness shares one "
                     "seeding discipline"},
    {"std::default_random_engine", "use genie::Rng so all randomness "
                                   "shares one seeding discipline"},
};

// Direct console output in library code bypasses sim/logging's
// quiet() switch and scrambles interleaved output in concurrent
// sweeps. snprintf/vsnprintf (string formatting) are fine.
// Trace/telemetry emission must flow through the Tracer API
// (src/trace/tracer.hh): ad-hoc file sinks dodge the category mask,
// the determinism guarantees, and the zero-overhead-when-disabled
// contract. Only the trace subsystem itself may own a file sink.
const TokenRule traceSinkTokens[] = {
    {"std::ofstream", "file output in library code: emit events "
                      "through the Tracer API (src/trace), which owns "
                      "the only sanctioned file sinks"},
    {"std::fstream", "file output in library code: emit events "
                     "through the Tracer API (src/trace)"},
    {"fopen(", "FILE* output in library code: emit events through "
               "the Tracer API (src/trace)"},
    {"fwrite(", "FILE* output in library code: emit events through "
                "the Tracer API (src/trace)"},
};

// stat-print: statistics must reach the user through the StatRegistry
// (visitors, the exporters in src/metrics, or core/report's
// registry-driven dump), never by hand-plumbing per-component
// StatGroup::dump calls — that is exactly the bespoke-loop pattern the
// registry exists to delete.
const TokenRule statPrintTokens[] = {
    {"stats().dump(",
     "hand-plumbed stat dump: route output through the StatRegistry "
     "(statRegistry().dump() or the src/metrics exporters)"},
};

// fault-rng: the fault campaign's byte-identical-replay contract
// hinges on every injection decision flowing through sim/random.hh's
// seeded Rng streams. Any other randomness source inside src/fault —
// even a "deterministic" <random> engine — forks the seeding
// discipline and silently breaks campaign reproducibility.
const TokenRule faultRngTokens[] = {
    {"<random>", "src/fault must draw randomness only from genie::Rng "
                 "(src/sim/random.hh); do not include <random>"},
    {"std::uniform_int_distribution",
     "src/fault must use genie::Rng::below(), not <random> "
     "distributions"},
    {"std::uniform_real_distribution",
     "src/fault must use genie::Rng::real(), not <random> "
     "distributions"},
    {"std::bernoulli_distribution",
     "src/fault must use genie::Rng::chance(), not <random> "
     "distributions"},
};

// sweep-determinism: sweep results and the checkpoint journal must be
// byte-identical across thread counts and runs, so nothing in src/dse
// may observe which thread or process computed a point. Wall-clock
// reads are already banned tree-wide by the determinism rule; this
// rule adds the scheduler-identity sources. (Host time for the MEPS
// report is read only through the sanctioned HostProfiler.)
const TokenRule sweepDeterminismTokens[] = {
    {"std::this_thread::get_id",
     "thread identity must not influence sweep results or the "
     "journal; results depend only on the config"},
    {"std::thread::id",
     "thread identity must not influence sweep results or the "
     "journal; results depend only on the config"},
    {"pthread_self(",
     "thread identity must not influence sweep results or the "
     "journal"},
    {"gettid(",
     "thread identity must not influence sweep results or the "
     "journal"},
    {"getpid(",
     "process identity must not influence sweep results or the "
     "journal"},
};

// event-alloc: after Genie-Turbo the event kernel allocates event
// storage only through ObjectArena (src/sim/event_arena.hh) — the
// arena header is the one sanctioned manual-allocation site in
// src/sim (raw new/delete there rides its raw-new-delete
// suppression). Everything else in src/sim must not reach for the
// allocator by hand: per-event heap traffic is exactly what the
// arena was built to delete, and libc allocation would dodge the
// arena's generation/leak accounting entirely.
const TokenRule eventAllocTokens[] = {
    {"malloc(", "manual allocation in the event kernel: event "
                "storage lives in ObjectArena (sim/event_arena.hh)"},
    {"calloc(", "manual allocation in the event kernel: event "
                "storage lives in ObjectArena (sim/event_arena.hh)"},
    {"realloc(", "manual allocation in the event kernel: event "
                 "storage lives in ObjectArena (sim/event_arena.hh)"},
    {"free(", "manual free in the event kernel: event storage lives "
              "in ObjectArena (sim/event_arena.hh)"},
    {"aligned_alloc(", "manual allocation in the event kernel: event "
                       "storage lives in ObjectArena "
                       "(sim/event_arena.hh)"},
    {"posix_memalign(", "manual allocation in the event kernel: "
                        "event storage lives in ObjectArena "
                        "(sim/event_arena.hh)"},
    {"operator new", "custom operator new in the event kernel: event "
                     "storage lives in ObjectArena "
                     "(sim/event_arena.hh)"},
    {"operator delete", "custom operator delete in the event kernel: "
                        "event storage lives in ObjectArena "
                        "(sim/event_arena.hh)"},
};

const TokenRule rawOutputTokens[] = {
    {"std::cout", "library code must log through sim/logging "
                  "(inform/warn), not std::cout"},
    {"std::cerr", "library code must log through sim/logging "
                  "(warn/panic), not std::cerr"},
    {"printf(", "library code must log through sim/logging, not "
                "printf"},
    {"fprintf(", "library code must log through sim/logging, not "
                 "fprintf"},
    {"vfprintf(", "library code must log through sim/logging, not "
                  "vfprintf"},
    {"puts(", "library code must log through sim/logging, not puts"},
    {"fputs(", "library code must log through sim/logging, not fputs"},
    {"putchar(", "library code must log through sim/logging, not "
                 "putchar"},
};

} // namespace

std::string
stripCommentsAndStrings(const std::string &src)
{
    std::string out;
    out.reserve(src.size());

    enum class State
    {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Normal;

    for (std::size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        char next = i + 1 < src.size() ? src[i + 1] : '\0';

        switch (state) {
          case State::Normal:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::String;
                out += ' ';
            } else if (c == '\'') {
                state = State::Char;
                out += ' ';
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Normal;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Normal;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::String:
            if (c == '\\' && i + 1 < src.size()) {
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Normal;
                out += ' ';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && i + 1 < src.size()) {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Normal;
                out += ' ';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::string
expectedGuard(const std::string &relPath)
{
    if (!startsWith(relPath, "src/") ||
        relPath.size() < 4 + 3 ||
        relPath.compare(relPath.size() - 3, 3, ".hh") != 0)
        return "";
    std::string guard = "GENIE_";
    for (std::size_t i = 4; i < relPath.size(); ++i) {
        char c = relPath[i];
        if (c == '/' || c == '.' || c == '-')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

Suppressions
Suppressions::parse(const std::string &text)
{
    Suppressions s;
    for (const auto &raw : splitLines(text)) {
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string rule, path;
        if (iss >> rule >> path)
            s.add(rule, path);
    }
    return s;
}

Suppressions
Suppressions::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

void
Suppressions::add(const std::string &rule, const std::string &path)
{
    entries.emplace_back(rule, path);
}

bool
Suppressions::matches(const std::string &rule,
                      const std::string &file) const
{
    for (const auto &[r, p] : entries) {
        if (p == file && (r == "*" || r == rule))
            return true;
    }
    return false;
}

std::vector<Finding>
lintSource(const std::string &relPath, const std::string &contents)
{
    std::vector<Finding> findings;
    const std::string stripped = stripCommentsAndStrings(contents);
    const std::vector<std::string> lines = splitLines(stripped);

    auto report = [&](const char *rule, int line,
                      const std::string &message) {
        findings.push_back({rule, relPath, line, message});
    };

    const bool isRngHome = relPath == "src/sim/random.hh";
    // The raw-output / trace-sink / stat-print / static-state /
    // raw-new-delete rules are library-code contracts: they apply to
    // src/ only. CLI tools (tools/) legitimately print to stdout and
    // open their own output files; the determinism rule still applies
    // to them (with explicit suppressions where host timing is the
    // tool's feature, e.g. the bench harness).
    const bool isLibrary = startsWith(relPath, "src/");
    // src/trace owns the trace sinks; src/metrics owns the stats and
    // sample exporter sinks. Both write files by design.
    const bool isSinkHome = !isLibrary ||
                            startsWith(relPath, "src/trace/") ||
                            startsWith(relPath, "src/metrics/");
    const bool isStatHome = !isLibrary ||
                            startsWith(relPath, "src/metrics/") ||
                            relPath == "src/core/report.cc";

    for (std::size_t n = 0; n < lines.size(); ++n) {
        const std::string &line = lines[n];
        const int lineNo = static_cast<int>(n) + 1;

        // determinism: no wall-clock or libc randomness outside the
        // sanctioned RNG header.
        if (!isRngHome) {
            for (const auto &t : determinismTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("determinism", lineNo, t.message);
            }
        }

        // fault-rng: the fault subsystem may only draw randomness
        // from the sanctioned seeded Rng.
        if (startsWith(relPath, "src/fault/")) {
            for (const auto &t : faultRngTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("fault-rng", lineNo, t.message);
            }
        }

        // sweep-determinism: the DSE layer may not observe thread or
        // process identity — DesignPoint results and journal records
        // must depend only on the config.
        if (startsWith(relPath, "src/dse/")) {
            for (const auto &t : sweepDeterminismTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("sweep-determinism", lineNo, t.message);
            }
        }

        // event-alloc: the event kernel allocates only through the
        // arena API; the arena header itself is the sanctioned home.
        if (startsWith(relPath, "src/sim/") &&
            relPath != "src/sim/event_arena.hh") {
            for (const auto &t : eventAllocTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("event-alloc", lineNo, t.message);
            }
        }

        // raw-output: console I/O must flow through sim/logging.
        if (isLibrary) {
            for (const auto &t : rawOutputTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("raw-output", lineNo, t.message);
            }
        }

        // trace-sink: event/telemetry file output must go through the
        // Tracer API or the metrics exporters; only those subsystems
        // may open file sinks.
        if (!isSinkHome) {
            for (const auto &t : traceSinkTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("trace-sink", lineNo, t.message);
            }
        }

        // stat-print: no hand-plumbed per-component stat dumping
        // outside the registry-driven report path.
        if (!isStatHome) {
            for (const auto &t : statPrintTokens) {
                if (findToken(line, t.token) != std::string::npos)
                    report("stat-print", lineNo, t.message);
            }
        }

        // static-state: mutable static/thread_local data breaks
        // concurrent sweeps. Heuristic: a `static`/`thread_local`
        // declaration with no parameter list before any initializer
        // is a variable, not a function declaration.
        std::string t = trim(line);
        bool isStatic = startsWith(t, "static") &&
                        (t.size() == 6 || !identChar(t[6]));
        bool isThreadLocal = startsWith(t, "thread_local") &&
                             (t.size() == 12 || !identChar(t[12]));
        if (isLibrary && (isStatic || isThreadLocal)) {
            std::string rest = t.substr(isStatic ? 6 : 12);
            bool isConst =
                findToken(rest, "const") != std::string::npos ||
                findToken(rest, "constexpr") != std::string::npos ||
                findToken(rest, "constinit") != std::string::npos;
            std::size_t paren = rest.find('(');
            std::size_t assign = rest.find('=');
            bool looksLikeFunction =
                paren != std::string::npos &&
                (assign == std::string::npos || paren < assign);
            if (!isConst && !looksLikeFunction) {
                report("static-state", lineNo,
                       "mutable static/thread_local state breaks "
                       "concurrent sweeps; hang state off the Soc or "
                       "SimObject instead");
            }
        }

        // raw-new-delete: manual ownership outside the EventQueue's
        // documented owning-pointer heap.
        if (isLibrary) {
            for (std::size_t pos = findToken(line, "new");
                 pos != std::string::npos;
                 pos = findToken(line, "new", pos + 1)) {
                report("raw-new-delete", lineNo,
                       "raw new: use std::make_unique/containers; "
                       "only the EventQueue entry heap may allocate "
                       "manually");
            }
            for (std::size_t pos = findToken(line, "delete");
                 pos != std::string::npos;
                 pos = findToken(line, "delete", pos + 1)) {
                // `= delete;` (deleted special member) is not
                // ownership.
                if (prevNonSpace(line, pos) == '=')
                    continue;
                report("raw-new-delete", lineNo,
                       "raw delete: use RAII ownership; only the "
                       "EventQueue entry heap may free manually");
            }
        }
    }

    // include-guard: canonical GENIE_<DIR>_<FILE>_HH naming.
    std::string guard = expectedGuard(relPath);
    if (!guard.empty()) {
        std::string foundGuard;
        int guardLine = 0;
        bool defineOk = false;
        for (std::size_t n = 0; n < lines.size(); ++n) {
            std::string t = trim(lines[n]);
            if (startsWith(t, "#ifndef")) {
                foundGuard = trim(t.substr(7));
                guardLine = static_cast<int>(n) + 1;
                if (n + 1 < lines.size()) {
                    std::string d = trim(lines[n + 1]);
                    defineOk = startsWith(d, "#define") &&
                               trim(d.substr(7)) == foundGuard;
                }
                break;
            }
            if (startsWith(t, "#pragma") || startsWith(t, "#include"))
                break;
        }
        if (foundGuard.empty()) {
            report("include-guard", 1,
                   "missing include guard; expected #ifndef " + guard);
        } else if (foundGuard != guard) {
            report("include-guard", guardLine,
                   "include guard '" + foundGuard +
                       "' should be '" + guard + "'");
        } else if (!defineOk) {
            report("include-guard", guardLine,
                   "#ifndef " + guard +
                       " must be followed by #define " + guard);
        }
    }

    return findings;
}

std::vector<Finding>
lintTree(const std::string &rootDir, const std::string &subdir,
         const Suppressions &suppressions, std::size_t *filesScanned)
{
    namespace fs = std::filesystem;
    std::vector<std::string> relPaths;
    fs::path base = fs::path(rootDir) / subdir;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        std::string ext = it->path().extension().string();
        if (ext != ".hh" && ext != ".cc" && ext != ".cpp" &&
            ext != ".hpp")
            continue;
        relPaths.push_back(
            fs::relative(it->path(), rootDir).generic_string());
    }
    std::sort(relPaths.begin(), relPaths.end());

    if (filesScanned)
        *filesScanned = relPaths.size();

    std::vector<Finding> findings;
    for (const auto &rel : relPaths) {
        std::ifstream in(fs::path(rootDir) / rel);
        std::ostringstream ss;
        ss << in.rdbuf();
        for (auto &f : lintSource(rel, ss.str())) {
            if (!suppressions.matches(f.rule, f.file))
                findings.push_back(std::move(f));
        }
    }
    return findings;
}

} // namespace lint
} // namespace genie
