#include "index.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.hh"

namespace genie
{
namespace lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isAnnotationName(const std::string &s)
{
    return s == "GENIE_GUARDED_BY" || s == "GENIE_REQUIRES" ||
           s == "GENIE_THREAD_LOCAL_OK" || s == "GENIE_SHARED_OK";
}

/**
 * The token-stream parser for one file. Tracks a cursor over the
 * stripped token vector and appends declarations into the index's
 * containers. Heuristic by design; see index.hh.
 */
class Parser
{
  public:
    Parser(const std::string &path, const std::vector<Token> &tokens,
           std::vector<ClassDecl> &classes,
           std::vector<StaticDecl> &statics,
           std::vector<FunctionDef> &functions)
        : path(path), toks(tokens), classes(classes),
          statics(statics), functions(functions)
    {}

    void
    run()
    {
        std::size_t i = 0;
        parseScope(i, toks.size(), "");
    }

  private:
    const std::string &path;
    const std::vector<Token> &toks;
    std::vector<ClassDecl> &classes;
    std::vector<StaticDecl> &statics;
    std::vector<FunctionDef> &functions;

    const std::string &
    text(std::size_t i) const
    {
        static const std::string empty;
        return i < toks.size() ? toks[i].text : empty;
    }

    int
    line(std::size_t i) const
    {
        return i < toks.size() ? toks[i].line : 0;
    }

    /** Index just past the brace/paren group opening at @p i. */
    std::size_t
    skipBalanced(std::size_t i, const char *open,
                 const char *close) const
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            if (text(i) == open) {
                ++depth;
            } else if (text(i) == close) {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return toks.size();
    }

    /** Skip a template parameter list starting at '<'. `>>` closes
     * two levels (the tokenizer emits single '>' tokens). */
    std::size_t
    skipAngles(std::size_t i) const
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            if (text(i) == "<")
                ++depth;
            else if (text(i) == ">" && --depth == 0)
                return i + 1;
        }
        return toks.size();
    }

    /** Collect GENIE_* annotations at @p i; advances past them. */
    bool
    collectAnnotation(std::size_t &i, std::vector<Annotation> &out)
    {
        if (!isAnnotationName(text(i)))
            return false;
        Annotation a;
        a.name = text(i);
        a.line = line(i);
        ++i;
        if (text(i) == "(") {
            std::size_t end = skipBalanced(i, "(", ")");
            std::string arg;
            for (std::size_t k = i + 1; k + 1 < end; ++k) {
                if (!arg.empty())
                    arg += ' ';
                arg += text(k);
            }
            a.arg = arg;
            i = end;
        }
        out.push_back(std::move(a));
        return true;
    }

    /**
     * Parse declarations at namespace or class scope between @p i
     * and @p end. @p enclosingClass is the qualified class name when
     * parsing a class body, "" at namespace scope.
     */
    void
    parseScope(std::size_t &i, std::size_t end,
               const std::string &enclosingClass)
    {
        const bool classScope = !enclosingClass.empty();
        while (i < end) {
            const std::string &t = text(i);
            if (t == ";" || t == "}") {
                ++i;
            } else if (t == "namespace") {
                ++i;
                while (i < end && text(i) != "{" && text(i) != ";")
                    ++i;
                if (text(i) == "{")
                    ++i; // transparent: members parse at this scope
                else
                    ++i; // namespace alias
            } else if (t == "class" || t == "struct" ||
                       t == "union") {
                parseClass(i, end, enclosingClass);
            } else if (t == "enum") {
                ++i;
                while (i < end && text(i) != "{" && text(i) != ";")
                    ++i;
                if (text(i) == "{")
                    i = skipBalanced(i, "{", "}");
                while (i < end && text(i) != ";")
                    ++i;
            } else if (t == "using" || t == "typedef" ||
                       t == "friend") {
                while (i < end && text(i) != ";")
                    ++i;
            } else if (t == "template") {
                ++i;
                if (text(i) == "<")
                    i = skipAngles(i);
            } else if (classScope &&
                       (t == "public" || t == "private" ||
                        t == "protected") &&
                       text(i + 1) == ":") {
                i += 2;
            } else if (t == "extern" || t == "inline") {
                ++i;
            } else {
                parseDeclaration(i, end, enclosingClass);
            }
        }
    }

    /** Qualified function name ending just before the '(' at
     * @p paren: walks back over `ident`, `::`, `~`, `operator`. */
    void
    functionNameAt(std::size_t paren, std::string &name,
                   std::string &qualifier) const
    {
        name.clear();
        qualifier.clear();
        if (paren == 0)
            return;
        std::size_t k = paren - 1;
        // operator+, operator(), operator= ...: name everything from
        // the `operator` keyword to the paren.
        for (std::size_t back = 0; back < 4 && k >= back; ++back) {
            if (text(k - back) == "operator") {
                name = "operator";
                for (std::size_t m = k - back + 1; m < paren; ++m)
                    name += text(m);
                if (k >= back + 2 && text(k - back - 1) == "::" &&
                    !text(k - back - 2).empty())
                    qualifier = text(k - back - 2);
                return;
            }
        }
        if (!identStart(text(k).empty() ? ' ' : text(k)[0]))
            return;
        name = text(k);
        if (k >= 1 && text(k - 1) == "~") {
            name = "~" + name;
            if (k >= 2)
                k -= 1;
        }
        if (k >= 2 && text(k - 1) == "::" &&
            identStart(text(k - 2).empty() ? ' ' : text(k - 2)[0]))
            qualifier = text(k - 2);
    }

    /**
     * Parse one member/namespace-scope declaration (field, variable,
     * function declaration, or function definition with body).
     */
    void
    parseDeclaration(std::size_t &i, std::size_t end,
                     const std::string &enclosingClass)
    {
        const bool classScope = !enclosingClass.empty();
        const std::size_t start = i;
        const int startLine = line(i);

        std::vector<std::string> declToks;
        std::vector<Annotation> annotations;
        std::size_t parenTok = toks.size(); // first top-level '('
        bool sawAssign = false;
        bool isDefinition = false; // function with body
        std::size_t bodyOpen = 0;
        int angleDepth = 0;

        while (i < end) {
            if (collectAnnotation(i, annotations))
                continue;
            const std::string &t = text(i);
            if (t == "<") {
                ++angleDepth;
                declToks.push_back(t);
                ++i;
            } else if (t == ">") {
                if (angleDepth > 0)
                    --angleDepth;
                declToks.push_back(t);
                ++i;
            } else if (t == "(" && angleDepth == 0) {
                if (parenTok == toks.size() && !sawAssign)
                    parenTok = declToks.size();
                std::size_t close = skipBalanced(i, "(", ")");
                for (std::size_t k = i; k < close; ++k)
                    declToks.push_back(text(k));
                i = close;
            } else if (t == "{") {
                if (parenTok != toks.size() && !sawAssign) {
                    // Function body.
                    isDefinition = true;
                    bodyOpen = i;
                    i = skipBalanced(i, "{", "}");
                    break;
                }
                // Brace initializer: part of a variable declaration.
                std::size_t close = skipBalanced(i, "{", "}");
                sawAssign = true;
                i = close;
            } else if (t == "=" && angleDepth == 0) {
                sawAssign = true;
                declToks.push_back(t);
                ++i;
            } else if (t == ";") {
                ++i;
                break;
            } else if (t == "}" || (classScope &&
                                    (t == "public" || t == "private" ||
                                     t == "protected") &&
                                    text(i + 1) == ":")) {
                break; // malformed/end of scope; let caller handle
            } else {
                declToks.push_back(t);
                ++i;
            }
        }

        if (declToks.empty() && !isDefinition)
            return;

        if (parenTok != toks.size()) {
            recordFunction(start, startLine, parenTok, annotations,
                           enclosingClass, isDefinition, bodyOpen);
            return;
        }

        recordVariable(startLine, declToks, annotations,
                       enclosingClass, sawAssign);
    }

    void
    recordFunction(std::size_t startTok, int startLine,
                   std::size_t parenIdx,
                   const std::vector<Annotation> &annotations,
                   const std::string &enclosingClass,
                   bool isDefinition, std::size_t bodyOpen)
    {
        // Resolve the (possibly qualified) name from the original
        // token stream: find the '(' that starts the parameter list.
        std::size_t paren = startTok;
        int angleDepth = 0;
        std::size_t seen = 0;
        for (std::size_t k = startTok; k < toks.size(); ++k) {
            const std::string &t = text(k);
            if (t == "<")
                ++angleDepth;
            else if (t == ">" && angleDepth > 0)
                --angleDepth;
            else if (t == "(" && angleDepth == 0 &&
                     seen >= parenIdx) {
                paren = k;
                break;
            }
            if (!isAnnotationName(t))
                ++seen;
        }
        std::string name, qualifier;
        functionNameAt(paren, name, qualifier);
        if (name.empty())
            return;

        std::string className = qualifier;
        if (className.empty() && !enclosingClass.empty()) {
            std::size_t sep = enclosingClass.rfind("::");
            className = sep == std::string::npos
                            ? enclosingClass
                            : enclosingClass.substr(sep + 2);
        }

        if (!enclosingClass.empty()) {
            MethodDecl m;
            m.name = name;
            m.line = startLine;
            m.hasBody = isDefinition;
            m.annotations = annotations;
            if (!classes.empty() &&
                classes.back().name == enclosingClass)
                classes.back().methods.push_back(m);
            else
                attachMethod(enclosingClass, m);
        }

        if (isDefinition) {
            FunctionDef f;
            f.name = name;
            f.className = className;
            f.file = path;
            f.line = startLine;
            f.tokenBegin = bodyOpen;
            f.tokenEnd = skipBalanced(bodyOpen, "{", "}") - 1;
            f.annotations = annotations;
            functions.push_back(f);
            scanBodyStatics(bodyOpen, f.tokenEnd);
        }
    }

    void
    attachMethod(const std::string &className, const MethodDecl &m)
    {
        for (auto it = classes.rbegin(); it != classes.rend(); ++it) {
            if (it->name == className && it->file == path) {
                it->methods.push_back(m);
                return;
            }
        }
    }

    /** Record function-local `static` variables (mutable shared
     * state hiding inside a body). */
    void
    scanBodyStatics(std::size_t bodyOpen, std::size_t bodyClose)
    {
        for (std::size_t k = bodyOpen + 1; k < bodyClose; ++k) {
            if (text(k) != "static")
                continue;
            // `static` directly inside a local struct/lambda is rare;
            // treat every body-level static the same way.
            bool isConst = false;
            std::vector<Annotation> anns;
            std::vector<std::string> declToks;
            std::size_t m = k + 1;
            bool function = false;
            int angleDepth = 0;
            while (m < bodyClose) {
                if (collectAnnotation(m, anns))
                    continue;
                const std::string &t = text(m);
                if (t == "const" || t == "constexpr" ||
                    t == "constinit")
                    isConst = true;
                if (t == "<")
                    ++angleDepth;
                else if (t == ">" && angleDepth > 0)
                    --angleDepth;
                if (t == "(" && angleDepth == 0) {
                    function = true;
                    break;
                }
                if (t == ";" || t == "=" || t == "{")
                    break;
                declToks.push_back(t);
                ++m;
            }
            if (function || declToks.empty())
                continue;
            StaticDecl s;
            s.name = declToks.back();
            s.file = path;
            s.line = line(k);
            s.isConst = isConst;
            s.scope = "function";
            s.annotations = anns;
            statics.push_back(std::move(s));
        }
    }

    void
    recordVariable(int startLine,
                   const std::vector<std::string> &declToks,
                   const std::vector<Annotation> &annotations,
                   const std::string &enclosingClass,
                   bool hasInitializer)
    {
        bool isStatic = false, isConst = false, isMutable = false;
        for (const auto &t : declToks) {
            if (t == "static")
                isStatic = true;
            else if (t == "const" || t == "constexpr" ||
                     t == "constinit")
                isConst = true;
            else if (t == "mutable")
                isMutable = true;
        }
        (void)isMutable;

        // The declarator ends at the first '=': initializer tokens
        // must not be mistaken for the name (`bool on = false`).
        std::size_t declEnd = declToks.size();
        for (std::size_t k = 0; k < declToks.size(); ++k) {
            if (declToks[k] == "=") {
                declEnd = k;
                break;
            }
        }

        // Name: last identifier before any initializer/array suffix.
        std::string name;
        std::string type;
        for (std::size_t k = declEnd; k-- > 0;) {
            const std::string &t = declToks[k];
            if (t == "]" || t == "[")
                continue;
            if (!t.empty() && identStart(t[0])) {
                name = t;
                for (std::size_t m = 0; m < k; ++m) {
                    if (!type.empty())
                        type += ' ';
                    type += declToks[m];
                }
                break;
            }
        }
        if (name.empty())
            return;
        // Skip keywords that can't be names.
        if (name == "const" || name == "static" || name == "return")
            return;

        bool isAtomic = false, isSync = false;
        std::string joined = type + " " + name;
        if (joined.find("atomic") != std::string::npos)
            isAtomic = true;
        if (joined.find("mutex") != std::string::npos ||
            joined.find("condition_variable") != std::string::npos ||
            joined.find("once_flag") != std::string::npos)
            isSync = true;

        if (!enclosingClass.empty()) {
            FieldDecl f;
            f.name = name;
            f.type = type;
            f.line = startLine;
            f.isConst = isConst;
            f.isStatic = isStatic;
            f.isAtomic = isAtomic;
            f.isSync = isSync;
            f.annotations = annotations;
            if (!classes.empty() &&
                classes.back().name == enclosingClass) {
                classes.back().fields.push_back(std::move(f));
            } else {
                for (auto it = classes.rbegin(); it != classes.rend();
                     ++it) {
                    if (it->name == enclosingClass &&
                        it->file == path) {
                        it->fields.push_back(std::move(f));
                        break;
                    }
                }
            }
            return;
        }

        // Namespace scope: only initialized variables (or explicit
        // `static`) are credible data declarations; everything else
        // is a stray declaration we must not misindex.
        if (!isStatic && !hasInitializer)
            return;
        StaticDecl s;
        s.name = name;
        s.file = path;
        s.line = startLine;
        s.isConst = isConst;
        s.scope = "namespace";
        s.annotations = annotations;
        statics.push_back(std::move(s));
    }

    void
    parseClass(std::size_t &i, std::size_t end,
               const std::string &enclosing)
    {
        ++i; // class/struct/union
        // Gather `Name` or the qualified `Outer::Name` form used by
        // out-of-line nested definitions (`struct SweepEngine::Impl`).
        std::string written;
        std::string shortName = "<anon>";
        if (i < end && !text(i).empty() && identStart(text(i)[0]) &&
            !isAnnotationName(text(i))) {
            shortName = text(i);
            written = text(i);
            ++i;
            while (i + 1 < end && text(i) == "::" &&
                   !text(i + 1).empty() &&
                   identStart(text(i + 1)[0])) {
                shortName = text(i + 1);
                written += "::" + text(i + 1);
                i += 2;
            }
        }
        std::string name = written.empty() ? "<anon>" : written;
        const int classLine = line(i);
        std::vector<Annotation> classAnns;
        // Annotations (and alignas etc.) sit between name and the
        // base clause / body.
        while (i < end && text(i) != "{" && text(i) != ":" &&
               text(i) != ";") {
            if (!collectAnnotation(i, classAnns))
                ++i;
        }
        if (i >= end || text(i) == ";") {
            ++i; // forward declaration
            return;
        }
        if (text(i) == ":") { // base clause
            while (i < end && text(i) != "{")
                ++i;
        }
        if (text(i) != "{") {
            return;
        }
        std::size_t close = skipBalanced(i, "{", "}") - 1;
        std::string qualified =
            enclosing.empty() ? name : enclosing + "::" + name;
        std::size_t sep = qualified.rfind("::");
        std::string enclosingName =
            sep == std::string::npos ? "" : qualified.substr(0, sep);

        ClassDecl c;
        c.name = qualified;
        c.shortName = shortName;
        c.enclosing = enclosingName;
        c.file = path;
        c.line = classLine;
        c.annotations = std::move(classAnns);
        classes.push_back(std::move(c));

        std::size_t inner = i + 1;
        parseScope(inner, close, qualified);
        i = close + 1;
        while (i < end && text(i) != ";")
            ++i; // `struct X {} instance;` — instance names skipped
        ++i;
    }
};

} // namespace

std::vector<Token>
tokenize(const std::string &stripped)
{
    std::vector<Token> out;
    int lineNo = 1;
    bool lineStart = true;
    bool inPreproc = false;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        char c = stripped[i];
        if (c == '\n') {
            // A preprocessor line continues over a trailing '\'.
            if (inPreproc && i > 0 && stripped[i - 1] != '\\')
                inPreproc = false;
            ++lineNo;
            lineStart = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r')
            continue;
        if (lineStart && c == '#') {
            inPreproc = true;
        }
        lineStart = false;
        if (inPreproc)
            continue;
        if (identStart(c)) {
            std::size_t j = i;
            while (j < stripped.size() && identChar(stripped[j]))
                ++j;
            out.push_back({stripped.substr(i, j - i), lineNo});
            i = j - 1;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < stripped.size() &&
                   (identChar(stripped[j]) || stripped[j] == '.'))
                ++j;
            out.push_back({stripped.substr(i, j - i), lineNo});
            i = j - 1;
        } else if (c == ':' && i + 1 < stripped.size() &&
                   stripped[i + 1] == ':') {
            out.push_back({"::", lineNo});
            ++i;
        } else if (c == '-' && i + 1 < stripped.size() &&
                   stripped[i + 1] == '>') {
            out.push_back({"->", lineNo});
            ++i;
        } else {
            out.push_back({std::string(1, c), lineNo});
        }
    }
    return out;
}

std::string
lastIdentifier(const std::string &s)
{
    std::string last;
    std::size_t i = 0;
    while (i < s.size()) {
        if (identStart(s[i])) {
            std::size_t j = i;
            while (j < s.size() && identChar(s[j]))
                ++j;
            last = s.substr(i, j - i);
            i = j;
        } else {
            ++i;
        }
    }
    return last;
}

void
DeclIndex::addFile(const std::string &relPath,
                   const std::string &contents)
{
    SourceFile sf;
    sf.path = relPath;
    sf.raw = contents;
    sf.tokens = tokenize(stripCommentsAndStrings(contents));

    // Include graph from the raw text (strings are stripped in the
    // token stream, so harvest here).
    std::size_t pos = 0;
    while ((pos = contents.find("#include", pos)) !=
           std::string::npos) {
        std::size_t lineEnd = contents.find('\n', pos);
        std::string lineStr = contents.substr(
            pos, lineEnd == std::string::npos ? std::string::npos
                                              : lineEnd - pos);
        std::size_t q1 = lineStr.find_first_of("\"<");
        if (q1 != std::string::npos) {
            char closeCh = lineStr[q1] == '"' ? '"' : '>';
            std::size_t q2 = lineStr.find(closeCh, q1 + 1);
            if (q2 != std::string::npos)
                sf.includes.push_back(
                    lineStr.substr(q1 + 1, q2 - q1 - 1));
        }
        pos = lineEnd == std::string::npos ? contents.size() : lineEnd;
    }

    const SourceFile &stored =
        files_.emplace(relPath, std::move(sf)).first->second;
    Parser parser(stored.path, stored.tokens, _classes, _statics,
                  _functions);
    parser.run();
}

DeclIndex
DeclIndex::build(const std::string &rootDir,
                 const std::vector<std::string> &subdirs)
{
    namespace fs = std::filesystem;
    std::vector<std::string> relPaths;
    for (const auto &subdir : subdirs) {
        fs::path base = fs::path(rootDir) / subdir;
        std::error_code ec;
        for (fs::recursive_directory_iterator it(base, ec), endIt;
             it != endIt && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            std::string ext = it->path().extension().string();
            if (ext != ".hh" && ext != ".cc" && ext != ".cpp" &&
                ext != ".hpp")
                continue;
            relPaths.push_back(
                fs::relative(it->path(), rootDir).generic_string());
        }
    }
    std::sort(relPaths.begin(), relPaths.end());

    DeclIndex index;
    for (const auto &rel : relPaths) {
        std::ifstream in(fs::path(rootDir) / rel);
        std::ostringstream ss;
        ss << in.rdbuf();
        index.addFile(rel, ss.str());
    }
    return index;
}

const SourceFile *
DeclIndex::file(const std::string &relPath) const
{
    auto it = files_.find(relPath);
    return it == files_.end() ? nullptr : &it->second;
}

std::vector<std::string>
DeclIndex::filePaths() const
{
    std::vector<std::string> paths;
    for (const auto &[path, sf] : files_)
        paths.push_back(path);
    return paths;
}

const ClassDecl *
DeclIndex::findClass(const std::string &name) const
{
    const ClassDecl *shortMatch = nullptr;
    bool ambiguous = false;
    for (const auto &c : _classes) {
        if (c.name == name)
            return &c;
        if (c.shortName == name) {
            if (shortMatch)
                ambiguous = true;
            shortMatch = &c;
        }
    }
    return ambiguous ? nullptr : shortMatch;
}

bool
DeclIndex::classHasAnnotation(const ClassDecl &c,
                              const std::string &annotation) const
{
    for (const auto &a : c.annotations) {
        if (a.name == annotation)
            return true;
    }
    if (!c.enclosing.empty()) {
        for (const auto &outer : _classes) {
            if (outer.name == c.enclosing && outer.file == c.file)
                return classHasAnnotation(outer, annotation);
        }
    }
    return false;
}

} // namespace lint
} // namespace genie
