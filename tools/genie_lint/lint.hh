/**
 * @file
 * genie_lint: a simulator-specific static lint pass for the Genie
 * source tree.
 *
 * The rules encode correctness properties the simulator depends on but
 * a compiler cannot check:
 *
 *  - determinism:     no wall-clock or libc randomness (`rand()`,
 *                     `std::time`, `std::chrono::system_clock`,
 *                     `std::random_device`, ...) outside the sanctioned
 *                     deterministic RNG in src/sim/random.hh. One
 *                     nondeterministic call silently corrupts every
 *                     sweep result.
 *  - raw-output:      no `std::cout` / `std::cerr` / `printf` in
 *                     library code; all user-facing output must flow
 *                     through sim/logging so sweeps can silence it and
 *                     tests can capture it. String formatting
 *                     (`snprintf`/`vsnprintf`) is allowed.
 *  - include-guard:   headers under src/ use the canonical
 *                     GENIE_<DIR>_<FILE>_HH guard so guards never
 *                     collide as the tree grows.
 *  - static-state:    no mutable global/function-local `static` (or
 *                     `thread_local`) variables in src/ — each Soc owns
 *                     its own EventQueue precisely so thousands of
 *                     sweeps can run concurrently; hidden shared state
 *                     breaks that.
 *  - raw-new-delete:  no raw `new` / `delete` outside the EventQueue's
 *                     documented owning-pointer heap
 *                     (src/sim/event_queue.cc); everything else uses
 *                     RAII ownership.
 *  - sweep-determinism: src/dse may not observe thread or process
 *                     identity (`std::this_thread::get_id`,
 *                     `pthread_self`, `gettid`, `getpid`). Sweep
 *                     results and genie-sweep-1 journal records must
 *                     be byte-identical across thread counts, so
 *                     nothing scheduler-dependent may reach a
 *                     DesignPoint or the journal.
 *
 * The scan is line-based over comment- and string-stripped text: fast,
 * dependency-free, and deliberately heuristic. Grandfathered or
 * intentional violations live in a checked-in suppression file
 * (tools/genie_lint/suppressions.txt), one `<rule> <path>` pair per
 * line, so every exception is visible in review.
 */

#ifndef GENIE_TOOLS_GENIE_LINT_LINT_HH
#define GENIE_TOOLS_GENIE_LINT_LINT_HH

#include <string>
#include <utility>
#include <vector>

namespace genie
{
namespace lint
{

/** One rule violation at a specific source line. */
struct Finding
{
    std::string rule;    ///< rule identifier (e.g. "determinism")
    std::string file;    ///< path relative to the repo root
    int line = 0;        ///< 1-based line number
    std::string message; ///< human-readable explanation
};

/** A set of `<rule> <path>` suppression pairs. */
class Suppressions
{
  public:
    /** Parse suppression text: one `<rule> <path>` pair per line;
     * blank lines and lines starting with '#' are ignored. A rule of
     * "*" suppresses every rule for the path. */
    static Suppressions parse(const std::string &text);

    /** Load from a file; returns an empty set if unreadable. */
    static Suppressions load(const std::string &path);

    void add(const std::string &rule, const std::string &path);

    /** True if @p rule is suppressed for @p file. */
    bool matches(const std::string &rule, const std::string &file) const;

    std::size_t size() const { return entries.size(); }

  private:
    std::vector<std::pair<std::string, std::string>> entries;
};

/**
 * Replace comments, string literals, and character literals with
 * spaces, preserving newlines so line numbers survive. Keeps the
 * lexer honest: `// a new miss` or `"printf("` never trip a rule.
 */
std::string stripCommentsAndStrings(const std::string &source);

/**
 * Lint one in-memory source file. @p relPath is the path relative to
 * the repo root (rules use it to scope exemptions such as
 * src/sim/random.hh). Suppressions are NOT applied here; callers
 * filter with Suppressions::matches so tests can see raw findings.
 */
std::vector<Finding> lintSource(const std::string &relPath,
                                const std::string &contents);

/**
 * Recursively lint every .hh/.cc file under @p rootDir/@p subdir,
 * applying @p suppressions. Files are visited in sorted order so
 * output is deterministic. @p filesScanned (optional) receives the
 * number of files examined.
 */
std::vector<Finding> lintTree(const std::string &rootDir,
                              const std::string &subdir,
                              const Suppressions &suppressions,
                              std::size_t *filesScanned = nullptr);

/** Expected include guard for a header path such as "src/mem/bus.hh"
 * (-> "GENIE_MEM_BUS_HH"). Empty if @p relPath is not under src/. */
std::string expectedGuard(const std::string &relPath);

} // namespace lint
} // namespace genie

#endif // GENIE_TOOLS_GENIE_LINT_LINT_HH
