/**
 * @file
 * The Genie-Analyze declaration index: a project-wide, cross-TU model
 * of classes, fields, statics, function bodies, and the include graph,
 * built by a pragmatic token-level parser (no libclang dependency).
 *
 * The index is the substrate the concurrency rule family
 * (concurrency.hh) runs on: the shared-state rule walks classes and
 * fields looking for annotation coverage, the guarded-by rule resolves
 * field accesses against function bodies and lock statements, and the
 * inventory export archives the annotated map of shared state that the
 * parallel event kernel work builds against.
 *
 * Parsing is deliberately heuristic but honest about it: it tokenizes
 * comment- and string-stripped text, tracks brace/angle nesting, and
 * recognizes the declaration shapes this codebase actually uses
 * (classes with annotations, members with brace or `=` initializers,
 * inline and out-of-line method bodies, anonymous namespaces,
 * function-local statics). It does not try to be a C++ front end; the
 * unit tests in tests/test_verify.cc pin the supported shapes.
 */

#ifndef GENIE_TOOLS_GENIE_LINT_INDEX_HH
#define GENIE_TOOLS_GENIE_LINT_INDEX_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace genie
{
namespace lint
{

/** One lexical token of a stripped source file. */
struct Token
{
    std::string text;
    int line = 0;
};

/** One GENIE_* thread-safety annotation with its argument tokens. */
struct Annotation
{
    std::string name; ///< e.g. "GENIE_GUARDED_BY"
    std::string arg;  ///< space-joined argument tokens ("" if none)
    int line = 0;
};

/** A data member of a class. */
struct FieldDecl
{
    std::string name;
    std::string type; ///< space-joined declaration tokens before name
    int line = 0;
    bool isConst = false;   ///< const/constexpr/constinit declaration
    bool isStatic = false;  ///< static data member
    bool isAtomic = false;  ///< type mentions std::atomic
    bool isSync = false;    ///< mutex/condition_variable/once_flag
    std::vector<Annotation> annotations;
};

/** A member function declaration (with or without inline body). */
struct MethodDecl
{
    std::string name;
    int line = 0;
    bool hasBody = false;
    std::vector<Annotation> annotations;
};

/** A class or struct definition. */
struct ClassDecl
{
    std::string name;      ///< qualified: "Outer::Inner" for nested
    std::string shortName; ///< last component
    std::string enclosing; ///< qualified enclosing class name or ""
    std::string file;
    int line = 0;
    std::vector<Annotation> annotations; ///< class-level (after name)
    std::vector<FieldDecl> fields;
    std::vector<MethodDecl> methods;
};

/** A mutable-candidate variable at namespace or function scope. */
struct StaticDecl
{
    std::string name;
    std::string file;
    int line = 0;
    bool isConst = false;
    /** "namespace" (incl. anonymous namespaces) or "function". */
    std::string scope;
    std::vector<Annotation> annotations;
};

/**
 * Any function body: a free function, an inline method, or an
 * out-of-line `Class::method` definition. Token indices refer to the
 * owning SourceFile's token vector, so rules can scan body extents.
 */
struct FunctionDef
{
    std::string name;      ///< unqualified ("run", "~EventQueue")
    std::string className; ///< declaring class short name, or ""
    std::string file;
    int line = 0;
    std::size_t tokenBegin = 0; ///< index of the opening '{'
    std::size_t tokenEnd = 0;   ///< index of the matching '}'
    std::vector<Annotation> annotations;
};

/** One indexed file: raw text, token stream, includes. */
struct SourceFile
{
    std::string path; ///< repo-relative
    std::string raw;
    std::vector<Token> tokens;
    std::vector<std::string> includes; ///< as written in #include
};

/** Tokenize comment/string-stripped C++; preprocessor lines are
 * skipped (includes are harvested separately from the raw text). */
std::vector<Token> tokenize(const std::string &stripped);

class DeclIndex
{
  public:
    /** Parse @p contents as @p relPath and merge into the index. */
    void addFile(const std::string &relPath,
                 const std::string &contents);

    /**
     * Index every .hh/.cc/.hpp/.cpp under @p rootDir/<subdir> for
     * each subdir, in sorted path order (deterministic output).
     */
    static DeclIndex build(const std::string &rootDir,
                           const std::vector<std::string> &subdirs);

    const std::vector<ClassDecl> &classes() const { return _classes; }
    const std::vector<StaticDecl> &statics() const { return _statics; }
    const std::vector<FunctionDef> &
    functions() const
    {
        return _functions;
    }

    /** Indexed file by repo-relative path; null if absent. */
    const SourceFile *file(const std::string &relPath) const;

    /** All indexed paths, sorted. */
    std::vector<std::string> filePaths() const;

    /** Class by qualified name, else by unique short name; null if
     * absent or ambiguous. */
    const ClassDecl *findClass(const std::string &name) const;

    /** True if @p c (or an enclosing class, transitively) carries a
     * class-level annotation named @p annotation. */
    bool classHasAnnotation(const ClassDecl &c,
                            const std::string &annotation) const;

    std::size_t numFiles() const { return files_.size(); }

  private:
    std::vector<ClassDecl> _classes;
    std::vector<StaticDecl> _statics;
    std::vector<FunctionDef> _functions;
    std::map<std::string, SourceFile> files_;
};

/** Last identifier token in @p s ("" if none): the name a lock
 * expression such as `own.mutex` resolves to. */
std::string lastIdentifier(const std::string &s);

} // namespace lint
} // namespace genie

#endif // GENIE_TOOLS_GENIE_LINT_INDEX_HH
