#include "concurrency.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace genie
{
namespace lint
{

namespace
{

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
fieldAnnotated(const FieldDecl &f)
{
    return !f.annotations.empty();
}

// ---------------------------------------------------------------- //
// shared-state
// ---------------------------------------------------------------- //

void
checkSharedState(const DeclIndex &index, std::vector<Finding> &out)
{
    for (const auto &s : index.statics()) {
        if (!startsWith(s.file, "src/"))
            continue;
        if (s.isConst || !s.annotations.empty())
            continue;
        out.push_back(
            {"shared-state", s.file, s.line,
             "mutable " + s.scope + "-scope static '" + s.name +
                 "' has no thread-safety annotation; declare its "
                 "sharing story with GENIE_SHARED_OK(reason) or "
                 "GENIE_THREAD_LOCAL_OK (src/sim/thread_safety.hh)"});
    }

    for (const auto &c : index.classes()) {
        if (!inSharedSet(c.file))
            continue;
        bool classCovered =
            index.classHasAnnotation(c, "GENIE_THREAD_LOCAL_OK") ||
            index.classHasAnnotation(c, "GENIE_SHARED_OK");
        for (const auto &f : c.fields) {
            if (f.isConst || f.isSync)
                continue;
            if (fieldAnnotated(f) || classCovered)
                continue;
            out.push_back(
                {"shared-state", c.file, f.line,
                 "mutable member '" + c.name + "::" + f.name +
                     "' is reachable from sweep workers and the main "
                     "thread but has no thread-safety annotation; add "
                     "GENIE_GUARDED_BY(m), GENIE_SHARED_OK(reason), "
                     "or GENIE_THREAD_LOCAL_OK "
                     "(src/sim/thread_safety.hh)"});
        }
    }
}

// ---------------------------------------------------------------- //
// guarded-by
// ---------------------------------------------------------------- //

/** Split the joined argument string of a lock declaration on
 * top-level commas and return the last identifier of each piece. */
std::vector<std::string>
lockArgNames(const std::vector<Token> &toks, std::size_t open,
             std::size_t close)
{
    std::vector<std::string> names;
    std::string cur;
    int depth = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
        const std::string &t = toks[k].text;
        if (t == "(" || t == "[" || t == "{" || t == "<")
            ++depth;
        else if (t == ")" || t == "]" || t == "}" || t == ">")
            --depth;
        if (t == "," && depth == 0) {
            names.push_back(lastIdentifier(cur));
            cur.clear();
            continue;
        }
        cur += t;
        cur += ' ';
    }
    if (!cur.empty())
        names.push_back(lastIdentifier(cur));
    return names;
}

/** Index just past the balanced group opening at @p i (tokens). */
std::size_t
matchGroup(const std::vector<Token> &toks, std::size_t i,
           const std::string &open, const std::string &close)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == open) {
            ++depth;
        } else if (toks[i].text == close) {
            if (--depth == 0)
                return i;
        }
    }
    return toks.size();
}

/**
 * True if some lock statement in [begin, pos) of @p toks acquires
 * mutex @p m: an RAII guard declaration whose argument resolves to
 * @p m, or a direct `m.lock()` call.
 */
bool
lockHeldBefore(const std::vector<Token> &toks, std::size_t begin,
               std::size_t pos, const std::string &m)
{
    for (std::size_t k = begin; k < pos; ++k) {
        const std::string &t = toks[k].text;
        if (t == "lock_guard" || t == "scoped_lock" ||
            t == "unique_lock") {
            // Skip template arguments to the guard's ctor call.
            std::size_t p = k + 1;
            while (p < pos && toks[p].text != "(")
                ++p;
            if (p >= pos)
                continue;
            std::size_t close = matchGroup(toks, p, "(", ")");
            for (const auto &name : lockArgNames(toks, p, close)) {
                if (name == m)
                    return true;
            }
            k = std::min(close, pos);
        } else if (t == m && k + 2 < pos && toks[k + 1].text == "." &&
                   toks[k + 2].text == "lock") {
            return true;
        }
    }
    return false;
}

bool
requiresMutex(const std::vector<Annotation> &anns,
              const std::string &m)
{
    for (const auto &a : anns) {
        if (a.name == "GENIE_REQUIRES" && lastIdentifier(a.arg) == m)
            return true;
    }
    return false;
}

void
checkGuardedBy(const DeclIndex &index, std::vector<Finding> &out)
{
    for (const auto &c : index.classes()) {
        // Collect this class's guarded fields.
        std::vector<std::pair<std::string, std::string>> guarded;
        for (const auto &f : c.fields) {
            for (const auto &a : f.annotations) {
                if (a.name == "GENIE_GUARDED_BY")
                    guarded.emplace_back(f.name,
                                         lastIdentifier(a.arg));
            }
        }
        if (guarded.empty())
            continue;

        for (const auto &fn : index.functions()) {
            // Scope: functions in the declaring file (they can reach
            // the fields through any instance) plus out-of-line
            // methods of the class anywhere.
            if (fn.file != c.file && fn.className != c.shortName)
                continue;
            if (fn.name == c.shortName ||
                fn.name == "~" + c.shortName)
                continue; // single-owner construction/destruction
            const SourceFile *sf = index.file(fn.file);
            if (!sf)
                continue;
            const auto &toks = sf->tokens;
            for (const auto &[field, mutex] : guarded) {
                if (requiresMutex(fn.annotations, mutex))
                    continue;
                for (std::size_t k = fn.tokenBegin + 1;
                     k < fn.tokenEnd && k < toks.size(); ++k) {
                    if (toks[k].text != field)
                        continue;
                    // Qualified names (Foo::field) are type-ish uses,
                    // not object accesses.
                    if (k > 0 && toks[k - 1].text == "::")
                        continue;
                    if (lockHeldBefore(toks, fn.tokenBegin + 1, k,
                                       mutex))
                        continue;
                    out.push_back(
                        {"guarded-by", fn.file, toks[k].line,
                         "'" + c.name + "::" + field +
                             "' is GENIE_GUARDED_BY(" + mutex +
                             ") but this access in " + fn.name +
                             "() has no lock of '" + mutex +
                             "' in scope; take the lock or annotate "
                             "the function GENIE_REQUIRES(" + mutex +
                             ")"});
                    break; // one finding per field per function
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// event-affinity
// ---------------------------------------------------------------- //

bool
isMemberCall(const std::vector<Token> &toks, std::size_t i)
{
    return i > 0 &&
           (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
           i + 1 < toks.size() && toks[i + 1].text == "(";
}

/** Count top-level commas in the call group opening at @p open. */
int
topLevelCommas(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    int commas = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        if (t == "(" || t == "[" || t == "{") {
            ++depth;
        } else if (t == ")" || t == "]" || t == "}") {
            if (--depth == 0)
                break;
        } else if (t == "," && depth == 1) {
            ++commas;
        }
    }
    return commas;
}

void
checkEventAffinity(const DeclIndex &index, std::vector<Finding> &out)
{
    static const char *const setters[] = {
        "setTracer", "setStatRegistry", "setProfiler",
        "setFaultInjector"};

    for (const auto &path : index.filePaths()) {
        if (!startsWith(path, "src/") || startsWith(path, "src/sim/"))
            continue;
        const SourceFile *sf = index.file(path);
        const auto &toks = sf->tokens;

        bool hasTaggedSchedule = false;
        std::vector<std::size_t> descheduleSites;

        for (std::size_t i = 0; i < toks.size(); ++i) {
            const std::string &t = toks[i].text;
            bool stdSched = t == "schedule" || t == "scheduleIn" ||
                            t == "scheduleAt" || t == "scheduleFlow" ||
                            t == "scheduleFlowIn";
            // Genie-Turbo raw-dispatch variants: (tick, fn, ctx,
            // arg, kind), so a kind-tagged call has at least five
            // arguments instead of three.
            bool rawSched = t == "scheduleFlowRaw" ||
                            t == "scheduleFlowRawIn" ||
                            t == "scheduleRaw";
            if ((stdSched || rawSched) && isMemberCall(toks, i)) {
                // A kind-tagged call has at least three arguments:
                // tick, action, kind. (A stripped string-literal kind
                // leaves its comma behind, so the count survives.)
                if (topLevelCommas(toks, i + 1) >=
                    (rawSched ? 4u : 2u)) {
                    hasTaggedSchedule = true;
                } else {
                    out.push_back(
                        {"event-affinity", path, toks[i].line,
                         "un-tagged " + t + "() call: every schedule "
                         "site outside src/sim must pass a kind tag "
                         "naming the owning component, so the "
                         "parallel kernel can enforce queue affinity "
                         "at the sync boundary"});
                }
            } else if (t == "deschedule" && isMemberCall(toks, i)) {
                descheduleSites.push_back(i);
            } else {
                for (const char *setter : setters) {
                    if (t != setter || !isMemberCall(toks, i))
                        continue;
                    if (startsWith(path, "src/core/"))
                        break; // the Soc layer owns its queues
                    // Allowed when this function body constructed the
                    // Soc itself: a single-owner setup phase.
                    bool setupPhase = false;
                    for (const auto &fn : index.functions()) {
                        if (fn.file != path ||
                            fn.tokenBegin >= i || fn.tokenEnd <= i)
                            continue;
                        for (std::size_t k = fn.tokenBegin; k < i;
                             ++k) {
                            if (toks[k].text == "Soc" ||
                                toks[k].text == "MultiSoc") {
                                setupPhase = true;
                                break;
                            }
                        }
                        if (setupPhase)
                            break;
                    }
                    if (!setupPhase) {
                        out.push_back(
                            {"event-affinity", path, toks[i].line,
                             std::string(setter) +
                                 "() mutates an EventQueue "
                                 "rendezvous slot outside the "
                                 "owning queue's context; only the "
                                 "Soc layer (src/core) or a function "
                                 "that locally constructed the Soc "
                                 "may rebind rendezvous slots"});
                    }
                    break;
                }
            }
        }

        if (!hasTaggedSchedule) {
            for (std::size_t i : descheduleSites) {
                out.push_back(
                    {"event-affinity", path, toks[i].line,
                     "deschedule() in a translation unit with no "
                     "kind-tagged schedule site: a component may only "
                     "cancel events it scheduled itself (queue "
                     "affinity)"});
            }
        }
    }
}

// ---------------------------------------------------------------- //
// flow-site
// ---------------------------------------------------------------- //

/**
 * A translation unit that records spans (it calls tracerFor) must
 * schedule follow-on work through the flow-aware variants —
 * scheduleFlow()/scheduleFlowIn()/scheduleCycles() — so the event
 * queue captures each event's causal origin. A plain schedule()
 * inside a traced TU silently drops the flow edge: the span still
 * renders, but critical-path attribution sees a hole and falls back
 * to an inferred hop. src/sim (the mechanism itself) and src/trace
 * (the Tracer) are exempt.
 */
void
checkFlowSite(const DeclIndex &index, std::vector<Finding> &out)
{
    for (const auto &path : index.filePaths()) {
        if (!startsWith(path, "src/") ||
            startsWith(path, "src/sim/") ||
            startsWith(path, "src/trace/"))
            continue;
        const SourceFile *sf = index.file(path);
        const auto &toks = sf->tokens;

        bool traced = false;
        for (const auto &tok : toks) {
            if (tok.text == "tracerFor") {
                traced = true;
                break;
            }
        }
        if (!traced)
            continue;

        for (std::size_t i = 0; i < toks.size(); ++i) {
            const std::string &t = toks[i].text;
            if ((t == "schedule" || t == "scheduleIn" ||
                 t == "scheduleAt" || t == "scheduleRaw") &&
                isMemberCall(toks, i)) {
                out.push_back(
                    {"flow-site", path, toks[i].line,
                     "plain " + t + "() in a traced translation "
                     "unit (it calls tracerFor): components that "
                     "record spans must schedule through "
                     "scheduleFlow()/scheduleFlowIn()/"
                     "scheduleCycles() (or their Raw variants) so "
                     "the causal origin of the event is captured "
                     "and critical-path attribution stays complete"});
            }
        }
    }
}

// ---------------------------------------------------------------- //
// ambient-nondeterminism
// ---------------------------------------------------------------- //

void
checkAmbient(const DeclIndex &index, std::vector<Finding> &out)
{
    for (const auto &path : index.filePaths()) {
        const SourceFile *sf = index.file(path);
        const auto &toks = sf->tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const std::string &t = toks[i].text;
            if (t == "getenv" || t == "secure_getenv") {
                out.push_back(
                    {"ambient-nondeterminism", path, toks[i].line,
                     "environment reads make behavior depend on "
                     "ambient process state; take configuration "
                     "through explicit parameters instead"});
            } else if (t == "setlocale" || t == "imbue" ||
                       (t == "locale" && i >= 2 &&
                        toks[i - 1].text == "::" &&
                        toks[i - 2].text == "std")) {
                out.push_back(
                    {"ambient-nondeterminism", path, toks[i].line,
                     "locale-sensitive formatting varies across "
                     "hosts; all serialized output must use the "
                     "classic locale the defaults provide"});
            } else if ((t == "map" || t == "multimap" || t == "set" ||
                        t == "multiset") &&
                       i >= 2 && toks[i - 1].text == "::" &&
                       toks[i - 2].text == "std" &&
                       i + 1 < toks.size() &&
                       toks[i + 1].text == "<") {
                // Pointer-keyed ordered containers iterate in
                // allocation order, which ASLR randomizes.
                bool keyIsPointer = false;
                int depth = 0;
                bool mapLike = t == "map" || t == "multimap";
                for (std::size_t k = i + 1; k < toks.size(); ++k) {
                    const std::string &u = toks[k].text;
                    if (u == "<") {
                        ++depth;
                    } else if (u == ">") {
                        if (--depth == 0)
                            break;
                    } else if (u == "," && depth == 1 && mapLike) {
                        break; // end of the key type
                    } else if (u == "*" && depth == 1) {
                        keyIsPointer = true;
                    } else if (u == "(" || u == ";") {
                        break; // not a template argument list
                    }
                }
                if (keyIsPointer) {
                    out.push_back(
                        {"ambient-nondeterminism", path, toks[i].line,
                         "pointer-keyed std::" + t +
                             " iterates in allocation order, which "
                             "ASLR randomizes run to run; key on a "
                             "stable id (name, index) instead"});
                }
            }
        }
    }
}

} // namespace

bool
inSharedSet(const std::string &relPath)
{
    return startsWith(relPath, "src/dse/") ||
           startsWith(relPath, "src/trace/") ||
           startsWith(relPath, "src/metrics/") ||
           relPath == "src/sim/stats.hh";
}

std::vector<Finding>
analyzeConcurrency(const DeclIndex &index)
{
    std::vector<Finding> out;
    checkSharedState(index, out);
    checkGuardedBy(index, out);
    checkEventAffinity(index, out);
    checkFlowSite(index, out);
    checkAmbient(index, out);
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         return a.line < b.line;
                     });
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
sharedStateInventoryJson(const DeclIndex &index)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"genie-analyze-1\",\n";
    os << "  \"files\": " << index.numFiles() << ",\n";

    os << "  \"statics\": [";
    bool first = true;
    for (const auto &s : index.statics()) {
        if (!startsWith(s.file, "src/") || s.isConst)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"" << jsonEscape(s.name)
           << "\", \"file\": \"" << jsonEscape(s.file)
           << "\", \"line\": " << s.line << ", \"scope\": \""
           << s.scope << "\", \"annotations\": [";
        for (std::size_t i = 0; i < s.annotations.size(); ++i) {
            if (i)
                os << ", ";
            os << "{\"name\": \"" << jsonEscape(s.annotations[i].name)
               << "\", \"arg\": \""
               << jsonEscape(s.annotations[i].arg) << "\"}";
        }
        os << "]}";
    }
    os << (first ? "" : "\n  ") << "],\n";

    os << "  \"classes\": [";
    first = true;
    for (const auto &c : index.classes()) {
        if (!inSharedSet(c.file))
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"name\": \"" << jsonEscape(c.name)
           << "\", \"file\": \"" << jsonEscape(c.file)
           << "\", \"line\": " << c.line << ", \"annotations\": [";
        for (std::size_t i = 0; i < c.annotations.size(); ++i) {
            if (i)
                os << ", ";
            os << "{\"name\": \"" << jsonEscape(c.annotations[i].name)
               << "\", \"arg\": \""
               << jsonEscape(c.annotations[i].arg) << "\"}";
        }
        os << "], \"fields\": [";
        bool firstField = true;
        for (const auto &f : c.fields) {
            os << (firstField ? "\n" : ",\n");
            firstField = false;
            os << "      {\"name\": \"" << jsonEscape(f.name)
               << "\", \"line\": " << f.line << ", \"const\": "
               << (f.isConst ? "true" : "false") << ", \"atomic\": "
               << (f.isAtomic ? "true" : "false") << ", \"sync\": "
               << (f.isSync ? "true" : "false")
               << ", \"annotations\": [";
            for (std::size_t i = 0; i < f.annotations.size(); ++i) {
                if (i)
                    os << ", ";
                os << "{\"name\": \""
                   << jsonEscape(f.annotations[i].name)
                   << "\", \"arg\": \""
                   << jsonEscape(f.annotations[i].arg) << "\"}";
            }
            os << "]}";
        }
        os << (firstField ? "" : "\n    ") << "]}";
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

} // namespace lint
} // namespace genie
