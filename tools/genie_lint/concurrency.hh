/**
 * @file
 * The Genie-Analyze concurrency rule family, running on the cross-TU
 * declaration index (index.hh). Five rules:
 *
 *  - shared-state: every mutable namespace-scope or function-local
 *    static in src/, and every mutable data member of a type declared
 *    in the shared-reachability set (src/dse, src/trace, src/metrics,
 *    src/sim/stats.hh — the types both SweepEngine workers and the
 *    main thread can touch), must carry a thread-safety annotation
 *    from src/sim/thread_safety.hh, either on the field or on the
 *    (possibly enclosing) class. Const and sync-primitive members
 *    (mutex/condition_variable/once_flag) are exempt: the former are
 *    immutable, the latter are the synchronization itself.
 *
 *  - guarded-by: every access to a GENIE_GUARDED_BY(m) field inside
 *    the owning class's methods — and any function defined in the
 *    class's declaring file — must provably hold m: a lexically
 *    earlier lock_guard/scoped_lock/unique_lock of m (or m.lock())
 *    in the same function body, a GENIE_REQUIRES(m) annotation on the
 *    function, or the function being the class's constructor or
 *    destructor (single-owner phases). Lexical scope is a heuristic
 *    (early unlock is not modeled); the TSan CI job is the dynamic
 *    backstop.
 *
 *  - event-affinity: EventQueue mutation must happen in the owning
 *    queue's context. Every schedule()/scheduleIn()/scheduleFlow()/
 *    scheduleFlowIn() call site in src/ outside src/sim must carry a
 *    kind tag (the third argument) — the kind names the owning
 *    component and registers the site in the affinity whitelist the
 *    parallel kernel will enforce at runtime. deschedule() is allowed
 *    only in a TU that also owns a kind-tagged schedule site (you may
 *    only cancel what you scheduled). Rendezvous-slot setters
 *    (setTracer/setStatRegistry/setProfiler/setFaultInjector) are
 *    allowed in src/core (the Soc layer owns its queues) or in a
 *    function that locally constructed the Soc — i.e. a single-owner
 *    setup phase.
 *
 *  - flow-site: a TU that records spans (it calls tracerFor) must
 *    schedule through the flow-aware variants — scheduleFlow()/
 *    scheduleFlowIn()/scheduleCycles() — so the event queue captures
 *    each event's causal origin; a plain schedule() there silently
 *    drops the flow edge and leaves a hole in critical-path
 *    attribution. src/sim (the mechanism) and src/trace (the Tracer)
 *    are exempt.
 *
 *  - ambient-nondeterminism: no reading ambient process state that
 *    varies across hosts or runs: getenv/secure_getenv, setlocale/
 *    std::locale/imbue, and pointer-keyed ordered containers
 *    (std::map/set keyed on a pointer type iterate in allocation
 *    order, which ASLR randomizes run to run). Complements the
 *    line-level determinism rule (wall clocks, libc randomness) in
 *    lint.cc.
 *
 * Findings are raw (unsuppressed); callers filter with
 * Suppressions::matches exactly like lintSource findings.
 */

#ifndef GENIE_TOOLS_GENIE_LINT_CONCURRENCY_HH
#define GENIE_TOOLS_GENIE_LINT_CONCURRENCY_HH

#include <string>
#include <vector>

#include "index.hh"
#include "lint.hh"

namespace genie
{
namespace lint
{

/** True if @p relPath is in the shared-reachability set whose types
 * both SweepEngine workers and the main thread can touch. */
bool inSharedSet(const std::string &relPath);

/** Run the whole concurrency rule family over @p index. */
std::vector<Finding> analyzeConcurrency(const DeclIndex &index);

/**
 * The shared-state inventory: a deterministic JSON document listing
 * every annotated static and every class (with per-field annotations)
 * in the shared-reachability set — the machine-readable map of
 * Genie's mutable shared state that ROADMAP items 1-2 build against.
 */
std::string sharedStateInventoryJson(const DeclIndex &index);

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

} // namespace lint
} // namespace genie

#endif // GENIE_TOOLS_GENIE_LINT_CONCURRENCY_HH
