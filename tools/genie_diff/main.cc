/**
 * @file
 * genie_diff: structural comparison of two Genie JSON documents
 * (genie-stats-1 exports, genie-bench-1 bench summaries, sweep
 * results) under per-metric tolerance rules — the CI gate for "did
 * the numbers move?".
 *
 *   genie_diff baseline.json candidate.json
 *   genie_diff BENCH_baseline.json BENCH_genie.json \
 *              --tol='*.sim.total_us=0.5%' --report=diff.md
 *   genie_diff a.json b.json --tol='*cache_miss_rate*=ignore' \
 *              --strict
 *
 * Rules are first-match-wins, CLI rules first; the built-in tail
 * ignores host-derived numbers (wall_ms, wall_ns, meps,
 * points_per_sec) since those never compare across machines.
 * --no-default-rules drops that tail. Keys only in the candidate are
 * warnings (a new metric must not break stored baselines) unless
 * --strict; keys only in the baseline always fail.
 *
 * exit: 0 comparison clean, 1 differences found, 2 usage or
 *       unreadable/invalid input.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scope/diff.hh"
#include "scope/json.hh"

namespace
{

using namespace genie;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: genie_diff <baseline.json> <candidate.json>\n"
        "         [--tol=GLOB=PCT | --tol=GLOB=ignore ...]\n"
        "         [--no-default-rules] [--strict] "
        "[--report=FILE]\n"
        "exit:  0 clean, 1 differences, 2 usage/error\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    DiffOptions options;
    bool defaultRules = true;
    std::string reportPath;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--tol=", 6) == 0) {
            DiffRule rule;
            std::string error;
            if (!parseDiffRule(arg + 6, rule, error)) {
                std::fprintf(stderr, "error: %s\n", error.c_str());
                return 2;
            }
            options.rules.push_back(std::move(rule));
        } else if (std::strcmp(arg, "--no-default-rules") == 0) {
            defaultRules = false;
        } else if (std::strcmp(arg, "--strict") == 0) {
            options.strict = true;
        } else if (std::strncmp(arg, "--report=", 9) == 0) {
            reportPath = arg + 9;
        } else if (arg[0] == '-' && arg[1] == '-') {
            return usage();
        } else {
            files.emplace_back(arg);
        }
    }
    if (files.size() != 2)
        return usage();
    if (defaultRules) {
        for (auto &r : defaultGenieDiffRules())
            options.rules.push_back(std::move(r));
    }

    JsonParseResult docs[2];
    for (int i = 0; i < 2; ++i) {
        docs[i] = parseJsonFile(files[i]);
        if (!docs[i].ok) {
            std::fprintf(stderr, "error: %s: %s (line %zu, col "
                         "%zu)\n",
                         files[i].c_str(), docs[i].error.c_str(),
                         docs[i].errorLine, docs[i].errorColumn);
            return 2;
        }
    }

    DiffResult result =
        diffJson(docs[0].value, docs[1].value, options);

    std::printf("genie_diff: %s vs %s: %s (%zu leaves compared, "
                "%zu ignored; %zu failed, %zu warned, %zu within "
                "tolerance)\n",
                files[0].c_str(), files[1].c_str(),
                result.clean() ? "PASS" : "FAIL",
                result.comparedLeaves, result.ignoredLeaves,
                result.failures.size(), result.warnings.size(),
                result.tolerated.size());
    for (const auto &e : result.failures) {
        std::printf("  FAIL %s: %s -> %s", e.path.c_str(),
                    e.before.c_str(), e.after.c_str());
        if (e.relDeltaPct > 0.0)
            std::printf(" (%.4f%% > %.4f%%)", e.relDeltaPct,
                        e.tolerancePct);
        std::printf("\n");
    }
    for (const auto &e : result.warnings)
        std::printf("  warn %s: added (%s)\n", e.path.c_str(),
                    e.after.c_str());

    if (!reportPath.empty()) {
        std::string text =
            renderDiffReport(result, files[0], files[1]);
        std::ofstream out(reportPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         reportPath.c_str());
            return 2;
        }
        out << text;
    }
    return result.clean() ? 0 : 1;
}
