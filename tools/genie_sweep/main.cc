/**
 * @file
 * genie_sweep: the restartable design-space-sweep service CLI.
 *
 * Runs one of the paper's Figure 3 design spaces for a workload under
 * the SweepEngine — work-stealing scheduling, result-cache dedupe,
 * and a checkpoint journal so an interrupted sweep resumes where it
 * stopped:
 *
 *   genie_sweep stencil-stencil2d --space=fig6 --out=results.json
 *   genie_sweep md-knn --space=fig8 --filter="lanes=1,4" \
 *               --journal=sweep.jsonl
 *   genie_sweep md-knn --space=fig8 --filter="lanes=1,4" \
 *               --resume=sweep.jsonl --out=results.json
 *
 * Spaces: single (just the base config), isolated (compute-only lanes
 * x partitions), dma (Fig. 8 DMA space, all optimizations), fig6 (DMA
 * optimization cross-product), cache (Fig. 8 cache space), fig8 (dma
 * + cache concatenated), acp (coherency-port lanes x partitions),
 * iface (spin/interrupt x dma/acp/cache — the three-regime
 * SoC-interface space). `key=value` pairs (core/config_parse.hh) set
 * the base config the space is enumerated around; --filter carves an
 * axis-value subset.
 *
 * --resume=FILE preloads FILE into the result cache and, unless
 * --journal names a different file, keeps appending to it, so the
 * same command line is simply re-run after an interruption. Interior
 * corrupt journal lines are skipped loudly and reported as a
 * corrupt_lines count. --max-points=N stops cleanly after N fresh
 * simulations (exit code 4) — the deterministic way to exercise
 * interruption in CI. SIGINT/SIGTERM request a graceful drain:
 * in-flight points finish and checkpoint, then the tool exits 5 with
 * resume instructions — ctrl-C never tears a journal.
 *
 * --store=DIR adds the durable content-addressed ResultStore as a
 * second memoization tier behind the in-memory cache (shared with
 * genie_serve daemons pointed at the same directory);
 * --store-budget=BYTES bounds it with LRU eviction.
 *
 * Results (--out, "-" = stdout) are the deterministic
 * genie-sweep-results-1 JSON in enumeration order: byte-identical
 * across thread counts and cold/warm/resumed runs. --stats-json
 * exports the engine's StatRegistry block (points done/cached/failed,
 * events, MEPS, store hits, corrupt journal lines).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "dse/job.hh"
#include "dse/journal.hh"
#include "dse/pareto.hh"
#include "dse/result_store.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "metrics/export.hh"
#include "workloads/workload.hh"

namespace
{

using namespace genie;

/** Set by the SIGINT/SIGTERM handler; polled by the sweep workers
 * (SweepOptions::stopRequested). */
std::atomic<bool> gDrainRequested{false};

void
onDrainSignal(int)
{
    gDrainRequested.store(true);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: genie_sweep <workload> [key=value ...]\n"
        "         [--space=single|isolated|dma|fig6|cache|fig8|acp|"
        "iface]\n"
        "         [--filter=\"lanes=1,4;partitions=1,4;...\"]\n"
        "         [--threads=N] [--journal=FILE] [--resume=FILE]\n"
        "         [--store=DIR] [--store-budget=BYTES]\n"
        "         [--out=FILE] [--stats-json=FILE] "
        "[--max-points=N]\n"
        "         [--progress] [--pareto]\n"
        "       genie_sweep --list\n"
        "exit:  0 ok, 1 error, 2 usage, 4 interrupted by "
        "--max-points,\n"
        "       5 drained by SIGINT/SIGTERM\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string space = "fig6";
    std::string filterSpec;
    std::string outPath;
    std::string statsJsonPath;
    std::string storeDir;
    std::uint64_t storeBudget = 0;
    bool progress = false;
    bool pareto = false;
    SweepOptions options;
    std::vector<std::string> baseOptions;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            for (const auto &name : genie::workloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (std::strncmp(arg, "--space=", 8) == 0) {
            space = arg + 8;
        } else if (std::strncmp(arg, "--filter=", 9) == 0) {
            filterSpec = arg + 9;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 10));
        } else if (std::strncmp(arg, "--journal=", 10) == 0) {
            options.journalPath = arg + 10;
        } else if (std::strncmp(arg, "--resume=", 9) == 0) {
            options.resumePath = arg + 9;
        } else if (std::strncmp(arg, "--store=", 8) == 0) {
            storeDir = arg + 8;
        } else if (std::strncmp(arg, "--store-budget=", 15) == 0) {
            storeBudget = std::strtoull(arg + 15, nullptr, 10);
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            outPath = arg + 6;
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            statsJsonPath = arg + 13;
        } else if (std::strncmp(arg, "--max-points=", 13) == 0) {
            options.maxFreshPoints =
                std::strtoul(arg + 13, nullptr, 10);
        } else if (std::strcmp(arg, "--progress") == 0) {
            progress = true;
        } else if (std::strcmp(arg, "--pareto") == 0) {
            pareto = true;
        } else if (arg[0] == '-') {
            return usage();
        } else if (workload.empty()) {
            workload = arg;
        } else {
            baseOptions.push_back(arg);
        }
    }
    if (workload.empty())
        return usage();

    // Resuming without an explicit journal keeps extending the same
    // file, so the identical command line continues an interrupted
    // sweep.
    if (options.journalPath.empty() && !options.resumePath.empty())
        options.journalPath = options.resumePath;

    // Graceful drain: a signal stops the deal of new points;
    // in-flight points finish and checkpoint normally.
    std::signal(SIGINT, onDrainSignal);
    std::signal(SIGTERM, onDrainSignal);
    options.stopRequested = &gDrainRequested;

    try {
        auto built = makeWorkload(workload)->build();
        Dddg dddg(built.trace);
        SocConfig base = parseConfig(baseOptions);
        auto configs = enumerateSpace(space, base);
        if (!filterSpec.empty()) {
            configs = filterConfigs(configs,
                                    SpaceFilter::parse(filterSpec));
        }
        if (configs.empty())
            fatal("the filter rejected every design point");

        ResultStore store;
        if (!storeDir.empty()) {
            store.open(storeDir, storeBudget);
            options.store = &store;
        }

        if (progress) {
            options.onProgress = [](const SweepProgress &p) {
                std::printf("\r  %zu/%zu done, %zu cached, %zu "
                            "failed | %.1f pts/s, ETA %.1fs, hit "
                            "%.0f%%, occ %.0f%% [%u workers]   ",
                            p.done, p.total, p.cached, p.failed,
                            p.pointsPerSecond, p.etaSeconds,
                            p.cacheHitRate * 100.0,
                            p.occupancy * 100.0, p.workers);
                std::fflush(stdout);
            };
            // ~30 repaints/s keeps cache-hot sweeps (thousands of
            // points/s) from spending their time in printf.
            options.progressIntervalNs = 33'000'000;
        }

        const std::string journalPath = options.journalPath;
        SweepEngine engine(std::move(options));
        auto t0 = std::chrono::steady_clock::now();
        auto points = engine.run(configs, built.trace, dddg);
        auto t1 = std::chrono::steady_clock::now();
        if (progress)
            std::printf("\n");

        SweepProgress final = engine.progress();
        double wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        std::printf("sweep %s %s: %zu points — %zu simulated, %zu "
                    "cached, %zu failed\n",
                    workload.c_str(), space.c_str(), final.total,
                    final.done, final.cached, final.failed);
        std::printf("  wall %.1f ms, %llu events, %.3f MEPS\n",
                    wallMs,
                    (unsigned long long)engine.simulatedEvents(),
                    engine.meps());
        if (engine.journalCorruptLines() > 0) {
            // Never let disk corruption pass silently: the affected
            // points were re-simulated, but the operator should know
            // the journal took damage.
            std::printf("  resume journal: corrupt_lines=%zu "
                        "(interior corruption; affected points "
                        "re-simulated)\n",
                        engine.journalCorruptLines());
        }
        if (engine.storeHits() > 0) {
            std::printf("  store: %llu hit(s) from %s\n",
                        (unsigned long long)engine.storeHits(),
                        storeDir.c_str());
        }

        if (!statsJsonPath.empty()) {
            StatRegistry registry;
            engine.registerStats(registry);
            writeStatsJsonFile(statsJsonPath, registry);
        }

        if (engine.interrupted()) {
            const char *how = gDrainRequested.load()
                                  ? "drained by signal"
                                  : "interrupted";
            std::printf("%s after %zu fresh points; resume with "
                        "--resume=%s\n",
                        how, final.done,
                        journalPath.empty() ? "JOURNAL"
                                            : journalPath.c_str());
            return gDrainRequested.load() ? 5 : 4;
        }

        if (pareto) {
            std::printf("Pareto frontier:\n");
            for (std::size_t i : paretoFrontier(points)) {
                const auto &p = points[i];
                std::printf("  %10.1f us %8.2f mW   %s\n",
                            p.results.totalUs(),
                            p.results.avgPowerMw,
                            p.config.describe().c_str());
            }
        }

        if (!outPath.empty()) {
            if (outPath == "-") {
                writeSweepResultsJson(std::cout, points, workload);
            } else {
                std::ofstream out(outPath);
                if (!out) {
                    std::fprintf(stderr, "error: cannot write %s\n",
                                 outPath.c_str());
                    return 1;
                }
                writeSweepResultsJson(out, points, workload);
                std::printf("wrote %s (%zu points)\n",
                            outPath.c_str(), points.size());
            }
        }
        return 0;
    } catch (const SweepError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
