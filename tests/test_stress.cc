/**
 * @file
 * Stress and interaction tests: coherence ping-pong between caches,
 * writeback pressure under tiny caches, mixed DMA + cache agents
 * contending for one bus, MSHR saturation draining correctly,
 * many-iteration wave execution, and end-to-end runs of every
 * workload under extreme design points (the corners sweeps visit).
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "dma/dma_engine.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

constexpr Tick period = 10000;

struct TwoCacheFixture : public ::testing::Test
{
    TwoCacheFixture()
    {
        bus = std::make_unique<SystemBus>(
            "bus", eq, ClockDomain(period), SystemBus::Params{});
        dram = std::make_unique<DramCtrl>(
            "dram", eq, ClockDomain(period), *bus, DramCtrl::Params{});
        bus->setTarget(dram.get());
        Cache::Params cp;
        cp.ports = 4;
        a = std::make_unique<Cache>("a", eq, ClockDomain(period),
                                    *bus, cp);
        b = std::make_unique<Cache>("b", eq, ClockDomain(period),
                                    *bus, cp);
        a->setCallback([this](std::uint64_t, bool) { ++aDone; });
        b->setCallback([this](std::uint64_t, bool) { ++bDone; });
    }

    EventQueue eq;
    std::unique_ptr<SystemBus> bus;
    std::unique_ptr<DramCtrl> dram;
    std::unique_ptr<Cache> a, b;
    int aDone = 0, bDone = 0;
};

TEST_F(TwoCacheFixture, WritePingPongStaysCoherent)
{
    // Alternating writers to one line: ownership must transfer each
    // time, never leaving both caches writable.
    constexpr Addr line = 0x4000;
    for (int round = 0; round < 10; ++round) {
        Cache &writer = round % 2 == 0 ? *a : *b;
        writer.access(line, 4, true, static_cast<std::uint64_t>(round),
                      0);
        eq.run();
        Cache &other = round % 2 == 0 ? *b : *a;
        EXPECT_EQ(writer.lineState(line), CoherenceState::Modified);
        EXPECT_EQ(other.lineState(line), CoherenceState::Invalid);
    }
    EXPECT_EQ(aDone + bDone, 10);
}

TEST_F(TwoCacheFixture, ReadSharingThenUpgrade)
{
    constexpr Addr line = 0x8000;
    a->access(line, 4, false, 1, 0);
    eq.run();
    b->access(line, 4, false, 2, 0);
    eq.run();
    EXPECT_EQ(a->lineState(line), CoherenceState::Shared);
    EXPECT_EQ(b->lineState(line), CoherenceState::Shared);

    a->access(line, 4, true, 3, 0);
    eq.run();
    EXPECT_EQ(a->lineState(line), CoherenceState::Modified);
    EXPECT_EQ(b->lineState(line), CoherenceState::Invalid);
}

TEST_F(TwoCacheFixture, OwnedStateSurvivesRepeatedSharing)
{
    constexpr Addr line = 0xc000;
    a->prefill(line, 64, /*dirty=*/true);
    // Several readers in sequence: A supplies each time from O.
    for (int round = 0; round < 3; ++round) {
        b->access(line, 4, false,
                  static_cast<std::uint64_t>(round), 0);
        eq.run();
        b->invalidateRange(line, 64);
        EXPECT_EQ(a->lineState(line), CoherenceState::Owned);
    }
    EXPECT_GE(bus->stats().get("cacheToCache"), 3.0);
}

TEST(Stress, TinyCacheWritebackPressure)
{
    // A 2 KB direct-mapped-ish cache written over a 64 KB footprint:
    // every fill evicts a dirty line. Everything must drain.
    EventQueue eq;
    SystemBus bus("bus", eq, ClockDomain(period), {});
    DramCtrl dram("dram", eq, ClockDomain(period), bus, {});
    bus.setTarget(&dram);
    Cache::Params cp;
    cp.sizeBytes = 2 * 1024;
    cp.assoc = 4;
    cp.ports = 8;
    cp.mshrs = 16;
    Cache cache("c", eq, ClockDomain(period), bus, cp);
    int done = 0;
    cache.setCallback([&](std::uint64_t, bool) { ++done; });

    int issued = 0;
    for (Addr addr = 0; addr < 64 * 1024; addr += 64) {
        while (cache.access(addr, 4, true, addr, 0).reject !=
               Cache::Reject::None) {
            eq.step(); // advance time until ports/MSHRs free up
        }
        ++issued;
    }
    eq.run();
    EXPECT_EQ(done, issued);
    EXPECT_FALSE(cache.hasOutstanding());
    EXPECT_GT(cache.stats().get("writebacks"), 500.0);
}

TEST(Stress, DmaAndCacheShareOneBus)
{
    // A DMA engine streams while a cache pounds misses through the
    // same bus: both complete, and each is slower than it would be
    // alone (shared resource contention).
    auto runCombo = [](bool withDma, bool withCache) {
        EventQueue eq;
        SystemBus bus("bus", eq, ClockDomain(period), {});
        DramCtrl dram("dram", eq, ClockDomain(period), bus, {});
        bus.setTarget(&dram);

        Tick dmaDone = 0, cacheDone = 0;
        DmaEngine dma("dma", eq, ClockDomain(period), bus, {});
        Cache::Params cp;
        cp.sizeBytes = 2 * 1024;
        cp.ports = 8;
        Cache cache("c", eq, ClockDomain(period), bus, cp);
        int pending = 0;
        cache.setCallback([&](std::uint64_t, bool) {
            if (--pending == 0)
                cacheDone = eq.curTick();
        });

        if (withDma) {
            dma.startTransaction(
                DmaEngine::Direction::MemToAccel,
                {{0, 0x100000, 0, 16 * 1024}}, nullptr,
                [&](bool) { dmaDone = eq.curTick(); });
        }
        if (withCache) {
            for (Addr addr = 0; addr < 8 * 1024; addr += 64) {
                while (cache.access(addr, 4, false, addr, 0)
                           .reject != Cache::Reject::None)
                    eq.step();
                ++pending;
            }
        }
        eq.run();
        return std::pair<Tick, Tick>(dmaDone, cacheDone);
    };

    auto [dmaAlone, cacheUnused] = runCombo(true, false);
    auto [dmaUnused, cacheAlone] = runCombo(false, true);
    auto [dmaShared, cacheShared] = runCombo(true, true);
    (void)cacheUnused;
    (void)dmaUnused;

    EXPECT_GT(dmaShared, dmaAlone);
    EXPECT_GT(cacheShared, cacheAlone);
}

TEST(Stress, MshrSaturationDrains)
{
    EventQueue eq;
    SystemBus bus("bus", eq, ClockDomain(period), {});
    DramCtrl dram("dram", eq, ClockDomain(period), bus, {});
    bus.setTarget(&dram);
    Cache::Params cp;
    cp.mshrs = 4;
    cp.ports = 16; // enough ports that MSHRs are the binding limit
    Cache cache("c", eq, ClockDomain(period), bus, cp);
    int done = 0;
    cache.setCallback([&](std::uint64_t, bool) { ++done; });

    // Fire misses to 4 distinct lines (fills all MSHRs) plus
    // coalescing targets on each.
    int accepted = 0;
    for (int line = 0; line < 4; ++line) {
        for (int word = 0; word < 2; ++word) {
            auto out = cache.access(
                static_cast<Addr>(line) * 0x1000 +
                    static_cast<Addr>(word) * 4,
                4, false,
                static_cast<std::uint64_t>(line * 8 + word), 0);
            if (out.reject == Cache::Reject::None)
                ++accepted;
        }
    }
    // A fifth line must be rejected for MSHRs right now.
    EXPECT_EQ(cache.access(0x9000, 4, false, 99, 0).reject,
              Cache::Reject::Mshrs);
    eq.run();
    EXPECT_EQ(done, accepted);
    EXPECT_FALSE(cache.hasOutstanding());
}

class ExtremeCornerTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(ExtremeCornerTest, MaxParallelismDmaCompletes)
{
    auto out = makeWorkload(GetParam())->build();
    Dddg dddg(out.trace);
    SocConfig c;
    c.lanes = 16;
    c.spadPartitions = 16;
    c.dma.pipelined = true;
    c.dma.triggeredCompute = true;
    c.busWidthBits = 64;
    SocResults r = runDesign(c, out.trace, dddg);
    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_EQ(r.breakdown.total(), r.totalTicks);
}

TEST_P(ExtremeCornerTest, MinimalCacheCompletes)
{
    auto out = makeWorkload(GetParam())->build();
    Dddg dddg(out.trace);
    SocConfig c;
    c.memType = MemInterface::Cache;
    c.lanes = 16;
    c.cache.sizeBytes = 2 * 1024;
    c.cache.lineBytes = 16;
    c.cache.assoc = 4;
    c.cache.ports = 1;
    c.cache.mshrs = 4;
    SocResults r = runDesign(c, out.trace, dddg);
    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_GT(r.cacheMissRate, 0.0);
}

TEST_P(ExtremeCornerTest, SingleLaneSingleBankCompletes)
{
    auto out = makeWorkload(GetParam())->build();
    Dddg dddg(out.trace);
    SocConfig c;
    c.lanes = 1;
    c.spadPartitions = 1;
    SocResults r = runDesign(c, out.trace, dddg);
    EXPECT_GT(r.totalTicks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ExtremeCornerTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace genie
