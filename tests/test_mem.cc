/**
 * @file
 * Memory-substrate unit tests: system bus bandwidth/arbitration, DRAM
 * row-buffer behavior, cache hits/misses/LRU/MSHR/coherence/flush,
 * TLB translation and replacement, scratchpad bank conflicts, and
 * full/empty ready bits.
 */

#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/full_empty.hh"
#include "mem/scratchpad.hh"
#include "mem/tlb.hh"
#include "sim/logging.hh"

namespace genie
{
namespace
{

constexpr Tick busPeriod = 10000; // 100 MHz

/** A bus client recording its responses. */
class Recorder : public BusClient
{
  public:
    void
    recvResponse(const Packet &pkt) override
    {
        responses.push_back(pkt);
    }
    std::vector<Packet> responses;
};

struct BusFixture : public ::testing::Test
{
    BusFixture()
        : bus("bus", eq, ClockDomain(busPeriod), busParams()),
          dram("dram", eq, ClockDomain(busPeriod), bus, {})
    {
        bus.setTarget(&dram);
    }

    static SystemBus::Params
    busParams()
    {
        SystemBus::Params p;
        p.widthBits = 32;
        return p;
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
};

TEST_F(BusFixture, ReadRoundTripCompletes)
{
    Recorder client;
    BusPortId port = bus.attachClient(&client, false);

    Packet pkt;
    pkt.cmd = MemCmd::ReadShared;
    pkt.addr = 0x1000;
    pkt.size = 64;
    pkt.reqId = 7;
    bus.sendRequest(port, pkt);
    eq.run();

    ASSERT_EQ(client.responses.size(), 1u);
    EXPECT_EQ(client.responses[0].cmd, MemCmd::ReadResp);
    EXPECT_EQ(client.responses[0].reqId, 7u);
    EXPECT_EQ(client.responses[0].addr, 0x1000u);
}

TEST_F(BusFixture, BandwidthScalesWithWidth)
{
    // Transfer 4 KB via back-to-back reads on a 32-bit bus, then on a
    // 64-bit bus; the wide bus must be roughly twice as fast.
    auto timeFor = [](unsigned width) {
        EventQueue eq;
        SystemBus::Params p;
        p.widthBits = width;
        SystemBus bus("bus", eq, ClockDomain(busPeriod), p);
        DramCtrl dram("dram", eq, ClockDomain(busPeriod), bus, {});
        bus.setTarget(&dram);
        Recorder client;
        BusPortId port = bus.attachClient(&client, false);
        for (unsigned i = 0; i < 64; ++i) {
            Packet pkt;
            pkt.cmd = MemCmd::ReadShared;
            pkt.addr = i * 64;
            pkt.size = 64;
            pkt.reqId = i;
            bus.sendRequest(port, pkt);
        }
        return eq.run();
    };

    Tick narrow = timeFor(32);
    Tick wide = timeFor(64);
    EXPECT_LT(wide, narrow);
    EXPECT_GT(static_cast<double>(narrow) / static_cast<double>(wide),
              1.5);
}

TEST_F(BusFixture, ContentionSerializesAgents)
{
    // One agent alone vs. the same agent sharing the bus with a
    // second streaming agent.
    auto finishTime = [](bool contended) {
        EventQueue eq;
        SystemBus::Params p;
        p.widthBits = 32;
        SystemBus bus("bus", eq, ClockDomain(busPeriod), p);
        DramCtrl dram("dram", eq, ClockDomain(busPeriod), bus, {});
        bus.setTarget(&dram);
        Recorder a, b;
        BusPortId pa = bus.attachClient(&a, false);
        BusPortId pb = bus.attachClient(&b, false);
        for (unsigned i = 0; i < 32; ++i) {
            Packet pkt;
            pkt.cmd = MemCmd::ReadShared;
            pkt.addr = i * 64;
            pkt.size = 64;
            pkt.reqId = i;
            bus.sendRequest(pa, pkt);
            if (contended) {
                Packet q = pkt;
                q.addr += 0x100000;
                bus.sendRequest(pb, q);
            }
        }
        eq.run();
        return a.responses.size() == 32 ? eq.curTick() : 0;
    };

    Tick alone = finishTime(false);
    Tick contended = finishTime(true);
    EXPECT_GT(alone, 0u);
    EXPECT_GT(contended, alone);
}

TEST_F(BusFixture, InfiniteBandwidthIsFaster)
{
    auto timeFor = [](bool infinite) {
        EventQueue eq;
        SystemBus::Params p;
        p.widthBits = 32;
        p.infiniteBandwidth = infinite;
        SystemBus bus("bus", eq, ClockDomain(busPeriod), p);
        DramCtrl dram("dram", eq, ClockDomain(busPeriod), bus, {});
        bus.setTarget(&dram);
        Recorder client;
        BusPortId port = bus.attachClient(&client, false);
        for (unsigned i = 0; i < 64; ++i) {
            Packet pkt;
            pkt.cmd = MemCmd::ReadShared;
            pkt.addr = i * 64;
            pkt.size = 64;
            pkt.reqId = i;
            bus.sendRequest(port, pkt);
        }
        return eq.run();
    };
    EXPECT_LT(timeFor(true), timeFor(false));
}

TEST_F(BusFixture, RejectsBadWidth)
{
    EventQueue eq;
    SystemBus::Params p;
    p.widthBits = 12;
    EXPECT_THROW(SystemBus("bad", eq, ClockDomain(busPeriod), p),
                 FatalError);
}

TEST(Dram, RowHitsAreFasterThanConflicts)
{
    // Sequential accesses within one row vs. accesses alternating
    // between rows mapped to the same bank.
    auto timeFor = [](bool sameRow) {
        EventQueue eq;
        SystemBus::Params p;
        SystemBus bus("bus", eq, ClockDomain(busPeriod), p);
        DramCtrl::Params dp;
        dp.numBanks = 1; // force bank conflicts
        DramCtrl dram("dram", eq, ClockDomain(busPeriod), bus, dp);
        bus.setTarget(&dram);
        Recorder client;
        BusPortId port = bus.attachClient(&client, false);
        for (unsigned i = 0; i < 16; ++i) {
            Packet pkt;
            pkt.cmd = MemCmd::ReadShared;
            pkt.addr = sameRow ? i * 64
                               : static_cast<Addr>(i) * 2048 * 7;
            pkt.size = 64;
            pkt.reqId = i;
            bus.sendRequest(port, pkt);
        }
        return eq.run();
    };
    EXPECT_LT(timeFor(true), timeFor(false));
}

TEST(Dram, TracksRowHitRate)
{
    EventQueue eq;
    SystemBus::Params p;
    SystemBus bus("bus", eq, ClockDomain(busPeriod), p);
    DramCtrl dram("dram", eq, ClockDomain(busPeriod), bus, {});
    bus.setTarget(&dram);
    Recorder client;
    BusPortId port = bus.attachClient(&client, false);
    for (unsigned i = 0; i < 32; ++i) {
        Packet pkt;
        pkt.cmd = MemCmd::ReadShared;
        pkt.addr = i * 64; // one row
        pkt.size = 64;
        pkt.reqId = i;
        bus.sendRequest(port, pkt);
    }
    eq.run();
    EXPECT_GT(dram.rowHitRate(), 0.8);
}

// ---------------------------------------------------------------
// Cache tests.
// ---------------------------------------------------------------

struct CacheFixture : public ::testing::Test
{
    CacheFixture() { rebuild({}); }

    void
    rebuild(Cache::Params cp)
    {
        eq = std::make_unique<EventQueue>();
        SystemBus::Params bp;
        bus = std::make_unique<SystemBus>(
            "bus", *eq, ClockDomain(busPeriod), bp);
        dram = std::make_unique<DramCtrl>(
            "dram", *eq, ClockDomain(busPeriod), *bus,
            DramCtrl::Params{});
        bus->setTarget(dram.get());
        cache = std::make_unique<Cache>(
            "cache", *eq, ClockDomain(busPeriod), *bus, cp);
        cache->setCallback([this](std::uint64_t id, bool hit) {
            completions.emplace_back(id, hit);
        });
    }

    /** Issue an access on the next free cycle and run to quiescence. */
    Cache::AccessOutcome
    accessAndRun(Addr addr, bool write = false,
                 std::uint64_t id = 0)
    {
        auto out = cache->access(addr, 4, write, id, 0);
        eq->run();
        return out;
    }

    std::unique_ptr<EventQueue> eq;
    std::unique_ptr<SystemBus> bus;
    std::unique_ptr<DramCtrl> dram;
    std::unique_ptr<Cache> cache;
    std::vector<std::pair<std::uint64_t, bool>> completions;
};

TEST_F(CacheFixture, ColdMissThenHit)
{
    auto first = accessAndRun(0x100, false, 1);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.reject, Cache::Reject::None);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_FALSE(completions[0].second);

    auto second = accessAndRun(0x104, false, 2);
    EXPECT_TRUE(second.hit);
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_TRUE(completions[1].second);
}

TEST_F(CacheFixture, FillsAllocateExclusiveWithoutSharers)
{
    accessAndRun(0x100);
    EXPECT_EQ(cache->lineState(0x100), CoherenceState::Exclusive);
}

TEST_F(CacheFixture, WriteMissAllocatesModified)
{
    accessAndRun(0x200, true);
    EXPECT_EQ(cache->lineState(0x200), CoherenceState::Modified);
}

TEST_F(CacheFixture, WriteHitOnExclusiveUpgradesSilently)
{
    accessAndRun(0x100, false);
    EXPECT_EQ(cache->lineState(0x100), CoherenceState::Exclusive);
    accessAndRun(0x100, true);
    EXPECT_EQ(cache->lineState(0x100), CoherenceState::Modified);
    EXPECT_DOUBLE_EQ(cache->stats().get("upgrades"), 0.0);
}

TEST_F(CacheFixture, LruEvictsOldestWay)
{
    Cache::Params cp;
    cp.sizeBytes = 2 * 1024;
    cp.assoc = 2;
    cp.lineBytes = 64; // 16 sets; set 0 at multiples of 1024
    rebuild(cp);

    accessAndRun(0 * 1024, false, 1);
    accessAndRun(1 * 1024, false, 2); // set full
    accessAndRun(0 * 1024, false, 3); // touch first -> second is LRU
    accessAndRun(2 * 1024, false, 4); // evicts 1 KB line
    EXPECT_EQ(cache->lineState(0), CoherenceState::Exclusive);
    EXPECT_EQ(cache->lineState(1024), CoherenceState::Invalid);
    EXPECT_EQ(cache->lineState(2048), CoherenceState::Exclusive);
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    Cache::Params cp;
    cp.sizeBytes = 2 * 1024;
    cp.assoc = 2;
    rebuild(cp);

    accessAndRun(0, true, 1); // dirty
    accessAndRun(1024, false, 2);
    accessAndRun(2048, false, 3);
    accessAndRun(3072, false, 4); // evicts the dirty line
    eq->run();
    EXPECT_GE(cache->stats().get("writebacks"), 1.0);
    EXPECT_FALSE(cache->hasOutstanding());
}

TEST_F(CacheFixture, MshrCoalescesSameLineMisses)
{
    // Two accesses to the same line in the same cycle: one miss, one
    // coalesced target; a single bus fill serves both.
    auto o1 = cache->access(0x300, 4, false, 1, 0);
    auto o2 = cache->access(0x304, 4, false, 2, 0);
    EXPECT_EQ(o1.reject, Cache::Reject::None);
    EXPECT_EQ(o2.reject, Cache::Reject::Ports); // 1 port by default

    Cache::Params cp;
    cp.ports = 2;
    rebuild(cp);
    o1 = cache->access(0x300, 4, false, 1, 0);
    o2 = cache->access(0x304, 4, false, 2, 0);
    EXPECT_EQ(o2.reject, Cache::Reject::None);
    eq->run();
    EXPECT_EQ(completions.size(), 2u);
    EXPECT_DOUBLE_EQ(cache->stats().get("mshrCoalesced"), 1.0);
    EXPECT_DOUBLE_EQ(cache->stats().get("misses"), 2.0);
}

TEST_F(CacheFixture, MshrExhaustionRejects)
{
    Cache::Params cp;
    cp.mshrs = 2;
    cp.ports = 8;
    rebuild(cp);

    auto o1 = cache->access(0x1000, 4, false, 1, 0);
    auto o2 = cache->access(0x2000, 4, false, 2, 0);
    auto o3 = cache->access(0x3000, 4, false, 3, 0);
    EXPECT_EQ(o1.reject, Cache::Reject::None);
    EXPECT_EQ(o2.reject, Cache::Reject::None);
    EXPECT_EQ(o3.reject, Cache::Reject::Mshrs);
    eq->run();
}

TEST_F(CacheFixture, PortLimitResetsEachCycle)
{
    auto o1 = cache->access(0x100, 4, false, 1, 0);
    auto o2 = cache->access(0x200, 4, false, 2, 0);
    EXPECT_EQ(o1.reject, Cache::Reject::None);
    EXPECT_EQ(o2.reject, Cache::Reject::Ports);
    // Advance one cycle: the port budget replenishes.
    eq->schedule(busPeriod, [] {});
    while (eq->curTick() < busPeriod)
        eq->step();
    EXPECT_TRUE(cache->portAvailable());
}

TEST_F(CacheFixture, PerfectModeAlwaysHits)
{
    Cache::Params cp;
    cp.perfect = true;
    rebuild(cp);
    auto out = accessAndRun(0xdead00, false, 9);
    EXPECT_TRUE(out.hit);
    EXPECT_DOUBLE_EQ(cache->missRate(), 0.0);
}

TEST_F(CacheFixture, FlushRangeCountsDirtyLines)
{
    cache->prefill(0, 256, /*dirty=*/true); // 4 lines
    cache->prefill(256, 128, /*dirty=*/false);
    unsigned dirty = cache->flushRange(0, 384);
    EXPECT_EQ(dirty, 4u);
    EXPECT_EQ(cache->lineState(0), CoherenceState::Invalid);
    EXPECT_EQ(cache->lineState(256), CoherenceState::Invalid);
}

TEST_F(CacheFixture, InvalidateRangeDropsLines)
{
    cache->prefill(0, 256, true);
    unsigned count = cache->invalidateRange(0, 256);
    EXPECT_EQ(count, 4u);
    EXPECT_EQ(cache->lineState(64), CoherenceState::Invalid);
}

TEST_F(CacheFixture, AccessCrossingLineBoundaryPanics)
{
    EXPECT_DEATH(cache->access(62, 4, false, 1, 0), "crosses");
}

// Two caches on one bus: MOESI coherence.
struct CoherenceFixture : public ::testing::Test
{
    CoherenceFixture()
    {
        SystemBus::Params bp;
        bus = std::make_unique<SystemBus>(
            "bus", eq, ClockDomain(busPeriod), bp);
        dram = std::make_unique<DramCtrl>(
            "dram", eq, ClockDomain(busPeriod), *bus,
            DramCtrl::Params{});
        bus->setTarget(dram.get());
        a = std::make_unique<Cache>("cacheA", eq,
                                    ClockDomain(busPeriod), *bus,
                                    Cache::Params{});
        b = std::make_unique<Cache>("cacheB", eq,
                                    ClockDomain(busPeriod), *bus,
                                    Cache::Params{});
        a->setCallback([](std::uint64_t, bool) {});
        b->setCallback([](std::uint64_t, bool) {});
    }

    EventQueue eq;
    std::unique_ptr<SystemBus> bus;
    std::unique_ptr<DramCtrl> dram;
    std::unique_ptr<Cache> a, b;
};

TEST_F(CoherenceFixture, OwnerSuppliesDirtyDataOnReadShared)
{
    a->prefill(0x100, 64, /*dirty=*/true); // A holds M
    b->access(0x100, 4, false, 1, 0);
    eq.run();
    // A supplied the line and became Owned; B holds Shared.
    EXPECT_EQ(a->lineState(0x100), CoherenceState::Owned);
    EXPECT_EQ(b->lineState(0x100), CoherenceState::Shared);
    EXPECT_GE(bus->stats().get("cacheToCache"), 1.0);
}

TEST_F(CoherenceFixture, ReadExclusiveInvalidatesPeer)
{
    a->prefill(0x200, 64, /*dirty=*/true);
    b->access(0x200, 4, true, 1, 0);
    eq.run();
    EXPECT_EQ(a->lineState(0x200), CoherenceState::Invalid);
    EXPECT_EQ(b->lineState(0x200), CoherenceState::Modified);
}

TEST_F(CoherenceFixture, SharerPresenceDowngradesFillToShared)
{
    a->prefill(0x300, 64, /*dirty=*/false); // A holds E
    b->access(0x300, 4, false, 1, 0);
    eq.run();
    // A's E is demoted to S by the snoop; memory supplies; B gets S.
    EXPECT_EQ(a->lineState(0x300), CoherenceState::Shared);
    EXPECT_EQ(b->lineState(0x300), CoherenceState::Shared);
}

TEST_F(CoherenceFixture, UpgradeInvalidatesSharers)
{
    a->prefill(0x400, 64, false);
    b->access(0x400, 4, false, 1, 0); // B: S, A: S
    eq.run();
    ASSERT_EQ(b->lineState(0x400), CoherenceState::Shared);
    b->access(0x400, 4, true, 2, 0); // upgrade
    eq.run();
    EXPECT_EQ(b->lineState(0x400), CoherenceState::Modified);
    EXPECT_EQ(a->lineState(0x400), CoherenceState::Invalid);
    EXPECT_GE(b->stats().get("upgrades"), 1.0);
}

// ---------------------------------------------------------------
// TLB tests.
// ---------------------------------------------------------------

struct TlbFixture : public ::testing::Test
{
    TlbFixture()
        : tlb("tlb", eq, ClockDomain(busPeriod), AladdinTlb::Params{})
    {}
    EventQueue eq;
    AladdinTlb tlb;
};

TEST_F(TlbFixture, FirstTouchMissesThenHits)
{
    bool hit1 = tlb.translate(0x1234, [](Addr) {});
    eq.run();
    bool hit2 = tlb.translate(0x1238, [](Addr) {});
    EXPECT_FALSE(hit1);
    EXPECT_TRUE(hit2);
}

TEST_F(TlbFixture, MissPaysConfiguredLatency)
{
    Tick done = 0;
    tlb.translate(0x1000, [&](Addr) { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done, 200 * tickPerNs);
}

TEST_F(TlbFixture, TranslationIsStableAndPageAligned)
{
    Addr p1 = 0, p2 = 0;
    tlb.translate(0x1000, [&](Addr pa) { p1 = pa; });
    eq.run();
    tlb.translate(0x1004, [&](Addr pa) { p2 = pa; });
    EXPECT_EQ(p2, p1 + 4);
    EXPECT_EQ(tlb.translateFunctional(0x1000), p1);
}

TEST_F(TlbFixture, DistinctPagesGetDistinctFrames)
{
    Addr p1 = tlb.translateFunctional(0x0000);
    Addr p2 = tlb.translateFunctional(0x1000);
    EXPECT_NE(p1 / 4096, p2 / 4096);
}

TEST_F(TlbFixture, CapacityEvictionCausesRepeatMiss)
{
    // Touch 9 pages (capacity 8): page 0 must be evicted.
    for (Addr page = 0; page < 9; ++page) {
        tlb.translate(page * 4096, [](Addr) {});
        eq.run();
    }
    bool hit = tlb.translate(0, [](Addr) {});
    EXPECT_FALSE(hit);
    eq.run();
    EXPECT_LT(tlb.hitRate(), 0.5);
}

// ---------------------------------------------------------------
// Scratchpad tests.
// ---------------------------------------------------------------

TEST(Scratchpad, PartitionPortsLimitPerCycleAccesses)
{
    EventQueue eq;
    Scratchpad spad("spad", eq, ClockDomain(busPeriod));
    Scratchpad::ArrayConfig cfg;
    cfg.name = "a";
    cfg.sizeBytes = 1024;
    cfg.wordBytes = 4;
    cfg.partitions = 2;
    cfg.portsPerPartition = 1;
    int id = spad.addArray(cfg);

    // Words 0 and 2 map to bank 0; word 1 maps to bank 1.
    EXPECT_TRUE(spad.tryAccess(id, 0, false));
    EXPECT_TRUE(spad.tryAccess(id, 4, false));
    EXPECT_FALSE(spad.tryAccess(id, 8, false)) << "bank 0 conflict";
    EXPECT_DOUBLE_EQ(spad.conflicts(), 1.0);

    // Next cycle the ports are free again.
    eq.schedule(busPeriod, [] {});
    while (eq.curTick() < busPeriod)
        eq.step();
    EXPECT_TRUE(spad.tryAccess(id, 8, false));
}

TEST(Scratchpad, MorePartitionsMoreBandwidth)
{
    EventQueue eq;
    Scratchpad spad("spad", eq, ClockDomain(busPeriod));
    Scratchpad::ArrayConfig cfg;
    cfg.name = "a";
    cfg.sizeBytes = 1024;
    cfg.wordBytes = 4;
    cfg.partitions = 8;
    int id = spad.addArray(cfg);
    unsigned granted = 0;
    for (unsigned w = 0; w < 8; ++w)
        granted += spad.tryAccess(id, w * 4, false) ? 1 : 0;
    EXPECT_EQ(granted, 8u);
    EXPECT_EQ(spad.peakAccessesPerCycle(), 8u);
}

TEST(Scratchpad, TracksPerArrayCounts)
{
    EventQueue eq;
    Scratchpad spad("spad", eq, ClockDomain(busPeriod));
    Scratchpad::ArrayConfig cfg;
    cfg.name = "a";
    cfg.sizeBytes = 64;
    cfg.wordBytes = 4;
    cfg.partitions = 16;
    int a = spad.addArray(cfg);
    cfg.name = "b";
    int b = spad.addArray(cfg);
    spad.tryAccess(a, 0, false);
    spad.tryAccess(a, 4, true);
    spad.tryAccess(b, 0, true);
    EXPECT_EQ(spad.arrayReads(a), 1u);
    EXPECT_EQ(spad.arrayWrites(a), 1u);
    EXPECT_EQ(spad.arrayWrites(b), 1u);
    EXPECT_EQ(spad.totalBytes(), 128u);
}

// ---------------------------------------------------------------
// Full/empty bits.
// ---------------------------------------------------------------

TEST(FullEmpty, BitsStartEmptyAndFill)
{
    FullEmptyBits fe("fe", 64);
    int a = fe.addArray(256);
    EXPECT_FALSE(fe.isFull(a, 0));
    fe.fill(a, 0, 64);
    EXPECT_TRUE(fe.isFull(a, 0));
    EXPECT_TRUE(fe.isFull(a, 63));
    EXPECT_FALSE(fe.isFull(a, 64));
}

TEST(FullEmpty, WaitersWokenOnFill)
{
    FullEmptyBits fe("fe", 64);
    int a = fe.addArray(256);
    int woken = 0;
    fe.wait(a, 128, [&] { ++woken; });
    fe.wait(a, 130, [&] { ++woken; });
    fe.fill(a, 0, 128);
    EXPECT_EQ(woken, 0);
    fe.fill(a, 128, 64);
    EXPECT_EQ(woken, 2);
}

TEST(FullEmpty, RefillDoesNotRewake)
{
    FullEmptyBits fe("fe", 64);
    int a = fe.addArray(128);
    int woken = 0;
    fe.wait(a, 0, [&] { ++woken; });
    fe.fill(a, 0, 64);
    fe.fill(a, 0, 64);
    EXPECT_EQ(woken, 1);
}

TEST(FullEmpty, SetAllFull)
{
    FullEmptyBits fe("fe", 64);
    int a = fe.addArray(4096);
    fe.setAllFull();
    EXPECT_TRUE(fe.isFull(a, 4095));
    EXPECT_EQ(fe.storageBits(), 64u);
}

} // namespace
} // namespace genie
