/**
 * @file
 * Workload correctness tests: every kernel's trace-building execution
 * must produce the same output checksum as its independent reference
 * implementation, its trace must be structurally sound, and its
 * memory behavior must match the paper's characterization.
 */

#include <gtest/gtest.h>

#include <map>

#include "accel/dddg.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

class WorkloadParamTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadParamTest, ChecksumMatchesReference)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    EXPECT_NEAR(out.checksum, w->reference(),
                std::abs(w->reference()) * 1e-9 + 1e-9)
        << "trace-building execution diverged from the reference";
}

TEST_P(WorkloadParamTest, TraceIsNonTrivial)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    EXPECT_GT(out.trace.ops.size(), 100u);
    EXPECT_GE(out.trace.numIterations, 1u);
    EXPECT_FALSE(out.trace.arrays.empty());
    EXPECT_GT(out.trace.totalInputBytes(), 0u);
    EXPECT_GT(out.trace.totalOutputBytes(), 0u);
}

TEST_P(WorkloadParamTest, DependencesPointBackward)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    for (NodeId i = 0; i < out.trace.ops.size(); ++i) {
        for (NodeId d : out.trace.ops[i].deps) {
            ASSERT_LT(d, i);
        }
    }
}

TEST_P(WorkloadParamTest, IterationsAreMonotonic)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    std::uint32_t last = 0;
    for (const auto &op : out.trace.ops) {
        ASSERT_GE(op.iteration, last);
        last = op.iteration;
    }
    EXPECT_EQ(last + 1, out.trace.numIterations);
}

TEST_P(WorkloadParamTest, MemoryAccessesInBounds)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    for (const auto &op : out.trace.ops) {
        if (!isMemoryOp(op.op))
            continue;
        ASSERT_GE(op.arrayId, 0);
        const auto &arr =
            out.trace.arrays[static_cast<std::size_t>(op.arrayId)];
        ASSERT_LE(op.offset + op.size, arr.sizeBytes);
    }
}

TEST_P(WorkloadParamTest, DddgBuildsAndHasCriticalPath)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput out = w->build();
    Dddg dddg(out.trace);
    EXPECT_EQ(dddg.numNodes(), out.trace.ops.size());
    EXPECT_GT(dddg.numEdges(), 0u);
    std::uint64_t cp = dddg.criticalPathCycles(out.trace);
    EXPECT_GT(cp, 0u);
    // The critical path can never exceed the serial latency sum.
    std::uint64_t serial = 0;
    for (const auto &op : out.trace.ops)
        serial += latencyOf(op.op);
    EXPECT_LE(cp, serial);
}

TEST_P(WorkloadParamTest, BuildIsDeterministic)
{
    auto w = makeWorkload(GetParam());
    WorkloadOutput a = w->build();
    WorkloadOutput b = w->build();
    EXPECT_EQ(a.trace.ops.size(), b.trace.ops.size());
    EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(WorkloadRegistry, KnowsSixteenKernels)
{
    EXPECT_EQ(workloadNames().size(), 16u);
}

TEST(WorkloadRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("does-not-exist"), FatalError);
}

TEST(WorkloadRegistry, Figure8SetIsTheEightPaperKernels)
{
    auto f8 = figure8Workloads();
    EXPECT_EQ(f8.size(), 8u);
    for (const auto &name : f8) {
        EXPECT_NO_THROW(makeWorkload(name));
    }
}

TEST(WorkloadCharacter, AesHasTinyFootprint)
{
    auto out = makeWorkload("aes-aes")->build();
    EXPECT_LT(out.trace.totalInputBytes(), 1024u);
}

TEST(WorkloadCharacter, NwKeepsScoreMatrixPrivate)
{
    auto out = makeWorkload("nw-nw")->build();
    bool hasPrivate = false;
    for (const auto &a : out.trace.arrays)
        hasPrivate = hasPrivate || a.privateScratch;
    EXPECT_TRUE(hasPrivate);
    // Transfer footprint stays small even though the matrix is large.
    EXPECT_LT(out.trace.totalInputBytes(), 2048u);
    EXPECT_GT(out.trace.totalArrayBytes(), 8u * 1024u);
}

TEST(WorkloadCharacter, SpmvHasIndirectLoads)
{
    auto out = makeWorkload("spmv-crs")->build();
    // Indirect gathers: some loads must depend on earlier loads.
    std::size_t indirect = 0;
    for (const auto &op : out.trace.ops) {
        if (op.op != Opcode::Load)
            continue;
        for (NodeId d : op.deps) {
            if (out.trace.ops[d].op == Opcode::Load)
                ++indirect;
        }
    }
    EXPECT_GT(indirect, 100u);
}

TEST(WorkloadCharacter, FftStrideIs512Bytes)
{
    auto out = makeWorkload("fft-transpose")->build();
    // Successive same-array loads within one work item are 512 B
    // apart.
    std::size_t bigStrides = 0;
    std::map<int, Addr> lastLoad;
    for (const auto &op : out.trace.ops) {
        if (op.op != Opcode::Load)
            continue;
        auto it = lastLoad.find(op.arrayId);
        if (it != lastLoad.end() && op.offset > it->second &&
            op.offset - it->second == 512) {
            ++bigStrides;
        }
        lastLoad[op.arrayId] = op.offset;
    }
    EXPECT_GT(bigStrides, 100u);
}

TEST(WorkloadCharacter, MdKnnIsFpMultiplyHeavy)
{
    auto out = makeWorkload("md-knn")->build();
    std::size_t fpMul = 0, total = 0;
    for (const auto &op : out.trace.ops) {
        if (op.op == Opcode::FpMul)
            ++fpMul;
        if (isComputeOp(op.op))
            ++total;
    }
    EXPECT_GT(fpMul * 100, total * 35)
        << "md-knn should be dominated by FP multiplies";
}

} // namespace
} // namespace genie
