/**
 * @file
 * genie-verify subsystem tests.
 *
 * Covers the three correctness-tooling layers introduced with the
 * subsystem: the static lint pass (seeded violations against the rule
 * engine, suppression semantics), the runtime bus protocol checker
 * (clean full-system flows plus panics on seeded protocol breaks),
 * and the MOESI transition table.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/dddg.hh"
#include "core/soc.hh"
#include "lint.hh"
#include "mem/bus.hh"
#include "mem/coherence.hh"
#include "mem/dram.hh"
#include "mem/protocol_checker.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

// --- static pass: rule engine against seeded violations -------------

std::vector<lint::Finding>
lintSnippet(const std::string &path, const std::string &code)
{
    return lint::lintSource(path, code);
}

bool
hasRule(const std::vector<lint::Finding> &fs, const std::string &rule)
{
    for (const auto &f : fs) {
        if (f.rule == rule)
            return true;
    }
    return false;
}

TEST(LintDeterminism, FlagsSeededRandCall)
{
    auto fs = lintSnippet("src/accel/fixture.cc",
                          "int jitter() { return rand() % 7; }\n");
    ASSERT_TRUE(hasRule(fs, "determinism"));
    EXPECT_EQ(fs[0].line, 1);
}

TEST(LintDeterminism, FlagsWallClockAndRandomDevice)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc",
                    "auto t = std::chrono::system_clock::now();\n"),
        "determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "std::random_device rd;\n"),
        "determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "seed = std::time(nullptr);\n"),
        "determinism"));
}

TEST(LintDeterminism, SanctionedRngHeaderIsExempt)
{
    // random.hh itself may talk about mt19937 alternatives etc.
    auto fs = lintSnippet("src/sim/random.hh",
                          "std::mt19937 fallback;\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintDeterminism, IgnoresMatchesInCommentsAndStrings)
{
    auto fs = lintSnippet(
        "src/core/x.cc",
        "// rand() would be wrong here\n"
        "const char *msg = \"do not call rand()\";\n"
        "/* std::chrono::system_clock is banned */\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintDeterminism, DoesNotFlagIdentifiersContainingRand)
{
    auto fs = lintSnippet("src/core/x.cc",
                          "int operand(int x); int r = operand(3);\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintFaultRng, FlagsForeignRandomnessInsideFaultSubsystem)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "#include <random>\n"),
        "fault-rng"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "std::uniform_int_distribution<int> d(0, 9);\n"),
        "fault-rng"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/watchdog.cc",
                    "std::bernoulli_distribution coin(0.5);\n"),
        "fault-rng"));
    // rand() in src/fault is already covered by the tree-wide
    // determinism rule.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "int r = rand() % 2;\n"),
        "determinism"));
}

TEST(LintFaultRng, OnlyAppliesToTheFaultSubsystem)
{
    // <random> elsewhere is a style question for other rules, not a
    // fault-rng violation.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/soc.cc", "#include <random>\n"),
        "fault-rng"));
}

TEST(LintFaultRng, SanctionedRngUseIsClean)
{
    auto fs = lintSnippet("src/fault/fault_injector.cc",
                          "#include \"sim/random.hh\"\n"
                          "bool f(Rng &r) { return r.chance(0.5); }\n");
    EXPECT_FALSE(hasRule(fs, "fault-rng"));
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintRawOutput, FlagsCoutAndPrintf)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "std::cout << 42;\n"),
        "raw-output"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "printf(\"%d\", 42);\n"),
        "raw-output"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc",
                    "std::fprintf(stderr, \"oops\");\n"),
        "raw-output"));
}

TEST(LintRawOutput, AllowsStringFormattingAndFormatAttribute)
{
    // snprintf/vsnprintf format into buffers, not the console; the
    // printf format __attribute__ is metadata, not a call.
    auto fs = lintSnippet(
        "src/sim/x.cc",
        "int n = std::vsnprintf(nullptr, 0, fmt, ap);\n"
        "std::snprintf(buf, sizeof(buf), \"%d\", v);\n"
        "void warn(const char *fmt, ...)\n"
        "    __attribute__((format(printf, 1, 2)));\n");
    EXPECT_FALSE(hasRule(fs, "raw-output"));
}

TEST(LintIncludeGuard, ComputesCanonicalGuardFromPath)
{
    EXPECT_EQ(lint::expectedGuard("src/mem/bus.hh"),
              "GENIE_MEM_BUS_HH");
    EXPECT_EQ(lint::expectedGuard("src/sim/event_queue.hh"),
              "GENIE_SIM_EVENT_QUEUE_HH");
    EXPECT_EQ(lint::expectedGuard("tests/foo.hh"), "");
    EXPECT_EQ(lint::expectedGuard("src/mem/bus.cc"), "");
}

TEST(LintIncludeGuard, FlagsWrongMissingAndMismatchedDefine)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef WRONG_HH\n#define WRONG_HH\n#endif\n"),
        "include-guard"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh", "#include <vector>\n"),
        "include-guard"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef GENIE_MEM_FOO_HH\n"
                    "#define GENIE_MEM_FOO_XX\n#endif\n"),
        "include-guard"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef GENIE_MEM_FOO_HH\n"
                    "#define GENIE_MEM_FOO_HH\n#endif\n"),
        "include-guard"));
}

TEST(LintStaticState, FlagsMutableStaticsButNotFunctionsOrConst)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "static int counter = 0;\n"),
        "static-state"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "static bool initialized;\n"),
        "static-state"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "thread_local int tls = 1;\n"),
        "static-state"));
    // Static member-function declarations and const data are fine.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.hh",
                    "static std::vector<SocConfig> "
                    "isolated(const SocConfig &base);\n"),
        "static-state"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static constexpr int kTableSize = 8;\n"),
        "static-state"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static const char *names[] = {\"a\"};\n"),
        "static-state"));
    // static_cast / static_assert are not the `static` keyword.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static_assert(sizeof(int) == 4);\n"),
        "static-state"));
}

TEST(LintRawNewDelete, FlagsOwnershipButNotDeletedMembers)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "auto *p = new Entry{};\n"),
        "raw-new-delete"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "delete e;\n"),
        "raw-new-delete"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.hh",
                    "EventQueue(const EventQueue &) = delete;\n"
                    "EventQueue &operator=(const EventQueue &) = "
                    "delete;\n"),
        "raw-new-delete"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "// a new miss allocates an MSHR\n"
                    "auto p = std::make_unique<int>(3);\n"),
        "raw-new-delete"));
}

TEST(LintTraceSink, FlagsAdHocFileSinksOutsideTraceHome)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.cc",
                    "std::ofstream out(\"events.json\");\n"),
        "trace-sink"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dma/foo.cc",
                    "FILE *f = fopen(path, \"w\");\n"),
        "trace-sink"));
}

TEST(LintTraceSink, TraceSubsystemOwnsItsSinks)
{
    // src/trace is where the sanctioned sink lives; its own streams
    // are exempt without a suppression entry.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/trace/tracer.cc",
                    "std::ofstream out(path);\n"),
        "trace-sink"));
}

TEST(LintTraceSink, IgnoresMatchesInCommentsAndStrings)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/mem/foo.cc",
                    "// use std::ofstream via the Tracer only\n"
                    "const char *m = \"fopen( is banned here\";\n"),
        "trace-sink"));
}

TEST(LintTraceSink, MetricsSubsystemOwnsItsSinks)
{
    // src/metrics hosts the sanctioned stats/samples exporters; like
    // src/trace, its own file streams are exempt.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/metrics/export.cc",
                    "std::ofstream out(path);\n"),
        "trace-sink"));
}

TEST(LintSweepDeterminism, FlagsThreadIdentityInsideDse)
{
    // Sweep results and journal records must be byte-identical
    // across thread counts, so nothing in src/dse may observe which
    // thread or process ran a point.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "auto id = std::this_thread::get_id();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/journal.cc",
                    "std::thread::id owner;\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep.cc",
                    "auto t = pthread_self();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "record.worker = gettid();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/journal.cc",
                    "header.pid = getpid();\n"),
        "sweep-determinism"));
}

TEST(LintSweepDeterminism, OnlyAppliesToDseAndSkipsNonCode)
{
    // Outside src/dse the tokens are legitimate (tests spawn
    // threads; tools may report identity), so the rule is scoped.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/sim/event_queue.cc",
                    "auto id = std::this_thread::get_id();\n"),
        "sweep-determinism"));
    EXPECT_FALSE(hasRule(
        lintSnippet("tools/genie_sweep/main.cc",
                    "auto t = pthread_self();\n"),
        "sweep-determinism"));
    // Comments and strings never trip the rule.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "// never call std::this_thread::get_id() here\n"
                    "log(\"worker gettid( trace\");\n"),
        "sweep-determinism"));
    // std::thread itself (spawning workers) is fine; only identity
    // observation is banned.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "std::vector<std::thread> pool;\n"
                    "pool.emplace_back(worker, t);\n"),
        "sweep-determinism"));
}

TEST(LintStatPrint, FlagsBespokeStatDumpingOutsideMetrics)
{
    // Hand-plumbed per-component dumping is what the StatRegistry
    // replaced; new call sites must go through the registry.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/foo.cc",
                    "soc.bus().stats().dump(os);\n"),
        "stat-print"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.cc", "stats().dump(std::cerr);\n"),
        "stat-print"));
}

TEST(LintStatPrint, MetricsAndReportAreSanctioned)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/metrics/export.cc",
                    "group.stats().dump(os);\n"),
        "stat-print"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/report.cc",
                    "soc.bus().stats().dump(os);\n"),
        "stat-print"));
}

TEST(LintStatPrint, RegistryDumpIsTheBlessedPath)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/foo.cc",
                    "soc.statRegistry().dump(os);\n"),
        "stat-print"));
}

TEST(LintSuppressions, SuppressesByRuleAndPathOnly)
{
    auto s = lint::Suppressions::parse(
        "# comment\n"
        "\n"
        "raw-new-delete src/sim/event_queue.cc\n"
        "* src/legacy/grandfathered.cc\n");
    EXPECT_TRUE(s.matches("raw-new-delete", "src/sim/event_queue.cc"));
    EXPECT_FALSE(s.matches("determinism", "src/sim/event_queue.cc"));
    EXPECT_FALSE(s.matches("raw-new-delete", "src/sim/other.cc"));
    EXPECT_TRUE(s.matches("determinism",
                          "src/legacy/grandfathered.cc"));
    EXPECT_EQ(s.size(), 2u);
}

TEST(LintStrip, PreservesLineStructure)
{
    std::string out = lint::stripCommentsAndStrings(
        "a /* x\ny */ b\n\"str\\\"ing\" // tail\n'c'\n");
    // Same number of newlines in and out.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_EQ(out.find("str"), std::string::npos);
    EXPECT_EQ(out.find("tail"), std::string::npos);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('b'), std::string::npos);
}

// --- runtime layer: bus protocol checker ----------------------------

constexpr Tick busPeriod = 10000; // 100 MHz

class Sink : public BusClient
{
  public:
    void
    recvResponse(const Packet &pkt) override
    {
        responses.push_back(pkt);
    }
    std::vector<Packet> responses;
};

struct CheckedBusFixture : public ::testing::Test
{
    CheckedBusFixture()
        : bus("bus", eq, ClockDomain(busPeriod), {}),
          dram("dram", eq, ClockDomain(busPeriod), bus, {})
    {
        bus.setTarget(&dram);
        bus.enableProtocolChecker();
        port = bus.attachClient(&client, false);
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    Sink client;
    BusPortId port = invalidBusPort;
};

TEST_F(CheckedBusFixture, CleanRoundTripsPassAndRetire)
{
    for (std::uint64_t id = 1; id <= 8; ++id) {
        Packet pkt;
        pkt.cmd = id % 2 ? MemCmd::ReadShared : MemCmd::WriteReq;
        pkt.addr = 0x1000 + id * 64;
        pkt.size = 64;
        pkt.reqId = id;
        bus.sendRequest(port, pkt);
    }
    eq.run();

    ASSERT_NE(bus.protocolChecker(), nullptr);
    EXPECT_EQ(bus.protocolChecker()->requestsSeen(), 8u);
    EXPECT_EQ(bus.protocolChecker()->responsesSeen(), 8u);
    EXPECT_EQ(bus.protocolChecker()->outstanding(), 0u);
    bus.protocolChecker()->checkQuiescent(); // must not panic
    EXPECT_EQ(client.responses.size(), 8u);
}

TEST_F(CheckedBusFixture, DuplicateOutstandingReqIdPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Packet pkt;
    pkt.cmd = MemCmd::ReadShared;
    pkt.addr = 0x1000;
    pkt.size = 64;
    pkt.reqId = 42;
    bus.sendRequest(port, pkt);
    EXPECT_DEATH(bus.sendRequest(port, pkt), "duplicate outstanding");
}

TEST_F(CheckedBusFixture, ResponseWithoutRequestPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Packet resp;
    resp.cmd = MemCmd::ReadResp;
    resp.src = port;
    resp.reqId = 99;
    EXPECT_DEATH(bus.sendResponse(resp),
                 "response without a matching request");
}

TEST(ProtocolChecker, WrongCommandPairingPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ProtocolChecker checker;
    Packet req;
    req.cmd = MemCmd::ReadShared;
    req.src = 0;
    req.reqId = 7;
    checker.onRequest(req);
    Packet resp = req;
    resp.cmd = MemCmd::WriteResp; // reads must get ReadResp
    EXPECT_DEATH(checker.onResponse(resp), "wrong response pairing");
}

TEST(ProtocolChecker, LeakedRequestFailsQuiescenceCheck)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ProtocolChecker checker;
    Packet req;
    req.cmd = MemCmd::Writeback;
    req.src = 2;
    req.reqId = 11;
    checker.onRequest(req);
    EXPECT_EQ(checker.outstanding(), 1u);
    EXPECT_DEATH(checker.checkQuiescent(),
                 "never received a response");
}

// --- runtime layer: full-system flows under the checker -------------

struct Prepared
{
    Trace trace;
    Dddg dddg;
    explicit Prepared(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

void
runCheckedFlow(SocConfig cfg)
{
    Prepared p("stencil-stencil2d");
    Soc soc(cfg, p.trace, p.dddg);
    soc.bus().enableProtocolChecker();
    SocResults r = soc.run();
    EXPECT_GT(r.totalTicks, 0u);

    ProtocolChecker *checker = soc.bus().protocolChecker();
    ASSERT_NE(checker, nullptr);
    // Every reqId must have received exactly one response...
    checker->checkQuiescent();
    EXPECT_EQ(checker->requestsSeen(), checker->responsesSeen());
    EXPECT_GT(checker->requestsSeen(), 0u);
    // ...and the drained flow must leave no live events behind.
    soc.eventQueue().checkDrained();
}

TEST(ProtocolCheckerSystem, DmaOffloadFlowIsProtocolClean)
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    runCheckedFlow(cfg);
}

TEST(ProtocolCheckerSystem, CacheOffloadFlowIsProtocolClean)
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 4;
    runCheckedFlow(cfg);
}

// --- runtime layer: MOESI transition table --------------------------

TEST(MoesiTable, LegalEdgesOfTheProtocol)
{
    using S = CoherenceState;
    using E = CoherenceEvent;
    EXPECT_TRUE(moesiEdgeLegal(S::Invalid, S::Shared, E::FillShared));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Invalid, S::Exclusive, E::FillExclusive));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Invalid, S::Modified, E::FillModified));
    EXPECT_TRUE(moesiEdgeLegal(S::Exclusive, S::Modified, E::StoreHit));
    EXPECT_TRUE(moesiEdgeLegal(S::Modified, S::Modified, E::StoreHit));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Modified, E::UpgradeDone));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Modified, E::UpgradeDone));
    EXPECT_TRUE(moesiEdgeLegal(S::Modified, S::Owned, E::SnoopShared));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Owned, E::SnoopShared));
    EXPECT_TRUE(moesiEdgeLegal(S::Exclusive, S::Shared, E::SnoopShared));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Modified, S::Invalid, E::SnoopExclusive));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Invalid, E::SnoopUpgrade));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Invalid, E::Evict));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Modified, E::Prefill));
}

TEST(MoesiTable, IllegalEdgesAreRejected)
{
    using S = CoherenceState;
    using E = CoherenceEvent;
    // No silent privilege escalation.
    EXPECT_FALSE(moesiEdgeLegal(S::Shared, S::Modified, E::StoreHit));
    EXPECT_FALSE(moesiEdgeLegal(S::Owned, S::Modified, E::StoreHit));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Shared, S::Exclusive, E::FillExclusive));
    // Fills only land on invalid lines.
    EXPECT_FALSE(moesiEdgeLegal(S::Shared, S::Shared, E::FillShared));
    // An upgrade from E/I makes no sense (E upgrades silently; I has
    // nothing to upgrade).
    EXPECT_FALSE(
        moesiEdgeLegal(S::Exclusive, S::Modified, E::UpgradeDone));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Invalid, S::Modified, E::UpgradeDone));
    // Owners never shed dirty responsibility on a ReadShared snoop.
    EXPECT_FALSE(moesiEdgeLegal(S::Owned, S::Shared, E::SnoopShared));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Modified, S::Shared, E::SnoopShared));
    // Invalidating snoops cannot hit an invalid line (the cache
    // filters those before consulting the table).
    EXPECT_FALSE(
        moesiEdgeLegal(S::Invalid, S::Invalid, E::SnoopExclusive));
}

TEST(MoesiTable, StateAndEventNamesAreStable)
{
    EXPECT_STREQ(toString(CoherenceState::Owned), "O");
    EXPECT_STREQ(toString(CoherenceState::Invalid), "I");
    EXPECT_STREQ(toString(CoherenceEvent::SnoopShared), "SnoopShared");
}

} // namespace
} // namespace genie
