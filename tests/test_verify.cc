/**
 * @file
 * genie-verify subsystem tests.
 *
 * Covers the three correctness-tooling layers introduced with the
 * subsystem: the static lint pass (seeded violations against the rule
 * engine, suppression semantics), the runtime bus protocol checker
 * (clean full-system flows plus panics on seeded protocol breaks),
 * and the MOESI transition table.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/dddg.hh"
#include "concurrency.hh"
#include "core/soc.hh"
#include "index.hh"
#include "lint.hh"
#include "mem/bus.hh"
#include "mem/coherence.hh"
#include "mem/dram.hh"
#include "mem/protocol_checker.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

// --- static pass: rule engine against seeded violations -------------

std::vector<lint::Finding>
lintSnippet(const std::string &path, const std::string &code)
{
    return lint::lintSource(path, code);
}

bool
hasRule(const std::vector<lint::Finding> &fs, const std::string &rule)
{
    for (const auto &f : fs) {
        if (f.rule == rule)
            return true;
    }
    return false;
}

TEST(LintDeterminism, FlagsSeededRandCall)
{
    auto fs = lintSnippet("src/accel/fixture.cc",
                          "int jitter() { return rand() % 7; }\n");
    ASSERT_TRUE(hasRule(fs, "determinism"));
    EXPECT_EQ(fs[0].line, 1);
}

TEST(LintDeterminism, FlagsWallClockAndRandomDevice)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc",
                    "auto t = std::chrono::system_clock::now();\n"),
        "determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "std::random_device rd;\n"),
        "determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "seed = std::time(nullptr);\n"),
        "determinism"));
}

TEST(LintDeterminism, SanctionedRngHeaderIsExempt)
{
    // random.hh itself may talk about mt19937 alternatives etc.
    auto fs = lintSnippet("src/sim/random.hh",
                          "std::mt19937 fallback;\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintDeterminism, IgnoresMatchesInCommentsAndStrings)
{
    auto fs = lintSnippet(
        "src/core/x.cc",
        "// rand() would be wrong here\n"
        "const char *msg = \"do not call rand()\";\n"
        "/* std::chrono::system_clock is banned */\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintDeterminism, DoesNotFlagIdentifiersContainingRand)
{
    auto fs = lintSnippet("src/core/x.cc",
                          "int operand(int x); int r = operand(3);\n");
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintFaultRng, FlagsForeignRandomnessInsideFaultSubsystem)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "#include <random>\n"),
        "fault-rng"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "std::uniform_int_distribution<int> d(0, 9);\n"),
        "fault-rng"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/watchdog.cc",
                    "std::bernoulli_distribution coin(0.5);\n"),
        "fault-rng"));
    // rand() in src/fault is already covered by the tree-wide
    // determinism rule.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/fault/fault_injector.cc",
                    "int r = rand() % 2;\n"),
        "determinism"));
}

TEST(LintFaultRng, OnlyAppliesToTheFaultSubsystem)
{
    // <random> elsewhere is a style question for other rules, not a
    // fault-rng violation.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/soc.cc", "#include <random>\n"),
        "fault-rng"));
}

TEST(LintFaultRng, SanctionedRngUseIsClean)
{
    auto fs = lintSnippet("src/fault/fault_injector.cc",
                          "#include \"sim/random.hh\"\n"
                          "bool f(Rng &r) { return r.chance(0.5); }\n");
    EXPECT_FALSE(hasRule(fs, "fault-rng"));
    EXPECT_FALSE(hasRule(fs, "determinism"));
}

TEST(LintRawOutput, FlagsCoutAndPrintf)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "std::cout << 42;\n"),
        "raw-output"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "printf(\"%d\", 42);\n"),
        "raw-output"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc",
                    "std::fprintf(stderr, \"oops\");\n"),
        "raw-output"));
}

TEST(LintRawOutput, AllowsStringFormattingAndFormatAttribute)
{
    // snprintf/vsnprintf format into buffers, not the console; the
    // printf format __attribute__ is metadata, not a call.
    auto fs = lintSnippet(
        "src/sim/x.cc",
        "int n = std::vsnprintf(nullptr, 0, fmt, ap);\n"
        "std::snprintf(buf, sizeof(buf), \"%d\", v);\n"
        "void warn(const char *fmt, ...)\n"
        "    __attribute__((format(printf, 1, 2)));\n");
    EXPECT_FALSE(hasRule(fs, "raw-output"));
}

TEST(LintIncludeGuard, ComputesCanonicalGuardFromPath)
{
    EXPECT_EQ(lint::expectedGuard("src/mem/bus.hh"),
              "GENIE_MEM_BUS_HH");
    EXPECT_EQ(lint::expectedGuard("src/sim/event_queue.hh"),
              "GENIE_SIM_EVENT_QUEUE_HH");
    EXPECT_EQ(lint::expectedGuard("tests/foo.hh"), "");
    EXPECT_EQ(lint::expectedGuard("src/mem/bus.cc"), "");
}

TEST(LintIncludeGuard, FlagsWrongMissingAndMismatchedDefine)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef WRONG_HH\n#define WRONG_HH\n#endif\n"),
        "include-guard"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh", "#include <vector>\n"),
        "include-guard"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef GENIE_MEM_FOO_HH\n"
                    "#define GENIE_MEM_FOO_XX\n#endif\n"),
        "include-guard"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/mem/foo.hh",
                    "#ifndef GENIE_MEM_FOO_HH\n"
                    "#define GENIE_MEM_FOO_HH\n#endif\n"),
        "include-guard"));
}

TEST(LintStaticState, FlagsMutableStaticsButNotFunctionsOrConst)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "static int counter = 0;\n"),
        "static-state"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "static bool initialized;\n"),
        "static-state"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "thread_local int tls = 1;\n"),
        "static-state"));
    // Static member-function declarations and const data are fine.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.hh",
                    "static std::vector<SocConfig> "
                    "isolated(const SocConfig &base);\n"),
        "static-state"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static constexpr int kTableSize = 8;\n"),
        "static-state"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static const char *names[] = {\"a\"};\n"),
        "static-state"));
    // static_cast / static_assert are not the `static` keyword.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "static_assert(sizeof(int) == 4);\n"),
        "static-state"));
}

TEST(LintRawNewDelete, FlagsOwnershipButNotDeletedMembers)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "auto *p = new Entry{};\n"),
        "raw-new-delete"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/core/x.cc", "delete e;\n"),
        "raw-new-delete"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.hh",
                    "EventQueue(const EventQueue &) = delete;\n"
                    "EventQueue &operator=(const EventQueue &) = "
                    "delete;\n"),
        "raw-new-delete"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/x.cc",
                    "// a new miss allocates an MSHR\n"
                    "auto p = std::make_unique<int>(3);\n"),
        "raw-new-delete"));
}

TEST(LintEventAlloc, FlagsManualAllocationInsideTheEventKernel)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/sim/event_queue.cc",
                    "void *p = malloc(sizeof(Entry));\n"),
        "event-alloc"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/sim/event_queue.cc", "free(p);\n"),
        "event-alloc"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/sim/ladder_queue.hh",
                    "void *operator new(std::size_t n);\n"),
        "event-alloc"));
}

TEST(LintEventAlloc, ArenaHomeAndOtherSubsystemsAreExempt)
{
    // The arena header is the one sanctioned manual-allocation site.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/sim/event_arena.hh",
                    "void *raw = malloc(n); free(raw);\n"),
        "event-alloc"));
    // The rule polices the event kernel only; allocation elsewhere is
    // raw-new-delete's (or a human reviewer's) business.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/mem/dram.cc", "free(ctx);\n"),
        "event-alloc"));
    // Identifiers containing the tokens don't trip the lexer.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/sim/event_queue.cc",
                    "freeEntry(e); arena.destroy(slot);\n"),
        "event-alloc"));
}

TEST(LintTraceSink, FlagsAdHocFileSinksOutsideTraceHome)
{
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.cc",
                    "std::ofstream out(\"events.json\");\n"),
        "trace-sink"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dma/foo.cc",
                    "FILE *f = fopen(path, \"w\");\n"),
        "trace-sink"));
}

TEST(LintTraceSink, TraceSubsystemOwnsItsSinks)
{
    // src/trace is where the sanctioned sink lives; its own streams
    // are exempt without a suppression entry.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/trace/tracer.cc",
                    "std::ofstream out(path);\n"),
        "trace-sink"));
}

TEST(LintTraceSink, IgnoresMatchesInCommentsAndStrings)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/mem/foo.cc",
                    "// use std::ofstream via the Tracer only\n"
                    "const char *m = \"fopen( is banned here\";\n"),
        "trace-sink"));
}

TEST(LintTraceSink, MetricsSubsystemOwnsItsSinks)
{
    // src/metrics hosts the sanctioned stats/samples exporters; like
    // src/trace, its own file streams are exempt.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/metrics/export.cc",
                    "std::ofstream out(path);\n"),
        "trace-sink"));
}

TEST(LintSweepDeterminism, FlagsThreadIdentityInsideDse)
{
    // Sweep results and journal records must be byte-identical
    // across thread counts, so nothing in src/dse may observe which
    // thread or process ran a point.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "auto id = std::this_thread::get_id();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/journal.cc",
                    "std::thread::id owner;\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep.cc",
                    "auto t = pthread_self();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "record.worker = gettid();\n"),
        "sweep-determinism"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/journal.cc",
                    "header.pid = getpid();\n"),
        "sweep-determinism"));
}

TEST(LintSweepDeterminism, OnlyAppliesToDseAndSkipsNonCode)
{
    // Outside src/dse the tokens are legitimate (tests spawn
    // threads; tools may report identity), so the rule is scoped.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/sim/event_queue.cc",
                    "auto id = std::this_thread::get_id();\n"),
        "sweep-determinism"));
    EXPECT_FALSE(hasRule(
        lintSnippet("tools/genie_sweep/main.cc",
                    "auto t = pthread_self();\n"),
        "sweep-determinism"));
    // Comments and strings never trip the rule.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "// never call std::this_thread::get_id() here\n"
                    "log(\"worker gettid( trace\");\n"),
        "sweep-determinism"));
    // std::thread itself (spawning workers) is fine; only identity
    // observation is banned.
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/sweep_engine.cc",
                    "std::vector<std::thread> pool;\n"
                    "pool.emplace_back(worker, t);\n"),
        "sweep-determinism"));
}

TEST(LintStatPrint, FlagsBespokeStatDumpingOutsideMetrics)
{
    // Hand-plumbed per-component dumping is what the StatRegistry
    // replaced; new call sites must go through the registry.
    EXPECT_TRUE(hasRule(
        lintSnippet("src/dse/foo.cc",
                    "soc.bus().stats().dump(os);\n"),
        "stat-print"));
    EXPECT_TRUE(hasRule(
        lintSnippet("src/mem/foo.cc", "stats().dump(std::cerr);\n"),
        "stat-print"));
}

TEST(LintStatPrint, MetricsAndReportAreSanctioned)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/metrics/export.cc",
                    "group.stats().dump(os);\n"),
        "stat-print"));
    EXPECT_FALSE(hasRule(
        lintSnippet("src/core/report.cc",
                    "soc.bus().stats().dump(os);\n"),
        "stat-print"));
}

TEST(LintStatPrint, RegistryDumpIsTheBlessedPath)
{
    EXPECT_FALSE(hasRule(
        lintSnippet("src/dse/foo.cc",
                    "soc.statRegistry().dump(os);\n"),
        "stat-print"));
}

TEST(LintSuppressions, SuppressesByRuleAndPathOnly)
{
    auto s = lint::Suppressions::parse(
        "# comment\n"
        "\n"
        "raw-new-delete src/sim/event_queue.cc\n"
        "* src/legacy/grandfathered.cc\n");
    EXPECT_TRUE(s.matches("raw-new-delete", "src/sim/event_queue.cc"));
    EXPECT_FALSE(s.matches("determinism", "src/sim/event_queue.cc"));
    EXPECT_FALSE(s.matches("raw-new-delete", "src/sim/other.cc"));
    EXPECT_TRUE(s.matches("determinism",
                          "src/legacy/grandfathered.cc"));
    EXPECT_EQ(s.size(), 2u);
}

TEST(LintStrip, PreservesLineStructure)
{
    std::string out = lint::stripCommentsAndStrings(
        "a /* x\ny */ b\n\"str\\\"ing\" // tail\n'c'\n");
    // Same number of newlines in and out.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_EQ(out.find("str"), std::string::npos);
    EXPECT_EQ(out.find("tail"), std::string::npos);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('b'), std::string::npos);
}

// --- cross-TU declaration index -------------------------------------

lint::DeclIndex
indexOf(std::vector<std::pair<std::string, std::string>> files)
{
    lint::DeclIndex idx;
    for (const auto &[path, code] : files)
        idx.addFile(path, code);
    return idx;
}

std::vector<lint::Finding>
findingsFor(std::vector<std::pair<std::string, std::string>> files,
            const std::string &rule)
{
    auto idx = indexOf(std::move(files));
    std::vector<lint::Finding> out;
    for (auto &f : lint::analyzeConcurrency(idx)) {
        if (f.rule == rule)
            out.push_back(std::move(f));
    }
    return out;
}

TEST(DeclIndex, IndexesClassesFieldsMethodsAndStatics)
{
    auto idx = indexOf(
        {{"src/mem/widget.hh",
          "#include \"sim/types.hh\"\n"
          "namespace genie {\n"
          "class Widget {\n"
          "  public:\n"
          "    void tick();\n"
          "    int size() const { return n; }\n"
          "  private:\n"
          "    int n = 0;\n"
          "    const int limit = 8;\n"
          "    static unsigned live;\n"
          "    std::mutex mutex;\n"
          "    std::atomic<int> refs{0};\n"
          "};\n"
          "int spare = 3;\n"
          "} // namespace genie\n"},
         {"src/mem/widget.cc",
          "#include \"mem/widget.hh\"\n"
          "namespace genie {\n"
          "unsigned Widget::live = 0;\n"
          "void Widget::tick() { ++n; }\n"
          "} // namespace genie\n"}});

    const lint::ClassDecl *w = idx.findClass("Widget");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->file, "src/mem/widget.hh");
    ASSERT_EQ(w->fields.size(), 5u);
    EXPECT_EQ(w->fields[0].name, "n");
    EXPECT_TRUE(w->fields[1].isConst);
    EXPECT_TRUE(w->fields[2].isStatic);
    EXPECT_TRUE(w->fields[3].isSync);
    EXPECT_TRUE(w->fields[4].isAtomic);

    // Methods with and without inline bodies both register; the
    // out-of-line definition lands in functions() with its class.
    ASSERT_EQ(w->methods.size(), 2u);
    bool sawOutOfLine = false;
    for (const auto &fn : idx.functions()) {
        if (fn.name == "tick" && fn.className == "Widget" &&
            fn.file == "src/mem/widget.cc")
            sawOutOfLine = true;
    }
    EXPECT_TRUE(sawOutOfLine);

    // Initialized namespace-scope variables count as statics; the
    // include graph is harvested from the raw text.
    bool sawSpare = false;
    for (const auto &s : idx.statics())
        sawSpare |= s.name == "spare" && s.scope == "namespace";
    EXPECT_TRUE(sawSpare);
    ASSERT_NE(idx.file("src/mem/widget.hh"), nullptr);
    EXPECT_EQ(idx.file("src/mem/widget.hh")->includes,
              std::vector<std::string>{"sim/types.hh"});
}

TEST(DeclIndex, CollectsAnnotationsThroughTheEnclosingChain)
{
    auto idx = indexOf(
        {{"src/dse/outer.hh",
          "namespace genie {\n"
          "class Outer GENIE_THREAD_LOCAL_OK {\n"
          "    struct Inner { int x = 0; };\n"
          "    int guardedValue GENIE_GUARDED_BY(mutex) = 0;\n"
          "    std::mutex mutex;\n"
          "};\n"
          "} // namespace genie\n"}});

    const lint::ClassDecl *outer = idx.findClass("Outer");
    const lint::ClassDecl *inner = idx.findClass("Outer::Inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->enclosing, "Outer");
    EXPECT_TRUE(
        idx.classHasAnnotation(*outer, "GENIE_THREAD_LOCAL_OK"));
    // Nested classes inherit the enclosing class's coverage.
    EXPECT_TRUE(
        idx.classHasAnnotation(*inner, "GENIE_THREAD_LOCAL_OK"));

    bool sawGuarded = false;
    for (const auto &f : outer->fields) {
        if (f.name != "guardedValue")
            continue;
        ASSERT_EQ(f.annotations.size(), 1u);
        EXPECT_EQ(f.annotations[0].name, "GENIE_GUARDED_BY");
        EXPECT_EQ(f.annotations[0].arg, "mutex");
        sawGuarded = true;
    }
    EXPECT_TRUE(sawGuarded);
}

TEST(DeclIndex, InitializersDoNotLeakIntoDeclaredNames)
{
    // Regression: `bool on = false;` once indexed a field named
    // "false" because the name scan included initializer tokens.
    auto idx = indexOf({{"src/dse/cfg.hh",
                         "namespace genie {\n"
                         "struct Cfg {\n"
                         "    bool on = false;\n"
                         "    unsigned depth = kDefault;\n"
                         "};\n"
                         "} // namespace genie\n"}});
    const lint::ClassDecl *c = idx.findClass("Cfg");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->fields.size(), 2u);
    EXPECT_EQ(c->fields[0].name, "on");
    EXPECT_EQ(c->fields[1].name, "depth");
}

// --- concurrency rules over the index -------------------------------

TEST(LintSharedState, FlagsUnannotatedStaticsAndSharedSetFields)
{
    auto fs = findingsFor(
        {{"src/mem/counters.cc",
          "namespace genie { namespace {\n"
          "unsigned long totalPackets = 0;\n"
          "} }\n"},
         {"src/dse/tally.hh",
          "namespace genie {\n"
          "struct Tally { unsigned hits = 0; };\n"
          "} // namespace genie\n"}},
        "shared-state");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].file, "src/dse/tally.hh");
    EXPECT_NE(fs[0].message.find("Tally::hits"), std::string::npos);
    EXPECT_EQ(fs[1].file, "src/mem/counters.cc");
    EXPECT_NE(fs[1].message.find("totalPackets"), std::string::npos);
}

TEST(LintSharedState, AnnotationsAndExemptKindsSatisfyTheRule)
{
    auto fs = findingsFor(
        {{"src/dse/tally.hh",
          "namespace genie {\n"
          "struct Tally {\n"
          "    unsigned hits GENIE_GUARDED_BY(mutex) = 0;\n"
          "    std::atomic<unsigned> misses GENIE_SHARED_OK(atomic){0};\n"
          "    const unsigned cap = 8;\n"
          "    std::mutex mutex;\n"
          "};\n"
          "struct Scratch GENIE_THREAD_LOCAL_OK {\n"
          "    unsigned covered = 0;\n"
          "};\n"
          "} // namespace genie\n"},
         {"src/mem/counters.cc",
          "namespace genie { namespace {\n"
          "unsigned hits GENIE_SHARED_OK(atomic counter) = 0;\n"
          "} }\n"}},
        "shared-state");
    EXPECT_TRUE(fs.empty()) << (fs.empty() ? "" : fs[0].message);
}

TEST(LintSharedState, OutsideTheSharedSetOnlyStaticsAreChecked)
{
    // src/mem is not in the shared set: bare members pass, but
    // mutable statics are still everyone's problem.
    auto fs = findingsFor({{"src/mem/bus.hh",
                            "namespace genie {\n"
                            "struct Bus { unsigned inflight = 0; };\n"
                            "} // namespace genie\n"}},
                          "shared-state");
    EXPECT_TRUE(fs.empty());
    EXPECT_FALSE(lint::inSharedSet("src/mem/bus.hh"));
    EXPECT_TRUE(lint::inSharedSet("src/dse/sweep_engine.hh"));
    EXPECT_TRUE(lint::inSharedSet("src/sim/stats.hh"));
}

TEST(LintGuardedBy, LockRequiresAndCtorSatisfyTheContract)
{
    const char *code =
        "namespace genie {\n"
        "class Box {\n"
        "  public:\n"
        "    Box() { value = 1; }\n" // single-owner construction
        "    void addLocked() {\n"
        "        std::lock_guard<std::mutex> lock(mutex);\n"
        "        ++value;\n"
        "    }\n"
        "    int readRequired() GENIE_REQUIRES(mutex)\n"
        "    { return value; }\n"
        "    void addDirect() { mutex.lock(); ++value; }\n"
        "  private:\n"
        "    int value GENIE_GUARDED_BY(mutex) = 0;\n"
        "    std::mutex mutex;\n"
        "};\n"
        "} // namespace genie\n";
    auto fs = findingsFor({{"src/dse/box.hh", code}}, "guarded-by");
    EXPECT_TRUE(fs.empty()) << (fs.empty() ? "" : fs[0].message);
}

TEST(LintGuardedBy, FlagsAccessWithNoLockInScope)
{
    const char *code =
        "namespace genie {\n"
        "class Box {\n"
        "  public:\n"
        "    void addUnlocked() { ++value; }\n"
        "  private:\n"
        "    int value GENIE_GUARDED_BY(mutex) = 0;\n"
        "    std::mutex mutex;\n"
        "};\n"
        "} // namespace genie\n";
    auto fs = findingsFor({{"src/dse/box.hh", code}}, "guarded-by");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_NE(fs[0].message.find("addUnlocked"), std::string::npos);
    EXPECT_NE(fs[0].message.find("GENIE_GUARDED_BY(mutex)"),
              std::string::npos);
}

TEST(LintGuardedBy, OutOfLineMethodsAreInScope)
{
    auto fs = findingsFor(
        {{"src/dse/box.hh",
          "namespace genie {\n"
          "class Box {\n"
          "    void bump();\n"
          "    int value GENIE_GUARDED_BY(mutex) = 0;\n"
          "    std::mutex mutex;\n"
          "};\n"
          "} // namespace genie\n"},
         {"src/dse/box.cc",
          "#include \"dse/box.hh\"\n"
          "namespace genie {\n"
          "void Box::bump() { ++value; }\n"
          "} // namespace genie\n"}},
        "guarded-by");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].file, "src/dse/box.cc");
}

TEST(LintEventAffinity, KindTaggedScheduleSitesAreWhitelisted)
{
    // The tagged call keeps its third-argument comma even after
    // string stripping, and it licenses deschedule in the same TU.
    const char *code =
        "namespace genie {\n"
        "void Watchdog::arm() {\n"
        "    eventQueue.scheduleIn(period, check, \"watchdog.check\");\n"
        "    eventQueue.deschedule(pending);\n"
        "}\n"
        "} // namespace genie\n";
    auto fs = findingsFor({{"src/fault/watchdog.cc", code}},
                          "event-affinity");
    EXPECT_TRUE(fs.empty()) << (fs.empty() ? "" : fs[0].message);
}

TEST(LintEventAffinity, FlagsUntaggedScheduleAndOrphanDeschedule)
{
    auto fs = findingsFor(
        {{"src/accel/unit.cc",
          "namespace genie {\n"
          "void Unit::go() { eq.schedule(when, action); }\n"
          "} // namespace genie\n"},
         {"src/accel/other.cc",
          "namespace genie {\n"
          "void Other::halt() { eq.deschedule(evt); }\n"
          "} // namespace genie\n"}},
        "event-affinity");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_NE(fs[0].message.find("deschedule"), std::string::npos);
    EXPECT_NE(fs[1].message.find("un-tagged"), std::string::npos);
}

TEST(LintEventAffinity, RendezvousSettersNeedAnOwningContext)
{
    const char *offender =
        "namespace genie {\n"
        "void Probe::attach(EventQueue &eq) {\n"
        "    eq.setProfiler(&profiler);\n"
        "}\n"
        "} // namespace genie\n";
    const char *owner =
        "namespace genie {\n"
        "void runPoint(const SocConfig &cfg) {\n"
        "    Soc soc(cfg, trace, dddg);\n"
        "    soc.eventQueue().setProfiler(&profiler);\n"
        "}\n"
        "} // namespace genie\n";
    auto bad = findingsFor({{"src/metrics/probe.cc", offender}},
                           "event-affinity");
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_NE(bad[0].message.find("setProfiler"), std::string::npos);
    // Constructing the Soc locally, or living in src/core, is the
    // single-owner setup phase the rule licenses.
    EXPECT_TRUE(findingsFor({{"src/dse/runner.cc", owner}},
                            "event-affinity")
                    .empty());
    EXPECT_TRUE(findingsFor({{"src/core/soc.cc", offender}},
                            "event-affinity")
                    .empty());
}

TEST(LintEventAffinity, FlowVariantsNeedTagsAndLicenseDeschedule)
{
    // scheduleFlow/scheduleFlowIn are schedule sites like any other:
    // untagged ones are flagged, tagged ones license deschedule.
    auto bad = findingsFor(
        {{"src/mem/port.cc",
          "namespace genie {\n"
          "void Port::push() { eq.scheduleFlow(when, action); }\n"
          "} // namespace genie\n"}},
        "event-affinity");
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_NE(bad[0].message.find("un-tagged"), std::string::npos);

    const char *good =
        "namespace genie {\n"
        "void Port::push() {\n"
        "    eq.scheduleFlowIn(delay, action, \"mem.port\");\n"
        "    eq.deschedule(pending);\n"
        "}\n"
        "} // namespace genie\n";
    EXPECT_TRUE(
        findingsFor({{"src/mem/port.cc", good}}, "event-affinity")
            .empty());
}

TEST(LintFlowSite, TracedTuMustUseFlowScheduling)
{
    // A TU that records spans (calls tracerFor) dropping back to a
    // plain schedule loses the causal edge; the flow variants (and
    // Clocked::scheduleCycles) are the sanctioned paths.
    const char *offender =
        "namespace genie {\n"
        "void Unit::go() {\n"
        "    auto span = eq.tracerFor(this);\n"
        "    eq.scheduleIn(delay, action, \"accel.unit\");\n"
        "}\n"
        "} // namespace genie\n";
    auto fs =
        findingsFor({{"src/accel/unit.cc", offender}}, "flow-site");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 4);
    EXPECT_NE(fs[0].message.find("scheduleFlow"), std::string::npos);

    const char *fixed =
        "namespace genie {\n"
        "void Unit::go() {\n"
        "    auto span = eq.tracerFor(this);\n"
        "    eq.scheduleFlowIn(delay, action, \"accel.unit\");\n"
        "    scheduleCycles(1, tick, \"accel.unit\");\n"
        "}\n"
        "} // namespace genie\n";
    EXPECT_TRUE(
        findingsFor({{"src/accel/unit.cc", fixed}}, "flow-site")
            .empty());
}

TEST(LintFlowSite, UntracedTusAndTheMechanismAreExempt)
{
    // No tracerFor: plain scheduling is fine (the event-affinity tag
    // rule still applies separately).
    const char *untraced =
        "namespace genie {\n"
        "void Watchdog::arm() {\n"
        "    eq.scheduleIn(period, check, \"fault.watchdog\");\n"
        "}\n"
        "} // namespace genie\n";
    EXPECT_TRUE(
        findingsFor({{"src/fault/watchdog.cc", untraced}}, "flow-site")
            .empty());

    // src/sim (the mechanism) and src/trace (the Tracer) are exempt
    // even when tracerFor appears in the token stream.
    const char *mechanism =
        "namespace genie {\n"
        "void EventQueue::helper() {\n"
        "    tracerFor(this);\n"
        "    schedule(when, action, \"sim.helper\");\n"
        "}\n"
        "} // namespace genie\n";
    EXPECT_TRUE(
        findingsFor({{"src/sim/event_queue.cc", mechanism}},
                    "flow-site")
            .empty());
    EXPECT_TRUE(
        findingsFor({{"src/trace/tracer.cc", mechanism}}, "flow-site")
            .empty());
}

TEST(LintAmbient, FlagsEnvLocaleAndPointerKeyedContainers)
{
    auto fs = findingsFor(
        {{"src/core/cfg.cc",
          "const char *home = std::getenv(\"HOME\");\n"
          "std::map<const Node *, int> order;\n"
          "std::map<std::string, int> byName;\n"
          "std::set<Event *> pending;\n"}},
        "ambient-nondeterminism");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_NE(fs[0].message.find("environment"), std::string::npos);
    EXPECT_EQ(fs[1].line, 2);
    EXPECT_NE(fs[1].message.find("pointer-keyed"), std::string::npos);
    EXPECT_EQ(fs[2].line, 4);
}

TEST(LintAmbient, ValueKeyedContainersAndToolsSuppressionsWork)
{
    // Value-keyed maps are fine; suppression entries take the
    // rule+path pair just like the per-file rules.
    auto fs = findingsFor(
        {{"src/core/tbl.cc", "std::map<unsigned, Row> rows;\n"}},
        "ambient-nondeterminism");
    EXPECT_TRUE(fs.empty());

    auto s = lint::Suppressions::parse(
        "ambient-nondeterminism tools/genie_sweep/main.cc\n");
    EXPECT_TRUE(s.matches("ambient-nondeterminism",
                          "tools/genie_sweep/main.cc"));
    EXPECT_FALSE(
        s.matches("ambient-nondeterminism", "src/core/tbl.cc"));
}

TEST(SharedStateInventory, ReportsAnnotatedStateAsJson)
{
    auto idx = indexOf(
        {{"src/dse/tally.hh",
          "namespace genie {\n"
          "struct Tally {\n"
          "    unsigned hits GENIE_GUARDED_BY(mutex) = 0;\n"
          "    std::mutex mutex;\n"
          "};\n"
          "} // namespace genie\n"}});
    std::string json = lint::sharedStateInventoryJson(idx);
    EXPECT_NE(json.find("\"schema\": \"genie-analyze-1\""),
              std::string::npos);
    EXPECT_NE(json.find("Tally"), std::string::npos);
    EXPECT_NE(json.find("GENIE_GUARDED_BY"), std::string::npos);
    EXPECT_NE(json.find("mutex"), std::string::npos);
}

// --- runtime layer: bus protocol checker ----------------------------

constexpr Tick busPeriod = 10000; // 100 MHz

class Sink : public BusClient
{
  public:
    void
    recvResponse(const Packet &pkt) override
    {
        responses.push_back(pkt);
    }
    std::vector<Packet> responses;
};

struct CheckedBusFixture : public ::testing::Test
{
    CheckedBusFixture()
        : bus("bus", eq, ClockDomain(busPeriod), {}),
          dram("dram", eq, ClockDomain(busPeriod), bus, {})
    {
        bus.setTarget(&dram);
        bus.enableProtocolChecker();
        port = bus.attachClient(&client, false);
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    Sink client;
    BusPortId port = invalidBusPort;
};

TEST_F(CheckedBusFixture, CleanRoundTripsPassAndRetire)
{
    for (std::uint64_t id = 1; id <= 8; ++id) {
        Packet pkt;
        pkt.cmd = id % 2 ? MemCmd::ReadShared : MemCmd::WriteReq;
        pkt.addr = 0x1000 + id * 64;
        pkt.size = 64;
        pkt.reqId = id;
        bus.sendRequest(port, pkt);
    }
    eq.run();

    ASSERT_NE(bus.protocolChecker(), nullptr);
    EXPECT_EQ(bus.protocolChecker()->requestsSeen(), 8u);
    EXPECT_EQ(bus.protocolChecker()->responsesSeen(), 8u);
    EXPECT_EQ(bus.protocolChecker()->outstanding(), 0u);
    bus.protocolChecker()->checkQuiescent(); // must not panic
    EXPECT_EQ(client.responses.size(), 8u);
}

TEST_F(CheckedBusFixture, DuplicateOutstandingReqIdPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Packet pkt;
    pkt.cmd = MemCmd::ReadShared;
    pkt.addr = 0x1000;
    pkt.size = 64;
    pkt.reqId = 42;
    bus.sendRequest(port, pkt);
    EXPECT_DEATH(bus.sendRequest(port, pkt), "duplicate outstanding");
}

TEST_F(CheckedBusFixture, ResponseWithoutRequestPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Packet resp;
    resp.cmd = MemCmd::ReadResp;
    resp.src = port;
    resp.reqId = 99;
    EXPECT_DEATH(bus.sendResponse(resp),
                 "response without a matching request");
}

TEST(ProtocolChecker, WrongCommandPairingPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ProtocolChecker checker;
    Packet req;
    req.cmd = MemCmd::ReadShared;
    req.src = 0;
    req.reqId = 7;
    checker.onRequest(req);
    Packet resp = req;
    resp.cmd = MemCmd::WriteResp; // reads must get ReadResp
    EXPECT_DEATH(checker.onResponse(resp), "wrong response pairing");
}

TEST(ProtocolChecker, LeakedRequestFailsQuiescenceCheck)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ProtocolChecker checker;
    Packet req;
    req.cmd = MemCmd::Writeback;
    req.src = 2;
    req.reqId = 11;
    checker.onRequest(req);
    EXPECT_EQ(checker.outstanding(), 1u);
    EXPECT_DEATH(checker.checkQuiescent(),
                 "never received a response");
}

// --- runtime layer: full-system flows under the checker -------------

struct Prepared
{
    Trace trace;
    Dddg dddg;
    explicit Prepared(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

void
runCheckedFlow(SocConfig cfg)
{
    Prepared p("stencil-stencil2d");
    Soc soc(cfg, p.trace, p.dddg);
    soc.bus().enableProtocolChecker();
    SocResults r = soc.run();
    EXPECT_GT(r.totalTicks, 0u);

    ProtocolChecker *checker = soc.bus().protocolChecker();
    ASSERT_NE(checker, nullptr);
    // Every reqId must have received exactly one response...
    checker->checkQuiescent();
    EXPECT_EQ(checker->requestsSeen(), checker->responsesSeen());
    EXPECT_GT(checker->requestsSeen(), 0u);
    // ...and the drained flow must leave no live events behind.
    soc.eventQueue().checkDrained();
}

TEST(ProtocolCheckerSystem, DmaOffloadFlowIsProtocolClean)
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    runCheckedFlow(cfg);
}

TEST(ProtocolCheckerSystem, CacheOffloadFlowIsProtocolClean)
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 4;
    runCheckedFlow(cfg);
}

TEST(ProtocolCheckerSystem, AcpOffloadFlowIsProtocolClean)
{
    // The third interface regime: coherent ACP loads/stores plus
    // interrupt completion and a drained command queue must pair
    // every request with exactly one response, like the two regimes
    // it joins.
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.iface.memType = IfaceMemType::Acp;
    cfg.iface.completion = CompletionMode::Interrupt;
    cfg.iface.queueDepth = 2;
    cfg.iface.invocations = 2;
    runCheckedFlow(cfg);
}

TEST(ProtocolCheckerSystem, AcpFaultRetriesStayProtocolClean)
{
    // Injected snoop faults force beat reissues; every reissue is a
    // fresh request that must still retire exactly once.
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.iface.memType = IfaceMemType::Acp;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::AcpSnoop)] =
        0.3;
    cfg.faults.seed = 11;
    runCheckedFlow(cfg);
}

// --- runtime layer: MOESI transition table --------------------------

TEST(MoesiTable, LegalEdgesOfTheProtocol)
{
    using S = CoherenceState;
    using E = CoherenceEvent;
    EXPECT_TRUE(moesiEdgeLegal(S::Invalid, S::Shared, E::FillShared));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Invalid, S::Exclusive, E::FillExclusive));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Invalid, S::Modified, E::FillModified));
    EXPECT_TRUE(moesiEdgeLegal(S::Exclusive, S::Modified, E::StoreHit));
    EXPECT_TRUE(moesiEdgeLegal(S::Modified, S::Modified, E::StoreHit));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Modified, E::UpgradeDone));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Modified, E::UpgradeDone));
    EXPECT_TRUE(moesiEdgeLegal(S::Modified, S::Owned, E::SnoopShared));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Owned, E::SnoopShared));
    EXPECT_TRUE(moesiEdgeLegal(S::Exclusive, S::Shared, E::SnoopShared));
    EXPECT_TRUE(
        moesiEdgeLegal(S::Modified, S::Invalid, E::SnoopExclusive));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Invalid, E::SnoopUpgrade));
    EXPECT_TRUE(moesiEdgeLegal(S::Owned, S::Invalid, E::Evict));
    EXPECT_TRUE(moesiEdgeLegal(S::Shared, S::Modified, E::Prefill));
}

TEST(MoesiTable, IllegalEdgesAreRejected)
{
    using S = CoherenceState;
    using E = CoherenceEvent;
    // No silent privilege escalation.
    EXPECT_FALSE(moesiEdgeLegal(S::Shared, S::Modified, E::StoreHit));
    EXPECT_FALSE(moesiEdgeLegal(S::Owned, S::Modified, E::StoreHit));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Shared, S::Exclusive, E::FillExclusive));
    // Fills only land on invalid lines.
    EXPECT_FALSE(moesiEdgeLegal(S::Shared, S::Shared, E::FillShared));
    // An upgrade from E/I makes no sense (E upgrades silently; I has
    // nothing to upgrade).
    EXPECT_FALSE(
        moesiEdgeLegal(S::Exclusive, S::Modified, E::UpgradeDone));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Invalid, S::Modified, E::UpgradeDone));
    // Owners never shed dirty responsibility on a ReadShared snoop.
    EXPECT_FALSE(moesiEdgeLegal(S::Owned, S::Shared, E::SnoopShared));
    EXPECT_FALSE(
        moesiEdgeLegal(S::Modified, S::Shared, E::SnoopShared));
    // Invalidating snoops cannot hit an invalid line (the cache
    // filters those before consulting the table).
    EXPECT_FALSE(
        moesiEdgeLegal(S::Invalid, S::Invalid, E::SnoopExclusive));
}

TEST(MoesiTable, StateAndEventNamesAreStable)
{
    EXPECT_STREQ(toString(CoherenceState::Owned), "O");
    EXPECT_STREQ(toString(CoherenceState::Invalid), "I");
    EXPECT_STREQ(toString(CoherenceEvent::SnoopShared), "SnoopShared");
}

} // namespace
} // namespace genie
