/**
 * @file
 * Energy-model and analytic-validation tests: monotone scaling of the
 * CACTI-like SRAM/cache models, the relative cost relationships the
 * paper's conclusions rest on, and agreement between the event-driven
 * simulator and the closed-form model for the baseline DMA flow.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "core/validation.hh"
#include "power/energy_model.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

TEST(EnergyModel, SramEnergyGrowsWithCapacity)
{
    double prev = 0.0;
    for (double kb : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        double e = EnergyModel::sramAccessEnergy(kb, false);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(EnergyModel, WritesCostMoreThanReads)
{
    EXPECT_GT(EnergyModel::sramAccessEnergy(4.0, true),
              EnergyModel::sramAccessEnergy(4.0, false));
    EXPECT_GT(EnergyModel::cacheAccessEnergy(16.0, 4, 1, true),
              EnergyModel::cacheAccessEnergy(16.0, 4, 1, false));
}

TEST(EnergyModel, CacheCostsMoreThanSameSizedSram)
{
    // The tag array, comparators, and associativity make a cache
    // access strictly more expensive than a scratchpad access of the
    // same capacity — the premise of the paper's power comparisons.
    for (double kb : {2.0, 8.0, 32.0}) {
        EXPECT_GT(EnergyModel::cacheAccessEnergy(kb, 4, 1, false),
                  EnergyModel::sramAccessEnergy(kb, false));
    }
}

TEST(EnergyModel, PortsArePunishinglyExpensiveForCaches)
{
    double p1 = EnergyModel::cacheAccessEnergy(16.0, 4, 1, false);
    double p8 = EnergyModel::cacheAccessEnergy(16.0, 4, 8, false);
    EXPECT_GT(p8, 4.0 * p1)
        << "multi-ported caches must cost superlinearly (Sec. V-B3)";
    EXPECT_GT(EnergyModel::cacheLeakage(16.0, 4, 8),
              4.0 * EnergyModel::cacheLeakage(16.0, 4, 1));
}

TEST(EnergyModel, PartitionedSramCheaperPerAccessThanMonolithic)
{
    // Partitioning shrinks each bank, so per-access energy drops.
    double mono = EnergyModel::sramAccessEnergy(16.0, false);
    double banked = EnergyModel::sramAccessEnergy(16.0 / 8, false);
    EXPECT_LT(banked, mono);
}

TEST(EnergyModel, FpOpsCostMoreThanIntOps)
{
    EXPECT_GT(EnergyModel::opEnergy(FuKind::FpAdd),
              EnergyModel::opEnergy(FuKind::IntAlu));
    EXPECT_GT(EnergyModel::opEnergy(FuKind::FpMul),
              EnergyModel::opEnergy(FuKind::FpAdd));
    EXPECT_GT(EnergyModel::opEnergy(FuKind::FpDiv),
              EnergyModel::opEnergy(FuKind::FpMul));
}

TEST(EnergyModel, AssociativityAddsTagEnergy)
{
    EXPECT_GT(EnergyModel::cacheAccessEnergy(16.0, 8, 1, false),
              EnergyModel::cacheAccessEnergy(16.0, 4, 1, false));
}

// ---------------------------------------------------------------
// Analytic validation (the Figure 4 methodology).
// ---------------------------------------------------------------

class ValidationTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(ValidationTest, SimulatorAgreesWithAnalyticModel)
{
    auto w = makeWorkload(GetParam());
    auto out = w->build();
    Dddg dddg(out.trace);

    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.busWidthBits = 64;

    SocResults sim = runDesign(cfg, out.trace, dddg);
    ValidationPrediction pred =
        ValidationModel::predictDmaBaseline(cfg, out.trace, dddg);

    double error =
        std::abs(static_cast<double>(sim.totalTicks) -
                 static_cast<double>(pred.total())) /
        static_cast<double>(sim.totalTicks);
    // The paper validates against hardware it calibrated on and
    // reports ~6% error. Our analytic stand-in is an uncalibrated
    // lower bound (it assumes conflict-free scratchpad banking and
    // ideal issue), so the band is wider; the Figure 4 bench reports
    // the per-benchmark numbers. The test still catches gross drift.
    EXPECT_LT(error, 0.50)
        << "sim " << sim.totalTicks << " vs model " << pred.total();
    EXPECT_LE(pred.total(), sim.totalTicks + sim.totalTicks / 20)
        << "the analytic model must stay a (near) lower bound";
    // The analytic model is a lower-bound-flavored estimate: each
    // component must not exceed what the simulator measured overall.
    EXPECT_LT(pred.flush, sim.totalTicks);
    EXPECT_LT(pred.dmaIn, sim.totalTicks);
    EXPECT_LT(pred.compute, sim.totalTicks);
}

INSTANTIATE_TEST_SUITE_P(
    DmaBaseline, ValidationTest,
    ::testing::ValuesIn(figure8Workloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class BoundParamTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(BoundParamTest, ComputeBoundBracketsSimulatedCycles)
{
    auto out = makeWorkload(GetParam())->build();
    Dddg dddg(out.trace);
    for (unsigned lanes : {1u, 4u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = lanes;
        cfg.spadPartitions = lanes;
        SocResults sim = runDesign(cfg, out.trace, dddg);
        Cycles bound =
            ValidationModel::computeBound(cfg, out.trace, dddg);
        // The bound never exceeds the simulator (it is a lower
        // bound), and stays within an order of magnitude below it.
        // It is loosest for kernels whose iterations serialize
        // through memory dependences (viterbi, radix passes): the
        // per-wave resource estimate assumes lanes work in parallel
        // that the dependences actually serialize.
        EXPECT_LE(bound, sim.accelCycles + sim.accelCycles / 20)
            << GetParam() << " lanes=" << lanes;
        EXPECT_GE(bound * 16, sim.accelCycles)
            << GetParam() << " lanes=" << lanes;
    }
}

TEST_P(BoundParamTest, BarrierPathShrinksWithLanes)
{
    auto out = makeWorkload(GetParam())->build();
    Dddg dddg(out.trace);
    Cycles prev = 0;
    bool first = true;
    for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
        Cycles cp = ValidationModel::barrierCriticalPathCycles(
            out.trace, dddg, lanes);
        if (!first)
            EXPECT_LE(cp, prev) << GetParam() << " lanes=" << lanes;
        prev = cp;
        first = false;
        // Never below the unbarriered critical path.
        EXPECT_GE(cp, dddg.criticalPathCycles(out.trace));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, BoundParamTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(ValidationModel, ComputeBoundRespectsCriticalPath)
{
    auto out = makeWorkload("nw-nw")->build();
    Dddg dddg(out.trace);
    SocConfig cfg;
    cfg.lanes = 16;
    cfg.spadPartitions = 16;
    Cycles bound = ValidationModel::computeBound(cfg, out.trace, dddg);
    EXPECT_GE(bound, dddg.criticalPathCycles(out.trace));
}

TEST(ValidationModel, DmaTimeScalesWithBytesAndShrinksWithWidth)
{
    SocConfig narrow;
    narrow.busWidthBits = 32;
    SocConfig wide;
    wide.busWidthBits = 64;
    Tick t1 = ValidationModel::dmaTransferTime(narrow, 4096, 1);
    Tick t2 = ValidationModel::dmaTransferTime(narrow, 8192, 1);
    Tick t3 = ValidationModel::dmaTransferTime(wide, 4096, 1);
    EXPECT_GT(t2, t1);
    EXPECT_LT(t3, t1);
    EXPECT_EQ(ValidationModel::dmaTransferTime(narrow, 0, 1), 0u);
}

} // namespace
} // namespace genie
