/**
 * @file
 * Golden-figure sweeps: reduced Figure 6 and Figure 8 spaces whose
 * full results JSON is checked in under tests/golden/ and asserted
 * byte-identical here.
 *
 * The contract under test is the SweepEngine determinism guarantee:
 * the genie-sweep-results-1 export must not change across
 *  - thread counts (1, 4, hardware concurrency),
 *  - cold vs. warm result caches (with cache hits actually taken),
 *  - interrupted-then-resumed vs. uninterrupted runs,
 * and must match the checked-in golden bytes produced by the
 * genie_sweep CLI. Regenerate a golden only for an intentional model
 * change:
 *
 *   genie_sweep stencil-stencil2d --space=fig6 \
 *     --filter="lanes=1,4;partitions=1,4" \
 *     --out=tests/golden/sweep_fig6_stencil2d.json
 *   genie_sweep stencil-stencil2d --space=fig8 \
 *     --filter="lanes=1,4;partitions=1,4;cache_kb=2,16;cache_line=64;\
 * cache_ports=1,4;cache_assoc=4" \
 *     --out=tests/golden/sweep_fig8_stencil2d.json
 *   genie_sweep stencil-stencil2d --space=iface \
 *     --filter="lanes=1,4;partitions=1,4" \
 *     --out=tests/golden/sweep_iface_stencil2d.json
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/journal.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "workloads/workload.hh"

#ifndef GENIE_GOLDEN_DIR
#error "tests/CMakeLists.txt must define GENIE_GOLDEN_DIR"
#endif

namespace genie
{
namespace
{

const char *const kWorkload = "stencil-stencil2d";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
render(const std::vector<DesignPoint> &points)
{
    std::ostringstream os;
    writeSweepResultsJson(os, points, kWorkload);
    return os.str();
}

/** The reduced Fig. 6 space: the DMA-optimization cross-product at
 * lanes/partitions {1,4} — 16 points, exactly what the golden was
 * generated from. */
std::vector<SocConfig>
fig6Space()
{
    SpaceFilter f = SpaceFilter::parse("lanes=1,4;partitions=1,4");
    return filterConfigs(DesignSpace::dmaOptions(SocConfig{}), f);
}

/** The reduced Fig. 8 space: DMA then cache designs, filtered the
 * same way genie_sweep --space=fig8 enumerates them — 4 + 8 points. */
std::vector<SocConfig>
fig8Space()
{
    SpaceFilter f = SpaceFilter::parse(
        "lanes=1,4;partitions=1,4;cache_kb=2,16;cache_line=64;"
        "cache_ports=1,4;cache_assoc=4");
    SocConfig base;
    auto configs = DesignSpace::dma(base);
    auto cacheConfigs = DesignSpace::cache(base);
    configs.insert(configs.end(), cacheConfigs.begin(),
                   cacheConfigs.end());
    return filterConfigs(configs, f);
}

/** The reduced Genie-Iface space: spin/interrupt completion over
 * DMA, ACP, and per-lane cache designs at lanes/partitions {1,4} —
 * 20 points ((4 dma + 4 acp + 2 cache) x 2 completion modes). */
std::vector<SocConfig>
ifaceSpace()
{
    SpaceFilter f = SpaceFilter::parse("lanes=1,4;partitions=1,4");
    return filterConfigs(DesignSpace::iface(SocConfig{}), f);
}

struct GoldenRig
{
    GoldenRig()
        : built(makeWorkload(kWorkload)->build()), dddg(built.trace)
    {}

    std::vector<DesignPoint>
    sweep(const std::vector<SocConfig> &configs, SweepOptions options)
    {
        SweepEngine engine(std::move(options));
        return engine.run(configs, built.trace, dddg);
    }

    WorkloadOutput built;
    Dddg dddg;
};

GoldenRig &
rig()
{
    static GoldenRig r;
    return r;
}

TEST(SweepGolden, Fig6MatchesGoldenBytes)
{
    auto points = rig().sweep(fig6Space(), {});
    EXPECT_EQ(render(points),
              readFile(std::string(GENIE_GOLDEN_DIR) +
                       "/sweep_fig6_stencil2d.json"));
}

TEST(SweepGolden, Fig8MatchesGoldenBytes)
{
    auto points = rig().sweep(fig8Space(), {});
    EXPECT_EQ(render(points),
              readFile(std::string(GENIE_GOLDEN_DIR) +
                       "/sweep_fig8_stencil2d.json"));
}

TEST(SweepGolden, IfaceMatchesGoldenBytes)
{
    auto configs = ifaceSpace();
    ASSERT_EQ(configs.size(), 20u);
    auto points = rig().sweep(configs, {});
    EXPECT_EQ(render(points),
              readFile(std::string(GENIE_GOLDEN_DIR) +
                       "/sweep_iface_stencil2d.json"));
}

TEST(SweepGolden, ByteStableAcrossThreadCounts)
{
    auto configs = fig6Space();
    std::vector<unsigned> counts = {1, 4};
    unsigned hw = std::thread::hardware_concurrency();
    if (hw > 1 && hw != 4)
        counts.push_back(hw);

    const std::string golden =
        readFile(std::string(GENIE_GOLDEN_DIR) +
                 "/sweep_fig6_stencil2d.json");
    for (unsigned threads : counts) {
        SweepOptions options;
        options.threads = threads;
        auto points = rig().sweep(configs, options);
        EXPECT_EQ(render(points), golden)
            << "results diverged at threads=" << threads;
    }
}

TEST(SweepGolden, ByteStableColdVersusWarmCache)
{
    auto configs = fig8Space();
    ResultCache cache;

    SweepOptions cold;
    cold.cache = &cache;
    auto coldPoints = rig().sweep(configs, cold);
    ASSERT_EQ(cache.hits(), 0u);

    SweepOptions warm;
    warm.cache = &cache;
    auto warmPoints = rig().sweep(configs, warm);
    EXPECT_EQ(cache.hits(), configs.size())
        << "the warm run must be served entirely from the cache";
    EXPECT_EQ(render(warmPoints), render(coldPoints));
    EXPECT_EQ(render(warmPoints),
              readFile(std::string(GENIE_GOLDEN_DIR) +
                       "/sweep_fig8_stencil2d.json"));
}

TEST(SweepGolden, ByteStableAcrossInterruptionAndResume)
{
    auto configs = fig6Space();
    const std::string journal =
        ::testing::TempDir() + "genie_golden_resume.jsonl";
    std::remove(journal.c_str());

    {
        SweepOptions interrupted;
        interrupted.journalPath = journal;
        interrupted.maxFreshPoints = configs.size() / 2;
        SweepEngine engine(std::move(interrupted));
        engine.run(configs, rig().built.trace, rig().dddg);
        ASSERT_TRUE(engine.interrupted());
    }

    SweepOptions resume;
    resume.journalPath = journal;
    resume.resumePath = journal;
    SweepEngine engine(std::move(resume));
    auto points = engine.run(configs, rig().built.trace, rig().dddg);
    EXPECT_FALSE(engine.interrupted());
    EXPECT_GT(engine.progress().cached, 0u);
    EXPECT_EQ(render(points),
              readFile(std::string(GENIE_GOLDEN_DIR) +
                       "/sweep_fig6_stencil2d.json"))
        << "an interrupted-then-resumed sweep must reproduce the "
           "uninterrupted bytes";
    std::remove(journal.c_str());
}

} // namespace
} // namespace genie
