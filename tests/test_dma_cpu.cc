/**
 * @file
 * DMA engine, flush-engine, and driver-CPU unit tests: descriptor
 * chains, beat callbacks, serial transaction servicing, per-
 * transaction setup cost, analytic flush/invalidate latencies,
 * chunked flushes, the ioctl registry, and the driver program flow.
 */

#include <gtest/gtest.h>

#include "cpu/driver_cpu.hh"
#include "dma/dma_engine.hh"
#include "dma/flush_model.hh"
#include "mem/bus.hh"
#include "mem/dram.hh"
#include "sim/logging.hh"

namespace genie
{
namespace
{

constexpr Tick period = 10000; // 100 MHz

struct DmaFixture : public ::testing::Test
{
    DmaFixture()
        : bus("bus", eq, ClockDomain(period), SystemBus::Params{}),
          dram("dram", eq, ClockDomain(period), bus, {}),
          dma("dma", eq, ClockDomain(period), bus, DmaEngine::Params{})
    {
        bus.setTarget(&dram);
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    DmaEngine dma;
};

TEST_F(DmaFixture, TransfersAllBytes)
{
    std::uint64_t beatBytes = 0;
    bool done = false;
    dma.startTransaction(
        DmaEngine::Direction::MemToAccel,
        {{0, 0x1000, 0, 4096}},
        [&](int, Addr, unsigned len) { beatBytes += len; },
        [&](bool) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(beatBytes, 4096u);
    EXPECT_DOUBLE_EQ(dma.bytesTransferred(), 4096.0);
}

TEST_F(DmaFixture, BeatsArriveInOrder)
{
    Addr lastOffset = 0;
    bool first = true;
    dma.startTransaction(
        DmaEngine::Direction::MemToAccel,
        {{0, 0x1000, 0, 1024}},
        [&](int, Addr off, unsigned) {
            if (!first)
                EXPECT_GT(off, lastOffset);
            lastOffset = off;
            first = false;
        },
        nullptr);
    eq.run();
    EXPECT_EQ(lastOffset, 1024u - 64u);
}

TEST_F(DmaFixture, SetupCostDelaysFirstBeat)
{
    Tick firstBeat = 0;
    dma.startTransaction(
        DmaEngine::Direction::MemToAccel, {{0, 0x1000, 0, 64}},
        [&](int, Addr, unsigned) {
            if (firstBeat == 0)
                firstBeat = eq.curTick();
        },
        nullptr);
    eq.run();
    // 40 engine cycles of setup must pass before any data moves.
    EXPECT_GE(firstBeat, 40 * period);
}

TEST_F(DmaFixture, TransactionsServiceSerially)
{
    std::vector<int> order;
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x1000, 0, 2048}}, nullptr,
                         [&](bool) { order.push_back(1); });
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{1, 0x8000, 0, 64}}, nullptr,
                         [&](bool) { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_TRUE(dma.idle());
}

TEST_F(DmaFixture, MultiSegmentDescriptorChain)
{
    std::uint64_t perArray[2] = {0, 0};
    dma.startTransaction(
        DmaEngine::Direction::MemToAccel,
        {{0, 0x1000, 0, 256}, {1, 0x2000, 0, 512}},
        [&](int arrayId, Addr, unsigned len) {
            perArray[arrayId] += len;
        },
        nullptr);
    eq.run();
    EXPECT_EQ(perArray[0], 256u);
    EXPECT_EQ(perArray[1], 512u);
    EXPECT_DOUBLE_EQ(dma.stats().get("descriptorFetches"), 2.0);
}

TEST_F(DmaFixture, WritesMoveDataToMemory)
{
    bool done = false;
    dma.startTransaction(DmaEngine::Direction::AccelToMem,
                         {{0, 0x3000, 0, 1024}}, nullptr,
                         [&](bool) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(dram.stats().get("writes"), 16.0);
}

TEST_F(DmaFixture, EmptySegmentsAreDropped)
{
    bool done = false;
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x1000, 0, 0}}, nullptr,
                         [&](bool) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(dma.bytesTransferred(), 0.0);
}

TEST_F(DmaFixture, BusyIntervalsCoverTransactions)
{
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x1000, 0, 4096}}, nullptr, nullptr);
    eq.run();
    EXPECT_FALSE(dma.busyIntervals().empty());
    EXPECT_GT(dma.busyIntervals().measure(),
              40u * period); // at least the setup time
}

// ---------------------------------------------------------------
// Flush engine.
// ---------------------------------------------------------------

TEST(FlushEngine, LatencyMatchesPerLineCost)
{
    EventQueue eq;
    FlushEngine fe("flush", eq, {});
    EXPECT_EQ(fe.flushLatency(64 * 100), 100 * 84 * tickPerNs);
    EXPECT_EQ(fe.invalidateLatency(64 * 10), 10 * 71 * tickPerNs);

    Tick doneAt = 0;
    fe.startFlush(64 * 100, 64 * 100, nullptr,
                  [&] { doneAt = eq.curTick(); });
    eq.run();
    EXPECT_EQ(doneAt, 100 * 84 * tickPerNs);
}

TEST(FlushEngine, ChunksCompleteIncrementally)
{
    EventQueue eq;
    FlushEngine fe("flush", eq, {});
    std::vector<Tick> chunkTimes;
    fe.startFlush(3 * 4096, 4096,
                  [&](std::size_t) { chunkTimes.push_back(eq.curTick()); },
                  nullptr);
    eq.run();
    ASSERT_EQ(chunkTimes.size(), 3u);
    Tick perPage = 64 * 84 * tickPerNs;
    EXPECT_EQ(chunkTimes[0], perPage);
    EXPECT_EQ(chunkTimes[1], 2 * perPage);
    EXPECT_EQ(chunkTimes[2], 3 * perPage);
}

TEST(FlushEngine, ExplicitChunkSizes)
{
    EventQueue eq;
    FlushEngine fe("flush", eq, {});
    std::vector<std::size_t> seen;
    bool done = false;
    fe.startFlushChunks({4096, 1024, 64},
                        [&](std::size_t c) { seen.push_back(c); },
                        [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FlushEngine, OperationsSerializeOnTheCpu)
{
    EventQueue eq;
    FlushEngine fe("flush", eq, {});
    Tick invDone = 0, flushDone = 0;
    fe.startInvalidate(64 * 10, [&] { invDone = eq.curTick(); });
    fe.startFlush(64 * 10, 64 * 10, nullptr,
                  [&] { flushDone = eq.curTick(); });
    eq.run();
    EXPECT_EQ(invDone, 10 * 71 * tickPerNs);
    EXPECT_EQ(flushDone, invDone + 10 * 84 * tickPerNs);
    EXPECT_EQ(fe.busyIntervals().measure(), flushDone);
}

TEST(FlushEngine, ZeroBytesCompletesImmediately)
{
    EventQueue eq;
    FlushEngine fe("flush", eq, {});
    bool done = false;
    fe.startFlush(0, 4096, nullptr, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eq.curTick(), 0u);
}

// ---------------------------------------------------------------
// ioctl registry + driver CPU.
// ---------------------------------------------------------------

class InstantDevice : public IoctlDevice
{
  public:
    void
    start(std::function<void()> onFinish) override
    {
        ++starts;
        onFinish();
    }
    int starts = 0;
};

TEST(Ioctl, DispatchesByCommand)
{
    IoctlRegistry reg;
    InstantDevice d0, d1;
    reg.registerDevice(0, &d0);
    reg.registerDevice(1, &d1);
    bool done = false;
    reg.ioctl(aladdinFd, 1, [&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(d0.starts, 0);
    EXPECT_EQ(d1.starts, 1);
}

TEST(Ioctl, RejectsUnknownFdAndCommand)
{
    IoctlRegistry reg;
    InstantDevice d;
    reg.registerDevice(0, &d);
    EXPECT_THROW(reg.ioctl(123, 0, nullptr), FatalError);
    EXPECT_THROW(reg.ioctl(aladdinFd, 9, nullptr), FatalError);
    EXPECT_THROW(reg.registerDevice(0, &d), FatalError);
}

struct CpuFixture : public ::testing::Test
{
    CpuFixture()
        : flush("flush", eq, {}),
          cpu("cpu", eq, ClockDomain::fromMhz(667), flush, registry,
              DriverCpu::Params{})
    {
        registry.registerDevice(0, &device);
    }

    EventQueue eq;
    FlushEngine flush;
    IoctlRegistry registry;
    InstantDevice device;
    DriverCpu cpu;
};

TEST_F(CpuFixture, RunsProgramInOrder)
{
    std::vector<int> order;
    std::vector<DriverOp> prog;
    DriverOp call;
    call.kind = DriverOp::Kind::Call;
    call.callback = [&] { order.push_back(1); };
    prog.push_back(call);
    DriverOp flushOp;
    flushOp.kind = DriverOp::Kind::FlushRange;
    flushOp.bytes = 64 * 10;
    prog.push_back(flushOp);
    DriverOp call2;
    call2.kind = DriverOp::Kind::Call;
    call2.callback = [&] { order.push_back(2); };
    prog.push_back(call2);

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // The flush cost was charged between the two calls.
    EXPECT_GE(eq.curTick(), 10 * 84 * tickPerNs);
}

TEST_F(CpuFixture, IoctlStartsDeviceAndSpinWaitBlocks)
{
    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 0;
    prog.push_back(io);
    DriverOp wait;
    wait.kind = DriverOp::Kind::SpinWait;
    prog.push_back(wait);

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(device.starts, 1);
    // ioctl entry plus spin-notice latency elapsed.
    EXPECT_GT(eq.curTick(), 100 * tickPerNs);
}

TEST_F(CpuFixture, SpinWaitWaitsForLateFlag)
{
    // Device that completes 5 us after being started.
    class SlowDevice : public IoctlDevice
    {
      public:
        explicit SlowDevice(EventQueue &eq) : eq(eq) {}
        void
        start(std::function<void()> onFinish) override
        {
            eq.scheduleIn(5 * tickPerUs, std::move(onFinish));
        }
        EventQueue &eq;
    };

    SlowDevice slow(eq);
    registry.registerDevice(7, &slow);

    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 7;
    prog.push_back(io);
    DriverOp wait;
    wait.kind = DriverOp::Kind::SpinWait;
    prog.push_back(wait);

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(eq.curTick(), 5 * tickPerUs);
    EXPECT_GT(cpu.stats().get("spinTicks"), 0.0);
}

/** Holds the completion callback so the device stays busy until the
 * test releases it. */
class HoldingDevice : public IoctlDevice
{
  public:
    void
    start(std::function<void()> onFinish) override
    {
        held = std::move(onFinish);
    }
    std::function<void()> held;
};

TEST(Ioctl, OverlappingStartOfABusyDeviceIsFatal)
{
    IoctlRegistry reg;
    HoldingDevice d;
    reg.registerDevice(0, &d);
    reg.ioctl(aladdinFd, 0, nullptr);
    EXPECT_TRUE(reg.isBusy(0));
    // A second start would clobber the first invocation's completion
    // callback; the registry must refuse loudly.
    EXPECT_THROW(reg.ioctl(aladdinFd, 0, nullptr), FatalError);
    d.held();
    EXPECT_FALSE(reg.isBusy(0));
    // Once the device finished, a new start is legal again.
    reg.ioctl(aladdinFd, 0, nullptr);
    EXPECT_TRUE(reg.isBusy(0));
}

TEST_F(CpuFixture, FlagSetBeforeSpinWaitSkipsTheSpin)
{
    // InstantDevice completes inside the Ioctl op, so the flag is
    // already set when SpinWait executes: it must consume the flag
    // and fall through without charging any spin time.
    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 0;
    prog.push_back(io);
    DriverOp wait;
    wait.kind = DriverOp::Kind::SpinWait;
    prog.push_back(wait);

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(cpu.stats().get("spinTicks"), 0.0);
}

TEST_F(CpuFixture, BackToBackIoctlSpinWaitPairs)
{
    std::vector<DriverOp> prog;
    for (int i = 0; i < 3; ++i) {
        DriverOp io;
        io.kind = DriverOp::Kind::Ioctl;
        io.command = 0;
        prog.push_back(io);
        DriverOp wait;
        wait.kind = DriverOp::Kind::SpinWait;
        prog.push_back(wait);
    }

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    // Each pair starts the device once and consumes exactly one flag
    // write; a leftover flag would let a later SpinWait fall through
    // to a completion that never happened.
    EXPECT_EQ(device.starts, 3);
    EXPECT_DOUBLE_EQ(cpu.stats().get("ioctls"), 3.0);
}

TEST_F(CpuFixture, SpinTicksAccountingIsExact)
{
    // Device that completes a fixed 5 us after being started.
    class SlowDevice : public IoctlDevice
    {
      public:
        explicit SlowDevice(EventQueue &eq) : eq(eq) {}
        void
        start(std::function<void()> onFinish) override
        {
            eq.scheduleIn(5 * tickPerUs, std::move(onFinish));
        }
        EventQueue &eq;
    };

    SlowDevice slow(eq);
    registry.registerDevice(7, &slow);

    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 7;
    prog.push_back(io);
    DriverOp wait;
    wait.kind = DriverOp::Kind::SpinWait;
    prog.push_back(wait);

    cpu.run(std::move(prog), nullptr);
    eq.run();
    // The device was started and the spin began at the same tick
    // (ioctl return), so the spin covers the device's full 5 us plus
    // the coherence notice latency of the flag write — exactly.
    Tick expected = 5 * tickPerUs + 100 * tickPerNs;
    EXPECT_DOUBLE_EQ(cpu.stats().get("spinTicks"),
                     static_cast<double>(expected));
}

TEST_F(CpuFixture, IntrWaitSleepsWithoutSpinning)
{
    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 0;
    prog.push_back(io);
    DriverOp wait;
    wait.kind = DriverOp::Kind::IntrWait;
    prog.push_back(wait);

    // Route completions into a fake interrupt line that delivers
    // 2 us after the post.
    cpu.setCompletionSink([this] {
        eq.scheduleIn(2 * tickPerUs, [this] { cpu.raiseInterrupt(); });
    });

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(eq.curTick(), 2 * tickPerUs);
    // A sleeping CPU burns no spin time.
    EXPECT_DOUBLE_EQ(cpu.stats().get("spinTicks"), 0.0);
}

TEST_F(CpuFixture, InterruptBeforeIntrWaitFallsThrough)
{
    // The interrupt can land while the CPU is still between ops; the
    // pending bit must hold it for the next IntrWait.
    std::vector<DriverOp> prog;
    DriverOp io;
    io.kind = DriverOp::Kind::Ioctl;
    io.command = 0;
    prog.push_back(io);
    DriverOp comp;
    comp.kind = DriverOp::Kind::Compute;
    comp.cycles = 1000;
    prog.push_back(comp);
    DriverOp wait;
    wait.kind = DriverOp::Kind::IntrWait;
    prog.push_back(wait);

    cpu.setCompletionSink([this] { cpu.raiseInterrupt(); });

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(cpu.stats().get("spinTicks"), 0.0);
}

TEST_F(CpuFixture, ComputeAndMfenceChargeCycles)
{
    std::vector<DriverOp> prog;
    DriverOp comp;
    comp.kind = DriverOp::Kind::Compute;
    comp.cycles = 1000;
    prog.push_back(comp);
    DriverOp fence;
    fence.kind = DriverOp::Kind::Mfence;
    prog.push_back(fence);

    bool done = false;
    cpu.run(std::move(prog), [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    // 1000 CPU cycles at 667 MHz is ~1.5 us.
    EXPECT_GE(eq.curTick(), 1000 * periodFromMhz(667));
}

} // namespace
} // namespace genie
