/**
 * @file
 * Multi-accelerator system tests: concurrent accelerators on one bus
 * complete correctly, contention slows each of them relative to
 * running alone, heterogeneous (DMA + cache) pairs coexist, and a
 * wider bus relieves the contention — the paper's shared-resource-
 * contention consideration measured directly.
 */

#include <gtest/gtest.h>

#include "core/multi_soc.hh"
#include "core/soc.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct PreparedPair
{
    Trace traceA, traceB;
    Dddg dddgA, dddgB;

    PreparedPair()
        : traceA(makeWorkload("stencil-stencil2d")->build().trace),
          traceB(makeWorkload("gemm-ncubed")->build().trace),
          dddgA(traceA), dddgB(traceB)
    {}
};

const PreparedPair &
pair()
{
    static PreparedPair p;
    return p;
}

SocConfig
dmaDesign(unsigned lanes)
{
    SocConfig c;
    c.memType = MemInterface::ScratchpadDma;
    c.lanes = lanes;
    c.spadPartitions = lanes;
    c.dma.triggeredCompute = true;
    return c;
}

SocConfig
cacheDesign(unsigned lanes)
{
    SocConfig c;
    c.memType = MemInterface::Cache;
    c.lanes = lanes;
    c.cache.sizeBytes = 16 * 1024;
    c.cache.ports = 2;
    return c;
}

AcceleratorSpec
spec(const Trace &t, const Dddg &d, const SocConfig &cfg)
{
    AcceleratorSpec s;
    s.trace = &t;
    s.dddg = &d;
    s.design = cfg;
    return s;
}

Tick
soloFinish(const Trace &t, const Dddg &d, const SocConfig &cfg,
           unsigned busWidth = 32)
{
    SocConfig platform;
    platform.busWidthBits = busWidth;
    MultiSoc soc(platform, {spec(t, d, cfg)});
    return soc.run().accelerators[0].finishTick;
}

TEST(MultiSoc, SingleAcceleratorCompletes)
{
    const auto &p = pair();
    Tick t = soloFinish(p.traceA, p.dddgA, dmaDesign(4));
    EXPECT_GT(t, 0u);
}

TEST(MultiSoc, TwoDmaAcceleratorsBothComplete)
{
    const auto &p = pair();
    SocConfig platform;
    MultiSoc soc(platform, {spec(p.traceA, p.dddgA, dmaDesign(4)),
                            spec(p.traceB, p.dddgB, dmaDesign(4))});
    auto r = soc.run();
    ASSERT_EQ(r.accelerators.size(), 2u);
    EXPECT_GT(r.accelerators[0].finishTick, 0u);
    EXPECT_GT(r.accelerators[1].finishTick, 0u);
    EXPECT_EQ(r.totalTicks,
              std::max(r.accelerators[0].finishTick,
                       r.accelerators[1].finishTick));
}

TEST(MultiSoc, ContentionSlowsBothAccelerators)
{
    const auto &p = pair();
    Tick aAlone = soloFinish(p.traceA, p.dddgA, dmaDesign(4));
    Tick bAlone = soloFinish(p.traceB, p.dddgB, dmaDesign(4));

    SocConfig platform;
    MultiSoc soc(platform, {spec(p.traceA, p.dddgA, dmaDesign(4)),
                            spec(p.traceB, p.dddgB, dmaDesign(4))});
    auto r = soc.run();
    // The shared CPU flush, DMA engine, and bus serialize: each
    // accelerator must finish no earlier than it does alone, and at
    // least one must be strictly slower.
    EXPECT_GE(r.accelerators[0].finishTick, aAlone);
    EXPECT_GE(r.accelerators[1].finishTick, bAlone);
    EXPECT_GT(r.accelerators[0].finishTick +
                  r.accelerators[1].finishTick,
              aAlone + bAlone);
}

TEST(MultiSoc, HeterogeneousDmaPlusCachePair)
{
    const auto &p = pair();
    SocConfig platform;
    MultiSoc soc(platform,
                 {spec(p.traceA, p.dddgA, dmaDesign(4)),
                  spec(p.traceB, p.dddgB, cacheDesign(4))});
    auto r = soc.run();
    EXPECT_GT(r.accelerators[0].finishTick, 0u);
    EXPECT_GT(r.accelerators[1].finishTick, 0u);
    EXPECT_GT(r.busUtilization, 0.0);
}

TEST(MultiSoc, CacheAcceleratorSuffersLessFromCoarseNeighbor)
{
    // The paper: coarse-grained DMA is affected much more by shared
    // resource contention; fine-grained cache fills squeeze through.
    const auto &p = pair();
    Tick cacheAlone = soloFinish(p.traceB, p.dddgB, cacheDesign(4));

    SocConfig platform;
    MultiSoc soc(platform,
                 {spec(p.traceA, p.dddgA, dmaDesign(16)),
                  spec(p.traceB, p.dddgB, cacheDesign(4))});
    auto r = soc.run();
    Tick cacheShared = r.accelerators[1].finishTick;
    // Slower than alone, but by a bounded factor.
    EXPECT_GE(cacheShared, cacheAlone);
    EXPECT_LT(cacheShared, cacheAlone * 3);
}

TEST(MultiSoc, WiderBusRelievesContention)
{
    const auto &p = pair();
    auto runAt = [&](unsigned width) {
        SocConfig platform;
        platform.busWidthBits = width;
        MultiSoc soc(platform,
                     {spec(p.traceA, p.dddgA, dmaDesign(4)),
                      spec(p.traceB, p.dddgB, dmaDesign(4))});
        return soc.run().totalTicks;
    };
    EXPECT_LT(runAt(64), runAt(32));
}

TEST(MultiSoc, FourAcceleratorsScaleQueueing)
{
    const auto &p = pair();
    SocConfig platform;
    std::vector<AcceleratorSpec> specs;
    for (int i = 0; i < 4; ++i)
        specs.push_back(spec(p.traceA, p.dddgA, dmaDesign(2)));
    MultiSoc soc(platform, std::move(specs));
    auto r = soc.run();
    ASSERT_EQ(r.accelerators.size(), 4u);
    // The shared CPU flushes serialize: later accelerators finish
    // strictly later.
    Tick prev = 0;
    std::vector<Tick> finishes;
    for (const auto &a : r.accelerators)
        finishes.push_back(a.finishTick);
    std::sort(finishes.begin(), finishes.end());
    for (Tick t : finishes) {
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(MultiSoc, RejectsEmptySpec)
{
    SocConfig platform;
    EXPECT_THROW(MultiSoc(platform, {}), FatalError);
}

} // namespace
} // namespace genie
