/**
 * @file
 * Genie-Resilience tests: the seeded fault-injection campaign, the
 * error/retry protocol at every injection site, the forward-progress
 * watchdog, and the config validation that guards them.
 *
 * The determinism contract is the backbone: a zero-rate campaign must
 * be byte-identical to a run with no injector at all, and two runs of
 * the same nonzero-rate campaign with the same seed must be
 * byte-identical to each other.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accel/dddg.hh"
#include "core/config_parse.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "core/validation.hh"
#include "dma/dma_engine.hh"
#include "fault/fault_injector.hh"
#include "fault/watchdog.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/protocol_checker.hh"
#include "mem/tlb.hh"
#include "sim/random.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

constexpr Tick period = 10000; // 100 MHz

// ---------------------------------------------------------------
// Rng: rejection sampling and probability draws.
// ---------------------------------------------------------------

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(42);
    const std::uint64_t bounds[] = {1, 2, 3, 7, 10, 1000,
                                    (1ull << 63) + 12345};
    for (std::uint64_t bound : bounds) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowIsDeterministicPerSeed)
{
    Rng a(7), b(7), c(8);
    bool anyDiffer = false;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.below(1000);
        EXPECT_EQ(va, b.below(1000));
        anyDiffer = anyDiffer || va != c.below(1000);
    }
    EXPECT_TRUE(anyDiffer);
}

TEST(Rng, BelowIsUnbiasedOverSmallBound)
{
    // With rejection sampling every residue of a tiny bound is hit
    // almost exactly uniformly; the old `next() % bound` also passes
    // this for bound=3 (the bias is ~2^-63), but the test pins the
    // uniformity property itself.
    Rng rng(1234);
    const std::uint64_t bound = 3;
    std::uint64_t counts[3] = {0, 0, 0};
    const int draws = 30000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(bound)];
    for (std::uint64_t c : counts) {
        EXPECT_GT(c, draws / 3 - 600u);
        EXPECT_LT(c, draws / 3 + 600u);
    }
}

TEST(Rng, ChanceDegenerateProbabilitiesConsumeNoState)
{
    Rng a(99), b(99);
    EXPECT_FALSE(a.chance(0.0));
    EXPECT_FALSE(a.chance(-1.0));
    EXPECT_TRUE(a.chance(1.0));
    EXPECT_TRUE(a.chance(2.0));
    // a drew nothing, so it must still be in lockstep with b.
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ChanceMatchesProbabilityRoughly)
{
    Rng rng(5);
    int hits = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_GT(hits, draws / 4 - 500);
    EXPECT_LT(hits, draws / 4 + 500);
}

// ---------------------------------------------------------------
// FaultInjector: per-site streams, stats, retry policy.
// ---------------------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultConfig cfg;
    cfg.seed = 77;
    cfg.rates[static_cast<unsigned>(FaultSite::DramRead)] = 0.3;
    cfg.rates[static_cast<unsigned>(FaultSite::DmaBeat)] = 0.6;

    EventQueue eqa, eqb;
    FaultInjector a("fi", eqa, cfg);
    FaultInjector b("fi", eqb, cfg);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.shouldFault(FaultSite::DramRead),
                  b.shouldFault(FaultSite::DramRead));
        EXPECT_EQ(a.shouldFault(FaultSite::DmaBeat),
                  b.shouldFault(FaultSite::DmaBeat));
    }
    EXPECT_EQ(a.checks(FaultSite::DramRead), 500u);
    EXPECT_EQ(a.injections(FaultSite::DramRead),
              b.injections(FaultSite::DramRead));
}

TEST(FaultInjector, SitesDrawFromIndependentStreams)
{
    // Enabling a second site must not perturb the first site's
    // injection pattern — each site owns its own Rng stream.
    FaultConfig one;
    one.seed = 123;
    one.rates[static_cast<unsigned>(FaultSite::BusResp)] = 0.4;

    FaultConfig two = one;
    two.rates[static_cast<unsigned>(FaultSite::TlbWalk)] = 0.9;

    EventQueue eqa, eqb;
    FaultInjector a("fi", eqa, one);
    FaultInjector b("fi", eqb, two);
    for (int i = 0; i < 300; ++i) {
        // Interleave TlbWalk draws on b only.
        b.shouldFault(FaultSite::TlbWalk);
        EXPECT_EQ(a.shouldFault(FaultSite::BusResp),
                  b.shouldFault(FaultSite::BusResp));
    }
}

TEST(FaultInjector, RateOneAlwaysFaultsRateZeroNever)
{
    FaultConfig cfg;
    cfg.rates[static_cast<unsigned>(FaultSite::DramRead)] = 1.0;
    EventQueue eq;
    FaultInjector fi("fi", eq, cfg);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(fi.shouldFault(FaultSite::DramRead));
        EXPECT_FALSE(fi.shouldFault(FaultSite::BusResp));
    }
    EXPECT_EQ(fi.injections(FaultSite::DramRead), 10u);
    EXPECT_EQ(fi.checks(FaultSite::BusResp), 10u);
    EXPECT_EQ(fi.injections(FaultSite::BusResp), 0u);
}

TEST(FaultInjector, BackoffDoublesAndClamps)
{
    FaultConfig cfg;
    cfg.backoffCycles = 4;
    EventQueue eq;
    FaultInjector fi("fi", eq, cfg);
    EXPECT_EQ(fi.backoffCycles(0), 4u);
    EXPECT_EQ(fi.backoffCycles(1), 8u);
    EXPECT_EQ(fi.backoffCycles(3), 32u);
    // The shift clamps at 16, so huge attempt counts cannot overflow.
    EXPECT_EQ(fi.backoffCycles(40), 4ull << 16);
}

TEST(FaultInjector, RejectsOutOfRangeRates)
{
    FaultConfig cfg;
    cfg.rates[0] = 1.5;
    EventQueue eq;
    EXPECT_THROW(FaultInjector("fi", eq, cfg), FatalError);
}

TEST(FaultInjector, HelpersFallBackToDefaultsWithoutInjector)
{
    EventQueue eq;
    EXPECT_EQ(faultMaxRetries(eq), FaultConfig{}.maxRetries);
    EXPECT_EQ(faultBackoffCycles(eq, 1),
              static_cast<std::uint64_t>(FaultConfig{}.backoffCycles)
                  << 1);
}

// ---------------------------------------------------------------
// ProtocolChecker: ErrorResp is a legal termination.
// ---------------------------------------------------------------

TEST(ProtocolCheckerFault, ErrorRespRetiresARequest)
{
    ProtocolChecker pc;
    Packet req;
    req.cmd = MemCmd::ReadShared;
    req.addr = 0x1000;
    req.size = 64;
    req.reqId = 9;
    req.src = 2;
    pc.onRequest(req);
    EXPECT_EQ(pc.outstanding(), 1u);

    pc.onResponse(req.makeError());
    EXPECT_EQ(pc.outstanding(), 0u);
    pc.checkQuiescent(); // must not panic
}

// ---------------------------------------------------------------
// DMA engine: beat reissue with backoff, retry exhaustion.
// ---------------------------------------------------------------

struct FaultDmaFixture : public ::testing::Test
{
    FaultDmaFixture()
        : bus("bus", eq, ClockDomain(period), SystemBus::Params{}),
          dram("dram", eq, ClockDomain(period), bus, {}),
          dma("dma", eq, ClockDomain(period), bus, DmaEngine::Params{})
    {
        bus.setTarget(&dram);
        bus.enableProtocolChecker();
    }

    void
    inject(FaultSite site, double rate, unsigned maxRetries = 8)
    {
        FaultConfig cfg;
        cfg.seed = 99;
        cfg.rates[static_cast<unsigned>(site)] = rate;
        cfg.maxRetries = maxRetries;
        cfg.backoffCycles = 2;
        injector =
            std::make_unique<FaultInjector>("fault.injector", eq, cfg);
        eq.setFaultInjector(injector.get());
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    DmaEngine dma;
    std::unique_ptr<FaultInjector> injector;
};

TEST_F(FaultDmaFixture, BeatsRetryAndTransactionStillCompletes)
{
    inject(FaultSite::DmaBeat, 0.5);
    std::uint64_t beatBytes = 0;
    bool done = false, ok = false;
    dma.startTransaction(
        DmaEngine::Direction::MemToAccel, {{0, 0x1000, 0, 4096}},
        [&](int, Addr, unsigned len) { beatBytes += len; },
        [&](bool okArg) {
            done = true;
            ok = okArg;
        });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    // Every byte still lands exactly once despite the retries.
    EXPECT_EQ(beatBytes, 4096u);
    EXPECT_GT(dma.stats().get("retries"), 0.0);
    EXPECT_DOUBLE_EQ(dma.stats().get("retryExhausted"), 0.0);
    bus.protocolChecker()->checkQuiescent();
    EXPECT_TRUE(dma.idle());
}

TEST_F(FaultDmaFixture, DramReadErrorsAreRetriedToo)
{
    inject(FaultSite::DramRead, 0.4);
    bool ok = false;
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x2000, 0, 2048}}, nullptr,
                         [&](bool okArg) { ok = okArg; });
    eq.run();
    EXPECT_TRUE(ok);
    EXPECT_GT(dram.stats().get("readErrors"), 0.0);
    EXPECT_GT(dma.stats().get("retries"), 0.0);
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(FaultDmaFixture, RetryExhaustionFailsTheTransaction)
{
    inject(FaultSite::DmaBeat, 1.0, /*maxRetries=*/2);
    bool done = false, ok = true;
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x1000, 0, 512}}, nullptr,
                         [&](bool okArg) {
                             done = true;
                             ok = okArg;
                         });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
    EXPECT_GE(dma.stats().get("retryExhausted"), 1.0);
    // The engine must drain its window and return to idle so a sweep
    // can continue with the next design point.
    EXPECT_TRUE(dma.idle());
    EXPECT_EQ(dma.inFlightBeats(), 0u);
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(FaultDmaFixture, FailedTransactionDoesNotBlockTheNext)
{
    inject(FaultSite::DmaBeat, 1.0, /*maxRetries=*/1);
    bool firstOk = true, secondOk = false;
    dma.startTransaction(DmaEngine::Direction::MemToAccel,
                         {{0, 0x1000, 0, 256}}, nullptr,
                         [&](bool okArg) {
                             firstOk = okArg;
                             // Later transactions run with a clean
                             // slate (different rate via new config
                             // is not possible mid-run; instead
                             // detach the injector so the retry of
                             // the *next* transaction succeeds).
                             eq.setFaultInjector(nullptr);
                             dma.startTransaction(
                                 DmaEngine::Direction::MemToAccel,
                                 {{0, 0x4000, 0, 256}}, nullptr,
                                 [&](bool ok2) { secondOk = ok2; });
                         });
    eq.run();
    EXPECT_FALSE(firstOk);
    EXPECT_TRUE(secondOk);
    bus.protocolChecker()->checkQuiescent();
}

// ---------------------------------------------------------------
// Bus response NACKs.
// ---------------------------------------------------------------

TEST_F(FaultDmaFixture, BusNacksConvertResponsesToErrors)
{
    inject(FaultSite::BusResp, 0.3);
    bool ok = false;
    dma.startTransaction(DmaEngine::Direction::AccelToMem,
                         {{0, 0x3000, 0, 2048}}, nullptr,
                         [&](bool okArg) { ok = okArg; });
    eq.run();
    EXPECT_TRUE(ok);
    EXPECT_GT(bus.stats().get("errors"), 0.0);
    EXPECT_GT(dma.stats().get("retries"), 0.0);
    bus.protocolChecker()->checkQuiescent();
}

// ---------------------------------------------------------------
// Cache: MSHR reissue under injected errors.
// ---------------------------------------------------------------

struct FaultCacheFixture : public ::testing::Test
{
    FaultCacheFixture()
        : bus("bus", eq, ClockDomain(period), SystemBus::Params{}),
          dram("dram", eq, ClockDomain(period), bus, {})
    {
        bus.setTarget(&dram);
        bus.enableProtocolChecker();
    }

    void
    inject(FaultSite site, double rate, unsigned maxRetries)
    {
        FaultConfig cfg;
        cfg.seed = 7;
        cfg.rates[static_cast<unsigned>(site)] = rate;
        cfg.maxRetries = maxRetries;
        cfg.backoffCycles = 2;
        injector =
            std::make_unique<FaultInjector>("fault.injector", eq, cfg);
        eq.setFaultInjector(injector.get());
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    std::unique_ptr<FaultInjector> injector;
};

TEST_F(FaultCacheFixture, MissesReissueUntilTheFillSucceeds)
{
    inject(FaultSite::DramRead, 0.5, /*maxRetries=*/32);
    Cache::Params cp;
    cp.prefetchEnabled = false;
    Cache cache("c", eq, ClockDomain(period), bus, cp);

    int completed = 0;
    cache.setCallback([&](std::uint64_t, bool) { ++completed; });

    int issued = 0;
    for (Addr addr = 0; addr < 64 * 64; addr += 64) {
        while (cache.access(addr, 4, false, addr, 0).reject !=
               Cache::Reject::None)
            eq.step();
        ++issued;
    }
    eq.run();
    EXPECT_EQ(completed, issued);
    EXPECT_GT(cache.stats().get("errors"), 0.0);
    EXPECT_GT(cache.stats().get("retries"), 0.0);
    EXPECT_DOUBLE_EQ(cache.stats().get("retryExhausted"), 0.0);
    EXPECT_FALSE(cache.hasOutstanding());
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(FaultCacheFixture, ExhaustedMissIsFatalWithDiagnosis)
{
    inject(FaultSite::DramRead, 1.0, /*maxRetries=*/2);
    Cache::Params cp;
    cp.prefetchEnabled = false;
    Cache cache("c", eq, ClockDomain(period), bus, cp);
    cache.setCallback([](std::uint64_t, bool) {});
    ASSERT_EQ(cache.access(0, 4, false, 1, 0).reject,
              Cache::Reject::None);
    EXPECT_THROW(eq.run(), FatalError);
    EXPECT_GE(cache.stats().get("retryExhausted"), 1.0);
}

// ---------------------------------------------------------------
// TLB: injected walk timeouts multiply the walk latency.
// ---------------------------------------------------------------

TEST(FaultTlb, WalkTimeoutsAddFullWalkLatencies)
{
    EventQueue eq;
    FaultConfig cfg;
    cfg.rates[static_cast<unsigned>(FaultSite::TlbWalk)] = 1.0;
    cfg.maxRetries = 3;
    FaultInjector fi("fault.injector", eq, cfg);
    eq.setFaultInjector(&fi);

    AladdinTlb::Params tp;
    AladdinTlb tlb("tlb", eq, ClockDomain(period), tp);

    Tick doneAt = 0;
    bool hit = tlb.translate(0x1234, [&](Addr) {
        doneAt = eq.curTick();
    });
    EXPECT_FALSE(hit);
    eq.run();
    // rate 1.0 burns the whole budget: (1 + maxRetries) full walks.
    EXPECT_EQ(doneAt, (1 + 3) * tp.missLatency);
    EXPECT_DOUBLE_EQ(tlb.stats().get("retries"), 3.0);
    EXPECT_DOUBLE_EQ(tlb.stats().get("retryExhausted"), 1.0);
}

// ---------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------

/** Schedule a self-rescheduling poll event: simulated work that burns
 * events (and simulated time) without making any forward progress —
 * the livelock signature the watchdog exists to catch. */
void
schedulePoll(EventQueue &eq)
{
    eq.scheduleIn(period, [&eq] { schedulePoll(eq); }, "test.poll");
}

TEST(WatchdogTest, RequiresNonzeroInterval)
{
    EventQueue eq;
    EXPECT_THROW(Watchdog("wd", eq, Watchdog::Params{}), FatalError);
}

TEST(WatchdogTest, DetectsAWedgedBusClientWithinOneInterval)
{
    EventQueue eq;
    SystemBus bus("bus", eq, ClockDomain(period),
                  SystemBus::Params{});

    // A target that swallows every request: the requester's response
    // never comes, and the polling driver spins forever.
    struct SilentTarget : public BusTarget
    {
        void recvRequest(const Packet &) override {}
    } silent;
    struct NullClient : public BusClient
    {
        void recvResponse(const Packet &) override {}
    } client;
    bus.setTarget(&silent);
    BusPortId port = bus.attachClient(&client, false);

    const Tick interval = 100 * period;
    Watchdog wd("fault.watchdog", eq, {interval});
    wd.addProgressSource("bus.packets", [&] {
        return static_cast<std::uint64_t>(bus.stats().get("packets"));
    });
    wd.addDiagnostic("client", [] {
        return std::string("1 request outstanding, no response");
    });

    Packet req;
    req.cmd = MemCmd::ReadShared;
    req.addr = 0x1000;
    req.size = 64;
    req.reqId = 1;
    bus.sendRequest(port, req);
    schedulePoll(eq);

    wd.arm();
    Tick caughtAt = 0;
    std::string what;
    try {
        eq.run();
        FAIL() << "watchdog never fired on a wedged client";
    } catch (const SimulationStalledError &e) {
        caughtAt = eq.curTick();
        what = e.what();
    }
    // The packet moves during the first interval; the second check —
    // one interval after the stall began — must catch the freeze.
    EXPECT_LE(caughtAt, 2 * interval);
    EXPECT_NE(what.find("no forward progress"), std::string::npos);
    EXPECT_NE(what.find("bus.packets"), std::string::npos);
    EXPECT_NE(what.find("1 request outstanding"), std::string::npos);
    EXPECT_NE(what.find("event queue"), std::string::npos);
    EXPECT_FALSE(wd.armed());
    EXPECT_GE(wd.checksDone(), 1u);
}

TEST(WatchdogTest, NoFalsePositiveWhileProgressing)
{
    EventQueue eq;
    const Tick interval = 10 * period;
    Watchdog wd("fault.watchdog", eq, {interval});

    std::uint64_t counter = 0;
    wd.addProgressSource("work", [&] { return counter; });

    // Work that advances the counter every cycle for many intervals,
    // then completes and disarms the watchdog so the queue drains.
    std::function<void()> work = [&] {
        if (++counter >= 100) {
            wd.disarm();
            return;
        }
        eq.scheduleIn(period, work, "test.work");
    };
    eq.scheduleIn(period, work, "test.work");

    wd.arm();
    eq.run(); // must terminate without throwing
    EXPECT_GE(wd.checksDone(), 2u);
    EXPECT_FALSE(wd.armed());
    eq.checkDrained();
}

// ---------------------------------------------------------------
// Full-system determinism and byte-identity.
// ---------------------------------------------------------------

std::string
runAndDump(const std::string &workload, const SocConfig &cfg)
{
    Trace trace = makeWorkload(workload)->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    soc.bus().enableProtocolChecker();
    SocResults r = soc.run();

    std::ostringstream os;
    printRecord(os, cfg, r);
    dumpAllStats(os, soc);
    os << "endTick=" << r.totalTicks
       << " executed=" << soc.eventQueue().numExecuted() << "\n";
    soc.bus().protocolChecker()->checkQuiescent();
    return os.str();
}

TEST(FaultCampaign, ZeroRateCampaignIsByteIdenticalToNoInjector)
{
    SocConfig plain;
    plain.dma.pipelined = true;

    SocConfig zeroRate = plain;
    zeroRate.faults.seed = 424242; // seed alone must change nothing

    const std::string a = runAndDump("stencil-stencil2d", plain);
    const std::string b = runAndDump("stencil-stencil2d", zeroRate);
    EXPECT_EQ(a, b);
}

TEST(FaultCampaign, ZeroRateSocBuildsNoInjectorOrWatchdog)
{
    Trace trace = makeWorkload("aes-aes")->build().trace;
    Dddg dddg(trace);
    Soc soc(SocConfig{}, trace, dddg);
    EXPECT_EQ(soc.faultInjector(), nullptr);
    EXPECT_EQ(soc.eventQueue().faultInjector(), nullptr);
    EXPECT_EQ(soc.watchdog(), nullptr);
}

SocConfig
campaignConfig(std::uint64_t seed)
{
    SocConfig cfg;
    cfg.dma.pipelined = true;
    cfg.faults.seed = seed;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::DramRead)] =
        0.02;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::BusResp)] = 0.02;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::DmaBeat)] = 0.05;
    cfg.faults.maxRetries = 64;
    return cfg;
}

TEST(FaultCampaign, SameSeedRunsAreByteIdentical)
{
    const SocConfig cfg = campaignConfig(11);
    const std::string a = runAndDump("stencil-stencil2d", cfg);
    const std::string b = runAndDump("stencil-stencil2d", cfg);
    EXPECT_EQ(a, b);
    // The campaign must actually have injected something, or the test
    // proves nothing.
    EXPECT_NE(a.find("fault.injector"), std::string::npos);
}

TEST(FaultCampaign, DifferentSeedsDiverge)
{
    const std::string a =
        runAndDump("stencil-stencil2d", campaignConfig(11));
    const std::string b =
        runAndDump("stencil-stencil2d", campaignConfig(12));
    EXPECT_NE(a, b);
}

TEST(FaultCampaign, CacheModeCampaignCompletes)
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.faults.seed = 3;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::DramRead)] =
        0.02;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::TlbWalk)] = 0.1;
    cfg.faults.maxRetries = 64;
    const std::string a = runAndDump("aes-aes", cfg);
    const std::string b = runAndDump("aes-aes", cfg);
    EXPECT_EQ(a, b);
}

TEST(FaultCampaign, WatchdogDoesNotFireOnAHealthyWorkload)
{
    SocConfig cfg;
    cfg.dma.pipelined = true;
    cfg.faults.watchdogCycles = 2000; // 20 us between checks

    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    ASSERT_NE(soc.watchdog(), nullptr);
    SocResults r = soc.run();
    EXPECT_FALSE(r.stalled);
    EXPECT_FALSE(soc.watchdog()->armed());

    // Same design point without the watchdog: identical results (the
    // watchdog only reads counters).
    SocConfig plain;
    plain.dma.pipelined = true;
    Trace trace2 = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg2(trace2);
    Soc ref(plain, trace2, dddg2);
    SocResults rr = ref.run();
    EXPECT_EQ(r.totalTicks, rr.totalTicks);
    EXPECT_DOUBLE_EQ(r.energyPj, rr.energyPj);
}

// ---------------------------------------------------------------
// Config plumbing and validation.
// ---------------------------------------------------------------

TEST(FaultConfigParse, OptionsRoundTripThroughRender)
{
    SocConfig cfg = campaignConfig(997);
    cfg.faults.backoffCycles = 6;
    cfg.faults.watchdogCycles = 1234;

    std::string rendered = configToOptions(cfg);
    std::vector<std::string> opts;
    std::istringstream is(rendered);
    for (std::string tok; is >> tok;)
        opts.push_back(tok);
    SocConfig back = parseConfig(opts);

    EXPECT_EQ(back.faults.seed, cfg.faults.seed);
    for (unsigned i = 0; i < numFaultSites; ++i)
        EXPECT_DOUBLE_EQ(back.faults.rates[i], cfg.faults.rates[i]);
    EXPECT_EQ(back.faults.maxRetries, cfg.faults.maxRetries);
    EXPECT_EQ(back.faults.backoffCycles, cfg.faults.backoffCycles);
    EXPECT_EQ(back.faults.watchdogCycles, cfg.faults.watchdogCycles);
}

TEST(FaultConfigParse, RejectsBadRates)
{
    SocConfig c;
    EXPECT_THROW(applyConfigOption(c, "fault_dram_read=1.5"),
                 FatalError);
    EXPECT_THROW(applyConfigOption(c, "fault_bus_resp=-0.1"),
                 FatalError);
    EXPECT_THROW(applyConfigOption(c, "fault_dma_beat=banana"),
                 FatalError);
}

TEST(Validation, RejectsNonsensicalConfigs)
{
    auto broken = [](auto mutate) {
        SocConfig c;
        mutate(c);
        EXPECT_THROW(validateSocConfig(c), FatalError);
    };
    broken([](SocConfig &c) { c.lanes = 0; });
    broken([](SocConfig &c) { c.spadPartitions = 0; });
    broken([](SocConfig &c) { c.busWidthBits = 0; });
    broken([](SocConfig &c) { c.busWidthBits = 12; });
    broken([](SocConfig &c) { c.accelMhz = 0; });
    broken([](SocConfig &c) { c.cpuLineBytes = 0; });
    broken([](SocConfig &c) { c.cpuLineBytes = 48; });
    broken([](SocConfig &c) { c.dma.maxOutstanding = 0; });
    broken([](SocConfig &c) { c.dma.pageBytes = 0; });
    broken([](SocConfig &c) {
        c.memType = MemInterface::Cache;
        c.cache.lineBytes = 48;
    });
    broken([](SocConfig &c) {
        c.memType = MemInterface::Cache;
        c.cache.assoc = 0;
    });
    broken([](SocConfig &c) {
        c.memType = MemInterface::Cache;
        c.cache.mshrs = 0;
    });
    broken([](SocConfig &c) {
        c.memType = MemInterface::Cache;
        c.tlbEntries = 0;
    });
    broken([](SocConfig &c) { c.faults.rates[1] = 2.0; });
    broken([](SocConfig &c) {
        c.faults.rates[0] = 0.1;
        c.faults.maxRetries = 0;
    });
}

TEST(Validation, AcceptsTheDefaultConfig)
{
    validateSocConfig(SocConfig{}); // must not throw
    SocConfig cache;
    cache.memType = MemInterface::Cache;
    validateSocConfig(cache);
}

TEST(Validation, SocConstructorRunsValidation)
{
    Trace trace = makeWorkload("aes-aes")->build().trace;
    Dddg dddg(trace);
    SocConfig c;
    c.dma.maxOutstanding = 0;
    EXPECT_THROW(Soc(c, trace, dddg), FatalError);
}

} // namespace
} // namespace genie
