/**
 * @file
 * Genie-Metrics tests: the StatRegistry (path uniqueness, dotted
 * lookup, deterministic visitation), Distribution bucket triples and
 * bin-estimated percentiles, the MetricsSampler (period correctness,
 * ring truncation, drain safety), the JSON/CSV exporters against
 * golden strings, the HostProfiler's attribution invariants, and the
 * headline observability guarantee: sampling and profiling never
 * change simulated results.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "accel/dddg.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "metrics/export.hh"
#include "metrics/profiler.hh"
#include "metrics/sampler.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

// ---------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------

TEST(Registry, LookupResolvesDottedPaths)
{
    StatRegistry reg;
    StatGroup a("sys.a");
    Stat &x = a.add("x", "counter x");
    a.add("y", "counter y");
    StatGroup b("sys.b");
    b.add("x", "another x");
    reg.registerGroup(a);
    reg.registerGroup(b);

    EXPECT_EQ(reg.numGroups(), 2u);
    EXPECT_EQ(reg.findGroup("sys.a"), &a);
    EXPECT_EQ(reg.findGroup("sys.c"), nullptr);

    x += 7;
    EXPECT_EQ(reg.lookup("sys.a.x"), &x);
    EXPECT_DOUBLE_EQ(reg.get("sys.a.x"), 7.0);
    EXPECT_DOUBLE_EQ(reg.get("sys.b.x"), 0.0);

    // Unknown group, unknown stat, and an undotted path all miss.
    EXPECT_EQ(reg.lookup("sys.c.x"), nullptr);
    EXPECT_EQ(reg.lookup("sys.a.z"), nullptr);
    EXPECT_EQ(reg.lookup("nodots"), nullptr);
    EXPECT_DOUBLE_EQ(reg.get("sys.c.x"), 0.0);
}

TEST(Registry, LookupDistribution)
{
    StatRegistry reg;
    StatGroup g("sys.mem");
    Distribution &d =
        g.addDistribution("latency", "access latency", 0, 100, 10);
    reg.registerGroup(g);

    EXPECT_EQ(reg.lookupDistribution("sys.mem.latency"), &d);
    EXPECT_EQ(reg.lookupDistribution("sys.mem.nope"), nullptr);
    // A distribution path does not resolve as a scalar.
    EXPECT_EQ(reg.lookup("sys.mem.latency"), nullptr);
}

TEST(Registry, ScalarPathsFollowRegistrationOrder)
{
    StatRegistry reg;
    StatGroup b("b");
    b.add("two", "");
    StatGroup a("a");
    a.add("one", "");
    a.add("three", "");
    reg.registerGroup(b); // registration order, not alphabetical
    reg.registerGroup(a);

    const std::vector<std::string> expect = {"b.two", "a.one",
                                             "a.three"};
    EXPECT_EQ(reg.scalarPaths(), expect);
}

TEST(Registry, VisitWalksGroupsInOrder)
{
    struct Collector : StatVisitor
    {
        std::vector<std::string> log;
        void beginGroup(const StatGroup &g) override
        {
            log.push_back("begin " + g.prefix());
        }
        void endGroup(const StatGroup &g) override
        {
            log.push_back("end " + g.prefix());
        }
        void scalar(const StatGroup &, const Stat &s) override
        {
            log.push_back(s.name());
        }
        void distribution(const StatGroup &,
                          const Distribution &d) override
        {
            log.push_back(d.name());
        }
    };

    StatRegistry reg;
    StatGroup g("g");
    g.add("s", "");
    g.addDistribution("d", "", 0, 10, 2);
    reg.registerGroup(g);

    Collector c;
    reg.visit(c);
    const std::vector<std::string> expect = {"begin g", "g.s", "g.d",
                                             "end g"};
    EXPECT_EQ(c.log, expect);
}

TEST(RegistryDeathTest, DuplicateGroupPathPanics)
{
    StatRegistry reg;
    StatGroup g1("accel.cache");
    StatGroup g2("accel.cache");
    reg.registerGroup(g1);
    EXPECT_DEATH(reg.registerGroup(g2), "duplicate stat group path");
}

// ---------------------------------------------------------------------
// Distribution buckets and percentiles
// ---------------------------------------------------------------------

TEST(Distribution, BucketsReturnLoHiCountTriples)
{
    Distribution d("lat", "latency", 0, 100, 10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    d.sample(250); // overflow
    d.sample(-3);  // underflow

    auto buckets = d.buckets();
    ASSERT_EQ(buckets.size(), 10u);
    EXPECT_DOUBLE_EQ(buckets[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(buckets[0].hi, 10.0);
    EXPECT_EQ(buckets[0].count, 1u);
    EXPECT_DOUBLE_EQ(buckets[1].lo, 10.0);
    EXPECT_DOUBLE_EQ(buckets[1].hi, 20.0);
    EXPECT_EQ(buckets[1].count, 2u);
    for (std::size_t i = 2; i < 10; ++i)
        EXPECT_EQ(buckets[i].count, 0u);

    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 250.0);
}

TEST(Distribution, PercentileEstimatesFromBins)
{
    Distribution d("lat", "latency", 0, 1000, 100);
    for (int i = 0; i < 1000; ++i)
        d.sample(i);

    // Uniform mass: the bin-interpolated estimate tracks the true
    // quantile to within one bucket width (10).
    EXPECT_NEAR(d.p50(), 500.0, 10.0);
    EXPECT_NEAR(d.p95(), 950.0, 10.0);
    EXPECT_NEAR(d.p99(), 990.0, 10.0);

    // Estimates always land inside the observed range.
    EXPECT_GE(d.percentile(0.0), d.min());
    EXPECT_LE(d.percentile(1.0), d.max());
}

TEST(Distribution, PercentileOnEmptyIsZero)
{
    Distribution d("lat", "latency", 0, 10, 2);
    EXPECT_DOUBLE_EQ(d.p50(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 0.0);
}

// ---------------------------------------------------------------------
// MetricsSampler
// ---------------------------------------------------------------------

/** One group with one scalar named "g.a", pre-registered. */
struct SamplerRig
{
    EventQueue eq;
    StatRegistry reg;
    StatGroup group{"g"};
    Stat &a;

    SamplerRig() : a(group.add("a", "counter"))
    {
        reg.registerGroup(group);
    }
};

TEST(Sampler, SnapshotsEveryPeriodWithCurrentValues)
{
    SamplerRig rig;
    MetricsSampler::Params p;
    p.period = 10;
    MetricsSampler sampler(rig.eq, rig.reg, p);
    sampler.track("g.a");
    sampler.start();

    // Increments at ticks 5, 15, 25 interleave with samples at
    // 10, 20, 30.
    for (Tick t : {Tick(5), Tick(15), Tick(25)})
        rig.eq.schedule(t, [&rig] { ++rig.a; });
    rig.eq.run();

    ASSERT_EQ(sampler.numSamples(), 3u);
    EXPECT_EQ(sampler.ticks(), (std::deque<Tick>{10, 20, 30}));
    EXPECT_EQ(sampler.values(0), (std::deque<double>{1, 2, 3}));
    EXPECT_EQ(sampler.samplesTaken(), 3u);
    EXPECT_EQ(sampler.droppedSamples(), 0u);

    // The sampler stopped rescheduling once it was alone, so the
    // queue drains exactly like an unsampled run.
    EXPECT_TRUE(rig.eq.empty());
    rig.eq.checkDrained();
}

TEST(Sampler, RingKeepsOnlyTheMostRecentSnapshots)
{
    SamplerRig rig;
    MetricsSampler::Params p;
    p.period = 1;
    p.capacity = 3;
    MetricsSampler sampler(rig.eq, rig.reg, p);
    sampler.trackAllScalars();
    ASSERT_EQ(sampler.numSeries(), 1u);
    sampler.start();

    // Keepalive events at every tick keep the sampler rescheduling
    // through tick 10.
    for (Tick t = 1; t <= 10; ++t)
        rig.eq.schedule(t, [&rig] { ++rig.a; });
    rig.eq.run();

    EXPECT_EQ(sampler.samplesTaken(), 10u);
    EXPECT_EQ(sampler.numSamples(), 3u);
    EXPECT_EQ(sampler.droppedSamples(), 7u);
    // Oldest-first, most recent retained.
    EXPECT_EQ(sampler.ticks(), (std::deque<Tick>{8, 9, 10}));
    EXPECT_TRUE(rig.eq.empty());
}

TEST(Sampler, UnknownPathIsFatal)
{
    SamplerRig rig;
    MetricsSampler::Params p;
    p.period = 10;
    MetricsSampler sampler(rig.eq, rig.reg, p);
    EXPECT_THROW(sampler.track("no.such.stat"), FatalError);
}

TEST(Sampler, ZeroPeriodOrCapacityIsFatal)
{
    SamplerRig rig;
    MetricsSampler::Params zeroPeriod;
    zeroPeriod.period = 0;
    EXPECT_THROW(MetricsSampler(rig.eq, rig.reg, zeroPeriod),
                 FatalError);

    MetricsSampler::Params zeroCap;
    zeroCap.period = 10;
    zeroCap.capacity = 0;
    EXPECT_THROW(MetricsSampler(rig.eq, rig.reg, zeroCap), FatalError);
}

TEST(SamplerDeathTest, TrackAfterStartAsserts)
{
    SamplerRig rig;
    MetricsSampler::Params p;
    p.period = 10;
    MetricsSampler sampler(rig.eq, rig.reg, p);
    sampler.start();
    EXPECT_DEATH(sampler.track("g.a"), "track\\(\\) after start");
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST(Export, FormatStatNumber)
{
    EXPECT_EQ(formatStatNumber(0.0), "0");
    EXPECT_EQ(formatStatNumber(42.0), "42");
    EXPECT_EQ(formatStatNumber(-7.0), "-7");
    EXPECT_EQ(formatStatNumber(2.5), "2.5");
    EXPECT_EQ(formatStatNumber(0.125), "0.125");
}

TEST(Export, StatsJsonGolden)
{
    StatRegistry reg;
    StatGroup g("g");
    g.add("a", "alpha") = 3;
    g.add("b", "beta") = 2.5;
    reg.registerGroup(g);

    std::ostringstream os;
    writeStatsJson(os, reg);
    EXPECT_EQ(os.str(),
              "{\"schema\": \"genie-stats-1\",\n"
              "  \"stats\": {\n"
              "    \"g.a\": {\"value\": 3, \"desc\": \"alpha\"},\n"
              "    \"g.b\": {\"value\": 2.5, \"desc\": \"beta\"}\n"
              "  },\n"
              "  \"distributions\": {\n"
              "\n"
              "  }\n"
              "}\n");
}

TEST(Export, StatsCsvGolden)
{
    StatRegistry reg;
    StatGroup g("g");
    g.add("a", "alpha") = 3;
    g.add("b", "beta") = 2.5;
    reg.registerGroup(g);

    std::ostringstream os;
    writeStatsCsv(os, reg);
    EXPECT_EQ(os.str(), "stat,value\ng.a,3\ng.b,2.5\n");
}

TEST(Export, StatsExportersCoverDistributions)
{
    StatRegistry reg;
    StatGroup g("g");
    Distribution &d = g.addDistribution("lat", "latency", 0, 10, 2);
    d.sample(1);
    d.sample(12); // overflow
    reg.registerGroup(g);

    std::ostringstream json;
    writeStatsJson(json, reg);
    EXPECT_NE(json.str().find("\"g.lat\""), std::string::npos);
    EXPECT_NE(json.str().find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.str().find("\"overflow\": 1"), std::string::npos);
    EXPECT_NE(json.str().find("\"buckets\": [[0, 5, 1]]"),
              std::string::npos);

    std::ostringstream csv;
    writeStatsCsv(csv, reg);
    EXPECT_NE(csv.str().find("g.lat::count,2\n"), std::string::npos);
    EXPECT_NE(csv.str().find("g.lat::overflow,1\n"),
              std::string::npos);
}

/** A sampler with two snapshots of "g.a": (tick 10, 1), (tick 20, 2). */
struct SampledRig : SamplerRig
{
    MetricsSampler sampler;

    SampledRig()
        : sampler(eq, reg,
                  MetricsSampler::Params{/*period=*/10,
                                         /*capacity=*/16})
    {
        sampler.track("g.a");
        sampler.start();
        eq.schedule(5, [this] { ++a; });
        eq.schedule(15, [this] { ++a; });
        eq.run();
    }
};

TEST(Export, SamplesJsonGolden)
{
    SampledRig rig;
    std::ostringstream os;
    writeSamplesJson(os, rig.sampler);
    EXPECT_EQ(os.str(),
              "{\"schema\": \"genie-samples-1\",\n"
              "  \"period_ticks\": 10,\n"
              "  \"samples\": 2,\n"
              "  \"taken\": 2,\n"
              "  \"dropped\": 0,\n"
              "  \"ticks\": [10, 20],\n"
              "  \"series\": {\n"
              "    \"g.a\": [1, 2]\n"
              "  }\n"
              "}\n");
}

TEST(Export, SamplesCsvGolden)
{
    SampledRig rig;
    std::ostringstream os;
    writeSamplesCsv(os, rig.sampler);
    EXPECT_EQ(os.str(), "tick,g.a\n10,1\n20,2\n");
}

TEST(Export, FileVariantsWriteFiles)
{
    SampledRig rig;
    const std::string dir = ::testing::TempDir();
    const std::string statsPath = dir + "genie_test.stats.json";
    const std::string samplesPath = dir + "genie_test.samples.csv";

    writeStatsJsonFile(statsPath, rig.reg);
    writeSamplesCsvFile(samplesPath, rig.sampler);

    std::ifstream stats(statsPath);
    ASSERT_TRUE(stats.good());
    std::ostringstream ss;
    ss << stats.rdbuf();
    EXPECT_NE(ss.str().find("genie-stats-1"), std::string::npos);

    std::ifstream samples(samplesPath);
    ASSERT_TRUE(samples.good());
    std::string header;
    std::getline(samples, header);
    EXPECT_EQ(header, "tick,g.a");

    EXPECT_THROW(writeStatsJsonFile("/nonexistent-dir/x.json", rig.reg),
                 FatalError);
}

// ---------------------------------------------------------------------
// HostProfiler
// ---------------------------------------------------------------------

TEST(Profiler, AttributionSumsToTotals)
{
    EventQueue eq;
    HostProfiler profiler;
    eq.setProfiler(&profiler);

    // A little real work per event so wall time is measurable even on
    // a coarse clock.
    volatile double sink = 0.0;
    auto burn = [&sink] {
        for (int i = 0; i < 20000; ++i)
            sink = sink + 1.0;
    };
    for (Tick t = 1; t <= 3; ++t)
        eq.schedule(t, burn, "kind.a");
    for (Tick t = 4; t <= 5; ++t)
        eq.schedule(t, burn, "kind.b");
    eq.schedule(6, burn); // untagged
    eq.run();

    EXPECT_EQ(profiler.totalEvents(), 6u);
    ASSERT_EQ(profiler.byKind().size(), 3u);
    EXPECT_EQ(profiler.byKind().at("kind.a").events, 3u);
    EXPECT_EQ(profiler.byKind().at("kind.b").events, 2u);
    EXPECT_EQ(profiler.byKind().at("(untagged)").events, 1u);

    std::uint64_t sumEvents = 0, sumNs = 0;
    for (const auto &[kind, kp] : profiler.byKind()) {
        sumEvents += kp.events;
        sumNs += kp.wallNs;
    }
    EXPECT_EQ(sumEvents, profiler.totalEvents());
    EXPECT_EQ(sumNs, profiler.totalWallNs());

    EXPECT_GT(profiler.totalWallNs(), 0u);
    EXPECT_GT(profiler.eventsPerSecond(), 0.0);
    EXPECT_DOUBLE_EQ(profiler.meps(),
                     profiler.eventsPerSecond() / 1e6);

    // sorted() is a permutation of byKind(), heaviest first.
    auto sorted = profiler.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_GE(sorted[i - 1].second.wallNs,
                  sorted[i].second.wallNs);

    std::ostringstream os;
    profiler.report(os);
    EXPECT_NE(os.str().find("kind.a"), std::string::npos);
    EXPECT_NE(os.str().find("(untagged)"), std::string::npos);

    profiler.reset();
    EXPECT_EQ(profiler.totalEvents(), 0u);
    EXPECT_EQ(profiler.totalWallNs(), 0u);
    EXPECT_TRUE(profiler.byKind().empty());
    EXPECT_DOUBLE_EQ(profiler.eventsPerSecond(), 0.0);
}

// ---------------------------------------------------------------------
// Soc integration: the registry replaces hand-plumbed stat access,
// and observability never changes simulated results.
// ---------------------------------------------------------------------

SocConfig
smallDmaConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    return cfg;
}

/** Everything observable about one run: the registry dump and the
 * headline results (numExecuted is deliberately excluded — the
 * sampler legitimately adds its own events to the queue). */
struct RunOutput
{
    std::string stats;
    SocResults results;
    std::uint64_t samplesTaken = 0;
};

RunOutput
runOnce(const SocConfig &cfg, bool profile = false)
{
    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    HostProfiler profiler;
    if (profile)
        soc.eventQueue().setProfiler(&profiler);

    RunOutput out;
    out.results = soc.run();
    std::ostringstream os;
    soc.statRegistry().dump(os);
    out.stats = os.str();
    if (soc.sampler())
        out.samplesTaken = soc.sampler()->samplesTaken();
    soc.eventQueue().checkDrained();
    return out;
}

TEST(SocMetrics, RegistryExposesEveryComponent)
{
    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);
    Soc soc(smallDmaConfig(), trace, dddg);
    (void)soc.run();

    const StatRegistry &reg = soc.statRegistry();
    EXPECT_GE(reg.numGroups(), 6u);
    EXPECT_NE(reg.findGroup("system.bus"), nullptr);
    EXPECT_NE(reg.findGroup("accel.datapath"), nullptr);

    // Dotted lookup reaches live post-run counters.
    ASSERT_NE(reg.lookup("system.bus.packets"), nullptr);
    EXPECT_GT(reg.get("system.bus.packets"), 0.0);

    // Path uniqueness at system scale: no two scalars share a path.
    auto paths = reg.scalarPaths();
    std::set<std::string> unique(paths.begin(), paths.end());
    EXPECT_EQ(unique.size(), paths.size());

    // The registry-driven report is exactly the registry dump: no
    // component is special-cased anymore.
    std::ostringstream viaReport, viaRegistry;
    dumpAllStats(viaReport, soc);
    reg.dump(viaRegistry);
    EXPECT_EQ(viaReport.str(), viaRegistry.str());
    EXPECT_NE(viaRegistry.str().find("system.bus.packets"),
              std::string::npos);
}

TEST(SocMetrics, SampledRunMatchesUnsampledRun)
{
    const RunOutput plain = runOnce(smallDmaConfig());
    ASSERT_FALSE(plain.stats.empty());
    EXPECT_EQ(plain.samplesTaken, 0u);

    SocConfig sampled = smallDmaConfig();
    sampled.metrics.samplePeriod = 100; // accelerator cycles
    const RunOutput withSampling = runOnce(sampled);

    // The sampler actually ran...
    EXPECT_GT(withSampling.samplesTaken, 0u);
    // ...and changed nothing the simulation can observe.
    EXPECT_EQ(withSampling.stats, plain.stats);
    EXPECT_EQ(withSampling.results.totalTicks,
              plain.results.totalTicks);
    EXPECT_EQ(withSampling.results.accelCycles,
              plain.results.accelCycles);
    EXPECT_EQ(withSampling.results.energyPj, plain.results.energyPj);
    EXPECT_EQ(withSampling.results.edp, plain.results.edp);
}

TEST(SocMetrics, ProfiledRunMatchesUnprofiledRun)
{
    const RunOutput plain = runOnce(smallDmaConfig());
    const RunOutput profiled =
        runOnce(smallDmaConfig(), /*profile=*/true);

    EXPECT_EQ(profiled.stats, plain.stats);
    EXPECT_EQ(profiled.results.totalTicks, plain.results.totalTicks);
    EXPECT_EQ(profiled.results.accelCycles,
              plain.results.accelCycles);
    EXPECT_EQ(profiled.results.energyPj, plain.results.energyPj);
}

TEST(SocMetrics, SocWritesConfiguredMetricsArtifacts)
{
    const std::string dir = ::testing::TempDir();
    SocConfig cfg = smallDmaConfig();
    cfg.metrics.samplePeriod = 100;
    cfg.metrics.statsJsonPath = dir + "soc.stats.json";
    cfg.metrics.samplesCsvPath = dir + "soc.samples.csv";

    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    (void)soc.run();

    std::ifstream stats(cfg.metrics.statsJsonPath);
    ASSERT_TRUE(stats.good());
    std::ostringstream ss;
    ss << stats.rdbuf();
    EXPECT_NE(ss.str().find("genie-stats-1"), std::string::npos);
    EXPECT_NE(ss.str().find("system.bus.packets"),
              std::string::npos);

    std::ifstream samples(cfg.metrics.samplesCsvPath);
    ASSERT_TRUE(samples.good());
    std::string header;
    std::getline(samples, header);
    EXPECT_EQ(header.rfind("tick,", 0), 0u);
}

} // namespace
} // namespace genie
