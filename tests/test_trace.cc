/**
 * @file
 * Genie-Trace subsystem tests.
 *
 * Three layers: the Tracer in isolation (span bookkeeping, category
 * masking, the query API, Chrome JSON shape), the Tracer under a full
 * SoC run (spans well-nested, span unions equal to the component-kept
 * busy IntervalSets, traced == untraced results, byte-identical JSON
 * across repeated runs), and the binned Distribution statistic that
 * rides the same PR (unit behavior plus its cache/bus wiring).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accel/dddg.hh"
#include "core/config_parse.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "sim/stats.hh"
#include "trace/tracer.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

// --- category names and CLI parsing ---------------------------------

TEST(TraceCategories, NamesAreStableAndRoundTrip)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::Flush), "flush");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Dma), "dma");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Bus), "bus");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Cache), "cache");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Dram), "dram");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Datapath),
                 "datapath");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Tlb), "tlb");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Spad), "spad");

    // Every single-category mask renders and re-parses to itself.
    for (std::size_t i = 0; i < numTraceCategories; ++i) {
        auto c = static_cast<TraceCategory>(i);
        TraceCategoryMask m = traceCategoryBit(c);
        EXPECT_EQ(parseTraceCategories(traceCategoriesToString(m)), m);
    }
}

TEST(TraceCategories, ParseListAllAndErrors)
{
    EXPECT_EQ(parseTraceCategories("dma,flush"),
              traceCategoryBit(TraceCategory::Dma) |
                  traceCategoryBit(TraceCategory::Flush));
    EXPECT_EQ(parseTraceCategories("all"), allTraceCategories);
    EXPECT_EQ(parseTraceCategories(""), allTraceCategories);
    EXPECT_EQ(traceCategoriesToString(allTraceCategories), "all");
    EXPECT_THROW(parseTraceCategories("dma,bogus"), FatalError);
}

// --- Tracer in isolation --------------------------------------------

TEST(TracerUnit, SpansRecordIntervalsAndDurations)
{
    EventQueue eq;
    Tracer tracer(eq);

    TraceSpanId s = invalidTraceSpan;
    eq.schedule(100, [&] {
        s = tracer.begin(TraceCategory::Dma, "dma0", "load");
    });
    eq.schedule(300, [&] { tracer.end(s); });
    eq.schedule(500, [&] {
        tracer.instant(TraceCategory::Spad, "spad0", "conflict");
    });
    eq.run();

    tracer.complete(TraceCategory::Dma, "dma0", "store", 400, 450);

    EXPECT_EQ(tracer.numEvents(), 3u);
    EXPECT_EQ(tracer.openSpans(), 0u);

    IntervalSet dma = tracer.spans(TraceCategory::Dma);
    ASSERT_EQ(dma.intervals().size(), 2u);
    EXPECT_EQ(dma.intervals()[0].begin, 100u);
    EXPECT_EQ(dma.intervals()[0].end, 300u);
    EXPECT_EQ(dma.measure(), 250u);

    // Per-name filtering and duration summaries.
    EXPECT_EQ(tracer.spans(TraceCategory::Dma, "store").measure(),
              50u);
    TraceDurations d = tracer.durations(TraceCategory::Dma);
    EXPECT_EQ(d.count, 2u);
    EXPECT_EQ(d.minTicks, 50u);
    EXPECT_EQ(d.maxTicks, 200u);
    EXPECT_EQ(d.totalTicks, 250u);
    EXPECT_DOUBLE_EQ(d.meanTicks(), 125.0);

    // Instants are counted but never contribute to span intervals.
    EXPECT_EQ(tracer.instantCount(TraceCategory::Spad, "conflict"),
              1u);
    EXPECT_EQ(tracer.spans(TraceCategory::Spad).measure(), 0u);
}

TEST(TracerUnit, OpenSpanAccountingAndNoopInvalidEnd)
{
    EventQueue eq;
    Tracer tracer(eq);

    TraceSpanId s =
        tracer.begin(TraceCategory::Tlb, "tlb0", "miss");
    EXPECT_EQ(tracer.openSpans(), 1u);

    // end(invalidTraceSpan) must be a silent no-op so emission sites
    // need no masked-category re-check.
    tracer.end(invalidTraceSpan);
    EXPECT_EQ(tracer.openSpans(), 1u);

    tracer.end(s);
    EXPECT_EQ(tracer.openSpans(), 0u);

    // Still-open spans are excluded from the interval queries.
    tracer.begin(TraceCategory::Tlb, "tlb0", "miss");
    EXPECT_EQ(tracer.openSpans(), 1u);
    EXPECT_EQ(tracer.spans(TraceCategory::Tlb).measure(), 0u);
}

TEST(TracerUnit, MaskFiltersCategoriesAtTheSource)
{
    EventQueue eq;
    Tracer tracer(eq, traceCategoryBit(TraceCategory::Dma));

    EXPECT_TRUE(tracer.wants(TraceCategory::Dma));
    EXPECT_FALSE(tracer.wants(TraceCategory::Flush));

    // Masked-off emission records nothing and returns the invalid id.
    EXPECT_EQ(tracer.begin(TraceCategory::Flush, "cpu", "flush"),
              invalidTraceSpan);
    tracer.complete(TraceCategory::Flush, "cpu", "flush", 0, 10);
    tracer.instant(TraceCategory::Flush, "cpu", "flush");
    EXPECT_EQ(tracer.numEvents(), 0u);

    tracer.complete(TraceCategory::Dma, "dma0", "load", 0, 10);
    EXPECT_EQ(tracer.numEvents(), 1u);

    // tracerFor folds the null-queue and mask checks into one guard.
    EXPECT_EQ(tracerFor(eq, TraceCategory::Dma), nullptr);
    eq.setTracer(&tracer);
    EXPECT_EQ(tracerFor(eq, TraceCategory::Dma), &tracer);
    EXPECT_EQ(tracerFor(eq, TraceCategory::Flush), nullptr);
    eq.setTracer(nullptr);
}

TEST(TracerUnit, ChromeJsonShape)
{
    EventQueue eq;
    Tracer tracer(eq);
    tracer.complete(TraceCategory::Bus, "bus \"0\"", "req", 0,
                    1500000);
    tracer.instant(TraceCategory::Spad, "spad0", "conflict");

    std::ostringstream os;
    tracer.writeChromeJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One thread_name metadata record per track, emitted first.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // Track names pass through JSON escaping.
    EXPECT_NE(json.find("bus \\\"0\\\""), std::string::npos);
    // 1.5M ticks (ps) render as exact microseconds, not floats.
    EXPECT_NE(json.find("\"dur\":1.500000"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"tickUnit\":\"ps\""), std::string::npos);
}

// --- Tracer under a full SoC run ------------------------------------

struct TracedRun
{
    SocResults results;
    std::string record;
    std::string json;
    std::size_t numEvents = 0;
    std::size_t openSpans = 0;
    IntervalSet flushSpans, dmaSpans, datapathSpans;
    IntervalSet flushBusy, dmaBusy, computeBusy;
};

TracedRun
runTraced(const std::string &workload, SocConfig cfg)
{
    TracedRun out;
    Trace trace = makeWorkload(workload)->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    out.results = soc.run();

    std::ostringstream rec;
    printRecord(rec, cfg, out.results);
    out.record = rec.str();

    if (const Tracer *t = soc.tracer()) {
        std::ostringstream js;
        t->writeChromeJson(js);
        out.json = js.str();
        out.numEvents = t->numEvents();
        out.openSpans = t->openSpans();
        out.flushSpans = t->spans(TraceCategory::Flush);
        out.dmaSpans = t->spans(TraceCategory::Dma);
        out.datapathSpans = t->spans(TraceCategory::Datapath);
    }
    if (cfg.memType == MemInterface::ScratchpadDma) {
        out.flushBusy = soc.flushEngine().busyIntervals();
        out.dmaBusy = soc.dmaEngine().busyIntervals();
    }
    out.computeBusy = soc.datapath().computeBusy();
    return out;
}

SocConfig
tracedDmaConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.tracing.enabled = true;
    return cfg;
}

SocConfig
tracedCacheConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 2;
    cfg.tracing.enabled = true;
    return cfg;
}

TEST(TracerSystem, SpansAreWellNestedAfterEveryRun)
{
    // Every begin() must meet its end() by simulation exit, in both
    // memory interface modes (DMA txn/chunk/descriptor spans, cache
    // MSHR spans, TLB walk spans).
    TracedRun dma = runTraced("aes-aes", tracedDmaConfig());
    EXPECT_GT(dma.numEvents, 0u);
    EXPECT_EQ(dma.openSpans, 0u);

    TracedRun cache = runTraced("aes-aes", tracedCacheConfig());
    EXPECT_GT(cache.numEvents, 0u);
    EXPECT_EQ(cache.openSpans, 0u);
}

TEST(TracerSystem, SpanUnionsEqualComponentBusyIntervals)
{
    // The figure benches read their timeline strips from the Tracer;
    // that is only sound if the span unions reproduce the busy
    // IntervalSets the components have always tracked.
    TracedRun r = runTraced("stencil-stencil2d", tracedDmaConfig());
    EXPECT_EQ(r.flushSpans.intervals(), r.flushBusy.intervals());
    EXPECT_EQ(r.dmaSpans.intervals(), r.dmaBusy.intervals());
    EXPECT_EQ(r.datapathSpans.intervals(),
              r.computeBusy.intervals());
    EXPECT_GT(r.dmaSpans.measure(), 0u);
    EXPECT_GT(r.datapathSpans.measure(), 0u);
}

TEST(TracerSystem, TracingDoesNotPerturbResults)
{
    // Tracing is passive: a traced run and an untraced run of the
    // same design point must produce identical results and identical
    // component busy sets.
    SocConfig traced = tracedDmaConfig();
    SocConfig untraced = tracedDmaConfig();
    untraced.tracing.enabled = false;

    TracedRun a = runTraced("aes-aes", traced);
    TracedRun b = runTraced("aes-aes", untraced);

    EXPECT_EQ(b.numEvents, 0u); // no Tracer at all when disabled
    EXPECT_EQ(a.results.totalTicks, b.results.totalTicks);
    EXPECT_EQ(a.results.accelCycles, b.results.accelCycles);
    EXPECT_EQ(a.flushBusy.intervals(), b.flushBusy.intervals());
    EXPECT_EQ(a.dmaBusy.intervals(), b.dmaBusy.intervals());
    EXPECT_EQ(a.computeBusy.intervals(), b.computeBusy.intervals());
}

TEST(TracerSystem, JsonIsByteIdenticalAcrossRepeatedRuns)
{
    TracedRun a = runTraced("aes-aes", tracedDmaConfig());
    TracedRun b = runTraced("aes-aes", tracedDmaConfig());
    ASSERT_FALSE(a.json.empty());
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.numEvents, b.numEvents);
}

TEST(TracerSystem, CategoryMaskRestrictsRecordedEvents)
{
    SocConfig all = tracedDmaConfig();
    SocConfig only = tracedDmaConfig();
    only.tracing.categories =
        traceCategoryBit(TraceCategory::Dma);

    TracedRun a = runTraced("aes-aes", all);
    TracedRun b = runTraced("aes-aes", only);

    EXPECT_GT(b.dmaSpans.measure(), 0u);
    EXPECT_EQ(b.flushSpans.measure(), 0u);
    EXPECT_EQ(b.datapathSpans.measure(), 0u);
    EXPECT_LT(b.numEvents, a.numEvents);
    // Masking is emission-side filtering, never result perturbation.
    EXPECT_EQ(a.results.totalTicks, b.results.totalTicks);
    EXPECT_EQ(a.dmaSpans.intervals(), b.dmaSpans.intervals());
}

TEST(TracerSystem, ConfigKeysThreadThroughParsing)
{
    SocConfig cfg = parseConfig(
        {"trace=1", "trace_categories=dma,flush"});
    EXPECT_TRUE(cfg.tracing.enabled);
    EXPECT_EQ(cfg.tracing.categories,
              traceCategoryBit(TraceCategory::Dma) |
                  traceCategoryBit(TraceCategory::Flush));

    // trace_out implies tracing even without trace=1.
    SocConfig out = parseConfig({"trace_out=/tmp/x.json"});
    EXPECT_TRUE(out.tracing.enabled);
    EXPECT_EQ(out.tracing.outPath, "/tmp/x.json");

    // The record echo round-trips the tracing knobs (categories are
    // rendered in canonical enum order, not input order).
    std::string echoed = configToOptions(cfg);
    EXPECT_NE(echoed.find("trace=1"), std::string::npos);
    EXPECT_NE(echoed.find("trace_categories=flush,dma"),
              std::string::npos);
}

// --- Distribution statistic -----------------------------------------

TEST(DistributionStat, BucketsBoundsAndMoments)
{
    Distribution d("lat", "latency", 0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(d.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(d.bucketHi(0), 10.0);
    EXPECT_DOUBLE_EQ(d.bucketLo(9), 90.0);

    d.sample(-5.0);  // underflow
    d.sample(0.0);   // bucket 0
    d.sample(9.99);  // bucket 0
    d.sample(95.0);  // bucket 9
    d.sample(100.0); // at hi => overflow (buckets are [lo, hi))
    d.sample(250.0); // overflow

    EXPECT_EQ(d.count(), 6u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.bucketCounts()[0], 2u);
    EXPECT_EQ(d.bucketCounts()[9], 1u);
    EXPECT_EQ(d.buckets()[0].count, 2u);
    EXPECT_DOUBLE_EQ(d.buckets()[0].lo, 0.0);
    EXPECT_DOUBLE_EQ(d.buckets()[0].hi, 10.0);
    EXPECT_EQ(d.buckets()[9].count, 1u);
    EXPECT_DOUBLE_EQ(d.min(), -5.0);
    EXPECT_DOUBLE_EQ(d.max(), 250.0);
    EXPECT_DOUBLE_EQ(d.mean(), (-5.0 + 0.0 + 9.99 + 95.0 + 100.0 +
                                250.0) /
                                   6.0);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

TEST(DistributionStat, DumpSkipsEmptyBuckets)
{
    Distribution d("depth", "queue depth", 0.0, 4.0, 4);
    d.sample(1.5);
    d.sample(1.5);

    std::ostringstream os;
    d.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("depth::count"), std::string::npos);
    EXPECT_NE(out.find("depth::1-2"), std::string::npos);
    // Untouched buckets produce no line at all.
    EXPECT_EQ(out.find("depth::0-1"), std::string::npos);
    EXPECT_EQ(out.find("depth::3-4"), std::string::npos);
}

TEST(DistributionStat, WiredIntoCacheMissLatencyAndBusQueueDepth)
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 2;

    Trace trace = makeWorkload("aes-aes")->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    soc.run();

    std::ostringstream os;
    dumpAllStats(os, soc);
    const std::string stats = os.str();
    EXPECT_NE(stats.find("missLatency::count"), std::string::npos);
    EXPECT_NE(stats.find("queueDepth::count"), std::string::npos);
}

} // namespace
} // namespace genie
