/**
 * @file
 * Tests for trace serialization and textual configuration parsing:
 * exact round-trips for every workload trace, malformed-input
 * handling, option parsing, and config option round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/trace_io.hh"
#include "core/config_parse.hh"
#include "core/report.hh"
#include "core/validation.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

class TraceIoParamTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(TraceIoParamTest, RoundTripsExactly)
{
    Trace original = makeWorkload(GetParam())->build().trace;

    std::ostringstream os;
    writeTrace(os, original);
    std::istringstream is(os.str());
    Trace copy = readTrace(is);

    ASSERT_EQ(copy.arrays.size(), original.arrays.size());
    for (std::size_t i = 0; i < original.arrays.size(); ++i) {
        EXPECT_EQ(copy.arrays[i].name, original.arrays[i].name);
        EXPECT_EQ(copy.arrays[i].sizeBytes,
                  original.arrays[i].sizeBytes);
        EXPECT_EQ(copy.arrays[i].wordBytes,
                  original.arrays[i].wordBytes);
        EXPECT_EQ(copy.arrays[i].isInput, original.arrays[i].isInput);
        EXPECT_EQ(copy.arrays[i].isOutput,
                  original.arrays[i].isOutput);
        EXPECT_EQ(copy.arrays[i].privateScratch,
                  original.arrays[i].privateScratch);
    }

    ASSERT_EQ(copy.ops.size(), original.ops.size());
    EXPECT_EQ(copy.numIterations, original.numIterations);
    for (std::size_t i = 0; i < original.ops.size(); ++i) {
        const TraceOp &a = original.ops[i];
        const TraceOp &b = copy.ops[i];
        ASSERT_EQ(a.op, b.op) << "op " << i;
        ASSERT_EQ(a.arrayId, b.arrayId) << "op " << i;
        ASSERT_EQ(a.offset, b.offset) << "op " << i;
        ASSERT_EQ(a.size, b.size) << "op " << i;
        ASSERT_EQ(a.iteration, b.iteration) << "op " << i;
        ASSERT_EQ(a.deps, b.deps) << "op " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TraceIoParamTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(TraceIo, RejectsBadMagic)
{
    std::istringstream is("not a trace\n");
    EXPECT_THROW(readTrace(is), FatalError);
}

TEST(TraceIo, RejectsUnknownRecord)
{
    std::istringstream is("genie-trace v1\nwibble 1 2 3\n");
    EXPECT_THROW(readTrace(is), FatalError);
}

TEST(TraceIo, RejectsOpBeforeIter)
{
    std::istringstream is("genie-trace v1\n"
                          "array a 64 4 1 0 0\n"
                          "op IntAdd\n");
    EXPECT_THROW(readTrace(is), FatalError);
}

TEST(TraceIo, RejectsUnknownOpcode)
{
    std::istringstream is("genie-trace v1\n"
                          "array a 64 4 1 0 0\n"
                          "iter\nop Frobnicate\n");
    EXPECT_THROW(readTrace(is), FatalError);
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::istringstream is("genie-trace v1\n"
                          "# a comment\n"
                          "array a 64 4 1 1 0\n"
                          "\n"
                          "iter\n"
                          "ld 0 0 4\n"
                          "op IntAdd 0\n"
                          "st 0 4 4 1\n");
    Trace t = readTrace(is);
    EXPECT_EQ(t.ops.size(), 3u);
    EXPECT_EQ(t.ops[2].deps, std::vector<NodeId>{1});
}

TEST(TraceIo, OpcodeNamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(Opcode::Nop); ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
    EXPECT_THROW(opcodeFromName("NotAnOp"), FatalError);
}

// ---------------------------------------------------------------
// Config parsing.
// ---------------------------------------------------------------

TEST(ConfigParse, ParsesBasicOptions)
{
    SocConfig c = parseConfig({"mem=cache", "lanes=8",
                               "cache_kb=32", "cache_ports=4",
                               "bus=64", "prefetch=0"});
    EXPECT_EQ(c.memType, MemInterface::Cache);
    EXPECT_EQ(c.lanes, 8u);
    EXPECT_EQ(c.cache.sizeBytes, 32u * 1024u);
    EXPECT_EQ(c.cache.ports, 4u);
    EXPECT_EQ(c.busWidthBits, 64u);
    EXPECT_FALSE(c.cache.prefetch);
}

TEST(ConfigParse, ParsesDmaOptions)
{
    SocConfig c = parseConfig(
        {"mem=dma", "partitions=16", "pipelined=1", "triggered=1"});
    EXPECT_EQ(c.memType, MemInterface::ScratchpadDma);
    EXPECT_EQ(c.spadPartitions, 16u);
    EXPECT_TRUE(c.dma.pipelined);
    EXPECT_TRUE(c.dma.triggeredCompute);
}

TEST(ConfigParse, ParsesStudySwitches)
{
    SocConfig c = parseConfig(
        {"isolated=1", "perfect_mem=true", "inf_bw=on"});
    EXPECT_TRUE(c.isolated);
    EXPECT_TRUE(c.perfectMemory);
    EXPECT_TRUE(c.infiniteBandwidth);
}

TEST(ConfigParse, RejectsMalformedInput)
{
    SocConfig c;
    EXPECT_THROW(applyConfigOption(c, "lanes"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "lanes=abc"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "pipelined=maybe"),
                 FatalError);
    EXPECT_THROW(applyConfigOption(c, "mem=tape"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "nonsense=1"), FatalError);
}

TEST(ConfigParse, OptionsRoundTrip)
{
    SocConfig original = parseConfig(
        {"mem=cache", "lanes=16", "cache_kb=8", "cache_line=32",
         "cache_assoc=8", "cache_ports=2", "bus=64", "prefetch=0",
         "tlb_entries=16"});
    std::string rendered = configToOptions(original);

    // Re-parse the rendered options.
    std::vector<std::string> opts;
    std::istringstream ss(rendered);
    std::string tok;
    while (ss >> tok)
        opts.push_back(tok);
    SocConfig copy = parseConfig(opts);

    EXPECT_EQ(copy.memType, original.memType);
    EXPECT_EQ(copy.lanes, original.lanes);
    EXPECT_EQ(copy.cache.sizeBytes, original.cache.sizeBytes);
    EXPECT_EQ(copy.cache.lineBytes, original.cache.lineBytes);
    EXPECT_EQ(copy.cache.assoc, original.cache.assoc);
    EXPECT_EQ(copy.cache.ports, original.cache.ports);
    EXPECT_EQ(copy.busWidthBits, original.busWidthBits);
    EXPECT_EQ(copy.cache.prefetch, original.cache.prefetch);
    EXPECT_EQ(copy.tlbEntries, original.tlbEntries);
}

// ---------------------------------------------------------------
// Genie-Iface configuration keys.
// ---------------------------------------------------------------

TEST(ConfigParse, ParsesIfaceOptions)
{
    SocConfig c = parseConfig({"mem_type=acp", "completion=interrupt",
                               "irq_latency_ns=500", "queue_depth=8",
                               "invocations=4"});
    EXPECT_EQ(c.memType, MemInterface::ScratchpadDma);
    EXPECT_EQ(c.iface.memType, IfaceMemType::Acp);
    EXPECT_EQ(c.iface.completion, CompletionMode::Interrupt);
    EXPECT_EQ(c.iface.irqLatency, 500 * tickPerNs);
    EXPECT_EQ(c.iface.queueDepth, 8u);
    EXPECT_EQ(c.iface.invocations, 4u);
}

TEST(ConfigParse, MemTypeKeepsBothRegimeFieldsInSync)
{
    SocConfig c = parseConfig({"mem_type=cache"});
    EXPECT_EQ(c.memType, MemInterface::Cache);
    EXPECT_EQ(c.iface.memType, IfaceMemType::Cache);
    c = parseConfig({"mem=cache", "mem_type=dma"}); // latest wins
    EXPECT_EQ(c.memType, MemInterface::ScratchpadDma);
    EXPECT_EQ(c.iface.memType, IfaceMemType::Dma);
}

TEST(ConfigParse, PerArrayOverridesAccumulateAndLatestWins)
{
    SocConfig c = parseConfig(
        {"mem_type.in=acp", "mem_type.out=dma", "mem_type.in=dma"});
    ASSERT_EQ(c.iface.arrayMemTypes.size(), 2u);
    EXPECT_EQ(c.iface.arrayMemTypes[0].first, "in");
    EXPECT_EQ(c.iface.arrayMemTypes[0].second, IfaceMemType::Dma);
    EXPECT_EQ(c.iface.arrayMemTypes[1].first, "out");
    EXPECT_EQ(c.iface.arrayMemTypes[1].second, IfaceMemType::Dma);
}

TEST(ConfigParse, RejectsMalformedIfaceInput)
{
    SocConfig c;
    EXPECT_THROW(applyConfigOption(c, "mem_type=tape"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "mem_type.=acp"), FatalError);
    // Per-array cache is not a thing: cache is whole-accelerator.
    EXPECT_THROW(applyConfigOption(c, "mem_type.in=cache"),
                 FatalError);
    EXPECT_THROW(applyConfigOption(c, "completion=poll"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "queue_depth=abc"), FatalError);
    EXPECT_THROW(applyConfigOption(c, "fault_acp_snoop=1.5"),
                 FatalError);
    EXPECT_THROW(applyConfigOption(c, "fault_irq_drop=-0.1"),
                 FatalError);
}

TEST(ConfigParse, IfaceOptionsRoundTrip)
{
    SocConfig original = parseConfig(
        {"mem_type=acp", "mem_type.filter=dma", "lanes=8",
         "completion=interrupt", "irq_latency_ns=750",
         "queue_depth=16", "invocations=16", "fault_acp_snoop=0.25",
         "fault_irq_drop=0.125"});
    std::string rendered = configToOptions(original);

    std::vector<std::string> opts;
    std::istringstream ss(rendered);
    std::string tok;
    while (ss >> tok)
        opts.push_back(tok);
    SocConfig copy = parseConfig(opts);

    EXPECT_EQ(copy.memType, original.memType);
    EXPECT_EQ(copy.iface.memType, original.iface.memType);
    EXPECT_EQ(copy.iface.arrayMemTypes, original.iface.arrayMemTypes);
    EXPECT_EQ(copy.iface.completion, original.iface.completion);
    EXPECT_EQ(copy.iface.irqLatency, original.iface.irqLatency);
    EXPECT_EQ(copy.iface.queueDepth, original.iface.queueDepth);
    EXPECT_EQ(copy.iface.invocations, original.iface.invocations);
    for (unsigned i = 0; i < numFaultSites; ++i)
        EXPECT_DOUBLE_EQ(copy.faults.rates[i],
                         original.faults.rates[i]);
}

TEST(ConfigParse, DefaultIfaceRendersNoIfaceKeys)
{
    // Zero-cost when unselected: a default config's rendered options
    // must not mention any iface key, so pre-iface goldens and
    // fingerprints are unchanged.
    std::string rendered = configToOptions(SocConfig{});
    EXPECT_EQ(rendered.find("mem_type"), std::string::npos);
    EXPECT_EQ(rendered.find("completion"), std::string::npos);
    EXPECT_EQ(rendered.find("queue_depth"), std::string::npos);
    EXPECT_EQ(rendered.find("invocations"), std::string::npos);
    EXPECT_EQ(rendered.find("irq_latency"), std::string::npos);
}

TEST(ConfigValidation, RejectsContradictoryIfaceConfigs)
{
    SocConfig c = parseConfig({"mem=cache"});
    c.iface.memType = IfaceMemType::Acp; // contradicts mem=cache
    EXPECT_THROW(validateSocConfig(c), FatalError);

    c = parseConfig({"mem=cache", "mem_type.in=acp"});
    EXPECT_THROW(validateSocConfig(c), FatalError);

    c = parseConfig({"invocations=0"});
    EXPECT_THROW(validateSocConfig(c), FatalError);

    c = parseConfig({"queue_depth=2", "invocations=4"});
    EXPECT_THROW(validateSocConfig(c), FatalError);

    c = parseConfig({"completion=interrupt", "irq_latency_ns=0"});
    EXPECT_THROW(validateSocConfig(c), FatalError);
}

TEST(ConfigValidation, AcceptsWellFormedIfaceConfigs)
{
    validateSocConfig(parseConfig(
        {"mem_type=acp", "completion=interrupt", "queue_depth=8",
         "invocations=8", "irq_latency_ns=2000"}));
    validateSocConfig(
        parseConfig({"mem_type.in=acp", "mem_type.out=dma"}));
}

TEST(TraceIo, LoadedTraceSimulatesIdentically)
{
    // The trace-file workflow end to end: serialize, re-load, build
    // a fresh DDDG, and simulate — results must be bit-identical.
    Trace original = makeWorkload("spmv-crs")->build().trace;
    std::ostringstream os;
    writeTrace(os, original);
    std::istringstream is(os.str());
    Trace loaded = readTrace(is);

    Dddg dddgOrig(original);
    Dddg dddgLoaded(loaded);
    SocConfig cfg;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.dma.triggeredCompute = true;

    SocResults a = runDesign(cfg, original, dddgOrig);
    SocResults b = runDesign(cfg, loaded, dddgLoaded);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.breakdown.computeOnly, b.breakdown.computeOnly);
}

// ---------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------

struct ReportFixture : public ::testing::Test
{
    ReportFixture()
        : trace(makeWorkload("aes-aes")->build().trace), dddg(trace),
          soc(SocConfig{}, trace, dddg)
    {
        results = soc.run();
    }

    Trace trace;
    Dddg dddg;
    Soc soc;
    SocResults results;
};

TEST_F(ReportFixture, SummaryMentionsKeyFields)
{
    std::ostringstream os;
    printSummary(os, soc.config(), results);
    std::string s = os.str();
    EXPECT_NE(s.find("latency"), std::string::npos);
    EXPECT_NE(s.find("energy"), std::string::npos);
    EXPECT_NE(s.find("EDP"), std::string::npos);
    EXPECT_NE(s.find("dma lanes=4"), std::string::npos);
}

TEST_F(ReportFixture, RecordIsOneParsableLine)
{
    std::ostringstream os;
    printRecord(os, soc.config(), results);
    std::string s = os.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);
    EXPECT_NE(s.find("total_us="), std::string::npos);
    EXPECT_NE(s.find("edp="), std::string::npos);
    // The config portion round-trips through the parser.
    std::istringstream ss(s);
    std::vector<std::string> opts;
    std::string tok;
    while (ss >> tok && tok.find("total_us=") == std::string::npos)
        opts.push_back(tok);
    SocConfig parsed = parseConfig(opts);
    EXPECT_EQ(parsed.lanes, soc.config().lanes);
}

TEST_F(ReportFixture, StatsDumpCoversComponents)
{
    std::ostringstream os;
    dumpAllStats(os, soc);
    std::string s = os.str();
    EXPECT_NE(s.find("system.bus."), std::string::npos);
    EXPECT_NE(s.find("system.dram."), std::string::npos);
    EXPECT_NE(s.find("system.dma."), std::string::npos);
    EXPECT_NE(s.find("accel.datapath."), std::string::npos);
    EXPECT_NE(s.find("accel.spad."), std::string::npos);
}

} // namespace
} // namespace genie
