/**
 * @file
 * Genie-Turbo differential suite: the event-queue strategy is a
 * host-speed knob and nothing else.
 *
 * The strategy seam (sim/queue_strategy.hh) promises that every
 * strategy retires events in the identical (when, seq) order, so a
 * run's entire observable output — the key=value record, the stats
 * dump of every component, the end tick, the executed-event count,
 * and the serialized trace timeline — must be byte-identical across
 * `queue=heap` and `queue=ladder`. These tests enforce that promise
 * on all six paper design points genie_bench tracks, plus the iface,
 * fault-campaign, and traced variants, and pin the config-identity
 * half of the contract: the queue knob never reaches the canonical
 * key, the fingerprint, or configToOptions(), so sweep journals and
 * result caches written under one strategy stay warm under the other.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/dddg.hh"
#include "core/config_parse.hh"
#include "core/fingerprint.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "dse/result_cache.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "trace/tracer.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

/** The six paper design points, mirroring genie_bench's scenario
 * table (Figures 6 and 7 axes over the MachSuite kernels). */
struct DesignPointSpec
{
    const char *name;
    const char *workload;
    const char *options;
};

const DesignPointSpec paperPoints[] = {
    {"stencil2d-dma-opt", "stencil-stencil2d",
     "mem=dma lanes=8 partitions=8 pipelined=1 triggered=1"},
    {"gemm-dma-baseline", "gemm-ncubed",
     "mem=dma lanes=4 partitions=4"},
    {"md-knn-cache", "md-knn",
     "mem=cache lanes=4 cache_kb=16 cache_ports=2"},
    {"stencil3d-dma-opt", "stencil-stencil3d",
     "mem=dma lanes=8 partitions=8 pipelined=1 triggered=1"},
    {"spmv-crs-cache", "spmv-crs",
     "mem=cache lanes=4 cache_kb=32 cache_ports=2"},
    {"fft-dma-pipelined", "fft-transpose",
     "mem=dma lanes=8 partitions=8 pipelined=1"},
};

std::vector<std::string>
splitOptions(const char *options)
{
    std::vector<std::string> out;
    std::istringstream iss(options);
    std::string tok;
    while (iss >> tok)
        out.push_back(tok);
    return out;
}

/**
 * Build everything from scratch and run one simulation under the
 * given strategy, returning the full observable output (the
 * test_determinism.cc runAndDump contract, plus the strategy knob).
 */
std::string
runAndDump(const std::string &workload, SocConfig cfg,
           QueueStrategy strat)
{
    cfg.queue = strat;
    Trace trace = makeWorkload(workload)->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    soc.bus().enableProtocolChecker();
    SocResults r = soc.run();

    std::ostringstream os;
    printRecord(os, cfg, r);
    dumpAllStats(os, soc);
    os << "endTick=" << r.totalTicks
       << " accelCycles=" << r.accelCycles
       << " executed=" << soc.eventQueue().numExecuted() << "\n";
    if (const Tracer *tracer = soc.tracer())
        tracer->writeChromeJson(os);

    soc.bus().protocolChecker()->checkQuiescent();
    soc.eventQueue().checkDrained();
    return os.str();
}

/** Byte-compare a design point's full dump across both strategies. */
void
expectStrategiesIdentical(const std::string &workload,
                          const SocConfig &cfg, const char *label)
{
    const std::string heap =
        runAndDump(workload, cfg, QueueStrategy::Heap);
    const std::string ladder =
        runAndDump(workload, cfg, QueueStrategy::Ladder);
    ASSERT_FALSE(heap.empty()) << label;
    EXPECT_EQ(heap, ladder)
        << label << ": queue=heap and queue=ladder diverged";
}

TEST(QueueDiff, PaperDesignPointsAreByteIdenticalAcrossStrategies)
{
    for (const DesignPointSpec &p : paperPoints) {
        SocConfig cfg = parseConfig(splitOptions(p.options));
        expectStrategiesIdentical(p.workload, cfg, p.name);
    }
}

TEST(QueueDiff, TracedRunsSerializeIdenticallyAcrossStrategies)
{
    // With tracing on, the Chrome JSON timeline (event order, tids,
    // interned strings) joins the byte-identity contract: the ladder
    // queue must not reorder even same-tick flow handoffs.
    for (const DesignPointSpec &p :
         {paperPoints[0], paperPoints[2]}) {
        SocConfig cfg = parseConfig(splitOptions(p.options));
        cfg.tracing.enabled = true;
        cfg.tracing.categories = allTraceCategories;
        expectStrategiesIdentical(p.workload, cfg, p.name);
    }
}

TEST(QueueDiff, IfaceVariantsAreByteIdenticalAcrossStrategies)
{
    // ACP data movement (heavy same-tick snoop traffic).
    SocConfig acp = parseConfig(splitOptions(
        "mem=dma lanes=4 partitions=4 mem_type=acp"));
    expectStrategiesIdentical("stencil-stencil2d", acp, "acp");

    // Interrupt completion through a depth-4 command queue, invoked
    // twice (self-rescheduling doorbell events).
    SocConfig intr = parseConfig(splitOptions(
        "mem=dma lanes=4 partitions=4 completion=interrupt "
        "queue_depth=4 invocations=2"));
    expectStrategiesIdentical("stencil-stencil2d", intr,
                              "interrupt-queued");
}

TEST(QueueDiff, SeededFaultRunsAreByteIdenticalAcrossStrategies)
{
    // Fault injection perturbs timing with retries and backoff; the
    // seeded campaign must land the exact same faults under either
    // strategy because the retirement order (and so the Rng draw
    // order) is part of the contract.
    SocConfig cfg = parseConfig(splitOptions(
        "mem=dma lanes=4 partitions=4"));
    cfg.faults.rates[static_cast<unsigned>(FaultSite::DramRead)] =
        0.2;
    cfg.faults.rates[static_cast<unsigned>(FaultSite::BusResp)] = 0.1;
    cfg.faults.seed = 42;
    expectStrategiesIdentical("stencil-stencil2d", cfg, "faults");
}

TEST(QueueDiff, QueueKnobNeverReachesTheConfigIdentity)
{
    // The canonical key, the fingerprint, and the round-trip option
    // string are strategy-blind: a journal or golden written under
    // one strategy must keep verifying under the other.
    SocConfig ladder;
    SocConfig heap;
    heap.queue = QueueStrategy::Heap;
    EXPECT_EQ(configCanonicalKey(ladder), configCanonicalKey(heap));
    EXPECT_EQ(configFingerprint(ladder), configFingerprint(heap));
    EXPECT_EQ(configToOptions(ladder), configToOptions(heap));
    EXPECT_EQ(configToOptions(heap).find("queue"),
              std::string::npos);

    // The parse side still honors the knob.
    EXPECT_EQ(parseConfig({"queue=heap"}).queue, QueueStrategy::Heap);
    EXPECT_EQ(parseConfig({"queue=ladder"}).queue,
              QueueStrategy::Ladder);
}

TEST(QueueDiff, SweepFingerprintsAndResultsMatchAcrossStrategies)
{
    // A reduced Figure-6 sweep run under each strategy must produce
    // the same design points with the same fingerprints and the same
    // per-point records.
    auto workload = makeWorkload("stencil-stencil2d")->build();
    Dddg dddg(workload.trace);
    SpaceFilter filter = SpaceFilter::parse("lanes=1,4;partitions=4");

    SocConfig ladderBase;
    SocConfig heapBase;
    heapBase.queue = QueueStrategy::Heap;
    auto ladderSpace =
        filterConfigs(DesignSpace::dmaOptions(ladderBase), filter);
    auto heapSpace =
        filterConfigs(DesignSpace::dmaOptions(heapBase), filter);
    ASSERT_FALSE(ladderSpace.empty());
    ASSERT_EQ(ladderSpace.size(), heapSpace.size());

    auto ladderPts = runSweep(ladderSpace, workload.trace, dddg);
    auto heapPts = runSweep(heapSpace, workload.trace, dddg);
    ASSERT_EQ(ladderPts.size(), heapPts.size());
    for (std::size_t i = 0; i < ladderPts.size(); ++i) {
        EXPECT_EQ(configFingerprint(ladderPts[i].config),
                  configFingerprint(heapPts[i].config))
            << "sweep point " << i;
        std::ostringstream a, b;
        printRecord(a, ladderPts[i].config, ladderPts[i].results);
        printRecord(b, heapPts[i].config, heapPts[i].results);
        EXPECT_EQ(a.str(), b.str()) << "sweep point " << i;
    }
}

TEST(QueueDiff, ResultCacheStaysWarmAcrossStrategies)
{
    // Because the cache keys on the canonical config key and the key
    // is strategy-blind, a cache populated by a ladder sweep must
    // serve a heap sweep of the same space entirely from memory.
    auto workload = makeWorkload("stencil-stencil2d")->build();
    Dddg dddg(workload.trace);
    SpaceFilter filter = SpaceFilter::parse("lanes=1,4;partitions=4");

    SocConfig ladderBase;
    SocConfig heapBase;
    heapBase.queue = QueueStrategy::Heap;
    auto ladderSpace =
        filterConfigs(DesignSpace::dmaOptions(ladderBase), filter);
    auto heapSpace =
        filterConfigs(DesignSpace::dmaOptions(heapBase), filter);
    ASSERT_FALSE(ladderSpace.empty());

    ResultCache cache;
    SweepOptions options;
    options.cache = &cache;
    SweepEngine engine(std::move(options));
    engine.run(ladderSpace, workload.trace, dddg);
    EXPECT_EQ(cache.hits(), 0u);
    engine.run(heapSpace, workload.trace, dddg);
    EXPECT_EQ(cache.hits(), heapSpace.size());
}

} // namespace
} // namespace genie
