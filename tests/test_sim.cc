/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * cancellation, clock domains, interval-set algebra, stats, RNG
 * determinism, and logging.
 */

#include <gtest/gtest.h>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/interval_set.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace genie
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, FifoOrderForEqualTicks)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleIn(10, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    eq.deschedule(id);
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.deschedule(id);
    eq.deschedule(id); // no crash, no effect
    eq.run();
    SUCCEED();
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.curTick(), 20u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 17; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 17u);
}

TEST(Clocked, CycleTickConversions)
{
    EventQueue eq;
    Clocked c(eq, ClockDomain::fromMhz(100)); // 10 ns period
    EXPECT_EQ(c.clockPeriod(), 10000u);
    EXPECT_EQ(c.cyclesToTicks(3), 30000u);
    EXPECT_EQ(c.ticksToCycles(10000), 1u);
    EXPECT_EQ(c.ticksToCycles(10001), 2u);
}

TEST(Clocked, ClockEdgeAlignment)
{
    EventQueue eq;
    Clocked c(eq, ClockDomain::fromMhz(100));
    // At tick 0, edge 0 is now.
    EXPECT_EQ(c.clockEdge(0), 0u);
    EXPECT_EQ(c.clockEdge(2), 20000u);
    // Advance to an off-edge tick.
    eq.schedule(10500, [] {});
    eq.run();
    EXPECT_EQ(c.clockEdge(0), 20000u);
    EXPECT_EQ(c.clockEdge(1), 30000u);
}

TEST(Clocked, RejectsZeroPeriod)
{
    EXPECT_THROW(ClockDomain(0), FatalError);
}

TEST(IntervalSet, MeasureAndMerge)
{
    IntervalSet s;
    s.add(10, 20);
    s.add(15, 30);
    s.add(40, 50);
    EXPECT_EQ(s.measure(), 30u);
    EXPECT_EQ(s.intervals().size(), 2u);
    EXPECT_EQ(s.lo(), 10u);
    EXPECT_EQ(s.hi(), 50u);
}

TEST(IntervalSet, EmptyIntervalsIgnored)
{
    IntervalSet s;
    s.add(10, 10);
    s.add(20, 15);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.measure(), 0u);
}

TEST(IntervalSet, Intersection)
{
    IntervalSet a, b;
    a.add(0, 100);
    b.add(50, 150);
    b.add(200, 300);
    auto c = a.intersectWith(b);
    EXPECT_EQ(c.measure(), 50u);
    EXPECT_EQ(c.lo(), 50u);
    EXPECT_EQ(c.hi(), 100u);
}

TEST(IntervalSet, Subtraction)
{
    IntervalSet a, b;
    a.add(0, 100);
    b.add(20, 30);
    b.add(50, 60);
    auto c = a.subtract(b);
    EXPECT_EQ(c.measure(), 80u);
    EXPECT_EQ(c.intervals().size(), 3u);
}

TEST(IntervalSet, SubtractAll)
{
    IntervalSet a, b;
    a.add(10, 20);
    b.add(0, 100);
    EXPECT_EQ(a.subtract(b).measure(), 0u);
}

TEST(IntervalSet, UnionWith)
{
    IntervalSet a, b;
    a.add(0, 10);
    b.add(5, 20);
    b.add(30, 40);
    auto c = a.unionWith(b);
    EXPECT_EQ(c.measure(), 30u);
}

TEST(IntervalSet, Contains)
{
    IntervalSet s;
    s.add(10, 20);
    EXPECT_FALSE(s.contains(9));
    EXPECT_TRUE(s.contains(10));
    EXPECT_TRUE(s.contains(19));
    EXPECT_FALSE(s.contains(20));
}

TEST(Stats, RegistersAndDumps)
{
    StatGroup g("unit");
    Stat &a = g.add("alpha", "first stat");
    Stat &b = g.add("beta", "second stat");
    a += 2.5;
    ++b;
    EXPECT_DOUBLE_EQ(g.get("alpha"), 2.5);
    EXPECT_DOUBLE_EQ(g.get("beta"), 1.0);
    EXPECT_EQ(g.find("gamma"), nullptr);
    EXPECT_DOUBLE_EQ(g.get("gamma"), 0.0);
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.get("alpha"), 0.0);
}

TEST(Stats, StatNamesArePrefixed)
{
    StatGroup g("cache0");
    Stat &s = g.add("hits", "hits");
    EXPECT_EQ(s.name(), "cache0.hits");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad config value %d", 3), FatalError);
}

TEST(Logging, FormatProducesMessage)
{
    EXPECT_EQ(format("x=%d y=%s", 3, "q"), "x=3 y=q");
}

TEST(Types, AlignHelpers)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(96));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_EQ(floorLog2(64), 6u);
}

TEST(Types, PeriodFromMhz)
{
    EXPECT_EQ(periodFromMhz(100), 10000u); // 10 ns
    EXPECT_EQ(periodFromMhz(1000), 1000u); // 1 ns
}

// --- genie-verify: EventQueue edge cases and entry lifetime ---------

TEST(EventQueueEdge, DescheduleOfAlreadyFiredIdIsNoOp)
{
    EventQueue eq;
    int fired = 0;
    EventId id = eq.schedule(5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    eq.deschedule(id); // must not underflow counters or double free
    eq.deschedule(id);
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.allocatedEntries(), 0u);
}

TEST(EventQueueEdge, DescheduleOwnIdFromInsideActionIsNoOp)
{
    EventQueue eq;
    int fired = 0;
    EventId id = invalidEventId;
    id = eq.schedule(5, [&] {
        ++fired;
        eq.deschedule(id); // the entry is already retired
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.allocatedEntries(), 0u);
}

TEST(EventQueueEdge, ScheduleAtCurTickFromInsideRunningEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        // Same-tick schedule from inside a running event must fire in
        // this run, after the current event (FIFO at equal ticks).
        eq.schedule(eq.curTick(), [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueueEdge, ScheduleAtCurTickFiresEvenAtRunBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { eq.schedule(10, [&] { ++fired; }); });
    eq.run(10); // boundary tick: events at exactly `until` execute
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueEdge, TieBreakIsFifoAcross1000SameTickEvents)
{
    EventQueue eq;
    std::vector<int> order;
    order.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    // Interleave some earlier and later events so heap churn cannot
    // perturb the same-tick sequence.
    eq.schedule(41, [] {});
    eq.schedule(43, [] {});
    eq.run();
    ASSERT_EQ(order.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueEdge, EntryAccountingClosesUnderDescheduleRunInterleaving)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 20; ++i) {
            Tick when = static_cast<Tick>(round * 100 + i);
            ids.push_back(eq.schedule(when, [] {}));
        }
        // Cancel every third event, including some already fired.
        for (std::size_t i = 0; i < ids.size(); i += 3)
            eq.deschedule(ids[i]);
        eq.run(static_cast<Tick>(round * 100 + 10));
        // Lazy deletion may keep cancelled entries allocated, but
        // never fewer entries than live events.
        EXPECT_GE(eq.allocatedEntries(), eq.size());
    }
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
    // Once drained, every heap-owned Entry must have been freed.
    EXPECT_EQ(eq.allocatedEntries(), 0u);
    eq.checkDrained();
}

TEST(EventQueueEdge, DestructorFreesCancelledAndPendingEntries)
{
    // Destroying a queue with a mix of live and cancelled events must
    // free every Entry (the accounting assert in ~EventQueue plus
    // ASan builds prove it).
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 50; ++i)
        ids.push_back(eq.schedule(static_cast<Tick>(i), [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2)
        eq.deschedule(ids[i]);
    eq.run(10);
    EXPECT_GT(eq.allocatedEntries(), 0u);
    // dtor runs here
}

TEST(EventQueueEdgeDeath, CheckDrainedPanicsOnLiveEvents)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(5, [] {});
    EXPECT_DEATH(eq.checkDrained(), "not drained");
}

TEST(EventQueueEdgeDeath, SchedulingInThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "in the past");
}

} // namespace
} // namespace genie
