/**
 * @file
 * Property-based tests: parameterized sweeps asserting the
 * monotonicity and conservation invariants the whole design-space
 * methodology rests on, across multiple workloads and design axes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "core/fingerprint.hh"
#include "core/soc.hh"
#include "dse/sweep.hh"
#include "sim/event_arena.hh"
#include "sim/ladder_queue.hh"
#include "sim/random.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct PreparedWorkload
{
    Trace trace;
    Dddg dddg;
    explicit PreparedWorkload(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

const PreparedWorkload &
prepared(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<PreparedWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          std::make_unique<PreparedWorkload>(name))
                 .first;
    }
    return *it->second;
}

/** Workloads used for the cross-cutting property sweeps (chosen to
 * span compute-bound, memory-bound, serial, and irregular). */
std::vector<std::string>
propertyWorkloads()
{
    return {"gemm-ncubed", "stencil-stencil2d", "spmv-crs", "kmp-kmp"};
}

class PropertyTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const PreparedWorkload &w() { return prepared(GetParam()); }
};

TEST_P(PropertyTest, LaneSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = lanes;
        cfg.spadPartitions = 16;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "lanes=" << lanes;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PartitionSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned parts : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = 8;
        cfg.spadPartitions = parts;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "partitions=" << parts;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PipelinedDmaNeverSlower)
{
    SocConfig base;
    base.lanes = 4;
    base.spadPartitions = 4;
    SocConfig piped = base;
    piped.dma.pipelined = true;
    SocResults rb = runDesign(base, w().trace, w().dddg);
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    EXPECT_LE(rp.totalTicks, rb.totalTicks + rb.totalTicks / 100);
}

TEST_P(PropertyTest, TriggeredComputeNeverSlower)
{
    SocConfig piped;
    piped.lanes = 4;
    piped.spadPartitions = 4;
    piped.dma.pipelined = true;
    SocConfig trig = piped;
    trig.dma.triggeredCompute = true;
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    SocResults rt = runDesign(trig, w().trace, w().dddg);
    EXPECT_LE(rt.totalTicks, rp.totalTicks + rp.totalTicks / 100);
}

TEST_P(PropertyTest, CacheSizeSweepMissRateMonotone)
{
    double prev = 1.0;
    for (unsigned kb : {2u, 8u, 32u}) {
        SocConfig cfg;
        cfg.memType = MemInterface::Cache;
        cfg.lanes = 4;
        cfg.cache.sizeBytes = kb * 1024;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        EXPECT_LE(r.cacheMissRate, prev + 0.02) << kb << "KB";
        prev = r.cacheMissRate;
    }
}

TEST_P(PropertyTest, BurgerDecompositionOrdering)
{
    // processing time <= +latency <= +bandwidth (Figure 7's method
    // requires the three runs to be ordered).
    SocConfig processing;
    processing.memType = MemInterface::Cache;
    processing.lanes = 4;
    processing.perfectMemory = true;
    SocConfig latency = processing;
    latency.perfectMemory = false;
    latency.infiniteBandwidth = true;
    SocConfig bandwidth = latency;
    bandwidth.infiniteBandwidth = false;

    Tick tp = runDesign(processing, w().trace, w().dddg).totalTicks;
    Tick tl = runDesign(latency, w().trace, w().dddg).totalTicks;
    Tick tb = runDesign(bandwidth, w().trace, w().dddg).totalTicks;
    // Allow a few percent of slack: prefetcher timing interacts with
    // bus bandwidth, so the ordering is monotone only to first order
    // (the Figure 7 bench clamps negative components to zero).
    EXPECT_LE(tp, tl + tl / 20);
    EXPECT_LE(tl, tb + tb / 20);
}

TEST_P(PropertyTest, BreakdownConservesTotalRuntime)
{
    for (bool pipe : {false, true}) {
        for (bool trig : {false, true}) {
            SocConfig cfg;
            cfg.lanes = 4;
            cfg.spadPartitions = 4;
            cfg.dma.pipelined = pipe;
            cfg.dma.triggeredCompute = trig;
            SocResults r = runDesign(cfg, w().trace, w().dddg);
            EXPECT_EQ(r.breakdown.total(), r.totalTicks)
                << "pipe=" << pipe << " trig=" << trig;
        }
    }
}

TEST_P(PropertyTest, EnergyScalesWithRuntimeLeakage)
{
    // The same design with a wider bus finishes sooner and must not
    // consume more leakage energy.
    SocConfig narrow;
    narrow.lanes = 4;
    narrow.spadPartitions = 4;
    narrow.busWidthBits = 32;
    SocConfig wide = narrow;
    wide.busWidthBits = 64;
    SocResults rn = runDesign(narrow, w().trace, w().dddg);
    SocResults rw = runDesign(wide, w().trace, w().dddg);
    EXPECT_LE(rw.totalTicks, rn.totalTicks + rn.totalTicks / 100);
    EXPECT_LE(rw.leakagePj, rn.leakagePj * 1.01);
}

TEST_P(PropertyTest, DeterministicAcrossRuns)
{
    SocConfig cfg;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.dma.triggeredCompute = true;
    SocResults a = runDesign(cfg, w().trace, w().dddg);
    SocResults b = runDesign(cfg, w().trace, w().dddg);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

// ---------------------------------------------------------------------
// DesignSpace enumeration and config-identity properties
// ---------------------------------------------------------------------

/** Every Figure 3 space the sweeps enumerate, concatenated. */
std::vector<SocConfig>
allEnumeratedConfigs()
{
    SocConfig base;
    std::vector<SocConfig> all = DesignSpace::isolated(base);
    for (auto space :
         {DesignSpace::dma(base), DesignSpace::dmaOptions(base),
          DesignSpace::cache(base)})
        all.insert(all.end(), space.begin(), space.end());
    return all;
}

TEST(DesignSpaceProperties, EnumerationSizesAreAxisCrossProducts)
{
    // Derived from the published axis value lists, not hard-coded
    // counts: adding a Figure 3 value must grow every space that
    // sweeps the axis.
    SocConfig base;
    std::size_t lanes = DesignSpace::laneValues().size();
    std::size_t parts = DesignSpace::partitionValues().size();
    EXPECT_EQ(DesignSpace::isolated(base).size(), lanes * parts);
    EXPECT_EQ(DesignSpace::dma(base).size(), lanes * parts);
    EXPECT_EQ(DesignSpace::dmaOptions(base).size(),
              lanes * parts * 2 * 2);
    EXPECT_EQ(DesignSpace::cache(base).size(),
              lanes * DesignSpace::cacheSizeValues().size() *
                  DesignSpace::cacheLineValues().size() *
                  DesignSpace::cachePortValues().size() *
                  DesignSpace::cacheAssocValues().size());
}

TEST(DesignSpaceProperties, EnumerationsContainNoDuplicates)
{
    SocConfig base;
    for (auto space :
         {DesignSpace::isolated(base), DesignSpace::dma(base),
          DesignSpace::dmaOptions(base), DesignSpace::cache(base)}) {
        std::set<std::string> keys;
        for (const auto &c : space)
            keys.insert(configCanonicalKey(c));
        EXPECT_EQ(keys.size(), space.size())
            << "a space enumerated the same design point twice";
    }
}

TEST(DesignSpaceProperties, IsolatedAsCacheLandsInSweepableRange)
{
    const auto &sizes = DesignSpace::cacheSizeValues();
    const auto &ports = DesignSpace::cachePortValues();
    for (const SocConfig &iso : DesignSpace::isolated(SocConfig{})) {
        for (std::uint64_t ws :
             {std::uint64_t(1), std::uint64_t(1500),
              std::uint64_t(3 * 1024), std::uint64_t(20 * 1024),
              std::uint64_t(48 * 1024), std::uint64_t(1 << 20)}) {
            SocConfig mapped = DesignSpace::isolatedAsCache(iso, ws);
            EXPECT_EQ(mapped.memType, MemInterface::Cache);
            EXPECT_FALSE(mapped.isolated);
            EXPECT_NE(std::find(sizes.begin(), sizes.end(),
                                mapped.cache.sizeBytes),
                      sizes.end())
                << "cache size " << mapped.cache.sizeBytes
                << " is not a sweepable Figure 3 value (ws=" << ws
                << ")";
            if (ws <= sizes.back()) {
                EXPECT_GE(mapped.cache.sizeBytes, ws)
                    << "an in-range working set must fit";
            }
            EXPECT_NE(std::find(ports.begin(), ports.end(),
                                mapped.cache.ports),
                      ports.end())
                << "ports " << mapped.cache.ports
                << " is not a sweepable value";
        }
    }
}

TEST(ConfigIdentity, FingerprintInjectiveOverEnumeratedSpaces)
{
    // The ResultCache keys on the canonical string, so a fingerprint
    // collision could never corrupt results — but the journal stores
    // the fingerprint as the compact identity, so prove it injective
    // over everything the sweeps enumerate: distinct keys must never
    // share a fingerprint, and equal keys must (trivially) agree.
    std::map<std::uint64_t, std::string> byFingerprint;
    std::size_t distinct = 0;
    for (const SocConfig &c : allEnumeratedConfigs()) {
        std::string key = configCanonicalKey(c);
        std::uint64_t fp = configFingerprint(c);
        auto it = byFingerprint.find(fp);
        if (it == byFingerprint.end()) {
            byFingerprint.emplace(fp, key);
            ++distinct;
        } else {
            EXPECT_EQ(it->second, key)
                << "fingerprint collision between distinct configs";
        }
    }
    EXPECT_EQ(byFingerprint.size(), distinct);
    EXPECT_GT(distinct, 100u);
}

TEST(ConfigIdentity, CrossSpaceDuplicatesShareOneKey)
{
    // The Fig. 8 DMA space is the all-optimizations slice of the
    // Fig. 6 space: every one of its points must hash to a key that
    // the Fig. 6 enumeration also produces, which is what makes the
    // shared-cache dedupe between the two sweeps work.
    SocConfig base;
    std::set<std::string> fig6Keys;
    for (const auto &c : DesignSpace::dmaOptions(base))
        fig6Keys.insert(configCanonicalKey(c));
    for (const auto &c : DesignSpace::dma(base)) {
        EXPECT_TRUE(fig6Keys.count(configCanonicalKey(c)))
            << "Fig. 8 DMA point missing from the Fig. 6 space: "
            << configCanonicalKey(c);
    }
}

TEST(ConfigIdentity, ObservabilityKnobsNeverChangeTheKey)
{
    // Tracing and metrics are passive by contract (a traced run
    // byte-matches a plain run), so they must not defeat the result
    // cache.
    SocConfig plain;
    plain.lanes = 4;
    SocConfig traced = plain;
    traced.tracing.enabled = true;
    traced.tracing.outPath = "/tmp/spans.json";
    traced.metrics.samplePeriod = 100;
    traced.metrics.statsJsonPath = "/tmp/stats.json";
    EXPECT_EQ(configCanonicalKey(plain), configCanonicalKey(traced));
    EXPECT_EQ(configFingerprint(plain), configFingerprint(traced));

    // Every result-affecting knob must move the key.
    SocConfig other = plain;
    other.lanes = 8;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(other));
    SocConfig wider = plain;
    wider.busWidthBits = 64;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(wider));
    SocConfig piped = plain;
    piped.dma.pipelined = true;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(piped));
}

// ---------------------------------------------------------------------
// Genie-Turbo queue/arena properties: the strategy seam's ordering
// contract ((when, seq) strict total order) and the arena's lifetime
// contract, fuzzed against naive reference models.
// ---------------------------------------------------------------------

/** Drives one EventQueue through a fuzzed schedule and records the
 * (label, tick) firing sequence. Every fifth external event
 * self-reschedules a child at the current tick (zero delta), the
 * same-tick case the ladder's front spill exists for. Labels
 * alternate between the std::function and raw-dispatch schedule
 * paths so both are held to the contract. */
struct QueueFuzz
{
    EventQueue eq;
    std::vector<std::pair<int, Tick>> fired;

    explicit QueueFuzz(QueueStrategy s) : eq(s) {}

    static bool
    respawns(int label)
    {
        return label < 1000000 && label % 5 == 0;
    }

    void
    fire(int label)
    {
        fired.emplace_back(label, eq.curTick());
        if (respawns(label))
            scheduleEvent(eq.curTick(), label + 1000000);
    }

    static void
    rawFire(void *c, std::uint64_t label)
    {
        static_cast<QueueFuzz *>(c)->fire(static_cast<int>(label));
    }

    EventId
    scheduleEvent(Tick when, int label)
    {
        if (label % 2) {
            return eq.schedule(
                when, [this, label] { fire(label); }, "fuzz.fn");
        }
        return eq.scheduleRaw(when, &QueueFuzz::rawFire, this,
                              static_cast<std::uint64_t>(label),
                              "fuzz.raw");
    }
};

/** Naive sorted-vector reference: linear min-scan by (when, seq).
 * Obviously correct, so any divergence indicts the strategy. */
struct RefModel
{
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        int label;
    };
    std::vector<Ev> pending;
    std::uint64_t nextSeq = 0;
    Tick cur = 0;
    std::vector<std::pair<int, Tick>> fired;

    std::uint64_t
    schedule(Tick when, int label)
    {
        pending.push_back({when, nextSeq, label});
        return nextSeq++;
    }

    void
    deschedule(std::uint64_t seq)
    {
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].seq == seq) {
                pending.erase(pending.begin() + i);
                return;
            }
        }
    }

    bool
    step()
    {
        if (pending.empty())
            return false;
        std::size_t best = 0;
        for (std::size_t i = 1; i < pending.size(); ++i) {
            const Ev &a = pending[i];
            const Ev &b = pending[best];
            if (a.when < b.when ||
                (a.when == b.when && a.seq < b.seq))
                best = i;
        }
        Ev e = pending[best];
        pending.erase(pending.begin() + best);
        cur = e.when;
        fired.emplace_back(e.label, e.when);
        if (QueueFuzz::respawns(e.label))
            schedule(cur, e.label + 1000000);
        return true;
    }
};

TEST(QueueProperties, FuzzedSchedulesMatchSortedReferenceModel)
{
    // Randomized schedule/deschedule/step interleavings — dense
    // same-tick ties (small deltas), far-future jumps (overflow /
    // redistribute), zero-delta self-reschedules, and deschedules
    // that sometimes hit the pending head — must fire in exactly the
    // reference model's (when, seq) order under every strategy.
    for (QueueStrategy strat :
         {QueueStrategy::Heap, QueueStrategy::Ladder}) {
        for (std::uint64_t seed : {1ull, 42ull, 0xfeedull}) {
            Rng rng(seed);
            QueueFuzz q(strat);
            RefModel m;
            std::vector<std::pair<EventId, std::uint64_t>> handles;
            int nextLabel = 1;
            for (int op = 0; op < 4000; ++op) {
                std::uint64_t pick = rng.below(10);
                if (pick < 5) {
                    Tick delta = rng.below(3) ? rng.below(64)
                                              : rng.below(100000);
                    int label = nextLabel++;
                    ASSERT_EQ(q.eq.curTick(), m.cur);
                    handles.emplace_back(
                        q.scheduleEvent(q.eq.curTick() + delta,
                                        label),
                        m.schedule(m.cur + delta, label));
                } else if (pick < 7 && !handles.empty()) {
                    // Includes already-fired and already-cancelled
                    // handles: deschedule must be a safe no-op on
                    // both sides (generation staling on the queue).
                    std::size_t i = rng.below(handles.size());
                    q.eq.deschedule(handles[i].first);
                    m.deschedule(handles[i].second);
                } else {
                    ASSERT_EQ(q.eq.step(), m.step());
                }
            }
            while (q.eq.step())
                ASSERT_TRUE(m.step());
            EXPECT_FALSE(m.step());
            EXPECT_EQ(q.fired, m.fired)
                << "strategy " << queueStrategyName(strat)
                << " seed " << seed;
            EXPECT_EQ(q.eq.size(), 0u);
            // Lazy-cancelled entries must all have been reaped: the
            // arena's leak accounting closes to zero.
            EXPECT_EQ(q.eq.allocatedEntries(), 0u);
        }
    }
}

struct LadderTestNode
{
    Tick when = 0;
    std::uint64_t seq = 0;
};

bool
ladderEarlier(const LadderTestNode *a, const LadderTestNode *b)
{
    if (a->when != b->when)
        return a->when < b->when;
    return a->seq < b->seq;
}

TEST(QueueProperties, LadderQueuePopsInWhenSeqOrderUnderStress)
{
    // The ladder directly (no EventQueue around it), against a
    // min-scan reference, across a push mix hitting every internal
    // path: same-tick ties, bucket-width-scale gaps, window-scale
    // jumps into the overflow heap, and enough load to force
    // rebuild()'s retuning.
    Rng rng(7);
    LadderQueue<LadderTestNode> lq;
    std::deque<LadderTestNode> storage;
    std::vector<LadderTestNode *> ref;
    std::uint64_t nextSeq = 0;
    Tick cur = 0;

    // Dense burst first: >8x bucket count in-window forces rebuild.
    for (int i = 0; i < 5000; ++i) {
        storage.push_back({cur + rng.below(5000), nextSeq++});
        lq.push(&storage.back());
        ref.push_back(&storage.back());
    }
    EXPECT_GE(lq.numRetunes(), 1u);

    for (int op = 0; op < 20000; ++op) {
        if (!ref.empty() && rng.below(2)) {
            auto it =
                std::min_element(ref.begin(), ref.end(), ladderEarlier);
            LadderTestNode *expect = *it;
            ASSERT_EQ(lq.top(), expect) << "op " << op;
            lq.pop();
            cur = expect->when;
            ref.erase(it);
        } else {
            Tick delta = 0;
            switch (rng.below(4)) {
              case 0:
                delta = 0;
                break;
              case 1:
                delta = rng.below(16);
                break;
              case 2:
                delta = rng.below(5000);
                break;
              default:
                delta = rng.below(Tick(1) << 22);
                break;
            }
            storage.push_back({cur + delta, nextSeq++});
            lq.push(&storage.back());
            ref.push_back(&storage.back());
        }
        ASSERT_EQ(lq.size(), ref.size());
    }
    while (!ref.empty()) {
        auto it =
            std::min_element(ref.begin(), ref.end(), ladderEarlier);
        ASSERT_EQ(lq.top(), *it);
        lq.pop();
        ref.erase(it);
    }
    EXPECT_TRUE(lq.empty());
}

TEST(QueueProperties, LadderQueueFrontSpillDrainsBeforeBuckets)
{
    // The one structural hazard the front spill guards: top() may
    // anchor the window far in the future (redistribute around a
    // lone overflow node), after which a push below the window's
    // lower bound must still pop first.
    LadderQueue<LadderTestNode> lq;
    LadderTestNode distant{Tick(1) << 40, 0};
    lq.push(&distant);
    ASSERT_EQ(lq.top(), &distant);
    LadderTestNode early{100, 1};
    lq.push(&early);
    EXPECT_EQ(lq.top(), &early);
    lq.pop();
    EXPECT_EQ(lq.top(), &distant);
    lq.pop();
    EXPECT_TRUE(lq.empty());
}

TEST(ArenaProperties, RecyclesSlotsAndStalesOldHandles)
{
    int alive = 0;
    struct Probe
    {
        int *alive;
        int value;
        Probe(int *a, int v) : alive(a), value(v) { ++*alive; }
        ~Probe() { --*alive; }
    };
    ObjectArena<Probe> arena;
    std::uint32_t s0 = 0, s1 = 0;
    Probe *a = arena.create(s0, &alive, 1);
    arena.create(s1, &alive, 2);
    EXPECT_EQ(alive, 2);
    EXPECT_EQ(arena.live(), 2u);
    std::uint32_t g0 = arena.generation(s0);
    EXPECT_EQ(arena.get(s0, g0), a);

    arena.destroy(s0);
    EXPECT_EQ(alive, 1);
    EXPECT_EQ(arena.get(s0, g0), nullptr) << "stale handle lived on";

    std::uint32_t s2 = 0;
    Probe *c = arena.create(s2, &alive, 3);
    EXPECT_EQ(s2, s0) << "freelist must recycle the freed slot";
    EXPECT_NE(arena.generation(s2), g0);
    EXPECT_EQ(arena.get(s2, arena.generation(s2)), c);
    EXPECT_EQ(arena.get(s0, g0), nullptr)
        << "recycling must not revive the old generation's handle";

    arena.destroy(s1);
    arena.destroy(s2);
    EXPECT_EQ(alive, 0);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.capacity(), 2u)
        << "recycling must not grow the high-water mark";
}

TEST(ArenaProperties, LeakAccountingClosesUnderFuzzedChurn)
{
    int alive = 0;
    struct Probe
    {
        int *alive;
        explicit Probe(int *a) : alive(a) { ++*alive; }
        ~Probe() { --*alive; }
    };
    Rng rng(11);
    ObjectArena<Probe> arena;
    std::vector<std::uint32_t> liveSlots;
    std::size_t peak = 0;
    for (int op = 0; op < 20000; ++op) {
        if (liveSlots.empty() || rng.below(5) < 3) {
            std::uint32_t slot = 0;
            arena.create(slot, &alive);
            liveSlots.push_back(slot);
        } else {
            std::size_t i = rng.below(liveSlots.size());
            arena.destroy(liveSlots[i]);
            liveSlots[i] = liveSlots.back();
            liveSlots.pop_back();
        }
        ASSERT_EQ(arena.live(), liveSlots.size());
        ASSERT_EQ(static_cast<std::size_t>(alive), liveSlots.size());
        peak = std::max(peak, liveSlots.size());
    }
    for (std::uint32_t slot : liveSlots)
        arena.destroy(slot);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(alive, 0);
    EXPECT_EQ(arena.capacity(), peak)
        << "capacity must track the live high-water mark, not churn";
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PropertyTest,
    ::testing::ValuesIn(propertyWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace genie
