/**
 * @file
 * Property-based tests: parameterized sweeps asserting the
 * monotonicity and conservation invariants the whole design-space
 * methodology rests on, across multiple workloads and design axes.
 */

#include <gtest/gtest.h>

#include "core/soc.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct PreparedWorkload
{
    Trace trace;
    Dddg dddg;
    explicit PreparedWorkload(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

const PreparedWorkload &
prepared(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<PreparedWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          std::make_unique<PreparedWorkload>(name))
                 .first;
    }
    return *it->second;
}

/** Workloads used for the cross-cutting property sweeps (chosen to
 * span compute-bound, memory-bound, serial, and irregular). */
std::vector<std::string>
propertyWorkloads()
{
    return {"gemm-ncubed", "stencil-stencil2d", "spmv-crs", "kmp-kmp"};
}

class PropertyTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const PreparedWorkload &w() { return prepared(GetParam()); }
};

TEST_P(PropertyTest, LaneSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = lanes;
        cfg.spadPartitions = 16;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "lanes=" << lanes;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PartitionSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned parts : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = 8;
        cfg.spadPartitions = parts;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "partitions=" << parts;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PipelinedDmaNeverSlower)
{
    SocConfig base;
    base.lanes = 4;
    base.spadPartitions = 4;
    SocConfig piped = base;
    piped.dma.pipelined = true;
    SocResults rb = runDesign(base, w().trace, w().dddg);
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    EXPECT_LE(rp.totalTicks, rb.totalTicks + rb.totalTicks / 100);
}

TEST_P(PropertyTest, TriggeredComputeNeverSlower)
{
    SocConfig piped;
    piped.lanes = 4;
    piped.spadPartitions = 4;
    piped.dma.pipelined = true;
    SocConfig trig = piped;
    trig.dma.triggeredCompute = true;
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    SocResults rt = runDesign(trig, w().trace, w().dddg);
    EXPECT_LE(rt.totalTicks, rp.totalTicks + rp.totalTicks / 100);
}

TEST_P(PropertyTest, CacheSizeSweepMissRateMonotone)
{
    double prev = 1.0;
    for (unsigned kb : {2u, 8u, 32u}) {
        SocConfig cfg;
        cfg.memType = MemInterface::Cache;
        cfg.lanes = 4;
        cfg.cache.sizeBytes = kb * 1024;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        EXPECT_LE(r.cacheMissRate, prev + 0.02) << kb << "KB";
        prev = r.cacheMissRate;
    }
}

TEST_P(PropertyTest, BurgerDecompositionOrdering)
{
    // processing time <= +latency <= +bandwidth (Figure 7's method
    // requires the three runs to be ordered).
    SocConfig processing;
    processing.memType = MemInterface::Cache;
    processing.lanes = 4;
    processing.perfectMemory = true;
    SocConfig latency = processing;
    latency.perfectMemory = false;
    latency.infiniteBandwidth = true;
    SocConfig bandwidth = latency;
    bandwidth.infiniteBandwidth = false;

    Tick tp = runDesign(processing, w().trace, w().dddg).totalTicks;
    Tick tl = runDesign(latency, w().trace, w().dddg).totalTicks;
    Tick tb = runDesign(bandwidth, w().trace, w().dddg).totalTicks;
    // Allow a few percent of slack: prefetcher timing interacts with
    // bus bandwidth, so the ordering is monotone only to first order
    // (the Figure 7 bench clamps negative components to zero).
    EXPECT_LE(tp, tl + tl / 20);
    EXPECT_LE(tl, tb + tb / 20);
}

TEST_P(PropertyTest, BreakdownConservesTotalRuntime)
{
    for (bool pipe : {false, true}) {
        for (bool trig : {false, true}) {
            SocConfig cfg;
            cfg.lanes = 4;
            cfg.spadPartitions = 4;
            cfg.dma.pipelined = pipe;
            cfg.dma.triggeredCompute = trig;
            SocResults r = runDesign(cfg, w().trace, w().dddg);
            EXPECT_EQ(r.breakdown.total(), r.totalTicks)
                << "pipe=" << pipe << " trig=" << trig;
        }
    }
}

TEST_P(PropertyTest, EnergyScalesWithRuntimeLeakage)
{
    // The same design with a wider bus finishes sooner and must not
    // consume more leakage energy.
    SocConfig narrow;
    narrow.lanes = 4;
    narrow.spadPartitions = 4;
    narrow.busWidthBits = 32;
    SocConfig wide = narrow;
    wide.busWidthBits = 64;
    SocResults rn = runDesign(narrow, w().trace, w().dddg);
    SocResults rw = runDesign(wide, w().trace, w().dddg);
    EXPECT_LE(rw.totalTicks, rn.totalTicks + rn.totalTicks / 100);
    EXPECT_LE(rw.leakagePj, rn.leakagePj * 1.01);
}

TEST_P(PropertyTest, DeterministicAcrossRuns)
{
    SocConfig cfg;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.dma.triggeredCompute = true;
    SocResults a = runDesign(cfg, w().trace, w().dddg);
    SocResults b = runDesign(cfg, w().trace, w().dddg);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PropertyTest,
    ::testing::ValuesIn(propertyWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace genie
