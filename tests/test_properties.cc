/**
 * @file
 * Property-based tests: parameterized sweeps asserting the
 * monotonicity and conservation invariants the whole design-space
 * methodology rests on, across multiple workloads and design axes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/fingerprint.hh"
#include "core/soc.hh"
#include "dse/sweep.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct PreparedWorkload
{
    Trace trace;
    Dddg dddg;
    explicit PreparedWorkload(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

const PreparedWorkload &
prepared(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<PreparedWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          std::make_unique<PreparedWorkload>(name))
                 .first;
    }
    return *it->second;
}

/** Workloads used for the cross-cutting property sweeps (chosen to
 * span compute-bound, memory-bound, serial, and irregular). */
std::vector<std::string>
propertyWorkloads()
{
    return {"gemm-ncubed", "stencil-stencil2d", "spmv-crs", "kmp-kmp"};
}

class PropertyTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const PreparedWorkload &w() { return prepared(GetParam()); }
};

TEST_P(PropertyTest, LaneSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = lanes;
        cfg.spadPartitions = 16;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "lanes=" << lanes;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PartitionSweepNeverIncreasesComputeCycles)
{
    Cycles prev = 0;
    bool first = true;
    for (unsigned parts : {1u, 2u, 4u, 8u, 16u}) {
        SocConfig cfg;
        cfg.isolated = true;
        cfg.lanes = 8;
        cfg.spadPartitions = parts;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        if (!first) {
            EXPECT_LE(r.accelCycles, prev + prev / 50)
                << "partitions=" << parts;
        }
        prev = r.accelCycles;
        first = false;
    }
}

TEST_P(PropertyTest, PipelinedDmaNeverSlower)
{
    SocConfig base;
    base.lanes = 4;
    base.spadPartitions = 4;
    SocConfig piped = base;
    piped.dma.pipelined = true;
    SocResults rb = runDesign(base, w().trace, w().dddg);
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    EXPECT_LE(rp.totalTicks, rb.totalTicks + rb.totalTicks / 100);
}

TEST_P(PropertyTest, TriggeredComputeNeverSlower)
{
    SocConfig piped;
    piped.lanes = 4;
    piped.spadPartitions = 4;
    piped.dma.pipelined = true;
    SocConfig trig = piped;
    trig.dma.triggeredCompute = true;
    SocResults rp = runDesign(piped, w().trace, w().dddg);
    SocResults rt = runDesign(trig, w().trace, w().dddg);
    EXPECT_LE(rt.totalTicks, rp.totalTicks + rp.totalTicks / 100);
}

TEST_P(PropertyTest, CacheSizeSweepMissRateMonotone)
{
    double prev = 1.0;
    for (unsigned kb : {2u, 8u, 32u}) {
        SocConfig cfg;
        cfg.memType = MemInterface::Cache;
        cfg.lanes = 4;
        cfg.cache.sizeBytes = kb * 1024;
        SocResults r = runDesign(cfg, w().trace, w().dddg);
        EXPECT_LE(r.cacheMissRate, prev + 0.02) << kb << "KB";
        prev = r.cacheMissRate;
    }
}

TEST_P(PropertyTest, BurgerDecompositionOrdering)
{
    // processing time <= +latency <= +bandwidth (Figure 7's method
    // requires the three runs to be ordered).
    SocConfig processing;
    processing.memType = MemInterface::Cache;
    processing.lanes = 4;
    processing.perfectMemory = true;
    SocConfig latency = processing;
    latency.perfectMemory = false;
    latency.infiniteBandwidth = true;
    SocConfig bandwidth = latency;
    bandwidth.infiniteBandwidth = false;

    Tick tp = runDesign(processing, w().trace, w().dddg).totalTicks;
    Tick tl = runDesign(latency, w().trace, w().dddg).totalTicks;
    Tick tb = runDesign(bandwidth, w().trace, w().dddg).totalTicks;
    // Allow a few percent of slack: prefetcher timing interacts with
    // bus bandwidth, so the ordering is monotone only to first order
    // (the Figure 7 bench clamps negative components to zero).
    EXPECT_LE(tp, tl + tl / 20);
    EXPECT_LE(tl, tb + tb / 20);
}

TEST_P(PropertyTest, BreakdownConservesTotalRuntime)
{
    for (bool pipe : {false, true}) {
        for (bool trig : {false, true}) {
            SocConfig cfg;
            cfg.lanes = 4;
            cfg.spadPartitions = 4;
            cfg.dma.pipelined = pipe;
            cfg.dma.triggeredCompute = trig;
            SocResults r = runDesign(cfg, w().trace, w().dddg);
            EXPECT_EQ(r.breakdown.total(), r.totalTicks)
                << "pipe=" << pipe << " trig=" << trig;
        }
    }
}

TEST_P(PropertyTest, EnergyScalesWithRuntimeLeakage)
{
    // The same design with a wider bus finishes sooner and must not
    // consume more leakage energy.
    SocConfig narrow;
    narrow.lanes = 4;
    narrow.spadPartitions = 4;
    narrow.busWidthBits = 32;
    SocConfig wide = narrow;
    wide.busWidthBits = 64;
    SocResults rn = runDesign(narrow, w().trace, w().dddg);
    SocResults rw = runDesign(wide, w().trace, w().dddg);
    EXPECT_LE(rw.totalTicks, rn.totalTicks + rn.totalTicks / 100);
    EXPECT_LE(rw.leakagePj, rn.leakagePj * 1.01);
}

TEST_P(PropertyTest, DeterministicAcrossRuns)
{
    SocConfig cfg;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.dma.triggeredCompute = true;
    SocResults a = runDesign(cfg, w().trace, w().dddg);
    SocResults b = runDesign(cfg, w().trace, w().dddg);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

// ---------------------------------------------------------------------
// DesignSpace enumeration and config-identity properties
// ---------------------------------------------------------------------

/** Every Figure 3 space the sweeps enumerate, concatenated. */
std::vector<SocConfig>
allEnumeratedConfigs()
{
    SocConfig base;
    std::vector<SocConfig> all = DesignSpace::isolated(base);
    for (auto space :
         {DesignSpace::dma(base), DesignSpace::dmaOptions(base),
          DesignSpace::cache(base)})
        all.insert(all.end(), space.begin(), space.end());
    return all;
}

TEST(DesignSpaceProperties, EnumerationSizesAreAxisCrossProducts)
{
    // Derived from the published axis value lists, not hard-coded
    // counts: adding a Figure 3 value must grow every space that
    // sweeps the axis.
    SocConfig base;
    std::size_t lanes = DesignSpace::laneValues().size();
    std::size_t parts = DesignSpace::partitionValues().size();
    EXPECT_EQ(DesignSpace::isolated(base).size(), lanes * parts);
    EXPECT_EQ(DesignSpace::dma(base).size(), lanes * parts);
    EXPECT_EQ(DesignSpace::dmaOptions(base).size(),
              lanes * parts * 2 * 2);
    EXPECT_EQ(DesignSpace::cache(base).size(),
              lanes * DesignSpace::cacheSizeValues().size() *
                  DesignSpace::cacheLineValues().size() *
                  DesignSpace::cachePortValues().size() *
                  DesignSpace::cacheAssocValues().size());
}

TEST(DesignSpaceProperties, EnumerationsContainNoDuplicates)
{
    SocConfig base;
    for (auto space :
         {DesignSpace::isolated(base), DesignSpace::dma(base),
          DesignSpace::dmaOptions(base), DesignSpace::cache(base)}) {
        std::set<std::string> keys;
        for (const auto &c : space)
            keys.insert(configCanonicalKey(c));
        EXPECT_EQ(keys.size(), space.size())
            << "a space enumerated the same design point twice";
    }
}

TEST(DesignSpaceProperties, IsolatedAsCacheLandsInSweepableRange)
{
    const auto &sizes = DesignSpace::cacheSizeValues();
    const auto &ports = DesignSpace::cachePortValues();
    for (const SocConfig &iso : DesignSpace::isolated(SocConfig{})) {
        for (std::uint64_t ws :
             {std::uint64_t(1), std::uint64_t(1500),
              std::uint64_t(3 * 1024), std::uint64_t(20 * 1024),
              std::uint64_t(48 * 1024), std::uint64_t(1 << 20)}) {
            SocConfig mapped = DesignSpace::isolatedAsCache(iso, ws);
            EXPECT_EQ(mapped.memType, MemInterface::Cache);
            EXPECT_FALSE(mapped.isolated);
            EXPECT_NE(std::find(sizes.begin(), sizes.end(),
                                mapped.cache.sizeBytes),
                      sizes.end())
                << "cache size " << mapped.cache.sizeBytes
                << " is not a sweepable Figure 3 value (ws=" << ws
                << ")";
            if (ws <= sizes.back()) {
                EXPECT_GE(mapped.cache.sizeBytes, ws)
                    << "an in-range working set must fit";
            }
            EXPECT_NE(std::find(ports.begin(), ports.end(),
                                mapped.cache.ports),
                      ports.end())
                << "ports " << mapped.cache.ports
                << " is not a sweepable value";
        }
    }
}

TEST(ConfigIdentity, FingerprintInjectiveOverEnumeratedSpaces)
{
    // The ResultCache keys on the canonical string, so a fingerprint
    // collision could never corrupt results — but the journal stores
    // the fingerprint as the compact identity, so prove it injective
    // over everything the sweeps enumerate: distinct keys must never
    // share a fingerprint, and equal keys must (trivially) agree.
    std::map<std::uint64_t, std::string> byFingerprint;
    std::size_t distinct = 0;
    for (const SocConfig &c : allEnumeratedConfigs()) {
        std::string key = configCanonicalKey(c);
        std::uint64_t fp = configFingerprint(c);
        auto it = byFingerprint.find(fp);
        if (it == byFingerprint.end()) {
            byFingerprint.emplace(fp, key);
            ++distinct;
        } else {
            EXPECT_EQ(it->second, key)
                << "fingerprint collision between distinct configs";
        }
    }
    EXPECT_EQ(byFingerprint.size(), distinct);
    EXPECT_GT(distinct, 100u);
}

TEST(ConfigIdentity, CrossSpaceDuplicatesShareOneKey)
{
    // The Fig. 8 DMA space is the all-optimizations slice of the
    // Fig. 6 space: every one of its points must hash to a key that
    // the Fig. 6 enumeration also produces, which is what makes the
    // shared-cache dedupe between the two sweeps work.
    SocConfig base;
    std::set<std::string> fig6Keys;
    for (const auto &c : DesignSpace::dmaOptions(base))
        fig6Keys.insert(configCanonicalKey(c));
    for (const auto &c : DesignSpace::dma(base)) {
        EXPECT_TRUE(fig6Keys.count(configCanonicalKey(c)))
            << "Fig. 8 DMA point missing from the Fig. 6 space: "
            << configCanonicalKey(c);
    }
}

TEST(ConfigIdentity, ObservabilityKnobsNeverChangeTheKey)
{
    // Tracing and metrics are passive by contract (a traced run
    // byte-matches a plain run), so they must not defeat the result
    // cache.
    SocConfig plain;
    plain.lanes = 4;
    SocConfig traced = plain;
    traced.tracing.enabled = true;
    traced.tracing.outPath = "/tmp/spans.json";
    traced.metrics.samplePeriod = 100;
    traced.metrics.statsJsonPath = "/tmp/stats.json";
    EXPECT_EQ(configCanonicalKey(plain), configCanonicalKey(traced));
    EXPECT_EQ(configFingerprint(plain), configFingerprint(traced));

    // Every result-affecting knob must move the key.
    SocConfig other = plain;
    other.lanes = 8;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(other));
    SocConfig wider = plain;
    wider.busWidthBits = 64;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(wider));
    SocConfig piped = plain;
    piped.dma.pipelined = true;
    EXPECT_NE(configCanonicalKey(plain), configCanonicalKey(piped));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PropertyTest,
    ::testing::ValuesIn(propertyWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace genie
