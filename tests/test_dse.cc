/**
 * @file
 * Design-space-exploration tests: sweep enumeration, the sweep
 * runner, Pareto-frontier properties, EDP-optimal selection, Kiviat
 * normalization, and the isolated-vs-co-designed comparison.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/fingerprint.hh"
#include "dse/journal.hh"
#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "dse/sweep_engine.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct SmallSpace
{
    SmallSpace()
        : trace(makeWorkload("stencil-stencil2d")->build().trace),
          dddg(trace)
    {
        // A small but real sweep: lanes x partitions at fixed opts.
        SocConfig base;
        for (unsigned lanes : {1u, 4u, 16u}) {
            for (unsigned parts : {1u, 16u}) {
                SocConfig c = base;
                c.lanes = lanes;
                c.spadPartitions = parts;
                c.dma.pipelined = true;
                c.dma.triggeredCompute = true;
                configs.push_back(c);
            }
        }
        points = runSweep(configs, trace, dddg, 1);
    }

    Trace trace;
    Dddg dddg;
    std::vector<SocConfig> configs;
    std::vector<DesignPoint> points;
};

SmallSpace &
space()
{
    static SmallSpace s;
    return s;
}

TEST(DesignSpace, EnumerationsMatchFigure3)
{
    SocConfig base;
    EXPECT_EQ(DesignSpace::isolated(base).size(), 25u);
    EXPECT_EQ(DesignSpace::dma(base).size(), 25u);
    EXPECT_EQ(DesignSpace::dmaOptions(base).size(), 100u);
    EXPECT_EQ(DesignSpace::cache(base).size(),
              5u * 6u * 3u * 4u * 2u);
}

TEST(DesignSpace, DmaSweepAppliesAllOptimizations)
{
    for (const auto &c : DesignSpace::dma(SocConfig{})) {
        EXPECT_TRUE(c.dma.pipelined);
        EXPECT_TRUE(c.dma.triggeredCompute);
        EXPECT_FALSE(c.isolated);
    }
}

TEST(DesignSpace, IsolatedAsCacheHoldsWorkingSet)
{
    SocConfig iso;
    iso.lanes = 8;
    iso.spadPartitions = 16;
    iso.isolated = true;
    SocConfig mapped = DesignSpace::isolatedAsCache(iso, 20 * 1024);
    EXPECT_EQ(mapped.memType, MemInterface::Cache);
    EXPECT_FALSE(mapped.isolated);
    EXPECT_GE(mapped.cache.sizeBytes, 20u * 1024u);
    EXPECT_EQ(mapped.cache.ports, 8u);
}

TEST(Sweep, PreservesConfigOrder)
{
    const auto &s = space();
    ASSERT_EQ(s.points.size(), s.configs.size());
    for (std::size_t i = 0; i < s.points.size(); ++i) {
        EXPECT_EQ(s.points[i].config.lanes, s.configs[i].lanes);
        EXPECT_EQ(s.points[i].config.spadPartitions,
                  s.configs[i].spadPartitions);
    }
}

TEST(Sweep, AllRunsProduceResults)
{
    for (const auto &p : space().points) {
        EXPECT_GT(p.results.totalTicks, 0u);
        EXPECT_GT(p.results.energyPj, 0.0);
        EXPECT_GT(p.results.avgPowerMw, 0.0);
    }
}

TEST(Sweep, MultithreadedMatchesSequential)
{
    const auto &s = space();
    auto threaded = runSweep(s.configs, s.trace, s.dddg, 4);
    ASSERT_EQ(threaded.size(), s.points.size());
    for (std::size_t i = 0; i < threaded.size(); ++i) {
        EXPECT_EQ(threaded[i].results.totalTicks,
                  s.points[i].results.totalTicks)
            << "simulation must be deterministic across threads";
        EXPECT_DOUBLE_EQ(threaded[i].results.energyPj,
                         s.points[i].results.energyPj);
    }
}

TEST(Pareto, FrontierIsNonDominated)
{
    const auto &s = space();
    auto frontier = paretoFrontier(s.points);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t fi : frontier) {
        for (std::size_t j = 0; j < s.points.size(); ++j) {
            if (j == fi)
                continue;
            bool dominates =
                s.points[j].results.totalTicks <
                    s.points[fi].results.totalTicks &&
                s.points[j].results.avgPowerMw <
                    s.points[fi].results.avgPowerMw;
            EXPECT_FALSE(dominates)
                << "frontier point " << fi << " dominated by " << j;
        }
    }
}

TEST(Pareto, FrontierSortedByDelayWithDecreasingPower)
{
    auto frontier = paretoFrontier(space().points);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        const auto &prev = space().points[frontier[i - 1]].results;
        const auto &cur = space().points[frontier[i]].results;
        EXPECT_LE(prev.totalTicks, cur.totalTicks);
        EXPECT_GT(prev.avgPowerMw, cur.avgPowerMw);
    }
}

TEST(Pareto, EdpOptimalIsMinimal)
{
    const auto &s = space();
    std::size_t best = edpOptimal(s.points);
    for (const auto &p : s.points)
        EXPECT_GE(p.results.edp, s.points[best].results.edp);
}

TEST(Pareto, KiviatNormalizesToReference)
{
    const auto &s = space();
    auto axes = kiviatAxes(s.points[0], s.points[0]);
    EXPECT_DOUBLE_EQ(axes.lanes, 1.0);
    EXPECT_DOUBLE_EQ(axes.sramSize, 1.0);
    EXPECT_DOUBLE_EQ(axes.memBandwidth, 1.0);
}

TEST(Pareto, CodesignComparisonImprovesEdp)
{
    const auto &s = space();
    auto isolatedConfigs = DesignSpace::isolated(SocConfig{});
    // Trim for speed: lanes x partitions at the extremes.
    std::vector<SocConfig> trimmed;
    for (const auto &c : isolatedConfigs) {
        if ((c.lanes == 1 || c.lanes == 16) &&
            (c.spadPartitions == 1 || c.spadPartitions == 16))
            trimmed.push_back(c);
    }
    auto isolatedPoints = runSweep(trimmed, s.trace, s.dddg, 1);

    auto cmp = compareCodesign(
        isolatedPoints, s.points, [&](const SocConfig &iso) {
            SocConfig full = iso;
            full.isolated = false;
            full.dma.pipelined = true;
            full.dma.triggeredCompute = true;
            DesignPoint p;
            p.config = full;
            p.results = runDesign(full, s.trace, s.dddg);
            return p;
        });

    EXPECT_GE(cmp.edpImprovement, 1.0)
        << "the co-designed optimum cannot be worse than the "
           "isolated design evaluated under system effects";
    EXPECT_GT(cmp.isolatedUnderSystem.results.totalTicks,
              cmp.isolatedOptimal.results.totalTicks);
}

// ---------------------------------------------------------------------
// SweepEngine: scheduling, memoization, checkpointing, failure
// ---------------------------------------------------------------------

/** Byte-comparable rendering of a whole sweep. */
std::string
sweepJson(const std::vector<DesignPoint> &points)
{
    std::ostringstream os;
    writeSweepResultsJson(os, points, "test");
    return os.str();
}

TEST(SweepEngine, WorkerExceptionCarriesOffendingConfig)
{
    // The old runSweep lost worker exceptions (std::terminate via an
    // unjoined throw or a silently default-constructed result). The
    // engine must surface the throw as SweepError with the failing
    // config attached, after finishing the rest of the sweep.
    const auto &s = space();
    std::vector<SocConfig> configs = s.configs;
    SocConfig bad = configs.front();
    bad.lanes = 0; // validateSocConfig: fatal
    configs.insert(configs.begin() + 3, bad);

    SweepEngine engine;
    try {
        engine.run(configs, s.trace, s.dddg);
        FAIL() << "a failing design point must raise SweepError";
    } catch (const SweepError &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        const FailedPoint &f = e.failures().front();
        EXPECT_EQ(f.index, 3u);
        EXPECT_EQ(f.config.lanes, 0u)
            << "the offending config must ride along";
        EXPECT_NE(f.message.find("lanes"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("lanes"),
                  std::string::npos);
    }
    EXPECT_EQ(engine.progress().failed, 1u);
}

TEST(SweepEngine, ContinueOnErrorCompletesRemainingPoints)
{
    const auto &s = space();
    std::vector<SocConfig> configs = s.configs;
    SocConfig bad = configs.front();
    bad.lanes = 0;
    configs.insert(configs.begin() + 2, bad);

    SweepOptions options;
    options.continueOnError = true;
    options.threads = 4;
    SweepEngine engine(std::move(options));
    auto points = engine.run(configs, s.trace, s.dddg);

    ASSERT_EQ(points.size(), configs.size());
    ASSERT_EQ(engine.failures().size(), 1u);
    EXPECT_EQ(engine.failures().front().index, 2u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i == 2)
            continue;
        EXPECT_GT(points[i].results.totalTicks, 0u)
            << "every healthy point must still be simulated";
    }
}

TEST(SweepEngine, ResultCacheDedupesAcrossRuns)
{
    const auto &s = space();
    ResultCache cache;
    SweepOptions options;
    options.cache = &cache;
    SweepEngine engine(std::move(options));

    auto cold = engine.run(s.configs, s.trace, s.dddg);
    EXPECT_EQ(engine.progress().done, s.configs.size());
    EXPECT_EQ(cache.hits(), 0u);

    auto warm = engine.run(s.configs, s.trace, s.dddg);
    EXPECT_EQ(engine.progress().done, 0u)
        << "a warm cache must satisfy every repeated point";
    EXPECT_EQ(engine.progress().cached, s.configs.size());
    EXPECT_GT(cache.hits(), 0u);
    EXPECT_EQ(sweepJson(warm), sweepJson(cold))
        << "cached results must be byte-identical to simulated ones";
}

TEST(SweepEngine, CacheDedupesOverlappingSpaces)
{
    // Fig. 6 (dmaOptions) contains the Fig. 8 DMA space as its
    // all-optimizations subset: sweeping both through one cache must
    // dedupe every Fig. 8 point.
    const auto &s = space();
    SpaceFilter filter = SpaceFilter::parse("lanes=1,4;partitions=4");
    SocConfig base;
    auto fig6 = filterConfigs(DesignSpace::dmaOptions(base), filter);
    auto fig8 = filterConfigs(DesignSpace::dma(base), filter);
    ASSERT_FALSE(fig6.empty());
    ASSERT_FALSE(fig8.empty());

    ResultCache cache;
    SweepOptions options;
    options.cache = &cache;
    SweepEngine engine(std::move(options));
    engine.run(fig6, s.trace, s.dddg);
    engine.run(fig8, s.trace, s.dddg);
    EXPECT_EQ(cache.hits(), fig8.size());
    EXPECT_EQ(engine.progress().done, 0u);
}

TEST(SweepEngine, JournalRoundTripsExactResults)
{
    const auto &s = space();
    const std::string path =
        ::testing::TempDir() + "genie_sweep_journal.jsonl";
    std::remove(path.c_str());

    SweepOptions options;
    options.journalPath = path;
    SweepEngine engine(std::move(options));
    auto points = engine.run(s.configs, s.trace, s.dddg);

    auto records = loadJournal(path);
    ASSERT_EQ(records.size(), s.configs.size());
    for (const auto &rec : records) {
        bool matched = false;
        for (std::size_t i = 0; i < s.configs.size(); ++i) {
            if (rec.key != configCanonicalKey(s.configs[i]))
                continue;
            matched = true;
            EXPECT_EQ(rec.fingerprint,
                      configFingerprint(s.configs[i]));
            EXPECT_EQ(resultsJson(rec.results),
                      resultsJson(points[i].results))
                << "journaled doubles must round-trip bit-exactly";
        }
        EXPECT_TRUE(matched) << "unknown journal key " << rec.key;
    }
    std::remove(path.c_str());
}

TEST(SweepEngine, JournalLoaderSkipsTornFinalLine)
{
    const auto &s = space();
    const std::string path =
        ::testing::TempDir() + "genie_sweep_torn.jsonl";
    std::remove(path.c_str());

    SweepOptions options;
    options.journalPath = path;
    SweepEngine engine(std::move(options));
    engine.run(s.configs, s.trace, s.dddg);

    // Simulate a kill mid-write: append half a record.
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"key\": \"mem=dma lanes=2\", \"fingerprint\":";
    }
    auto records = loadJournal(path);
    EXPECT_EQ(records.size(), s.configs.size())
        << "a torn trailing line is skipped, not fatal";

    JournalRecord rec;
    EXPECT_FALSE(parseJournalLine(journalHeaderLine(), rec));
    EXPECT_FALSE(parseJournalLine("", rec));
    EXPECT_FALSE(parseJournalLine("{\"key\": \"x\", \"fing", rec));
    std::remove(path.c_str());
}

TEST(SweepEngine, InterruptedSweepResumesFromJournal)
{
    const auto &s = space();
    const std::string path =
        ::testing::TempDir() + "genie_sweep_resume.jsonl";
    std::remove(path.c_str());

    // Uninterrupted reference run.
    SweepEngine reference;
    auto expected = reference.run(s.configs, s.trace, s.dddg);

    // Interrupted run: stop cleanly after two fresh points.
    {
        SweepOptions options;
        options.journalPath = path;
        options.maxFreshPoints = 2;
        SweepEngine engine(std::move(options));
        engine.run(s.configs, s.trace, s.dddg);
        EXPECT_TRUE(engine.interrupted());
        EXPECT_EQ(engine.progress().done, 2u);
    }
    ASSERT_EQ(loadJournal(path).size(), 2u);

    // Resume: same journal file preloads the two finished points.
    SweepOptions options;
    options.journalPath = path;
    options.resumePath = path;
    SweepEngine engine(std::move(options));
    auto resumed = engine.run(s.configs, s.trace, s.dddg);

    EXPECT_FALSE(engine.interrupted());
    EXPECT_EQ(engine.progress().cached, 2u);
    EXPECT_EQ(engine.progress().done, s.configs.size() - 2);
    EXPECT_EQ(sweepJson(resumed), sweepJson(expected))
        << "resumed results must be byte-identical to an "
           "uninterrupted sweep";
    EXPECT_EQ(loadJournal(path).size(), s.configs.size())
        << "the resumed run appends the missing points";
    std::remove(path.c_str());
}

TEST(SweepEngine, ProgressCallbackCoversEveryPoint)
{
    const auto &s = space();
    std::size_t calls = 0;
    SweepProgress last;
    SweepOptions options;
    options.threads = 4;
    options.onProgress = [&](const SweepProgress &p) {
        ++calls;
        last = p;
    };
    SweepEngine engine(std::move(options));
    engine.run(s.configs, s.trace, s.dddg);
    EXPECT_EQ(calls, s.configs.size());
    EXPECT_EQ(last.done + last.cached, s.configs.size());
    EXPECT_GT(engine.simulatedEvents(), 0u);
    EXPECT_GT(engine.meps(), 0.0);
}

TEST(SweepEngine, ProgressSnapshotsAreMonotonicUnderContention)
{
    // Regression: reportProgress used to build its snapshot outside
    // progressMutex, so two workers finishing together could deliver
    // reordered snapshots and a callback would observe done/cached
    // counters going backwards. The snapshot is now taken under the
    // callback lock; every observed counter must be non-decreasing.
    const auto &s = space();
    // Prewarm a shared cache with half the space so cached and done
    // both move under contention (duplicates inside one run can race
    // past each other before either inserts, so prewarming is the
    // only way to guarantee hits).
    ResultCache cache;
    std::vector<SocConfig> half(s.configs.begin(),
                                s.configs.begin() + 3);
    {
        SweepOptions warmup;
        warmup.cache = &cache;
        SweepEngine prime(std::move(warmup));
        prime.run(half, s.trace, s.dddg);
    }
    std::vector<SocConfig> configs = s.configs;
    configs.insert(configs.end(), s.configs.begin(), s.configs.end());

    SweepProgress prev;
    std::size_t calls = 0;
    SweepOptions options;
    options.cache = &cache;
    options.threads = 4;
    options.onProgress = [&](const SweepProgress &p) {
        EXPECT_GE(p.done, prev.done)
            << "done went backwards across callbacks";
        EXPECT_GE(p.cached, prev.cached)
            << "cached went backwards across callbacks";
        EXPECT_GE(p.failed, prev.failed)
            << "failed went backwards across callbacks";
        EXPECT_LE(p.done + p.cached + p.failed, p.total);
        prev = p;
        ++calls;
    };
    SweepEngine engine(std::move(options));
    engine.run(configs, s.trace, s.dddg);
    EXPECT_EQ(calls, configs.size());
    EXPECT_EQ(prev.done + prev.cached, configs.size());
    EXPECT_GE(prev.cached, 2 * half.size())
        << "every occurrence of a prewarmed config must be a hit";
    EXPECT_GE(prev.done, s.configs.size() - half.size())
        << "the cold configs must still be simulated";
}

TEST(SweepEngine, CallbackMayReenterEngineOnFailurePath)
{
    // Regression: the failure path used to run the user callback
    // while still holding failureMutex, imposing a lock order that
    // deadlocked callbacks reaching back into the engine. The lock
    // is now scoped to the push_back; a callback that calls
    // progress() and failures() on every delivery — including
    // failure deliveries — must complete.
    const auto &s = space();
    std::vector<SocConfig> configs = s.configs;
    for (std::size_t at : {std::size_t{1}, std::size_t{4}}) {
        SocConfig bad = s.configs.front();
        bad.lanes = 0; // validateSocConfig: fatal
        configs.insert(configs.begin() + at, bad);
    }

    SweepOptions options;
    options.threads = 4;
    options.continueOnError = true;
    SweepEngine *eng = nullptr;
    std::size_t maxFailedSeen = 0;
    options.onProgress = [&](const SweepProgress &p) {
        SweepProgress again = eng->progress();
        EXPECT_GE(again.done + again.cached + again.failed,
                  p.done + p.cached + p.failed);
        (void)eng->failures(); // stale during the run, but safe
        maxFailedSeen = std::max(maxFailedSeen, p.failed);
    };
    SweepEngine engine(std::move(options));
    eng = &engine;
    auto points = engine.run(configs, s.trace, s.dddg);

    ASSERT_EQ(points.size(), configs.size());
    EXPECT_EQ(maxFailedSeen, 2u);
    ASSERT_EQ(engine.failures().size(), 2u);
    EXPECT_EQ(engine.failures()[0].index, 1u);
    EXPECT_EQ(engine.failures()[1].index, 4u)
        << "failures must come back sorted by point index";
}

TEST(SweepEngine, EveryPointFailingStillCountsAndSortsFailures)
{
    // Regression: the dealing loop used to fill the per-worker
    // deques without their locks and the owner read st.failures
    // without failureMutex after the join. All-failure sweeps at
    // threads=4 are the densest exercise of both paths.
    const auto &s = space();
    std::vector<SocConfig> configs = s.configs;
    for (auto &c : configs)
        c.lanes = 0; // every point fails validation

    SweepOptions options;
    options.threads = 4;
    options.continueOnError = true;
    SweepEngine engine(std::move(options));
    auto points = engine.run(configs, s.trace, s.dddg);

    ASSERT_EQ(points.size(), configs.size());
    ASSERT_EQ(engine.failures().size(), configs.size());
    EXPECT_EQ(engine.progress().failed, configs.size());
    EXPECT_EQ(engine.progress().done, 0u);
    for (std::size_t i = 0; i < engine.failures().size(); ++i) {
        EXPECT_EQ(engine.failures()[i].index, i);
        EXPECT_EQ(engine.failures()[i].config.lanes, 0u);
    }
}

TEST(SweepEngine, ConfigCostPrefersCacheAndNarrowDatapaths)
{
    SocConfig dma;
    dma.memType = MemInterface::ScratchpadDma;
    dma.lanes = 16;
    SocConfig cacheCfg = dma;
    cacheCfg.memType = MemInterface::Cache;
    EXPECT_GT(SweepEngine::configCost(cacheCfg),
              SweepEngine::configCost(dma))
        << "cache-mode points simulate more machinery";
    SocConfig narrow = dma;
    narrow.lanes = 1;
    EXPECT_GT(SweepEngine::configCost(narrow),
              SweepEngine::configCost(dma))
        << "fewer lanes mean more simulated compute cycles";
}

TEST(ResultCache, BoundedCacheEvictsLeastRecentlyUsed)
{
    ResultCache cache(2);
    SocResults r;
    cache.insert("a", r);
    cache.insert("b", r);
    SocResults out;
    ASSERT_TRUE(cache.lookup("a", out)); // refresh: "b" is now LRU
    cache.insert("c", r);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.lookup("b", out))
        << "the least recently used entry is the victim";
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("c", out));
}

TEST(ResultCache, DefaultIsUnbounded)
{
    ResultCache cache;
    SocResults r;
    for (int i = 0; i < 1000; ++i)
        cache.insert(std::to_string(i), r);
    EXPECT_EQ(cache.size(), 1000u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Journal, CheckedLoaderCountsInteriorCorruptLines)
{
    const std::string path =
        ::testing::TempDir() + "genie_corrupt_journal.jsonl";
    std::remove(path.c_str());
    {
        SocResults r;
        std::ofstream out(path);
        out << journalHeaderLine();
        out << journalRecordLine("key-a", 0x1, r);
        out << "garbage that is not a record\n"; // interior damage
        out << journalRecordLine("key-b", 0x2, r);
    }
    JournalLoadResult loaded = loadJournalChecked(path);
    EXPECT_EQ(loaded.records.size(), 2u)
        << "records around the damage must still load";
    EXPECT_EQ(loaded.corruptLines, 1u)
        << "interior corruption must be counted, never silent";
    EXPECT_FALSE(loaded.tornFinalLine);
    std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsSilentlySkippedNotCorrupt)
{
    const std::string path =
        ::testing::TempDir() + "genie_torn_journal.jsonl";
    std::remove(path.c_str());
    {
        SocResults r;
        std::ofstream out(path);
        out << journalHeaderLine();
        out << journalRecordLine("key-a", 0x1, r);
        out << "{\"key\": \"key-b\", \"finge"; // kill-mid-write
    }
    JournalLoadResult loaded = loadJournalChecked(path);
    EXPECT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.corruptLines, 0u)
        << "a torn final line is the expected interruption shape";
    EXPECT_TRUE(loaded.tornFinalLine);
    std::remove(path.c_str());
}

TEST(SpaceFilter, ParsesAxesAndRejectsGarbage)
{
    SpaceFilter f = SpaceFilter::parse(
        "lanes=1,4;partitions=2;cache_kb=2,16");
    EXPECT_EQ(f.lanes, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(f.partitions, (std::vector<unsigned>{2}));
    EXPECT_EQ(f.cacheKb, (std::vector<unsigned>{2, 16}));
    EXPECT_TRUE(f.cacheLine.empty());
    EXPECT_THROW(SpaceFilter::parse("bogus=1"), FatalError);
    EXPECT_THROW(SpaceFilter::parse("lanes=abc"), FatalError);
}

TEST(SpaceFilter, CacheAxesOnlyConstrainCacheConfigs)
{
    SocConfig base;
    SpaceFilter f = SpaceFilter::parse(
        "lanes=1,4;cache_kb=2;cache_line=64;cache_ports=1;"
        "cache_assoc=4");
    auto dma = filterConfigs(DesignSpace::dma(base), f);
    // DMA configs carry no cache: only the lanes axis applies.
    EXPECT_EQ(dma.size(), 2u * DesignSpace::partitionValues().size());
    auto cached = filterConfigs(DesignSpace::cache(base), f);
    EXPECT_EQ(cached.size(), 2u);
    for (const auto &c : cached) {
        EXPECT_EQ(c.cache.sizeBytes, 2u * 1024u);
        EXPECT_EQ(c.cache.lineBytes, 64u);
        EXPECT_EQ(c.cache.ports, 1u);
        EXPECT_EQ(c.cache.assoc, 4u);
    }
}

} // namespace
} // namespace genie
