/**
 * @file
 * Design-space-exploration tests: sweep enumeration, the sweep
 * runner, Pareto-frontier properties, EDP-optimal selection, Kiviat
 * normalization, and the isolated-vs-co-designed comparison.
 */

#include <gtest/gtest.h>

#include "dse/pareto.hh"
#include "dse/sweep.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct SmallSpace
{
    SmallSpace()
        : trace(makeWorkload("stencil-stencil2d")->build().trace),
          dddg(trace)
    {
        // A small but real sweep: lanes x partitions at fixed opts.
        SocConfig base;
        for (unsigned lanes : {1u, 4u, 16u}) {
            for (unsigned parts : {1u, 16u}) {
                SocConfig c = base;
                c.lanes = lanes;
                c.spadPartitions = parts;
                c.dma.pipelined = true;
                c.dma.triggeredCompute = true;
                configs.push_back(c);
            }
        }
        points = runSweep(configs, trace, dddg, 1);
    }

    Trace trace;
    Dddg dddg;
    std::vector<SocConfig> configs;
    std::vector<DesignPoint> points;
};

SmallSpace &
space()
{
    static SmallSpace s;
    return s;
}

TEST(DesignSpace, EnumerationsMatchFigure3)
{
    SocConfig base;
    EXPECT_EQ(DesignSpace::isolated(base).size(), 25u);
    EXPECT_EQ(DesignSpace::dma(base).size(), 25u);
    EXPECT_EQ(DesignSpace::dmaOptions(base).size(), 100u);
    EXPECT_EQ(DesignSpace::cache(base).size(),
              5u * 6u * 3u * 4u * 2u);
}

TEST(DesignSpace, DmaSweepAppliesAllOptimizations)
{
    for (const auto &c : DesignSpace::dma(SocConfig{})) {
        EXPECT_TRUE(c.dma.pipelined);
        EXPECT_TRUE(c.dma.triggeredCompute);
        EXPECT_FALSE(c.isolated);
    }
}

TEST(DesignSpace, IsolatedAsCacheHoldsWorkingSet)
{
    SocConfig iso;
    iso.lanes = 8;
    iso.spadPartitions = 16;
    iso.isolated = true;
    SocConfig mapped = DesignSpace::isolatedAsCache(iso, 20 * 1024);
    EXPECT_EQ(mapped.memType, MemInterface::Cache);
    EXPECT_FALSE(mapped.isolated);
    EXPECT_GE(mapped.cache.sizeBytes, 20u * 1024u);
    EXPECT_EQ(mapped.cache.ports, 8u);
}

TEST(Sweep, PreservesConfigOrder)
{
    const auto &s = space();
    ASSERT_EQ(s.points.size(), s.configs.size());
    for (std::size_t i = 0; i < s.points.size(); ++i) {
        EXPECT_EQ(s.points[i].config.lanes, s.configs[i].lanes);
        EXPECT_EQ(s.points[i].config.spadPartitions,
                  s.configs[i].spadPartitions);
    }
}

TEST(Sweep, AllRunsProduceResults)
{
    for (const auto &p : space().points) {
        EXPECT_GT(p.results.totalTicks, 0u);
        EXPECT_GT(p.results.energyPj, 0.0);
        EXPECT_GT(p.results.avgPowerMw, 0.0);
    }
}

TEST(Sweep, MultithreadedMatchesSequential)
{
    const auto &s = space();
    auto threaded = runSweep(s.configs, s.trace, s.dddg, 4);
    ASSERT_EQ(threaded.size(), s.points.size());
    for (std::size_t i = 0; i < threaded.size(); ++i) {
        EXPECT_EQ(threaded[i].results.totalTicks,
                  s.points[i].results.totalTicks)
            << "simulation must be deterministic across threads";
        EXPECT_DOUBLE_EQ(threaded[i].results.energyPj,
                         s.points[i].results.energyPj);
    }
}

TEST(Pareto, FrontierIsNonDominated)
{
    const auto &s = space();
    auto frontier = paretoFrontier(s.points);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t fi : frontier) {
        for (std::size_t j = 0; j < s.points.size(); ++j) {
            if (j == fi)
                continue;
            bool dominates =
                s.points[j].results.totalTicks <
                    s.points[fi].results.totalTicks &&
                s.points[j].results.avgPowerMw <
                    s.points[fi].results.avgPowerMw;
            EXPECT_FALSE(dominates)
                << "frontier point " << fi << " dominated by " << j;
        }
    }
}

TEST(Pareto, FrontierSortedByDelayWithDecreasingPower)
{
    auto frontier = paretoFrontier(space().points);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        const auto &prev = space().points[frontier[i - 1]].results;
        const auto &cur = space().points[frontier[i]].results;
        EXPECT_LE(prev.totalTicks, cur.totalTicks);
        EXPECT_GT(prev.avgPowerMw, cur.avgPowerMw);
    }
}

TEST(Pareto, EdpOptimalIsMinimal)
{
    const auto &s = space();
    std::size_t best = edpOptimal(s.points);
    for (const auto &p : s.points)
        EXPECT_GE(p.results.edp, s.points[best].results.edp);
}

TEST(Pareto, KiviatNormalizesToReference)
{
    const auto &s = space();
    auto axes = kiviatAxes(s.points[0], s.points[0]);
    EXPECT_DOUBLE_EQ(axes.lanes, 1.0);
    EXPECT_DOUBLE_EQ(axes.sramSize, 1.0);
    EXPECT_DOUBLE_EQ(axes.memBandwidth, 1.0);
}

TEST(Pareto, CodesignComparisonImprovesEdp)
{
    const auto &s = space();
    auto isolatedConfigs = DesignSpace::isolated(SocConfig{});
    // Trim for speed: lanes x partitions at the extremes.
    std::vector<SocConfig> trimmed;
    for (const auto &c : isolatedConfigs) {
        if ((c.lanes == 1 || c.lanes == 16) &&
            (c.spadPartitions == 1 || c.spadPartitions == 16))
            trimmed.push_back(c);
    }
    auto isolatedPoints = runSweep(trimmed, s.trace, s.dddg, 1);

    auto cmp = compareCodesign(
        isolatedPoints, s.points, [&](const SocConfig &iso) {
            SocConfig full = iso;
            full.isolated = false;
            full.dma.pipelined = true;
            full.dma.triggeredCompute = true;
            DesignPoint p;
            p.config = full;
            p.results = runDesign(full, s.trace, s.dddg);
            return p;
        });

    EXPECT_GE(cmp.edpImprovement, 1.0)
        << "the co-designed optimum cannot be worse than the "
           "isolated design evaluated under system effects";
    EXPECT_GT(cmp.isolatedUnderSystem.results.totalTicks,
              cmp.isolatedOptimal.results.totalTicks);
}

} // namespace
} // namespace genie
