/**
 * @file
 * Cache-mode datapath unit tests (the Section IV-D machinery in
 * isolation): per-lane miss stalls with hit-under-miss across lanes,
 * TLB integration, port-limit backpressure, private-scratch routing,
 * and drain-before-done semantics.
 */

#include <gtest/gtest.h>

#include "accel/datapath.hh"
#include "accel/dddg.hh"
#include "mem/bus.hh"
#include "mem/dram.hh"
#include "sim/logging.hh"

namespace genie
{
namespace
{

constexpr Tick period = 10000;

/** A self-wired cache-mode datapath over a caller-built trace. */
struct CacheDatapathFixture
{
    explicit CacheDatapathFixture(Trace t,
                                  Datapath::Params params = {},
                                  Cache::Params cacheParams = {})
        : trace(std::move(t)), dddg(trace),
          bus("bus", eq, ClockDomain(period), SystemBus::Params{}),
          dram("dram", eq, ClockDomain(period), bus, {}),
          cache("cache", eq, ClockDomain(period), bus, cacheParams),
          tlb("tlb", eq, ClockDomain(period), AladdinTlb::Params{}),
          dp("dp", eq, ClockDomain(period), trace, dddg, params,
             Datapath::MemMode::Cache)
    {
        bus.setTarget(&dram);
        std::vector<Addr> vbase;
        Addr next = 0;
        std::vector<int> spadIds;
        for (const auto &a : trace.arrays) {
            vbase.push_back(next);
            next += alignUp(a.sizeBytes, 4096);
            spadIds.push_back(-1);
        }
        dp.attachCache(&cache, &tlb, vbase, nullptr, spadIds);
    }

    Cycles
    runToCompletion()
    {
        bool done = false;
        dp.start([&] { done = true; });
        eq.run();
        EXPECT_TRUE(done);
        return dp.executedCycles();
    }

    Trace trace;
    Dddg dddg;
    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    Cache cache;
    AladdinTlb tlb;
    Datapath dp;
};

/** @p iterations independent single-load iterations, each followed
 * by a short add chain. */
Trace
loadChainTrace(unsigned iterations, unsigned chain,
               unsigned strideBytes = 4)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64 * 1024, 4, true, false);
    int b = tb.addArray("b", 64 * 1024, 4, false, true);
    for (unsigned i = 0; i < iterations; ++i) {
        tb.beginIteration();
        NodeId v = tb.load(a, (i * strideBytes) % (64 * 1024), 4);
        for (unsigned c = 0; c < chain; ++c)
            v = tb.op(Opcode::IntAdd, {v});
        tb.store(b, (i * strideBytes) % (64 * 1024), 4, {v});
    }
    return tb.take();
}

TEST(DatapathCache, ExecutesAllNodes)
{
    CacheDatapathFixture f(loadChainTrace(32, 2));
    f.runToCompletion();
    EXPECT_DOUBLE_EQ(f.dp.stats().get("nodes"),
                     static_cast<double>(f.trace.ops.size()));
    EXPECT_FALSE(f.cache.hasOutstanding())
        << "done must imply a drained cache";
}

TEST(DatapathCache, MissStallsOnlyItsLane)
{
    // Two lanes: lane 0 misses on a far line each iteration (stride
    // crosses lines), lane 1 repeatedly hits one warm line. More
    // lanes must improve throughput despite the misses.
    Datapath::Params p1;
    p1.lanes = 1;
    Datapath::Params p4;
    p4.lanes = 4;
    CacheDatapathFixture f1(loadChainTrace(64, 2, 256), p1);
    CacheDatapathFixture f4(loadChainTrace(64, 2, 256), p4);
    Cycles c1 = f1.runToCompletion();
    Cycles c4 = f4.runToCompletion();
    EXPECT_LT(c4, c1)
        << "hit-under-miss across lanes must give MLP";
}

TEST(DatapathCache, HitsArePipelinedWithinALane)
{
    // Warm accesses to one line: a lane should not serialize on its
    // own hits (only on misses).
    Datapath::Params p;
    p.lanes = 1;
    Cache::Params cp;
    cp.ports = 2;
    CacheDatapathFixture f(loadChainTrace(64, 0, 4), p, cp);
    Cycles c = f.runToCompletion();
    // 64 loads + 64 stores at 2 ports/cycle with pipelined hits is
    // on the order of 64-200 cycles; a miss-serialized lane would
    // take thousands.
    EXPECT_LT(c, 1000u);
}

TEST(DatapathCache, TlbMissesAreCountedAndResolved)
{
    // Stride of one page: every iteration touches a new page.
    CacheDatapathFixture f(loadChainTrace(16, 1, 4096));
    f.runToCompletion();
    EXPECT_GE(f.tlb.stats().get("misses"), 16.0);
}

TEST(DatapathCache, PortBackpressureRetries)
{
    Datapath::Params p;
    p.lanes = 8;
    Cache::Params cp;
    cp.ports = 1;
    CacheDatapathFixture f(loadChainTrace(64, 1, 256), p, cp);
    f.runToCompletion();
    // With 8 lanes and 1 port, some accesses must have been rejected
    // and retried, and everything still completed.
    EXPECT_DOUBLE_EQ(f.dp.stats().get("nodes"),
                     static_cast<double>(f.trace.ops.size()));
}

TEST(DatapathCache, PrivateArraysBypassTheCache)
{
    TraceBuilder tb;
    int shared = tb.addArray("shared", 4096, 4, true, true);
    int priv = tb.addArray("priv", 4096, 4, false, false,
                           /*privateScratch=*/true);
    tb.beginIteration();
    for (unsigned i = 0; i < 16; ++i) {
        NodeId l = tb.load(shared, i * 4, 4);
        NodeId v = tb.op(Opcode::IntAdd, {l});
        tb.store(priv, i * 4, 4, {v});
        NodeId l2 = tb.load(priv, i * 4, 4);
        tb.store(shared, i * 4, 4, {l2});
    }
    Trace t = tb.take();
    Dddg dddg(t);

    EventQueue eq;
    SystemBus bus("bus", eq, ClockDomain(period), {});
    DramCtrl dram("dram", eq, ClockDomain(period), bus, {});
    bus.setTarget(&dram);
    Cache cache("cache", eq, ClockDomain(period), bus, {});
    AladdinTlb tlb("tlb", eq, ClockDomain(period), {});
    Scratchpad spad("spad", eq, ClockDomain(period));
    Scratchpad::ArrayConfig sc;
    sc.name = "priv";
    sc.sizeBytes = 4096;
    sc.wordBytes = 4;
    sc.partitions = 4;
    std::vector<int> spadIds = {-1, spad.addArray(sc)};

    Datapath dp("dp", eq, ClockDomain(period), t, dddg, {},
                Datapath::MemMode::Cache);
    dp.attachCache(&cache, &tlb, {0, 0x10000}, &spad, spadIds);
    bool done = false;
    dp.start([&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    // 16 private stores + 16 private loads hit the scratchpad...
    EXPECT_DOUBLE_EQ(spad.reads() + spad.writes(), 32.0);
    // ...and exactly the shared accesses hit the cache.
    EXPECT_DOUBLE_EQ(cache.stats().get("reads") +
                         cache.stats().get("writes"),
                     32.0);
}

TEST(DatapathCache, PerfectMemorySkipsCacheEntirely)
{
    Datapath::Params p;
    p.perfectMemory = true;
    CacheDatapathFixture f(loadChainTrace(32, 1), p);
    f.runToCompletion();
    EXPECT_DOUBLE_EQ(f.cache.stats().get("reads") +
                         f.cache.stats().get("writes"),
                     0.0);
}

} // namespace
} // namespace genie
