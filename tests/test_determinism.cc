/**
 * @file
 * genie-verify determinism harness.
 *
 * The EventQueue promises that "a strict total order keeps simulations
 * deterministic"; the whole DSE layer assumes it, because a sweep's
 * Pareto frontier is only meaningful if re-running any point
 * reproduces it bit-for-bit. These tests enforce the promise
 * end-to-end: the same SoC configuration simulated on concurrent
 * threads — each thread building its own trace, DDDG, and Soc — must
 * produce byte-identical stats dumps, identical tick counts, and
 * identical energy numbers, with the bus protocol checker armed the
 * whole time.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/dddg.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "trace/tracer.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

/**
 * Build everything from scratch and run one simulation, returning the
 * full observable output: the stats dump of every component, the
 * key=value record, and the headline numbers.
 */
std::string
runAndDump(const std::string &workload, const SocConfig &cfg)
{
    Trace trace = makeWorkload(workload)->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    soc.bus().enableProtocolChecker();
    SocResults r = soc.run();

    std::ostringstream os;
    printRecord(os, cfg, r);
    dumpAllStats(os, soc);
    os << "endTick=" << r.totalTicks
       << " accelCycles=" << r.accelCycles
       << " executed=" << soc.eventQueue().numExecuted() << "\n";

    // When the design point traces, the serialized timeline is part
    // of the observable output and must be byte-stable too.
    if (const Tracer *tracer = soc.tracer())
        tracer->writeChromeJson(os);

    // The run must also be protocol-clean and fully drained.
    soc.bus().protocolChecker()->checkQuiescent();
    soc.eventQueue().checkDrained();
    return os.str();
}

/** Run @p threads concurrent copies of the same design point and
 * require byte-identical output from every one of them. */
void
expectConcurrentRunsIdentical(const std::string &workload,
                              const SocConfig &cfg,
                              unsigned threads = 2)
{
    // A sequential reference first, so a failure distinguishes
    // "nondeterministic under concurrency" from "nondeterministic,
    // period".
    const std::string reference = runAndDump(workload, cfg);
    ASSERT_FALSE(reference.empty());

    std::vector<std::string> dumps(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            dumps[t] = runAndDump(workload, cfg);
        });
    }
    for (auto &th : pool)
        th.join();

    for (unsigned t = 0; t < threads; ++t) {
        EXPECT_EQ(dumps[t], reference)
            << "concurrent run " << t
            << " diverged from the sequential reference";
    }
}

SocConfig
dmaConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    return cfg;
}

SocConfig
cacheConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 4;
    return cfg;
}

TEST(Determinism, ConcurrentDmaRunsAreByteIdentical)
{
    expectConcurrentRunsIdentical("stencil-stencil2d", dmaConfig());
}

TEST(Determinism, ConcurrentCacheRunsAreByteIdentical)
{
    expectConcurrentRunsIdentical("stencil-stencil2d", cacheConfig());
}

TEST(Determinism, ConcurrentGemmCacheRunsAreByteIdentical)
{
    expectConcurrentRunsIdentical("gemm-ncubed", cacheConfig());
}

TEST(Determinism, TracedDmaRunsAreByteIdenticalAcrossThreads)
{
    // The full Chrome JSON (tids, interned strings, event order) must
    // be reproduced bit-for-bit by every concurrent run, and must be
    // independent of how many threads race — 2 vs 4 exercises
    // different interleavings against the same reference.
    SocConfig cfg = dmaConfig();
    cfg.tracing.enabled = true;
    expectConcurrentRunsIdentical("aes-aes", cfg, 2);
    expectConcurrentRunsIdentical("aes-aes", cfg, 4);
}

TEST(Determinism, TracedCacheRunsAreByteIdentical)
{
    SocConfig cfg = cacheConfig();
    cfg.tracing.enabled = true;
    expectConcurrentRunsIdentical("aes-aes", cfg);
}

TEST(Determinism, DisabledTracerAddsNoEvents)
{
    // The master switch means *no Tracer at all*: the EventQueue slot
    // stays null and runs match the pre-trace-subsystem output.
    SocConfig cfg = dmaConfig();
    Trace trace = makeWorkload("aes-aes")->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    soc.run();
    EXPECT_EQ(soc.tracer(), nullptr);
    EXPECT_EQ(soc.eventQueue().tracer(), nullptr);
}

TEST(Determinism, MixedDesignPointsDoNotInterfere)
{
    // Different design points racing on neighboring threads must not
    // perturb each other (each Soc owns a private EventQueue — the
    // property the static-state lint rule protects).
    const std::string dmaRef = runAndDump("stencil-stencil2d",
                                          dmaConfig());
    const std::string cacheRef = runAndDump("stencil-stencil2d",
                                            cacheConfig());

    std::string dmaOut, cacheOut;
    std::thread a([&] { dmaOut = runAndDump("stencil-stencil2d",
                                            dmaConfig()); });
    std::thread b([&] { cacheOut = runAndDump("stencil-stencil2d",
                                              cacheConfig()); });
    a.join();
    b.join();

    EXPECT_EQ(dmaOut, dmaRef);
    EXPECT_EQ(cacheOut, cacheRef);
}

// ---------------------------------------------------------------
// Genie-Iface determinism: the third interface regime must honor the
// same bit-for-bit contract as the two it joins.
// ---------------------------------------------------------------

SocConfig
acpConfig()
{
    SocConfig cfg = dmaConfig();
    cfg.dma.pipelined = false;
    cfg.iface.memType = IfaceMemType::Acp;
    return cfg;
}

TEST(Determinism, DefaultConfigBuildsNoIfaceStats)
{
    // Zero-cost when unselected: a config that never mentions an
    // iface key must not even register an iface component, so its
    // stats dump is identical to a pre-iface build's.
    const std::string dump = runAndDump("stencil-stencil2d",
                                        dmaConfig());
    EXPECT_EQ(dump.find("iface."), std::string::npos);

    const std::string acpDump = runAndDump("stencil-stencil2d",
                                           acpConfig());
    EXPECT_NE(acpDump.find("iface.acp"), std::string::npos);
}

TEST(Determinism, ExplicitIfaceDefaultsMatchTheImplicitDefaults)
{
    // Spelling out every baseline value must not change a single
    // byte relative to the untouched defaults.
    SocConfig implicit = dmaConfig();
    SocConfig expl = dmaConfig();
    expl.iface.completion = CompletionMode::Spin;
    expl.iface.memType = IfaceMemType::Dma;
    expl.iface.queueDepth = 0;
    expl.iface.invocations = 1;
    expl.iface.irqLatency = 1000 * tickPerNs;
    EXPECT_EQ(runAndDump("stencil-stencil2d", expl),
              runAndDump("stencil-stencil2d", implicit));
}

TEST(Determinism, ConcurrentAcpRunsAreByteIdentical)
{
    expectConcurrentRunsIdentical("stencil-stencil2d", acpConfig());
}

TEST(Determinism, ConcurrentInterruptQueuedRunsAreByteIdentical)
{
    SocConfig cfg = dmaConfig();
    cfg.iface.completion = CompletionMode::Interrupt;
    cfg.iface.queueDepth = 4;
    cfg.iface.invocations = 2;
    expectConcurrentRunsIdentical("stencil-stencil2d", cfg);
}

TEST(Determinism, SeededAcpFaultRunsAreByteIdentical)
{
    // The fault campaign's determinism contract extends to the new
    // iface sites: same seed, same nonzero rate, same bytes.
    SocConfig cfg = acpConfig();
    cfg.faults.rates[static_cast<unsigned>(FaultSite::AcpSnoop)] =
        0.3;
    cfg.faults.seed = 7;
    expectConcurrentRunsIdentical("stencil-stencil2d", cfg);
}

} // namespace
} // namespace genie
