/**
 * @file
 * Genie-Iface tests: the accelerator coherency port (snooping loads,
 * invalidating stores, fault retry), posted-interrupt completion
 * (delivery latency, drop/re-post, exhaustion), the accelerator
 * command queue (FIFO ring, overflow/underflow guards), and the
 * SoC-level contracts the subsystem exists for — flush-free ACP
 * offload, spin-free interrupt completion, and N invocations for one
 * ioctl.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/dddg.hh"
#include "core/soc.hh"
#include "fault/fault_injector.hh"
#include "iface/acp_port.hh"
#include "iface/command_queue.hh"
#include "iface/interrupt_line.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/dram.hh"
#include "mem/protocol_checker.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

constexpr Tick period = 10000; // 100 MHz

// ---------------------------------------------------------------
// AcpPort: coherent bursts against bus + DRAM (+ optional CPU cache).
// ---------------------------------------------------------------

struct AcpFixture : public ::testing::Test
{
    AcpFixture()
        : bus("bus", eq, ClockDomain(period), SystemBus::Params{}),
          dram("dram", eq, ClockDomain(period), bus, {}),
          acp("acp", eq, ClockDomain(period), bus, AcpPort::Params{})
    {
        bus.setTarget(&dram);
        bus.enableProtocolChecker();
    }

    /** Attach a snooping CPU cache holding @p len dirty bytes at
     * @p base. */
    Cache &
    dirtyCpuCache(Addr base, std::uint64_t len)
    {
        cpuCache = std::make_unique<Cache>(
            "cpuL1", eq, ClockDomain(period), bus, Cache::Params{});
        cpuCache->setCallback([](std::uint64_t, bool) {});
        cpuCache->prefill(base, len, /*dirty=*/true);
        return *cpuCache;
    }

    void
    inject(FaultSite site, double rate, unsigned maxRetries = 8)
    {
        FaultConfig cfg;
        cfg.seed = 99;
        cfg.rates[static_cast<unsigned>(site)] = rate;
        cfg.maxRetries = maxRetries;
        cfg.backoffCycles = 2;
        injector =
            std::make_unique<FaultInjector>("fault.injector", eq, cfg);
        eq.setFaultInjector(injector.get());
    }

    EventQueue eq;
    SystemBus bus;
    DramCtrl dram;
    AcpPort acp;
    std::unique_ptr<Cache> cpuCache;
    std::unique_ptr<FaultInjector> injector;
};

TEST_F(AcpFixture, LoadBurstFillsFromDramWhenNothingIsCached)
{
    std::uint64_t beatBytes = 0;
    bool done = false, ok = false;
    acp.startTransaction(
        AcpPort::Direction::MemToAccel, {{0, 0x1000, 0, 4096}},
        [&](int, Addr, unsigned len) { beatBytes += len; },
        [&](bool okArg) {
            done = true;
            ok = okArg;
        });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_EQ(beatBytes, 4096u);
    EXPECT_DOUBLE_EQ(acp.bytesTransferred(), 4096.0);
    // No cache anywhere: every beat fills from DRAM, none snoop-hit.
    EXPECT_DOUBLE_EQ(acp.stats().get("memFills"), 64.0);
    EXPECT_DOUBLE_EQ(acp.snoopHits(), 0.0);
    EXPECT_FALSE(acp.busyIntervals().empty());
    EXPECT_TRUE(acp.idle());
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(AcpFixture, DirtyCpuLinesAreSuppliedCacheToCacheWithoutFlush)
{
    Cache &cpu = dirtyCpuCache(0x1000, 512);
    std::uint64_t beatBytes = 0;
    acp.startTransaction(
        AcpPort::Direction::MemToAccel, {{0, 0x1000, 0, 512}},
        [&](int, Addr, unsigned len) { beatBytes += len; }, nullptr);
    eq.run();
    EXPECT_EQ(beatBytes, 512u);
    // All 8 lines were dirty in the CPU cache: each beat is answered
    // cache-to-cache, no flush ever ran, and the owner keeps its copy
    // in Owned state.
    EXPECT_DOUBLE_EQ(acp.snoopHits(), 8.0);
    EXPECT_DOUBLE_EQ(acp.stats().get("memFills"), 0.0);
    EXPECT_GE(bus.stats().get("cacheToCache"), 8.0);
    EXPECT_EQ(cpu.lineState(0x1000), CoherenceState::Owned);
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(AcpFixture, StoreBurstInvalidatesEveryCachedCopy)
{
    Cache &cpu = dirtyCpuCache(0x2000, 512);
    bool ok = false;
    acp.startTransaction(AcpPort::Direction::AccelToMem,
                         {{0, 0x2000, 0, 512}}, nullptr,
                         [&](bool okArg) { ok = okArg; });
    eq.run();
    EXPECT_TRUE(ok);
    // The CPU can never read stale data the accelerator overwrote:
    // every cached line of the target range was dropped.
    EXPECT_EQ(cpu.lineState(0x2000), CoherenceState::Invalid);
    EXPECT_EQ(cpu.lineState(0x2000 + 448), CoherenceState::Invalid);
    EXPECT_DOUBLE_EQ(acp.stats().get("writeInvalidations"), 8.0);
    EXPECT_GE(cpu.stats().get("snoopInvalidations"), 8.0);
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(AcpFixture, SetupDelayIsChargedBeforeTheFirstBeat)
{
    bool done = false;
    acp.startTransaction(AcpPort::Direction::MemToAccel,
                         {{0, 0x100, 0, 64}}, nullptr,
                         [&](bool) { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    // Doorbell-write setup (4 port cycles) precedes the single beat.
    EXPECT_GE(eq.curTick(), 4u * period);
}

TEST_F(AcpFixture, QueuedTransactionsRunInFifoOrder)
{
    std::vector<int> order;
    acp.startTransaction(AcpPort::Direction::MemToAccel,
                         {{0, 0x0, 0, 128}}, nullptr,
                         [&](bool) { order.push_back(1); });
    acp.startTransaction(AcpPort::Direction::AccelToMem,
                         {{0, 0x1000, 0, 128}}, nullptr,
                         [&](bool) { order.push_back(2); });
    EXPECT_FALSE(acp.idle());
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_TRUE(acp.idle());
    EXPECT_DOUBLE_EQ(acp.stats().get("transactions"), 2.0);
}

TEST_F(AcpFixture, FaultyBeatsRetryAndTheBurstStillCompletes)
{
    inject(FaultSite::AcpSnoop, 0.5);
    std::uint64_t beatBytes = 0;
    bool done = false, ok = false;
    acp.startTransaction(
        AcpPort::Direction::MemToAccel, {{0, 0x1000, 0, 4096}},
        [&](int, Addr, unsigned len) { beatBytes += len; },
        [&](bool okArg) {
            done = true;
            ok = okArg;
        });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    EXPECT_EQ(beatBytes, 4096u);
    EXPECT_GT(acp.stats().get("retries"), 0.0);
    EXPECT_DOUBLE_EQ(acp.stats().get("retryExhausted"), 0.0);
    EXPECT_TRUE(acp.idle());
    bus.protocolChecker()->checkQuiescent();
}

TEST_F(AcpFixture, RetryExhaustionFailsTheTransactionAndDrains)
{
    inject(FaultSite::AcpSnoop, 1.0, /*maxRetries=*/2);
    bool done = false, ok = true;
    acp.startTransaction(AcpPort::Direction::MemToAccel,
                         {{0, 0x1000, 0, 512}}, nullptr,
                         [&](bool okArg) {
                             done = true;
                             ok = okArg;
                         });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
    EXPECT_GE(acp.stats().get("retryExhausted"), 1.0);
    // The port must return to idle so a sweep can continue with the
    // next design point.
    EXPECT_TRUE(acp.idle());
}

// ---------------------------------------------------------------
// InterruptLine: posted completion with a fixed wakeup latency.
// ---------------------------------------------------------------

struct IrqFixture : public ::testing::Test
{
    InterruptLine &
    line(Tick latency)
    {
        InterruptLine::Params p;
        p.deliveryLatency = latency;
        irq = std::make_unique<InterruptLine>(
            "irq", eq, ClockDomain(period), p);
        return *irq;
    }

    void
    inject(double rate, unsigned maxRetries = 8)
    {
        FaultConfig cfg;
        cfg.seed = 99;
        cfg.rates[static_cast<unsigned>(FaultSite::IrqDrop)] = rate;
        cfg.maxRetries = maxRetries;
        cfg.backoffCycles = 2;
        injector =
            std::make_unique<FaultInjector>("fault.injector", eq, cfg);
        eq.setFaultInjector(injector.get());
    }

    EventQueue eq;
    std::unique_ptr<InterruptLine> irq;
    std::unique_ptr<FaultInjector> injector;
};

TEST_F(IrqFixture, DeliveryPaysExactlyTheConfiguredLatency)
{
    InterruptLine &l = line(2 * tickPerUs);
    Tick deliveredAt = 0;
    unsigned calls = 0;
    l.setHandler([&] {
        deliveredAt = eq.curTick();
        ++calls;
    });
    l.post();
    EXPECT_EQ(l.pendingDeliveries(), 1u);
    eq.run();
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(deliveredAt, 2 * tickPerUs);
    EXPECT_EQ(l.pendingDeliveries(), 0u);
    EXPECT_DOUBLE_EQ(l.stats().get("posts"), 1.0);
    EXPECT_DOUBLE_EQ(l.stats().get("delivered"), 1.0);
    const Distribution *d = l.stats().findDistribution("latencyNs");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count(), 1u);
    EXPECT_DOUBLE_EQ(d->mean(), 2000.0); // 2 us in ns
}

TEST_F(IrqFixture, EveryPostIsDeliveredOnce)
{
    InterruptLine &l = line(1000 * tickPerNs);
    unsigned calls = 0;
    l.setHandler([&] { ++calls; });
    for (int i = 0; i < 5; ++i)
        l.post();
    eq.run();
    EXPECT_EQ(calls, 5u);
    EXPECT_DOUBLE_EQ(l.stats().get("delivered"), 5.0);
    ASSERT_NE(l.stats().findDistribution("latencyNs"), nullptr);
    EXPECT_EQ(l.stats().findDistribution("latencyNs")->count(), 5u);
}

TEST_F(IrqFixture, DroppedPostsAreRepostedAndStillDelivered)
{
    inject(0.5);
    InterruptLine &l = line(1000 * tickPerNs);
    unsigned calls = 0;
    l.setHandler([&] { ++calls; });
    for (int i = 0; i < 8; ++i)
        l.post();
    eq.run();
    // Drops delay delivery (backoff shows up in the latency
    // distribution) but never lose an interrupt.
    EXPECT_EQ(calls, 8u);
    EXPECT_GT(l.stats().get("dropped"), 0.0);
    EXPECT_DOUBLE_EQ(l.stats().get("delivered"), 8.0);
}

TEST_F(IrqFixture, DropExhaustionIsFatalNotSilent)
{
    inject(1.0, /*maxRetries=*/2);
    InterruptLine &l = line(1000 * tickPerNs);
    l.setHandler([] {});
    l.post();
    // A lost final interrupt would hang the driver forever, so the
    // line declares the run dead instead of swallowing the loss.
    EXPECT_THROW(eq.run(), FatalError);
}

TEST_F(IrqFixture, ZeroDeliveryLatencyIsRejected)
{
    EXPECT_THROW(line(0), FatalError);
}

// ---------------------------------------------------------------
// CommandQueue: the descriptor ring between driver and device.
// ---------------------------------------------------------------

TEST(CommandQueue, DescriptorsDrainInFifoOrder)
{
    EventQueue eq;
    CommandQueue q("cmdq", eq, CommandQueue::Params{4});
    EXPECT_TRUE(q.empty());
    q.push(10);
    q.push(11);
    q.push(12);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 10u);
    EXPECT_EQ(q.pop(), 11u);
    EXPECT_EQ(q.pop(), 12u);
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.stats().get("enqueued"), 3.0);
    EXPECT_DOUBLE_EQ(q.stats().get("dequeued"), 3.0);
    // Occupancy is sampled after every push and pop.
    const Distribution *occ = q.stats().findDistribution("occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->count(), 6u);
    EXPECT_DOUBLE_EQ(occ->max(), 3.0);
}

TEST(CommandQueue, OverflowIsFatal)
{
    EventQueue eq;
    CommandQueue q("cmdq", eq, CommandQueue::Params{2});
    q.push(1);
    q.push(2);
    EXPECT_THROW(q.push(3), FatalError);
}

TEST(CommandQueue, PopFromEmptyRingIsFatal)
{
    EventQueue eq;
    CommandQueue q("cmdq", eq, CommandQueue::Params{2});
    EXPECT_THROW(q.pop(), FatalError);
}

TEST(CommandQueue, ZeroDepthIsRejected)
{
    EventQueue eq;
    EXPECT_THROW(CommandQueue("cmdq", eq, CommandQueue::Params{0}),
                 FatalError);
}

// ---------------------------------------------------------------
// SoC-level contracts: the reasons the subsystem exists.
// ---------------------------------------------------------------

struct Prepared
{
    Trace trace;
    Dddg dddg;
    explicit Prepared(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

const Prepared &
stencil()
{
    static Prepared p("stencil-stencil2d");
    return p;
}

SocConfig
dmaBaseline()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = false;
    cfg.dma.triggeredCompute = false;
    return cfg;
}

TEST(SocIface, DefaultConfigBuildsNoIfaceComponents)
{
    const auto &p = stencil();
    Soc soc(dmaBaseline(), p.trace, p.dddg);
    EXPECT_EQ(soc.acpPort(), nullptr);
    EXPECT_EQ(soc.interruptLine(), nullptr);
    EXPECT_EQ(soc.commandQueue(), nullptr);
}

TEST(SocIface, AcpRegimeEliminatesTheFlushEntirely)
{
    const auto &p = stencil();
    SocResults dma = runDesign(dmaBaseline(), p.trace, p.dddg);
    ASSERT_GT(dma.breakdown.flushOnly, 0u);

    SocConfig cfg = dmaBaseline();
    cfg.iface.memType = IfaceMemType::Acp;
    Soc soc(cfg, p.trace, p.dddg);
    SocResults acp = soc.run();

    // No flush phase at all: dirty CPU lines are snooped
    // cache-to-cache on demand by the coherency port.
    EXPECT_EQ(acp.breakdown.flushOnly, 0u);
    ASSERT_NE(soc.acpPort(), nullptr);
    EXPECT_GT(soc.acpPort()->snoopHits(), 0.0);
    EXPECT_GE(soc.bus().stats().get("cacheToCache"), 1.0);
    // Dropping the serialized flush beats the unpipelined DMA flow.
    EXPECT_LT(acp.totalTicks, dma.totalTicks);
}

TEST(SocIface, PerArrayOverrideMixesDmaAndAcpInOneRun)
{
    const auto &p = stencil();
    std::string inputArray;
    for (const auto &a : p.trace.arrays)
        if (a.isInput) {
            inputArray = a.name;
            break;
        }
    ASSERT_FALSE(inputArray.empty());

    SocConfig cfg = dmaBaseline();
    cfg.iface.arrayMemTypes.emplace_back(inputArray,
                                         IfaceMemType::Acp);
    Soc soc(cfg, p.trace, p.dddg);
    SocResults r = soc.run();

    // The overridden input moves over the ACP; everything else (the
    // output at minimum) still moves over the DMA engine.
    ASSERT_NE(soc.acpPort(), nullptr);
    double acpBytes = soc.acpPort()->bytesTransferred();
    EXPECT_GT(acpBytes, 0.0);
    EXPECT_GT(static_cast<double>(r.dmaBytes), acpBytes);
}

TEST(SocIface, UnknownArrayNameInOverrideIsFatal)
{
    const auto &p = stencil();
    SocConfig cfg = dmaBaseline();
    cfg.iface.arrayMemTypes.emplace_back("no-such-array",
                                         IfaceMemType::Acp);
    EXPECT_THROW(Soc(cfg, p.trace, p.dddg), FatalError);
}

TEST(SocIface, InterruptCompletionSleepsInsteadOfSpinning)
{
    const auto &p = stencil();

    SocConfig spin = dmaBaseline();
    Soc spinSoc(spin, p.trace, p.dddg);
    spinSoc.run();
    double spinTicks = spinSoc.cpu().stats().get("spinTicks");
    ASSERT_GT(spinTicks, 0.0);

    SocConfig intr = dmaBaseline();
    intr.iface.completion = CompletionMode::Interrupt;
    Soc intrSoc(intr, p.trace, p.dddg);
    intrSoc.run();
    // The CPU never burns a polling tick; completion arrives through
    // the interrupt line, whose latency distribution records it.
    EXPECT_DOUBLE_EQ(intrSoc.cpu().stats().get("spinTicks"), 0.0);
    ASSERT_NE(intrSoc.interruptLine(), nullptr);
    const Distribution *lat =
        intrSoc.interruptLine()->stats().findDistribution("latencyNs");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count(), 1u);
    EXPECT_GT(lat->mean(), 0.0);
}

TEST(SocIface, CommandQueueBatchesNInvocationsIntoOneIoctl)
{
    const auto &p = stencil();

    SocConfig unqueued = dmaBaseline();
    unqueued.iface.invocations = 4;
    Soc uq(unqueued, p.trace, p.dddg);
    SocResults ru = uq.run();
    EXPECT_DOUBLE_EQ(uq.cpu().stats().get("ioctls"), 4.0);

    SocConfig queued = dmaBaseline();
    queued.iface.invocations = 4;
    queued.iface.queueDepth = 4;
    Soc q(queued, p.trace, p.dddg);
    SocResults rq = q.run();
    EXPECT_DOUBLE_EQ(q.cpu().stats().get("ioctls"), 1.0);
    ASSERT_NE(q.commandQueue(), nullptr);
    EXPECT_TRUE(q.commandQueue()->empty());
    EXPECT_DOUBLE_EQ(q.commandQueue()->stats().get("dequeued"), 4.0);

    // Both flows ran all four invocations over the same data.
    EXPECT_EQ(ru.dmaBytes, rq.dmaBytes);
}

} // namespace
} // namespace genie
