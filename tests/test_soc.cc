/**
 * @file
 * End-to-end SoC integration tests: full DMA and cache offload flows,
 * runtime-breakdown conservation, the paper's qualitative effects
 * (pipelined DMA hides flush, ready bits overlap compute with DMA,
 * isolated designs report compute only), and energy accounting.
 */

#include <gtest/gtest.h>

#include "accel/dddg.hh"
#include "core/soc.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

struct Prepared
{
    Trace trace;
    Dddg dddg;
    explicit Prepared(const std::string &name)
        : trace(makeWorkload(name)->build().trace), dddg(trace)
    {}
};

const Prepared &
stencil()
{
    static Prepared p("stencil-stencil2d");
    return p;
}

const Prepared &
gemm()
{
    static Prepared p("gemm-ncubed");
    return p;
}

SocConfig
dmaBaseline()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = false;
    cfg.dma.triggeredCompute = false;
    return cfg;
}

SocConfig
cacheConfig()
{
    SocConfig cfg;
    cfg.memType = MemInterface::Cache;
    cfg.lanes = 4;
    cfg.cache.sizeBytes = 16 * 1024;
    cfg.cache.ports = 2;
    return cfg;
}

TEST(SocDmaFlow, CompletesAndBreakdownAddsUp)
{
    const auto &p = stencil();
    SocResults r = runDesign(dmaBaseline(), p.trace, p.dddg);

    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_GT(r.accelCycles, 0u);
    EXPECT_EQ(r.breakdown.total(), r.totalTicks);
    EXPECT_GT(r.breakdown.flushOnly, 0u);
    EXPECT_GT(r.breakdown.dmaFlush, 0u);
    EXPECT_GT(r.breakdown.computeOnly, 0u);
    // Baseline: no overlap between compute and DMA.
    EXPECT_EQ(r.breakdown.computeDma, 0u);
    EXPECT_GT(r.dmaBytes, 0u);
}

TEST(SocDmaFlow, FlushTimeMatchesAnalyticModel)
{
    const auto &p = stencil();
    SocConfig cfg = dmaBaseline();
    SocResults r = runDesign(cfg, p.trace, p.dddg);

    std::uint64_t lines =
        divCeil(p.trace.totalInputBytes(), cfg.cpuLineBytes);
    Tick expectedFlush = lines * cfg.flushPerLine;
    // Flush-only time is at most the analytic flush, and close to it
    // for the baseline flow (invalidate overlaps nothing).
    EXPECT_LE(r.breakdown.flushOnly,
              expectedFlush +
                  divCeil(p.trace.totalOutputBytes(),
                          cfg.cpuLineBytes) *
                      cfg.invalidatePerLine +
                  tickPerUs);
    EXPECT_GT(r.breakdown.flushOnly, expectedFlush / 2);
}

TEST(SocDmaFlow, PipelinedDmaHidesFlush)
{
    const auto &p = stencil();
    SocConfig base = dmaBaseline();
    SocConfig piped = base;
    piped.dma.pipelined = true;

    SocResults rb = runDesign(base, p.trace, p.dddg);
    SocResults rp = runDesign(piped, p.trace, p.dddg);

    EXPECT_LT(rp.totalTicks, rb.totalTicks);
    // Pipelined DMA nearly eliminates flush-only time (all but the
    // first page overlaps with DMA).
    EXPECT_LT(rp.breakdown.flushOnly, rb.breakdown.flushOnly / 2);
}

TEST(SocDmaFlow, ReadyBitsOverlapComputeWithDma)
{
    const auto &p = stencil();
    SocConfig piped = dmaBaseline();
    piped.dma.pipelined = true;
    SocConfig trig = piped;
    trig.dma.triggeredCompute = true;

    SocResults rp = runDesign(piped, p.trace, p.dddg);
    SocResults rt = runDesign(trig, p.trace, p.dddg);

    EXPECT_EQ(rp.breakdown.computeDma, 0u);
    EXPECT_GT(rt.breakdown.computeDma, 0u)
        << "stencil2d should start after the first rows arrive";
    EXPECT_LT(rt.totalTicks, rp.totalTicks);
    EXPECT_GT(rt.readyBitStalls, 0u);
}

TEST(SocDmaFlow, IsolatedDesignReportsComputeOnly)
{
    const auto &p = stencil();
    SocConfig iso = dmaBaseline();
    iso.isolated = true;
    SocResults r = runDesign(iso, p.trace, p.dddg);

    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_EQ(r.breakdown.flushOnly, 0u);
    EXPECT_EQ(r.breakdown.dmaFlush, 0u);
    EXPECT_EQ(r.breakdown.computeDma, 0u);
    EXPECT_EQ(r.dmaBytes, 0u);

    SocResults full = runDesign(dmaBaseline(), p.trace, p.dddg);
    EXPECT_LT(r.totalTicks, full.totalTicks)
        << "system effects must add runtime on top of compute";
}

TEST(SocDmaFlow, WiderBusSpeedsUpTransfer)
{
    const auto &p = gemm();
    SocConfig narrow = dmaBaseline();
    narrow.busWidthBits = 32;
    SocConfig wide = dmaBaseline();
    wide.busWidthBits = 64;

    SocResults rn = runDesign(narrow, p.trace, p.dddg);
    SocResults rw = runDesign(wide, p.trace, p.dddg);
    EXPECT_LT(rw.breakdown.dmaFlush + rw.breakdown.computeDma,
              rn.breakdown.dmaFlush + rn.breakdown.computeDma);
}

TEST(SocDmaFlow, MoreLanesNeverSlower)
{
    const auto &p = stencil();
    SocConfig one = dmaBaseline();
    one.lanes = 1;
    one.spadPartitions = 1;
    SocConfig sixteen = dmaBaseline();
    sixteen.lanes = 16;
    sixteen.spadPartitions = 16;

    SocResults r1 = runDesign(one, p.trace, p.dddg);
    SocResults r16 = runDesign(sixteen, p.trace, p.dddg);
    EXPECT_LE(r16.totalTicks, r1.totalTicks);
    EXPECT_LT(r16.accelCycles, r1.accelCycles);
}

TEST(SocCacheFlow, CompletesWithCoherenceTraffic)
{
    const auto &p = stencil();
    SocResults r = runDesign(cacheConfig(), p.trace, p.dddg);

    EXPECT_GT(r.totalTicks, 0u);
    EXPECT_EQ(r.breakdown.flushOnly, 0u);
    EXPECT_EQ(r.dmaBytes, 0u);
    EXPECT_GT(r.cacheMissRate, 0.0);
    EXPECT_LT(r.cacheMissRate, 1.0);
    EXPECT_GT(r.tlbHitRate, 0.0);
    EXPECT_GT(r.cacheToCacheTransfers, 0u)
        << "accelerator misses should snoop dirty CPU lines";
}

TEST(SocCacheFlow, BiggerCacheDoesNotMissMore)
{
    const auto &p = gemm();
    SocConfig small = cacheConfig();
    small.cache.sizeBytes = 2 * 1024;
    SocConfig big = cacheConfig();
    big.cache.sizeBytes = 32 * 1024;

    SocResults rs = runDesign(small, p.trace, p.dddg);
    SocResults rbg = runDesign(big, p.trace, p.dddg);
    EXPECT_LE(rbg.cacheMissRate, rs.cacheMissRate + 1e-9);
}

TEST(SocCacheFlow, PerfectMemoryIsFastest)
{
    const auto &p = stencil();
    SocConfig real = cacheConfig();
    SocConfig perfect = cacheConfig();
    perfect.perfectMemory = true;

    SocResults rr = runDesign(real, p.trace, p.dddg);
    SocResults rp = runDesign(perfect, p.trace, p.dddg);
    EXPECT_LT(rp.totalTicks, rr.totalTicks);
}

TEST(SocCacheFlow, InfiniteBandwidthBetweenPerfectAndReal)
{
    const auto &p = gemm();
    SocConfig real = cacheConfig();
    SocConfig inf = cacheConfig();
    inf.infiniteBandwidth = true;
    SocConfig perfect = cacheConfig();
    perfect.perfectMemory = true;

    Tick tReal = runDesign(real, p.trace, p.dddg).totalTicks;
    Tick tInf = runDesign(inf, p.trace, p.dddg).totalTicks;
    Tick tPerfect = runDesign(perfect, p.trace, p.dddg).totalTicks;
    EXPECT_LE(tPerfect, tInf);
    EXPECT_LE(tInf, tReal);
}

TEST(SocEnergy, ComponentsArePositiveAndConsistent)
{
    const auto &p = stencil();
    SocResults r = runDesign(dmaBaseline(), p.trace, p.dddg);
    EXPECT_GT(r.dynamicPj, 0.0);
    EXPECT_GT(r.leakagePj, 0.0);
    EXPECT_NEAR(r.energyPj, r.dynamicPj + r.leakagePj, 1e-6);
    EXPECT_GT(r.avgPowerMw, 0.0);
    EXPECT_NEAR(r.edp, r.energyPj * 1e-12 * r.totalSeconds(),
                r.edp * 1e-9);
}

TEST(SocEnergy, MoreLanesMorePower)
{
    const auto &p = gemm();
    SocConfig few = dmaBaseline();
    few.lanes = 1;
    SocConfig many = dmaBaseline();
    many.lanes = 16;

    SocResults rf = runDesign(few, p.trace, p.dddg);
    SocResults rm = runDesign(many, p.trace, p.dddg);
    EXPECT_GT(rm.avgPowerMw, rf.avgPowerMw);
}

TEST(SocEnergy, CacheCostsMorePowerThanSpadAtSamePerformanceClass)
{
    const auto &p = gemm();
    SocResults dmaR = runDesign(dmaBaseline(), p.trace, p.dddg);
    SocResults cacheR = runDesign(cacheConfig(), p.trace, p.dddg);
    // gemm: cache can approach DMA performance but pays tag/TLB
    // energy (paper Figure 8c).
    EXPECT_GT(cacheR.avgPowerMw, dmaR.avgPowerMw * 0.8);
}

TEST(SocRun, IsOneShot)
{
    const auto &p = stencil();
    Soc soc(dmaBaseline(), p.trace, p.dddg);
    soc.run();
    EXPECT_DEATH((void)soc.run(), "one-shot");
}

} // namespace
} // namespace genie
