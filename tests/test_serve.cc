/**
 * @file
 * Genie-Serve tests: the durable self-verifying ResultStore, the
 * genie-serve-1 protocol, the worker exit-code contract, and the
 * daemon's crash paths — worker SIGKILL with retry and quarantine,
 * timeout SIGTERM-to-SIGKILL escalation, backpressure, spool
 * recovery, and graceful drain.
 *
 * The daemon tests run a real Server (poll loop in a thread, real
 * Unix-domain socket, real forked workers) with the workerCommand
 * test hook substituting `/bin/sh -c ...` for the simulator, so
 * crash and timeout behavior is exercised in milliseconds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "core/fingerprint.hh"
#include "dse/journal.hh"
#include "dse/result_store.hh"
#include "dse/sweep_engine.hh"
#include "scope/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace genie
{
namespace
{

// ---------------------------------------------------------------
// Helpers

std::string
testTag()
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string(info->test_suite_name()) + "_" + info->name();
}

/** Fresh per-test scratch directory. */
std::string
scratchDir()
{
    std::string dir = ::testing::TempDir() + "genie_" + testTag();
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

SocResults
sampleResults(double seed)
{
    SocResults r;
    r.totalTicks = static_cast<Tick>(1000 + seed * 7);
    r.accelCycles = static_cast<Cycles>(100 + seed * 3);
    r.energyPj = 1.5 * seed + 0.125;
    r.avgPowerMw = seed / 3.0; // non-terminating binary fraction
    r.edp = seed * 1e-9;
    r.dmaBytes = static_cast<std::uint64_t>(seed) * 64;
    return r;
}

JobDescriptor
sampleJob()
{
    JobDescriptor job;
    job.workload = "stencil-stencil2d";
    job.space = "single";
    job.threads = 1;
    return job;
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Flip one payload byte of a store record (line 2, mid-line). */
void
corruptRecord(const std::string &path)
{
    std::string text = readTextFile(path);
    std::size_t nl = text.find('\n');
    ASSERT_NE(nl, std::string::npos);
    ASSERT_LT(nl + 10, text.size());
    text[nl + 10] ^= 0x20;
    writeTextFile(path, text);
}

// ---------------------------------------------------------------
// CRC32 and the record format

TEST(Crc32, MatchesTheIeeeCheckVector)
{
    // The canonical CRC-32 check value: crc("123456789").
    EXPECT_EQ(crc32Ieee("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32Ieee("", 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::string payload = "{\"key\": \"lanes=4\", \"x\": 1.25}";
    std::uint32_t clean = crc32Ieee(payload.data(), payload.size());
    payload[5] ^= 1;
    EXPECT_NE(crc32Ieee(payload.data(), payload.size()), clean);
}

// ---------------------------------------------------------------
// ResultStore

TEST(ResultStore, RoundTripsResultsBitExactly)
{
    const std::string dir = scratchDir();
    ResultStore store;
    store.open(dir);
    SocResults in = sampleResults(41.0);
    store.insert("lanes=4", 0x1234abcdu, in);

    SocResults out;
    ASSERT_TRUE(store.lookup("lanes=4", out));
    EXPECT_EQ(resultsJson(out), resultsJson(in))
        << "store records must round-trip doubles bit-exactly";
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().inserts, 1u);

    SocResults miss;
    EXPECT_FALSE(store.lookup("lanes=8", miss));
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(ResultStore, SurvivesReopen)
{
    const std::string dir = scratchDir();
    {
        ResultStore store;
        store.open(dir);
        for (int i = 0; i < 3; ++i) {
            store.insert(format("key-%d", i), 0x1000u + i,
                         sampleResults(i + 1));
        }
    }
    ResultStore reopened;
    reopened.open(dir);
    EXPECT_EQ(reopened.stats().reloaded, 3u);
    SocResults out;
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(reopened.lookup(format("key-%d", i), out))
            << "records must survive a process restart";
    }
}

TEST(ResultStore, QuarantinesCorruptRecordOnLookup)
{
    const std::string dir = scratchDir();
    ResultStore store;
    store.open(dir);
    store.insert("poisoned", 0xdeadu, sampleResults(7.0));

    // Flip one payload byte behind the store's back: the CRC check
    // must catch it, quarantine the file, and report a miss — never
    // return damaged results.
    std::string rec;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".rec")
            rec = e.path().string();
    }
    ASSERT_FALSE(rec.empty());
    corruptRecord(rec);

    SocResults out;
    EXPECT_FALSE(store.lookup("poisoned", out));
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(rec));
    EXPECT_FALSE(fs::is_empty(dir + "/" +
                              ResultStore::quarantineSubdir()))
        << "the corrupt record must be kept for post-mortem";
}

TEST(ResultStore, ReopenQuarantinesPartialRecordAndSweepsTmp)
{
    const std::string dir = scratchDir();
    {
        ResultStore store;
        store.open(dir);
        store.insert("whole", 0x77u, sampleResults(3.0));
    }
    // A daemon killed mid-insert leaves either a .tmp (never
    // renamed) or, with external interference, a truncated record.
    writeTextFile(dir + "/deadbeef00000000.rec",
                  "{\"schema\": \"genie-store-1\", \"crc32\": "
                  "\"00000000\"}\n");
    writeTextFile(dir + "/cafe000000000000.rec.tmp", "partial");

    ResultStore reopened;
    reopened.open(dir);
    EXPECT_EQ(reopened.stats().reloaded, 1u);
    EXPECT_EQ(reopened.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(dir + "/cafe000000000000.rec.tmp"))
        << "killed writers' .tmp debris must be swept on open";
    SocResults out;
    EXPECT_TRUE(reopened.lookup("whole", out))
        << "intact records must be unaffected by their corrupt "
           "neighbors";
}

TEST(ResultStore, EvictsLeastRecentlyUsedUnderBudget)
{
    const std::string dir = scratchDir();
    ResultStore store;
    store.open(dir, 1); // absurdly tight: at most one record survives
    store.insert("first", 0x1u, sampleResults(1.0));
    store.insert("second", 0x2u, sampleResults(2.0));
    EXPECT_GE(store.stats().evictions, 1u);
    SocResults out;
    EXPECT_FALSE(store.lookup("first", out))
        << "the older record is the eviction victim";
    EXPECT_TRUE(store.lookup("second", out))
        << "the newest record is always retained, even over budget";
}

TEST(ResultStore, InsertIsFirstWriterWins)
{
    const std::string dir = scratchDir();
    ResultStore store;
    store.open(dir);
    SocResults a = sampleResults(1.0);
    store.insert("k", 0x9u, a);
    store.insert("k", 0x9u, sampleResults(2.0));
    EXPECT_EQ(store.stats().inserts, 1u);
    SocResults out;
    ASSERT_TRUE(store.lookup("k", out));
    EXPECT_EQ(resultsJson(out), resultsJson(a));
}

// ---------------------------------------------------------------
// SweepEngine + store integration

struct ServeSpace
{
    ServeSpace()
        : trace(makeWorkload("stencil-stencil2d")->build().trace),
          dddg(trace)
    {
        for (unsigned lanes : {1u, 4u}) {
            SocConfig c;
            c.lanes = lanes;
            configs.push_back(c);
        }
    }

    Trace trace;
    Dddg dddg;
    std::vector<SocConfig> configs;
};

ServeSpace &
serveSpace()
{
    static ServeSpace s;
    return s;
}

TEST(SweepEngineStore, WritesThroughAndReplaysAcrossEngines)
{
    const auto &s = serveSpace();
    const std::string dir = scratchDir();

    ResultStore store;
    store.open(dir);
    std::vector<DesignPoint> cold;
    {
        SweepOptions options;
        options.store = &store;
        options.threads = 1;
        SweepEngine engine(std::move(options));
        cold = engine.run(s.configs, s.trace, s.dddg);
        EXPECT_EQ(engine.progress().done, s.configs.size());
        EXPECT_EQ(store.stats().inserts, s.configs.size());
    }
    // A different engine, cold in-memory cache, same store: every
    // point replays from disk — the killed-worker retry path.
    {
        SweepOptions options;
        options.store = &store;
        options.threads = 1;
        SweepEngine engine(std::move(options));
        auto warm = engine.run(s.configs, s.trace, s.dddg);
        EXPECT_EQ(engine.progress().done, 0u);
        EXPECT_EQ(engine.progress().cached, s.configs.size());
        EXPECT_EQ(engine.storeHits(), s.configs.size());
        ASSERT_EQ(warm.size(), cold.size());
        for (std::size_t i = 0; i < warm.size(); ++i) {
            EXPECT_EQ(resultsJson(warm[i].results),
                      resultsJson(cold[i].results))
                << "store-replayed results must be byte-identical";
        }
    }
}

TEST(SweepEngineStore, StopRequestedDrainsBeforeDealing)
{
    const auto &s = serveSpace();
    std::atomic<bool> stop{true};
    SweepOptions options;
    options.stopRequested = &stop;
    options.threads = 1;
    SweepEngine engine(std::move(options));
    engine.run(s.configs, s.trace, s.dddg);
    EXPECT_TRUE(engine.interrupted());
    EXPECT_EQ(engine.progress().done, 0u)
        << "a pre-set drain flag must stop before any fresh point";
}

// ---------------------------------------------------------------
// Protocol

TEST(ServeProtocol, JobLineRoundTrips)
{
    JobDescriptor job = sampleJob();
    job.id = "j-000042";
    job.space = "fig6";
    job.filter = "lanes=1,4";
    job.config = {"lanes=4", "spad-partitions=2"};
    job.threads = 3;

    JobDescriptor back;
    std::string error;
    ASSERT_TRUE(parseJobLine(jobJsonLine(job), back, error)) << error;
    EXPECT_EQ(back.id, job.id);
    EXPECT_EQ(back.workload, job.workload);
    EXPECT_EQ(back.space, job.space);
    EXPECT_EQ(back.filter, job.filter);
    EXPECT_EQ(back.config, job.config);
    EXPECT_EQ(back.threads, job.threads);
}

TEST(ServeProtocol, JobLineRejectsGarbage)
{
    JobDescriptor out;
    std::string error;
    EXPECT_FALSE(parseJobLine("not json", out, error));
    EXPECT_FALSE(parseJobLine("{\"workload\": \"x\"}", out, error))
        << "a spool line without the schema tag must be rejected";
    EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, ParsesSubmitRequests)
{
    JobDescriptor job = sampleJob();
    job.filter = "lanes=1";
    job.config = {"lanes=1"};
    ServeRequest req = parseServeRequest(serveSubmitLine(job));
    ASSERT_EQ(req.op, ServeOp::Submit) << req.error;
    EXPECT_EQ(req.job.workload, job.workload);
    EXPECT_EQ(req.job.space, job.space);
    EXPECT_EQ(req.job.filter, job.filter);
    EXPECT_EQ(req.job.config, job.config);
}

TEST(ServeProtocol, ParsesJobOpsAndRejectsBadInput)
{
    ServeRequest req =
        parseServeRequest(serveJobOpLine("wait", "j-000001"));
    EXPECT_EQ(req.op, ServeOp::Wait);
    EXPECT_EQ(req.jobId, "j-000001");

    EXPECT_EQ(parseServeRequest(serveSimpleOpLine("stats")).op,
              ServeOp::Stats);
    EXPECT_EQ(parseServeRequest(serveSimpleOpLine("drain")).op,
              ServeOp::Drain);

    EXPECT_EQ(parseServeRequest("{\"op\": \"status\"}").op,
              ServeOp::Invalid)
        << "job ops without a job id must not parse";
    EXPECT_EQ(parseServeRequest("{{{").op, ServeOp::Invalid);
    EXPECT_EQ(parseServeRequest("{\"op\": \"launch\"}").op,
              ServeOp::Invalid);
    EXPECT_FALSE(parseServeRequest("{{{").error.empty());
}

TEST(ServeProtocol, StatusLinesAreValidJson)
{
    std::string line = serveStatusLine(
        "j-000009", ServeJobState::Quarantined, 3,
        "quarantined after 3 attempts; last: \"signal 9\"");
    JsonParseResult parsed = parseJson(line);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.get("state")->string(), "quarantined");
    EXPECT_EQ(parsed.value.get("attempts")->number(), 3.0);
}

// ---------------------------------------------------------------
// Worker exit-code contract (in-process)

TEST(ServeWorker, RunsAJobAndWritesDurableResults)
{
    const std::string dir = scratchDir();
    JobDescriptor job = sampleJob();
    job.id = "j-000001";
    writeTextFile(dir + "/job", jobJsonLine(job));

    ServeWorkerArgs args;
    args.jobPath = dir + "/job";
    args.outPath = dir + "/out";
    args.errPath = dir + "/err";
    args.storeDir = dir + "/store";
    EXPECT_EQ(runServeWorker(args), serveWorkerDone);
    std::string results = readTextFile(dir + "/out");
    EXPECT_NE(results.find("genie-sweep-results-1"),
              std::string::npos);

    ResultStore store;
    store.open(dir + "/store");
    EXPECT_EQ(store.stats().reloaded, 1u)
        << "the worker must write completed points through the "
           "store";
}

TEST(ServeWorker, CorruptStoreRecordIsResimulatedIdentically)
{
    const std::string dir = scratchDir();
    JobDescriptor job = sampleJob();
    writeTextFile(dir + "/job", jobJsonLine(job));

    ServeWorkerArgs args;
    args.jobPath = dir + "/job";
    args.outPath = dir + "/out1";
    args.errPath = dir + "/err";
    args.storeDir = dir + "/store";
    ASSERT_EQ(runServeWorker(args), serveWorkerDone);

    std::string rec;
    for (const auto &e : fs::directory_iterator(dir + "/store")) {
        if (e.path().extension() == ".rec")
            rec = e.path().string();
    }
    ASSERT_FALSE(rec.empty());
    corruptRecord(rec);

    args.outPath = dir + "/out2";
    ASSERT_EQ(runServeWorker(args), serveWorkerDone);
    EXPECT_EQ(readTextFile(dir + "/out2"),
              readTextFile(dir + "/out1"))
        << "a quarantined record must be re-simulated to "
           "byte-identical results";
    EXPECT_TRUE(fs::exists(dir + "/store/quarantine"));
    EXPECT_FALSE(fs::is_empty(dir + "/store/quarantine"));
}

TEST(ServeWorker, PresetStopCheckpointsAndExitsInterrupted)
{
    const std::string dir = scratchDir();
    writeTextFile(dir + "/job", jobJsonLine(sampleJob()));
    std::atomic<bool> stop{true};

    ServeWorkerArgs args;
    args.jobPath = dir + "/job";
    args.outPath = dir + "/out";
    args.errPath = dir + "/err";
    args.stopRequested = &stop;
    EXPECT_EQ(runServeWorker(args), serveWorkerInterrupted);
    EXPECT_FALSE(fs::exists(dir + "/out"))
        << "an interrupted attempt must not publish results";
}

TEST(ServeWorker, MalformedJobFileExitsUserError)
{
    const std::string dir = scratchDir();
    writeTextFile(dir + "/job", "this is not a job\n");
    ServeWorkerArgs args;
    args.jobPath = dir + "/job";
    args.outPath = dir + "/out";
    args.errPath = dir + "/err";
    EXPECT_EQ(runServeWorker(args), serveWorkerUserError);
    EXPECT_FALSE(readTextFile(dir + "/err").empty())
        << "the worker must leave diagnostics for the daemon";
}

// ---------------------------------------------------------------
// Daemon crash paths (real Server, real forked workers)

/** A live daemon on a scratch socket, its poll loop in a thread. */
class TestDaemon
{
  public:
    explicit TestDaemon(std::function<void(ServeOptions &)> tweak = {},
                        bool freshState = true)
    {
        const std::string base =
            ::testing::TempDir() + "gs_" + testTag();
        opts.socketPath = base + ".sock";
        opts.stateDir = base + ".state";
        opts.workers = 1;
        opts.backoffMs = 10;
        opts.drainFlag = &drain;
        if (tweak)
            tweak(opts);
        if (freshState)
            fs::remove_all(opts.stateDir);
        server = std::make_unique<Server>(opts);
        server->start();
        loop = std::thread([this] { exitCode = server->run(); });
    }

    ~TestDaemon() { stop(); }

    /** Drain and join; returns run()'s exit code. */
    int
    stop()
    {
        if (loop.joinable()) {
            drain.store(true);
            loop.join();
        }
        return exitCode;
    }

    const ServeCounters &counters() const
    {
        return server->counters();
    }

    ServeOptions opts;
    std::atomic<bool> drain{false};
    std::unique_ptr<Server> server;
    std::thread loop;
    int exitCode = -1;
};

/** A protocol client: connects, verifies the greeting, trades
 * request lines for response lines. */
class TestClient
{
  public:
    explicit TestClient(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        EXPECT_LT(path.size(), sizeof(addr.sun_path));
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        // The daemon may still be binding; retry briefly.
        for (int i = 0; i < 100; ++i) {
            if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        std::string greeting = readLine();
        EXPECT_NE(greeting.find(serveSchemaName()),
                  std::string::npos);
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &line)
    {
        ASSERT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(line.size()));
    }

    std::string
    readLine()
    {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                return "";
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** Send one request line, return the parsed response. */
    JsonValue
    transact(const std::string &request)
    {
        send(request);
        JsonParseResult parsed = parseJson(readLine());
        EXPECT_TRUE(parsed.ok) << parsed.error;
        return parsed.value;
    }

    static std::string
    field(const JsonValue &doc, const char *key)
    {
        const JsonValue *v = doc.get(key);
        return v && v->isString() ? v->string() : "";
    }

  private:
    int fd = -1;
    std::string buf;
};

TEST(ServeDaemon, CrashedWorkerRetriesThenQuarantines)
{
    TestDaemon daemon([](ServeOptions &o) {
        o.workerCommand = "kill -9 $$";
        o.maxAttempts = 3;
    });
    TestClient client(daemon.opts.socketPath);

    JsonValue sub = client.transact(serveSubmitLine(sampleJob()));
    std::string id = TestClient::field(sub, "job");
    ASSERT_FALSE(id.empty());

    JsonValue done = client.transact(serveJobOpLine("wait", id));
    EXPECT_EQ(TestClient::field(done, "state"), "quarantined")
        << "a job that crashes on every attempt is poison";
    EXPECT_NE(TestClient::field(done, "error").find("signal 9"),
              std::string::npos);
    daemon.stop();
    EXPECT_EQ(daemon.counters().crashes, 3u);
    EXPECT_EQ(daemon.counters().retries, 2u)
        << "each crash short of the cap must re-enqueue the job";
    EXPECT_EQ(daemon.counters().quarantined, 1u);
}

TEST(ServeDaemon, TimeoutEscalatesTermThenKill)
{
    TestDaemon daemon([](ServeOptions &o) {
        // The worker ignores SIGTERM, so only the SIGKILL
        // escalation can end it.
        // Redirect the sleep away from the inherited stdio so the
        // orphan it leaves behind cannot hold the test harness's
        // output pipe open for the full 30 s.
        o.workerCommand = "trap '' TERM; sleep 30 >/dev/null 2>&1";
        o.maxAttempts = 1;
        o.timeoutMs = 100;
        o.termGraceMs = 100;
    });
    TestClient client(daemon.opts.socketPath);

    JsonValue sub = client.transact(serveSubmitLine(sampleJob()));
    JsonValue done = client.transact(
        serveJobOpLine("wait", TestClient::field(sub, "job")));
    EXPECT_EQ(TestClient::field(done, "state"), "quarantined");
    EXPECT_NE(TestClient::field(done, "error")
                  .find("SIGTERM ignored, escalated to SIGKILL"),
              std::string::npos)
        << "the escalation order must be TERM first, then KILL";
    daemon.stop();
    EXPECT_EQ(daemon.counters().timeouts, 1u);
}

TEST(ServeDaemon, TimeoutTermSufficesForCooperativeWorkers)
{
    TestDaemon daemon([](ServeOptions &o) {
        o.workerCommand = "sleep 30 >/dev/null 2>&1";
        o.maxAttempts = 1;
        o.timeoutMs = 100;
        o.termGraceMs = 5000;
    });
    TestClient client(daemon.opts.socketPath);

    JsonValue sub = client.transact(serveSubmitLine(sampleJob()));
    JsonValue done = client.transact(
        serveJobOpLine("wait", TestClient::field(sub, "job")));
    EXPECT_EQ(TestClient::field(done, "state"), "quarantined");
    EXPECT_NE(TestClient::field(done, "error").find("timeout"),
              std::string::npos);
    daemon.stop();
    EXPECT_EQ(daemon.counters().timeouts, 1u);
}

TEST(ServeDaemon, BackpressureRefusesBusyWithoutDroppingAccepted)
{
    TestDaemon daemon([](ServeOptions &o) {
        o.workerCommand = "sleep 0.4";
        o.workers = 1;
        o.maxQueue = 1;
    });
    TestClient client(daemon.opts.socketPath);

    JsonValue first = client.transact(serveSubmitLine(sampleJob()));
    std::string id1 = TestClient::field(first, "job");
    ASSERT_FALSE(id1.empty());
    // Wait until the only worker slot is occupied so admission
    // decisions below are deterministic.
    for (int i = 0; i < 200; ++i) {
        JsonValue st =
            client.transact(serveJobOpLine("status", id1));
        if (TestClient::field(st, "state") == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    JsonValue second = client.transact(serveSubmitLine(sampleJob()));
    std::string id2 = TestClient::field(second, "job");
    ASSERT_FALSE(id2.empty()) << "the queue has room for one";

    JsonValue third = client.transact(serveSubmitLine(sampleJob()));
    EXPECT_EQ(TestClient::field(third, "error"), "busy")
        << "a full queue must refuse, not buffer without bound";

    // Both accepted jobs still complete.
    JsonValue done1 = client.transact(serveJobOpLine("wait", id1));
    EXPECT_EQ(TestClient::field(done1, "state"), "done");
    JsonValue done2 = client.transact(serveJobOpLine("wait", id2));
    EXPECT_EQ(TestClient::field(done2, "state"), "done");
    daemon.stop();
    EXPECT_EQ(daemon.counters().busy, 1u);
    EXPECT_EQ(daemon.counters().completed, 2u);
}

TEST(ServeDaemon, RecoversSpooledJobsAfterRestart)
{
    const std::string base =
        ::testing::TempDir() + "gs_" + testTag();
    fs::remove_all(base + ".state");
    fs::create_directories(base + ".state/spool");
    // A daemon died holding one accepted-but-unfinished job: only
    // its durable spool entry remains.
    JobDescriptor job = sampleJob();
    job.id = "j-000007";
    writeTextFile(base + ".state/spool/j-000007.job",
                  jobJsonLine(job));

    TestDaemon daemon(
        [&](ServeOptions &o) {
            o.socketPath = base + ".sock";
            o.stateDir = base + ".state";
            o.workerCommand = "true";
        },
        /*freshState=*/false);
    TestClient client(daemon.opts.socketPath);
    JsonValue done =
        client.transact(serveJobOpLine("wait", "j-000007"));
    EXPECT_EQ(TestClient::field(done, "state"), "done")
        << "spooled jobs must re-enqueue and finish after restart";

    // The restarted daemon must also never reuse a recovered id.
    JsonValue sub = client.transact(serveSubmitLine(sampleJob()));
    EXPECT_EQ(TestClient::field(sub, "job"), "j-000008");
    daemon.stop();
    EXPECT_EQ(daemon.counters().recovered, 1u);
}

TEST(ServeDaemon, RejectsInvalidSubmissionsUpFront)
{
    TestDaemon daemon;
    TestClient client(daemon.opts.socketPath);

    JobDescriptor bad = sampleJob();
    bad.workload = "no-such-workload";
    JsonValue resp = client.transact(serveSubmitLine(bad));
    EXPECT_NE(TestClient::field(resp, "error").find("unknown"),
              std::string::npos);

    JsonValue unknown =
        client.transact(serveJobOpLine("status", "j-999999"));
    EXPECT_NE(TestClient::field(unknown, "error").find("unknown"),
              std::string::npos);
    EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, DrainFinishesRunningWorkAndExitsZero)
{
    TestDaemon daemon([](ServeOptions &o) {
        o.workerCommand = "sleep 0.2";
    });
    TestClient client(daemon.opts.socketPath);
    JsonValue sub = client.transact(serveSubmitLine(sampleJob()));
    std::string id = TestClient::field(sub, "job");
    ASSERT_FALSE(id.empty());
    for (int i = 0; i < 200; ++i) {
        JsonValue st = client.transact(serveJobOpLine("status", id));
        if (TestClient::field(st, "state") == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(daemon.stop(), 0)
        << "a drain must wait for the running worker and exit 0";
    EXPECT_EQ(daemon.counters().completed, 1u);
}

} // namespace
} // namespace genie
