/**
 * @file
 * Genie-Scope tests: the span-DAG/critical-path analysis library and
 * the cross-run tooling it feeds.
 *
 * Four layers:
 *  - the JSON reader in isolation (shape, lexeme preservation,
 *    position-annotated errors);
 *  - glob rules and tolerance-aware diffing (genie_diff semantics:
 *    removed fails, added warns, first matching rule wins);
 *  - flow well-formedness under a full traced SoC run (every flow
 *    link joins two closed spans, from < to, at most one causal
 *    predecessor per span — the DAG invariant criticalPath() rests
 *    on), plus the passivity guarantee: flows enabled changes no
 *    simulated result byte;
 *  - blame determinism: byte-identical reports across repeated runs
 *    and across runs executed on different host threads, and the
 *    >= 95% coverage bar on the paper's Fig. 5 stencil design point.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/dddg.hh"
#include "core/report.hh"
#include "core/soc.hh"
#include "scope/diff.hh"
#include "scope/json.hh"
#include "scope/report.hh"
#include "scope/span_dag.hh"
#include "trace/tracer.hh"
#include "workloads/workload.hh"

namespace genie
{
namespace
{

// --- JSON reader ----------------------------------------------------

TEST(ScopeJson, ParsesScalarsContainersAndEscapes)
{
    auto r = parseJson(R"({
        "s": "a\tbA\"q\"",
        "n": -12.5e2,
        "t": true,
        "z": null,
        "arr": [1, 2, 3],
        "obj": {"k": 0.25}
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const JsonValue &v = r.value;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.get("s")->string(), "a\tbA\"q\"");
    EXPECT_DOUBLE_EQ(v.get("n")->number(), -1250.0);
    EXPECT_EQ(v.get("n")->numberLexeme(), "-12.5e2");
    EXPECT_TRUE(v.get("t")->boolean());
    EXPECT_TRUE(v.get("z")->isNull());
    ASSERT_EQ(v.get("arr")->array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.get("arr")->array()[2].number(), 3.0);
    EXPECT_DOUBLE_EQ(v.get("obj")->get("k")->number(), 0.25);
    EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(ScopeJson, MembersKeepFileOrderAndLastDuplicateWins)
{
    auto r = parseJson(R"({"b": 1, "a": 2, "b": 3})");
    ASSERT_TRUE(r.ok) << r.error;
    const JsonMembers &m = r.value.members();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].first, "b");
    EXPECT_EQ(m[1].first, "a");
    EXPECT_DOUBLE_EQ(r.value.get("b")->number(), 3.0);
}

TEST(ScopeJson, ErrorsCarryPositionAndRejectTrailingJunk)
{
    auto bad = parseJson("{\n  \"k\": nul\n}");
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.errorLine, 2u);

    auto junk = parseJson("{} trailing");
    EXPECT_FALSE(junk.ok);

    auto badEscape = parseJson(R"({"k": "\q"})");
    EXPECT_FALSE(badEscape.ok);

    auto badNumber = parseJson(R"({"k": 1.})");
    EXPECT_FALSE(badNumber.ok);

    auto io = parseJsonFile("/nonexistent/genie-scope.json");
    EXPECT_FALSE(io.ok);
    EXPECT_FALSE(io.error.empty());
}

// --- glob rules and diffing -----------------------------------------

TEST(ScopeDiff, GlobMatchesAcrossDotsAndSingleChars)
{
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
    EXPECT_TRUE(globMatch("*wall_ms*", "sweep.wall_ms"));
    EXPECT_TRUE(globMatch("benches[*].sim.total_us",
                          "benches[3].sim.total_us"));
    EXPECT_TRUE(globMatch("?.x", "a.x"));
    EXPECT_FALSE(globMatch("?.x", "ab.x"));
    EXPECT_FALSE(globMatch("*.host.*", "hostless"));
}

TEST(ScopeDiff, ParsesCliRuleSpecs)
{
    DiffRule rule;
    std::string err;
    ASSERT_TRUE(parseDiffRule("benches[*].meps=5%", rule, err));
    EXPECT_EQ(rule.glob, "benches[*].meps");
    EXPECT_FALSE(rule.ignore);
    EXPECT_DOUBLE_EQ(rule.tolerancePct, 5.0);

    ASSERT_TRUE(parseDiffRule("*wall_ms*=ignore", rule, err));
    EXPECT_TRUE(rule.ignore);

    EXPECT_FALSE(parseDiffRule("no-equals-sign", rule, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseDiffRule("glob=not-a-number", rule, err));
}

JsonValue
parsed(const std::string &text)
{
    auto r = parseJson(text);
    EXPECT_TRUE(r.ok) << r.error;
    return r.value;
}

TEST(ScopeDiff, RemovedFailsAddedWarnsAndStrictPromotes)
{
    JsonValue a = parsed(R"({"kept": 1, "gone": 2})");
    JsonValue b = parsed(R"({"kept": 1, "fresh": 3})");

    DiffOptions opts;
    DiffResult r = diffJson(a, b, opts);
    EXPECT_FALSE(r.clean());
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].kind, DiffKind::Removed);
    EXPECT_EQ(r.failures[0].path, "gone");
    ASSERT_EQ(r.warnings.size(), 1u);
    EXPECT_EQ(r.warnings[0].kind, DiffKind::Added);
    EXPECT_EQ(r.warnings[0].path, "fresh");

    opts.strict = true;
    DiffResult strict = diffJson(a, b, opts);
    EXPECT_EQ(strict.failures.size(), 2u);
    EXPECT_TRUE(strict.warnings.empty());
}

TEST(ScopeDiff, ToleranceAndIgnoreRulesJudgeByFirstMatch)
{
    JsonValue a = parsed(
        R"({"sim": {"total_us": 100.0}, "host": {"wall_ms": 5.0}})");
    JsonValue b = parsed(
        R"({"sim": {"total_us": 101.0}, "host": {"wall_ms": 9.0}})");

    DiffOptions opts;
    opts.rules.push_back({"*wall_ms*", true, 0.0});
    opts.rules.push_back({"sim.*", false, 2.0});

    DiffResult r = diffJson(a, b, opts);
    EXPECT_TRUE(r.clean());
    ASSERT_EQ(r.tolerated.size(), 1u);
    EXPECT_EQ(r.tolerated[0].path, "sim.total_us");
    EXPECT_NEAR(r.tolerated[0].relDeltaPct, 100.0 / 101.0, 0.01);
    EXPECT_EQ(r.ignoredLeaves, 1u);
    EXPECT_EQ(r.comparedLeaves, 1u);

    // A tighter first rule wins over the permissive later one.
    opts.rules.insert(opts.rules.begin(), {"sim.total_us", false, 0.0});
    DiffResult exact = diffJson(a, b, opts);
    ASSERT_EQ(exact.failures.size(), 1u);
    EXPECT_EQ(exact.failures[0].kind, DiffKind::Changed);
}

TEST(ScopeDiff, TypeChangesFailAndDefaultRulesDropHostTime)
{
    JsonValue a = parsed(R"({"v": 1})");
    JsonValue b = parsed(R"({"v": "1"})");
    DiffResult r = diffJson(a, b, DiffOptions{});
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].kind, DiffKind::TypeChanged);

    DiffOptions opts;
    opts.rules = defaultGenieDiffRules();
    JsonValue base = parsed(R"({"wall_ms": 5.0, "meps": 2.0,
                                "events": 100})");
    JsonValue cand = parsed(R"({"wall_ms": 50.0, "meps": 7.0,
                                "events": 100})");
    DiffResult host = diffJson(base, cand, opts);
    EXPECT_TRUE(host.clean());
    EXPECT_EQ(host.ignoredLeaves, 2u);

    std::string report = renderDiffReport(host, "base", "cand");
    EXPECT_NE(report.find("PASS"), std::string::npos);
}

// --- flow well-formedness under a full SoC run ----------------------

SocConfig
fig5Config()
{
    SocConfig cfg;
    cfg.memType = MemInterface::ScratchpadDma;
    cfg.lanes = 4;
    cfg.spadPartitions = 4;
    cfg.dma.pipelined = true;
    cfg.tracing.enabled = true;
    return cfg;
}

TEST(ScopeFlows, LinksJoinClosedSpansAndFormADag)
{
    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);
    Soc soc(fig5Config(), trace, dddg);
    soc.run();

    const Tracer *t = soc.tracer();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->openSpans(), 0u);

    // Index recorded spans by id.
    std::vector<SpanView> views = t->spanViews();
    ASSERT_FALSE(views.empty());
    std::vector<TraceSpanId> incoming;
    TraceSpanId maxId = 0;
    for (const auto &v : views)
        maxId = std::max(maxId, v.id);
    incoming.assign(static_cast<std::size_t>(maxId) + 1, 0);

    const auto &flows = t->flowLinks();
    ASSERT_FALSE(flows.empty());
    for (const auto &f : flows) {
        // Both ends name recorded spans and the edge points forward
        // in record order — the DAG-by-construction invariant.
        EXPECT_GT(f.from, 0u);
        EXPECT_LT(f.from, f.to);
        EXPECT_LE(f.to, maxId);
        // At most one causal predecessor per span.
        EXPECT_EQ(incoming[static_cast<std::size_t>(f.to)], 0u);
        incoming[static_cast<std::size_t>(f.to)] = f.from;
    }

    // The emitted Chrome JSON (spans + ph:"s"/"f" flow events) is a
    // document our own reader accepts.
    std::ostringstream js;
    t->writeChromeJson(js);
    auto chrome = parseJson(js.str());
    ASSERT_TRUE(chrome.ok) << chrome.error;
    ASSERT_NE(chrome.value.get("traceEvents"), nullptr);
    EXPECT_GE(chrome.value.get("traceEvents")->array().size(),
              views.size());
}

TEST(ScopeFlows, TracingWithFlowsIsPassive)
{
    Trace trace = makeWorkload("stencil-stencil2d")->build().trace;
    Dddg dddg(trace);

    SocConfig traced = fig5Config();
    SocConfig untraced = fig5Config();
    untraced.tracing.enabled = false;

    Soc a(traced, trace, dddg);
    Soc b(untraced, trace, dddg);
    SocResults ra = a.run();
    SocResults rb = b.run();

    // Render both results under the same config echo (the record
    // line deliberately echoes trace=1, which is a config fact, not
    // a result) — every simulated-result byte must match.
    std::ostringstream osA, osB;
    printRecord(osA, untraced, ra);
    printRecord(osB, untraced, rb);
    EXPECT_EQ(osA.str(), osB.str());
}

// --- critical path and blame ----------------------------------------

std::string
blameReportFor(const std::string &workload, const SocConfig &cfg,
               BlameReport *blameOut = nullptr)
{
    Trace trace = makeWorkload(workload)->build().trace;
    Dddg dddg(trace);
    Soc soc(cfg, trace, dddg);
    SocResults results = soc.run();

    const Tracer *t = soc.tracer();
    EXPECT_NE(t, nullptr);
    SpanDag dag = buildSpanDag(*t);
    BlameReport blame = genie::blame(dag);
    if (blameOut)
        *blameOut = blame;

    RunReportInput input;
    input.title = workload;
    input.configLine = cfg.describe();
    input.results = &results;
    input.blame = &blame;
    input.dag = &dag;
    return renderRunReport(input);
}

TEST(ScopeBlame, CoversTheFig5DesignPointAndObeysInvariants)
{
    BlameReport blame;
    std::string report =
        blameReportFor("stencil-stencil2d", fig5Config(), &blame);

    // The acceptance bar: >= 95% of end-to-end ticks attributed.
    EXPECT_GE(blame.coverage, 0.95);
    EXPECT_GT(blame.endTick, 0u);
    EXPECT_LE(blame.coveredTicks, blame.endTick);

    // Segments are disjoint, in-bounds, and sum to coveredTicks;
    // every hop after the walk root is either a flow or inferred.
    ASSERT_FALSE(blame.path.empty());
    Tick sum = 0;
    Tick prevBegin = blame.endTick;
    for (const auto &seg : blame.path) {
        EXPECT_LT(seg.begin, seg.end);
        EXPECT_LE(seg.end, prevBegin);
        sum += seg.end - seg.begin;
        prevBegin = seg.begin;
    }
    EXPECT_EQ(sum, blame.coveredTicks);
    EXPECT_FALSE(blame.path.front().viaFlow); // the walk root
    EXPECT_EQ(blame.flowHops + blame.inferredHops,
              blame.path.size() - 1);
    EXPECT_GT(blame.flowHops, 0u);

    // Every category present, enum order, on-path <= union <= end.
    ASSERT_EQ(blame.byCategory.size(), numTraceCategories);
    for (std::size_t i = 0; i < numTraceCategories; ++i) {
        const BlameEntry &e = blame.byCategory[i];
        EXPECT_EQ(e.name, traceCategoryName(
                              static_cast<TraceCategory>(i)));
        EXPECT_LE(e.onPathTicks, e.totalTicks);
        EXPECT_LE(e.overlappedTicks, e.totalTicks);
        EXPECT_LE(e.onPathTicks, blame.endTick);
    }

    EXPECT_NE(report.find("# Genie-Scope run report:"),
              std::string::npos);
    EXPECT_NE(report.find("## Critical path"), std::string::npos);
    EXPECT_NE(report.find("## Component blame"), std::string::npos);
}

TEST(ScopeBlame, ReportsAreByteIdenticalAcrossRunsAndThreads)
{
    const std::string one =
        blameReportFor("stencil-stencil2d", fig5Config());
    const std::string two =
        blameReportFor("stencil-stencil2d", fig5Config());
    EXPECT_EQ(one, two);

    // The same analysis on worker threads (each Soc owns its queue
    // and tracer) must not perturb a byte either.
    std::string t1, t2;
    std::thread a(
        [&] { t1 = blameReportFor("stencil-stencil2d", fig5Config()); });
    std::thread b(
        [&] { t2 = blameReportFor("stencil-stencil2d", fig5Config()); });
    a.join();
    b.join();
    EXPECT_EQ(t1, one);
    EXPECT_EQ(t2, one);
}

TEST(ScopeBlame, EmptyTraceBlamesNothing)
{
    EventQueue eq;
    Tracer tracer(eq);
    BlameReport blame = blameRun(tracer);
    EXPECT_EQ(blame.endTick, 0u);
    EXPECT_EQ(blame.coveredTicks, 0u);
    EXPECT_DOUBLE_EQ(blame.coverage, 0.0);
    EXPECT_TRUE(blame.path.empty());
    EXPECT_EQ(topBlameCategory(blame), "-");
}

TEST(ScopeBlame, SpeedupFormattingAndTopCategory)
{
    EXPECT_EQ(formatSpeedup(1.842), "1.842x");
    EXPECT_EQ(formatSpeedup(0.0), "inf");

    BlameReport blame;
    blame.byCategory.push_back({"flush", 10, 10, 0, 1.0, 1});
    blame.byCategory.push_back({"dma", 30, 30, 0, 1.0, 1});
    blame.byCategory.push_back({"bus", 30, 40, 10, 1.0, 1});
    // Strictly-greater wins; ties keep the earlier (enum) entry.
    EXPECT_EQ(topBlameCategory(blame), "dma");
}

} // namespace
} // namespace genie
