/**
 * @file
 * Accelerator-model unit tests: the trace-builder DSL, DDDG
 * construction (register + memory dependences, critical path), and
 * the datapath scheduler (dataflow, lanes, waves, FU limits,
 * scratchpad conflicts, ready-bit stalls, per-lane miss stalls).
 */

#include <gtest/gtest.h>

#include "accel/datapath.hh"
#include "accel/dddg.hh"
#include "accel/trace.hh"
#include "sim/logging.hh"

namespace genie
{
namespace
{

constexpr Tick accelPeriod = 10000; // 100 MHz

TEST(TraceBuilder, EmitsOpsInProgramOrder)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId l = tb.load(a, 0, 4);
    NodeId c = tb.op(Opcode::IntAdd, {l});
    EXPECT_EQ(l, 0u);
    EXPECT_EQ(c, 1u);
    Trace t = tb.take();
    EXPECT_EQ(t.ops.size(), 2u);
    EXPECT_EQ(t.ops[1].deps.size(), 1u);
}

TEST(TraceBuilder, RejectsOutOfBoundsAccess)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    EXPECT_DEATH(tb.load(a, 64, 4), "out of bounds");
}

TEST(TraceBuilder, RejectsZeroSizedArray)
{
    TraceBuilder tb;
    EXPECT_THROW(tb.addArray("z", 0, 4, true, false), FatalError);
}

TEST(TraceBuilder, ReduceBuildsBalancedTree)
{
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    std::vector<NodeId> leaves;
    for (int i = 0; i < 8; ++i)
        leaves.push_back(tb.op(Opcode::Mov, {}));
    tb.reduce(Opcode::FpAdd, leaves);
    Trace t = tb.take();
    // 8 leaves + 7 internal adds.
    EXPECT_EQ(t.ops.size(), 15u);
    Dddg g(t);
    // Balanced tree depth: 3 adds above any leaf.
    EXPECT_EQ(g.criticalPathCycles(t),
              latencyOf(Opcode::Mov) + 3 * latencyOf(Opcode::FpAdd));
}

TEST(TraceBuilder, InputOutputAccounting)
{
    TraceBuilder tb;
    tb.addArray("in", 128, 4, true, false);
    tb.addArray("out", 64, 4, false, true);
    tb.addArray("both", 32, 4, true, true);
    tb.addArray("priv", 256, 4, false, false, true);
    Trace t = tb.peek();
    EXPECT_EQ(t.totalInputBytes(), 160u);
    EXPECT_EQ(t.totalOutputBytes(), 96u);
    EXPECT_EQ(t.totalArrayBytes(), 480u);
}

TEST(Dddg, InfersStoreToLoadDependence)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId v = tb.op(Opcode::IntAdd, {});
    NodeId s = tb.store(a, 16, 4, {v});
    NodeId l = tb.load(a, 16, 4);
    Trace t = tb.take();
    Dddg g(t);
    EXPECT_GE(g.numMemoryEdges(), 1u);
    bool found = false;
    for (NodeId c : g.children(s))
        found = found || c == l;
    EXPECT_TRUE(found);
}

TEST(Dddg, NoFalseDependenceBetweenDifferentAddresses)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId v = tb.op(Opcode::IntAdd, {});
    NodeId s = tb.store(a, 0, 4, {v});
    tb.load(a, 32, 4);
    Trace t = tb.take();
    Dddg g(t);
    EXPECT_TRUE(g.children(s).empty());
}

TEST(Dddg, DuplicateDepsCountOnce)
{
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId x = tb.op(Opcode::Mov, {});
    NodeId sq = tb.op(Opcode::FpMul, {x, x}); // x*x
    Trace t = tb.take();
    Dddg g(t);
    EXPECT_EQ(g.parents(sq), 1u);
    EXPECT_EQ(g.children(x).size(), 1u);
}

TEST(Dddg, LastWriterWins)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId s1 = tb.store(a, 0, 4, {});
    NodeId s2 = tb.store(a, 0, 4, {});
    NodeId l = tb.load(a, 0, 4);
    Trace t = tb.take();
    Dddg g(t);
    bool fromS1 = false, fromS2 = false;
    for (NodeId c : g.children(s1))
        fromS1 = fromS1 || c == l;
    for (NodeId c : g.children(s2))
        fromS2 = fromS2 || c == l;
    EXPECT_FALSE(fromS1);
    EXPECT_TRUE(fromS2);
}

TEST(Dddg, CriticalPathOfChain)
{
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId n = tb.op(Opcode::FpMul, {});
    for (int i = 0; i < 9; ++i)
        n = tb.op(Opcode::FpMul, {n});
    Trace t = tb.take();
    Dddg g(t);
    EXPECT_EQ(g.criticalPathCycles(t), 10 * latencyOf(Opcode::FpMul));
}

// ---------------------------------------------------------------
// Datapath scheduling.
// ---------------------------------------------------------------

struct DatapathFixture
{
    explicit DatapathFixture(Trace t, Datapath::Params params = {})
        : trace(std::move(t)), dddg(trace),
          spad("spad", eq, ClockDomain(accelPeriod)),
          fe("fe", 64),
          dp("dp", eq, ClockDomain(accelPeriod), trace, dddg, params,
             Datapath::MemMode::ScratchpadDma)
    {
        std::vector<int> spadIds, feIds;
        for (const auto &a : trace.arrays) {
            Scratchpad::ArrayConfig sc;
            sc.name = a.name;
            sc.sizeBytes = a.sizeBytes;
            sc.wordBytes = a.wordBytes;
            sc.partitions = partitions;
            spadIds.push_back(spad.addArray(sc));
            int feId = fe.addArray(a.sizeBytes);
            feIds.push_back(trackReadyBits ? feId : -1);
            if (!trackReadyBits)
                fe.fill(feId, 0, a.sizeBytes);
        }
        dp.attachScratchpad(&spad, spadIds, &fe, feIds);
    }

    static unsigned partitions;
    static bool trackReadyBits;

    EventQueue eq;
    Trace trace;
    Dddg dddg;
    Scratchpad spad;
    FullEmptyBits fe;
    Datapath dp;

    Cycles
    runToCompletion()
    {
        bool done = false;
        dp.start([&] { done = true; });
        eq.run();
        EXPECT_TRUE(done);
        return dp.executedCycles();
    }
};

unsigned DatapathFixture::partitions = 16;
bool DatapathFixture::trackReadyBits = false;

Trace
parallelTrace(unsigned iterations, unsigned chainLen)
{
    TraceBuilder tb;
    int a = tb.addArray("a", 4096, 4, true, false);
    int b = tb.addArray("b", 4096, 4, false, true);
    for (unsigned i = 0; i < iterations; ++i) {
        tb.beginIteration();
        NodeId v = tb.load(a, (i * 4) % 4096, 4);
        for (unsigned c = 0; c < chainLen; ++c)
            v = tb.op(Opcode::IntAdd, {v});
        tb.store(b, (i * 4) % 4096, 4, {v});
    }
    return tb.take();
}

TEST(Datapath, ExecutesAllNodes)
{
    DatapathFixture::partitions = 16;
    DatapathFixture::trackReadyBits = false;
    DatapathFixture f(parallelTrace(8, 4));
    f.runToCompletion();
    EXPECT_DOUBLE_EQ(f.dp.stats().get("nodes"),
                     static_cast<double>(f.trace.ops.size()));
}

TEST(Datapath, MoreLanesFasterOnParallelWork)
{
    Datapath::Params p1;
    p1.lanes = 1;
    Datapath::Params p4;
    p4.lanes = 4;
    DatapathFixture f1(parallelTrace(64, 8), p1);
    DatapathFixture f4(parallelTrace(64, 8), p4);
    Cycles c1 = f1.runToCompletion();
    Cycles c4 = f4.runToCompletion();
    EXPECT_LT(c4, c1);
    EXPECT_GT(static_cast<double>(c1) / static_cast<double>(c4), 2.0);
}

TEST(Datapath, SerialChainGainsNothingFromLanes)
{
    // One long dependence chain in a single iteration.
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    NodeId v = tb.op(Opcode::IntAdd, {});
    for (int i = 0; i < 200; ++i)
        v = tb.op(Opcode::IntAdd, {v});
    Trace t = tb.take();

    Datapath::Params p1;
    p1.lanes = 1;
    Datapath::Params p16;
    p16.lanes = 16;
    DatapathFixture f1(t, p1);
    DatapathFixture f16(t, p16);
    EXPECT_EQ(f1.runToCompletion(), f16.runToCompletion());
}

TEST(Datapath, WaveBarrierOrdersIterationGroups)
{
    // With 2 lanes, iterations {0,1} must complete before {2,3}
    // start: total time is at least 2x the single-wave time.
    Datapath::Params p;
    p.lanes = 2;
    DatapathFixture f2(parallelTrace(2, 32), p);
    DatapathFixture f4(parallelTrace(4, 32), p);
    Cycles one = f2.runToCompletion();
    Cycles two = f4.runToCompletion();
    EXPECT_GE(two, 2 * one - 2);
}

TEST(Datapath, FuIssueLimitsThrottle)
{
    // 32 independent FP multiplies in one iteration; 1 lane with one
    // FP multiplier issues one per cycle.
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    for (int i = 0; i < 32; ++i)
        tb.op(Opcode::FpMul, {});
    Trace t = tb.take();
    Datapath::Params p;
    p.lanes = 1;
    DatapathFixture f(t, p);
    Cycles c = f.runToCompletion();
    EXPECT_GE(c, 32u); // one issue per cycle + pipeline drain
}

TEST(Datapath, DividerIsUnpipelined)
{
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    for (int i = 0; i < 4; ++i)
        tb.op(Opcode::FpDiv, {});
    Trace t = tb.take();
    Datapath::Params p;
    p.lanes = 1;
    DatapathFixture f(t, p);
    Cycles c = f.runToCompletion();
    EXPECT_GE(c, 4 * latencyOf(Opcode::FpDiv));
}

TEST(Datapath, BankConflictsSlowScratchpadAccess)
{
    DatapathFixture::partitions = 1;
    DatapathFixture fNarrow(parallelTrace(64, 1),
                            [] {
                                Datapath::Params p;
                                p.lanes = 8;
                                return p;
                            }());
    Cycles narrow = fNarrow.runToCompletion();
    double conflicts = fNarrow.dp.stats().get("bankConflicts");

    DatapathFixture::partitions = 16;
    DatapathFixture fWide(parallelTrace(64, 1),
                          [] {
                              Datapath::Params p;
                              p.lanes = 8;
                              return p;
                          }());
    Cycles wide = fWide.runToCompletion();

    EXPECT_GT(conflicts, 0.0);
    EXPECT_LE(wide, narrow);
}

TEST(Datapath, ReadyBitStallUntilFill)
{
    DatapathFixture::partitions = 16;
    DatapathFixture::trackReadyBits = true;
    DatapathFixture f(parallelTrace(4, 2));
    DatapathFixture::trackReadyBits = false;

    bool done = false;
    f.dp.start([&] { done = true; });
    f.eq.run();
    EXPECT_FALSE(done) << "loads must stall on empty ready bits";
    EXPECT_GT(f.dp.stats().get("readyBitStalls"), 0.0);

    // Fill the input array: execution resumes and completes.
    f.fe.fill(0, 0, 4096);
    f.eq.run();
    EXPECT_TRUE(done);
}

TEST(Datapath, PerfectMemoryIgnoresBanks)
{
    DatapathFixture::partitions = 1;
    Datapath::Params p;
    p.lanes = 8;
    p.perfectMemory = true;
    DatapathFixture f(parallelTrace(64, 1), p);
    f.runToCompletion();
    EXPECT_DOUBLE_EQ(f.dp.stats().get("bankConflicts"), 0.0);
    DatapathFixture::partitions = 16;
}

TEST(Datapath, ComputeBusyIntervalsCoverExecution)
{
    DatapathFixture f(parallelTrace(16, 4));
    Cycles cycles = f.runToCompletion();
    const IntervalSet &busy = f.dp.computeBusy();
    EXPECT_FALSE(busy.empty());
    EXPECT_LE(busy.measure(), (cycles + 1) * accelPeriod);
    EXPECT_GT(busy.measure(), 0u);
}

TEST(Datapath, FuOpCountsMatchTrace)
{
    TraceBuilder tb;
    tb.addArray("a", 64, 4, true, false);
    tb.beginIteration();
    tb.op(Opcode::FpMul, {});
    tb.op(Opcode::FpMul, {});
    tb.op(Opcode::IntAdd, {});
    Trace t = tb.take();
    DatapathFixture f(t);
    f.runToCompletion();
    const auto &ops = f.dp.fuOpCounts();
    EXPECT_EQ(ops[static_cast<std::size_t>(FuKind::FpMul)], 2u);
    EXPECT_EQ(ops[static_cast<std::size_t>(FuKind::IntAlu)], 1u);
}

} // namespace
} // namespace genie
