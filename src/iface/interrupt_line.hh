/**
 * @file
 * Posted-interrupt completion (Genie-Iface).
 *
 * The alternative to the driver's spin-wait: when the accelerator
 * finishes, it posts an interrupt on this line instead of writing a
 * status flag for a polling CPU to notice. Delivery pays a fixed
 * wakeup latency (controller arbitration plus the CPU leaving its
 * idle state) — deliberately larger than the spin path's coherence
 * notice latency, so completion mode is a real CPU-time-vs-latency
 * tradeoff rather than a free win.
 *
 * FaultSite::IrqDrop models a post lost before delivery: the line
 * re-posts after the shared bounded-exponential backoff and declares
 * the run dead (fatal) when the retry budget is exhausted — a lost
 * final interrupt would otherwise hang the driver forever.
 */

#ifndef GENIE_IFACE_INTERRUPT_LINE_HH
#define GENIE_IFACE_INTERRUPT_LINE_HH

#include <functional>

#include "sim/clocked.hh"
#include "sim/sim_object.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class InterruptLine GENIE_THREAD_LOCAL_OK : public SimObject,
                                            public Clocked
{
  public:
    struct Params
    {
        /** Post-to-wakeup delivery latency. */
        Tick deliveryLatency = 1000 * tickPerNs;
    };

    /** Invoked (at delivery time) for every delivered interrupt. */
    using Handler = std::function<void()>;

    InterruptLine(std::string name, EventQueue &eq, ClockDomain domain,
                  Params params);

    void setHandler(Handler h) { handler = std::move(h); }

    /** Post one interrupt; it is delivered to the handler after the
     * delivery latency (plus any fault-retry backoff). */
    void post();

    /** Posts accepted but not yet delivered (watchdog hook). */
    unsigned pendingDeliveries() const { return pendingCount; }

  private:
    /** One delivery attempt; re-posts on an injected drop. */
    void attemptDelivery(Tick postTick, unsigned attempt);

    void deliver(Tick postTick);

    Params params;
    Handler handler;
    unsigned pendingCount = 0;

    Stat &statPosts;
    Stat &statDelivered;
    /** Posts lost to injected drops (each is re-posted). */
    Stat &statDropped;
    /** Post-to-delivery latency in nanoseconds, including any
     * drop/re-post backoff. */
    Distribution &statLatency;
};

} // namespace genie

#endif // GENIE_IFACE_INTERRUPT_LINE_HH
