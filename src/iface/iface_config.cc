#include "iface_config.hh"

namespace genie
{

const char *
completionModeName(CompletionMode m)
{
    switch (m) {
      case CompletionMode::Spin:
        return "spin";
      case CompletionMode::Interrupt:
        return "interrupt";
    }
    return "unknown";
}

const char *
ifaceMemTypeName(IfaceMemType t)
{
    switch (t) {
      case IfaceMemType::Dma:
        return "dma";
      case IfaceMemType::Acp:
        return "acp";
      case IfaceMemType::Cache:
        return "cache";
    }
    return "unknown";
}

} // namespace genie
