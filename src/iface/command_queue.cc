#include "command_queue.hh"

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace genie
{

CommandQueue::CommandQueue(std::string name, EventQueue &eq, Params p)
    : SimObject(std::move(name)), params(p),
      statEnqueued(stats().add("enqueued", "descriptors enqueued")),
      statDequeued(stats().add("dequeued", "descriptors dequeued")),
      statOccupancy(stats().addDistribution(
          "occupancy", "ring occupancy after each push/pop", 0.0,
          static_cast<double>(p.depth) + 1.0, p.depth + 1))
{
    if (params.depth == 0)
        fatal("command queue depth must be non-zero");
    eq.registerStats(stats());
}

void
CommandQueue::push(std::uint32_t command)
{
    if (ring.size() >= params.depth) {
        fatal("%s: ring overflow at depth %u — deepen queue_depth or "
              "submit fewer invocations per batch",
              name().c_str(), params.depth);
    }
    ring.push_back(command);
    ++statEnqueued;
    statOccupancy.sample(static_cast<double>(ring.size()));
}

std::uint32_t
CommandQueue::pop()
{
    if (ring.empty())
        fatal("%s: pop from an empty ring", name().c_str());
    std::uint32_t command = ring.front();
    ring.pop_front();
    ++statDequeued;
    statOccupancy.sample(static_cast<double>(ring.size()));
    return command;
}

} // namespace genie
