#include "acp_port.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"

namespace genie
{

AcpPort::AcpPort(std::string name, EventQueue &eq, ClockDomain domain,
                 SystemBus &bus_, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      bus(bus_),
      statTransactions(stats().add("transactions",
                                   "ACP bursts serviced")),
      statBeats(stats().add("beats", "coherent beats issued")),
      statBytes(stats().add("bytes", "payload bytes transferred")),
      statSnoopHits(stats().add(
          "snoopHits", "load beats supplied cache-to-cache by a "
                       "snooped dirty CPU line")),
      statMemFills(stats().add(
          "memFills", "load beats that missed every cache and "
                      "filled from DRAM")),
      statWriteInvalidations(stats().add(
          "writeInvalidations",
          "store beats that invalidated a cached copy")),
      statErrors(stats().add("errors", "beats observed failed")),
      statRetries(stats().add("retries",
                              "beats reissued after an error")),
      statRetryExhausted(stats().add(
          "retryExhausted",
          "transactions failed after exhausting retries"))
{
    if (params.beatBytes == 0 || params.maxOutstanding == 0)
        fatal("ACP beat size and window must be non-zero");
    // One-way coherent: the port snoops others through its requests
    // but owns no cache, so it attaches as a non-snooped client.
    busPort = bus.attachClient(this, /*snooper=*/false);
    eq.registerStats(stats());
}

void
AcpPort::startTransaction(Direction dir, std::vector<Segment> segments,
                          BeatCallback onBeat, DoneCallback onDone)
{
    std::vector<Segment> live;
    for (auto &s : segments) {
        if (s.len > 0)
            live.push_back(s);
    }
    pending.push_back({dir, std::move(live), std::move(onBeat),
                       std::move(onDone)});
    if (!active)
        startNext();
}

void
AcpPort::startNext()
{
    GENIE_ASSERT(!active, "startNext while a burst is active");
    if (pending.empty())
        return;
    active = true;
    current = std::move(pending.front());
    pending.pop_front();
    segIndex = 0;
    txnFailed = false;
    txnStart = eventq.curTick();
    ++statTransactions;

    if (Tracer *t = tracerFor(eventq, TraceCategory::Iface)) {
        txnSpan = t->begin(TraceCategory::Iface, name(),
                           current.dir == Direction::MemToAccel
                               ? "acpLoad"
                               : "acpStore");
    }

    // Fixed setup: a doorbell write, not a descriptor-chain walk.
    scheduleCycles(params.setupCycles, [this] {
        if (current.segments.empty())
            finishTransaction();
        else
            beginSegment();
    }, "iface.acpSetup");
}

void
AcpPort::beginSegment()
{
    segIssued = 0;
    segCompleted = 0;
    if (Tracer *t = tracerFor(eventq, TraceCategory::Iface))
        chunkSpan = t->begin(TraceCategory::Iface, name(), "chunk");
    pump();
}

MemCmd
AcpPort::beatCmd() const
{
    // Loads snoop for dirty CPU lines; stores snoop-invalidate every
    // cached copy. Plain WriteReq stays reserved for the non-coherent
    // DMA path.
    return current.dir == Direction::MemToAccel
               ? MemCmd::ReadShared
               : MemCmd::WriteInvalidate;
}

void
AcpPort::pump()
{
    if (txnFailed)
        return;
    const Segment &seg = current.segments[segIndex];
    while (outstanding < params.maxOutstanding && segIssued < seg.len) {
        auto len = static_cast<unsigned>(std::min<std::uint64_t>(
            params.beatBytes, seg.len - segIssued));
        std::uint64_t id = nextReqId++;
        inFlight.emplace(id, BeatInfo{seg.arrayId,
                                      seg.arrayOffset + segIssued, len,
                                      seg.busAddr + segIssued, 0});
        Packet pkt;
        pkt.addr = seg.busAddr + segIssued;
        pkt.size = len;
        pkt.reqId = id;
        pkt.cmd = beatCmd();
        ++outstanding;
        ++statBeats;
        segIssued += len;
        bus.sendRequest(busPort, pkt);
    }
}

void
AcpPort::recvResponse(const Packet &pkt)
{
    auto it = inFlight.find(pkt.reqId);
    GENIE_ASSERT(it != inFlight.end(), "ACP response with unknown reqId");
    BeatInfo info = it->second;
    inFlight.erase(it);
    GENIE_ASSERT(outstanding > 0, "ACP outstanding underflow");

    // A beat fails if the memory system answered with an error, or if
    // the coherency-port fault site corrupts an otherwise-good beat.
    bool failed = pkt.isError();
    if (!failed) {
        if (FaultInjector *fi = eventq.faultInjector();
            fi && fi->shouldFault(FaultSite::AcpSnoop))
            failed = true;
    }

    if (txnFailed) {
        --outstanding;
        maybeAbort();
        return;
    }

    if (failed) {
        ++statErrors;
        if (info.retries >= faultMaxRetries(eventq)) {
            ++statRetryExhausted;
            warn("%s: coherent beat at bus addr %#llx still failing "
                 "after %u retries; failing the burst",
                 name().c_str(), (unsigned long long)info.busAddr,
                 info.retries);
            txnFailed = true;
            --outstanding;
            maybeAbort();
            return;
        }
        // Reissue after bounded exponential backoff; the beat keeps
        // its window slot through the backoff.
        unsigned attempt = info.retries++;
        ++statRetries;
        scheduleCycles(
            static_cast<Cycles>(faultBackoffCycles(eventq, attempt)),
            [this, info] { reissue(info); }, "iface.acpRetry");
        return;
    }

    --outstanding;

    if (current.dir == Direction::MemToAccel) {
        if (pkt.cacheToCache)
            ++statSnoopHits;
        else
            ++statMemFills;
    } else if (pkt.sharerPresent) {
        ++statWriteInvalidations;
    }

    segCompleted += info.len;
    statBytes += info.len;
    if (current.onBeat)
        current.onBeat(info.arrayId, info.arrayOffset, info.len);

    const Segment &seg = current.segments[segIndex];
    if (segCompleted == seg.len)
        finishSegment();
    else
        pump();
}

void
AcpPort::finishSegment()
{
    if (Tracer *t = eventq.tracer()) {
        t->end(chunkSpan);
        chunkSpan = invalidTraceSpan;
    }
    ++segIndex;
    if (segIndex < current.segments.size())
        beginSegment();
    else
        finishTransaction();
}

void
AcpPort::reissue(BeatInfo info)
{
    if (txnFailed) {
        // The burst died while this beat waited out its backoff;
        // release the window slot instead of re-sending.
        GENIE_ASSERT(outstanding > 0, "ACP outstanding underflow");
        --outstanding;
        maybeAbort();
        return;
    }
    std::uint64_t id = nextReqId++;
    Packet pkt;
    pkt.addr = info.busAddr;
    pkt.size = info.len;
    pkt.reqId = id;
    pkt.cmd = beatCmd();
    inFlight.emplace(id, info);
    bus.sendRequest(busPort, pkt);
}

void
AcpPort::maybeAbort()
{
    GENIE_ASSERT(txnFailed, "maybeAbort on a healthy burst");
    if (outstanding > 0 || !inFlight.empty())
        return;
    if (Tracer *t = eventq.tracer()) {
        if (chunkSpan != invalidTraceSpan) {
            t->end(chunkSpan);
            chunkSpan = invalidTraceSpan;
        }
    }
    finishTransaction(/*ok=*/false);
}

void
AcpPort::finishTransaction(bool ok)
{
    if (Tracer *t = eventq.tracer()) {
        t->end(txnSpan);
        txnSpan = invalidTraceSpan;
    }
    busy.add(txnStart, eventq.curTick());
    active = false;
    DoneCallback done = std::move(current.onDone);
    current = Transaction{};
    if (done)
        done(ok);
    // The done callback may itself have started the next burst.
    if (!active)
        startNext();
}

} // namespace genie
