#include "interrupt_line.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

InterruptLine::InterruptLine(std::string name, EventQueue &eq,
                             ClockDomain domain, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      statPosts(stats().add("posts", "interrupts posted")),
      statDelivered(stats().add("delivered", "interrupts delivered")),
      statDropped(stats().add(
          "dropped", "posts lost to injected drops (re-posted)")),
      // The upper bound is clamped so a zero latency still builds a
      // valid distribution and reaches the fatal() below instead of
      // panicking inside the stats layer.
      statLatency(stats().addDistribution(
          "latencyNs", "post-to-delivery latency (ns)",
          0.0,
          std::max(1.0, 4.0 * static_cast<double>(p.deliveryLatency) /
                            static_cast<double>(tickPerNs)),
          16))
{
    if (params.deliveryLatency == 0)
        fatal("interrupt delivery latency must be non-zero");
    eq.registerStats(stats());
}

void
InterruptLine::post()
{
    ++statPosts;
    ++pendingCount;
    if (Tracer *t = tracerFor(eventq, TraceCategory::Iface))
        t->instant(TraceCategory::Iface, name(), "irqPost");
    attemptDelivery(eventq.curTick(), 0);
}

void
InterruptLine::attemptDelivery(Tick postTick, unsigned attempt)
{
    if (FaultInjector *fi = eventq.faultInjector();
        fi && fi->shouldFault(FaultSite::IrqDrop)) {
        ++statDropped;
        if (attempt >= faultMaxRetries(eventq)) {
            fatal("%s: interrupt still dropped after %u re-posts — "
                  "the driver would sleep forever; lower "
                  "fault_irq_drop or raise fault_retries",
                  name().c_str(), attempt);
        }
        // Re-post after bounded exponential backoff; the latency
        // distribution absorbs the extra wait.
        scheduleCycles(
            static_cast<Cycles>(faultBackoffCycles(eventq, attempt)),
            [this, postTick, attempt] {
                attemptDelivery(postTick, attempt + 1);
            },
            "iface.irqRetry");
        return;
    }
    eventq.scheduleFlowIn(params.deliveryLatency,
                      [this, postTick] { deliver(postTick); },
                      "iface.irqDeliver");
}

void
InterruptLine::deliver(Tick postTick)
{
    GENIE_ASSERT(pendingCount > 0, "interrupt delivery underflow");
    --pendingCount;
    ++statDelivered;
    statLatency.sample(
        static_cast<double>(eventq.curTick() - postTick) /
        static_cast<double>(tickPerNs));
    if (Tracer *t = tracerFor(eventq, TraceCategory::Iface))
        t->instant(TraceCategory::Iface, name(), "irqDeliver");
    if (handler)
        handler();
}

} // namespace genie
