/**
 * @file
 * The accelerator command queue (Genie-Iface).
 *
 * A descriptor ring between driver and device: the driver enqueues N
 * invocation descriptors and rings the doorbell once (one ioctl),
 * and the device drains the ring back-to-back without any CPU
 * intervention between invocations. This amortizes the per-ioctl
 * initiation cost the paper charges on every offload, turning N
 * round-trips into one.
 *
 * The ring is a pure bookkeeping structure — the time cost of a
 * drain is the device's, not the ring's — so it is unclocked; its
 * occupancy distribution is the DSE-visible signal of how deep a
 * ring a workload actually uses.
 */

#ifndef GENIE_IFACE_COMMAND_QUEUE_HH
#define GENIE_IFACE_COMMAND_QUEUE_HH

#include <cstdint>
#include <deque>

#include "sim/sim_object.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class EventQueue;

class CommandQueue GENIE_THREAD_LOCAL_OK : public SimObject
{
  public:
    struct Params
    {
        /** Ring capacity in descriptors. */
        unsigned depth = 8;
    };

    CommandQueue(std::string name, EventQueue &eq, Params params);

    /** Enqueue one invocation descriptor; panics on overflow (the
     * driver must size the ring for its batch). */
    void push(std::uint32_t command);

    /** Dequeue the oldest descriptor; panics on an empty ring. */
    std::uint32_t pop();

    bool empty() const { return ring.empty(); }
    std::size_t size() const { return ring.size(); }
    unsigned depth() const { return params.depth; }

  private:
    Params params;
    std::deque<std::uint32_t> ring;

    Stat &statEnqueued;
    Stat &statDequeued;
    /** Ring occupancy sampled after every push and pop. */
    Distribution &statOccupancy;
};

} // namespace genie

#endif // GENIE_IFACE_COMMAND_QUEUE_HH
