/**
 * @file
 * Configuration for the Genie-Iface SoC-interface subsystem.
 *
 * The paper's co-design space is a DMA-vs-hardware-coherence
 * dichotomy; gem5-Aladdin v2.0 extends it with an accelerator
 * coherency port (ACP), interrupt-driven completion, and accelerator
 * command queues. This struct carries all three knobs:
 *
 *   completion  how the CPU learns a run finished (spin | interrupt)
 *   mem_type    which path moves array data (dma | acp | cache),
 *               globally and per array
 *   queue_depth descriptor-ring capacity for batched invocations
 *
 * Every default selects the paper's baseline behavior (spin
 * completion, DMA data movement, no queue, one invocation), so a
 * config that never mentions an iface key builds no iface component
 * and simulates byte-identically to a pre-iface build.
 */

#ifndef GENIE_IFACE_IFACE_CONFIG_HH
#define GENIE_IFACE_IFACE_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/thread_safety.hh"
#include "sim/types.hh"

namespace genie
{

/** How the CPU learns that an offloaded invocation finished. */
enum class CompletionMode : std::uint8_t
{
    /** The driver spin-polls a coherent status flag (the paper's
     * baseline): fast notice, but every waited tick is a burned CPU
     * tick. */
    Spin,
    /** The device posts an interrupt over an InterruptLine: the CPU
     * sleeps through the run and pays a wakeup latency on delivery
     * instead of spinning. */
    Interrupt,
};

/** Which path moves one accelerator array's data. ACP is the third
 * interface regime next to the paper's DMA-vs-cache dichotomy. */
enum class IfaceMemType : std::uint8_t
{
    /** Software-managed DMA with explicit cache flushes (baseline). */
    Dma,
    /** Accelerator coherency port: one-way-coherent loads/stores
     * that snoop the CPU cache — dirty lines are supplied
     * cache-to-cache without a flush, misses fall through to DRAM. */
    Acp,
    /** Full hardware-coherent accelerator cache (second regime). */
    Cache,
};

/** Stable lower-case names for config keys, describe(), and sweeps. */
const char *completionModeName(CompletionMode m);
const char *ifaceMemTypeName(IfaceMemType t);

/** The SoC-interface knobs of one run. Defaults reproduce the
 * pre-iface baseline exactly (zero-cost when unselected). */
struct IfaceConfig GENIE_THREAD_LOCAL_OK
{
    CompletionMode completion = CompletionMode::Spin;

    /** Data-movement regime applied to every array (per-array
     * overrides below). Kept in sync with SocConfig::memType:
     * mem_type=cache selects the cache regime, dma/acp keep the
     * scratchpad datapath. */
    IfaceMemType memType = IfaceMemType::Dma;

    /** Per-array regime overrides (array name -> dma|acp), applied
     * on top of memType in a scratchpad-side config. */
    std::vector<std::pair<std::string, IfaceMemType>> arrayMemTypes;

    /** Accelerator command queue (descriptor ring) capacity; 0 (the
     * default) means no queue: each invocation costs one ioctl. */
    unsigned queueDepth = 0;

    /** Kernel invocations per run; >1 models repeated offload over
     * device-resident data and is what the command queue batches. */
    unsigned invocations = 1;

    /** Posted-interrupt delivery latency (post -> CPU wakeup):
     * controller arbitration plus the CPU leaving its idle state.
     * Deliberately larger than the spin path's 100 ns notice latency
     * so completion mode is a real latency-vs-CPU-time tradeoff. */
    Tick irqLatency = 1000 * tickPerNs;

    /** True when any array would use the ACP under this config (the
     * global regime is Acp, or any per-array override says so). */
    bool
    anyAcp() const
    {
        if (memType == IfaceMemType::Acp)
            return true;
        for (const auto &o : arrayMemTypes)
            if (o.second == IfaceMemType::Acp)
                return true;
        return false;
    }

    /** True when every field still holds its baseline default and no
     * iface component needs to be built. */
    bool
    isDefault() const
    {
        return completion == CompletionMode::Spin &&
               memType == IfaceMemType::Dma && arrayMemTypes.empty() &&
               queueDepth == 0 && invocations == 1 &&
               irqLatency == 1000 * tickPerNs;
    }
};

} // namespace genie

#endif // GENIE_IFACE_IFACE_CONFIG_HH
