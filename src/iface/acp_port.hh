/**
 * @file
 * The accelerator coherency port (Genie-Iface).
 *
 * A one-way-coherent bus agent: its loads and stores snoop the CPU
 * cache, but nothing snoops it (the port keeps no cache of its own).
 * Loads issue ReadShared — a dirty CPU line is supplied cache-to-cache
 * without a flush ever running; misses fall through to DRAM. Stores
 * issue WriteInvalidate, which drops every cached copy of the target
 * line so the CPU can never read data the accelerator has since
 * overwritten. Both paths ride the ordinary SystemBus arbitration and
 * are protocol-checked like any other client.
 *
 * Structurally this is the DmaEngine's streaming skeleton without the
 * software-managed parts: no descriptor chain to fetch, and a
 * doorbell-write setup cost instead of the DMA's 40-cycle descriptor
 * setup. Faulty beats (FaultSite::AcpSnoop) retry with the shared
 * bounded-exponential backoff and fail the transaction when the
 * budget is exhausted.
 */

#ifndef GENIE_IFACE_ACP_PORT_HH
#define GENIE_IFACE_ACP_PORT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/bus.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/interval_set.hh"
#include "sim/sim_object.hh"
#include "sim/thread_safety.hh"
#include "trace/tracer.hh"

namespace genie
{

class AcpPort GENIE_THREAD_LOCAL_OK : public SimObject,
                                      public BusClient,
                                      public Clocked
{
  public:
    struct Params
    {
        /** Beat size; matches the CPU cache-line granularity so one
         * beat snoops exactly one line. */
        unsigned beatBytes = 64;
        /** Max in-flight beats (covers snoop + DRAM latency). */
        unsigned maxOutstanding = 8;
        /** Fixed per-transaction setup delay, in port cycles: a
         * doorbell write, not a descriptor-chain walk. */
        Cycles setupCycles = 4;
    };

    enum class Direction : std::uint8_t
    {
        MemToAccel, ///< coherent load burst
        AccelToMem, ///< coherent (invalidating) store burst
    };

    /** One contiguous region of one accelerator array. */
    struct Segment
    {
        int arrayId = 0;
        /** Bus (simulated physical) address of the region. */
        Addr busAddr = 0;
        /** Offset of the region within the accelerator array. */
        Addr arrayOffset = 0;
        std::uint64_t len = 0;
    };

    /** Called as each beat lands in the accelerator's local memory. */
    using BeatCallback = std::function<void(int arrayId, Addr arrayOffset,
                                            unsigned len)>;
    /** Called when the transaction ends; @p ok is false when a beat
     * exhausted its retry budget. */
    using DoneCallback = std::function<void(bool ok)>;

    AcpPort(std::string name, EventQueue &eq, ClockDomain domain,
            SystemBus &bus, Params params);

    /** Enqueue one coherent burst; bursts are serviced in FIFO
     * order, one at a time. */
    void startTransaction(Direction dir, std::vector<Segment> segments,
                          BeatCallback onBeat, DoneCallback onDone);

    bool idle() const { return !active && pending.empty(); }

    /** Intervals during which a transaction was in progress. */
    const IntervalSet &busyIntervals() const { return busy; }

    double bytesTransferred() const { return statBytes.value(); }

    /** Load beats answered cache-to-cache by a snooped dirty CPU
     * line (the coherence win the ACP exists for). */
    double snoopHits() const { return statSnoopHits.value(); }

    /** Beats currently in flight, including errored beats waiting
     * out their backoff (watchdog diagnostic hook). */
    unsigned inFlightBeats() const { return outstanding; }

    // BusClient interface.
    void recvResponse(const Packet &pkt) override;

  private:
    struct Transaction
    {
        Direction dir;
        std::vector<Segment> segments;
        BeatCallback onBeat;
        DoneCallback onDone;
    };

    struct BeatInfo
    {
        int arrayId;
        Addr arrayOffset;
        unsigned len;
        /** Bus address of the beat, kept for reissue after errors. */
        Addr busAddr = 0;
        /** Reissues performed after error responses. */
        unsigned retries = 0;
    };

    void startNext();
    void beginSegment();

    /** Issue beats while the outstanding window has room. */
    void pump();

    void finishSegment();
    void finishTransaction(bool ok = true);

    /** Re-send a beat that errored, after its backoff elapsed. */
    void reissue(BeatInfo info);

    /** If the failing transaction's window has drained, abandon it
     * and move on to the next queued transaction. */
    void maybeAbort();

    MemCmd beatCmd() const;

    Params params;
    SystemBus &bus;
    BusPortId busPort = invalidBusPort;

    std::deque<Transaction> pending;
    bool active = false;
    Transaction current;
    std::size_t segIndex = 0;
    std::uint64_t segIssued = 0;
    std::uint64_t segCompleted = 0;
    unsigned outstanding = 0;
    Tick txnStart = 0;
    /** Current transaction exhausted a retry budget; it is draining
     * its window and will complete with ok=false. */
    bool txnFailed = false;

    // Open trace spans (invalid when tracing is off).
    TraceSpanId txnSpan = invalidTraceSpan;
    TraceSpanId chunkSpan = invalidTraceSpan;

    std::uint64_t nextReqId = 1;
    std::unordered_map<std::uint64_t, BeatInfo> inFlight;

    IntervalSet busy;

    Stat &statTransactions;
    Stat &statBeats;
    Stat &statBytes;
    /** Load beats supplied cache-to-cache by a snooped dirty line. */
    Stat &statSnoopHits;
    /** Load beats that missed every cache and filled from DRAM. */
    Stat &statMemFills;
    /** Store beats that invalidated at least one cached copy. */
    Stat &statWriteInvalidations;
    Stat &statErrors;
    Stat &statRetries;
    Stat &statRetryExhausted;
};

} // namespace genie

#endif // GENIE_IFACE_ACP_PORT_HH
