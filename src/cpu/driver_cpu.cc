#include "driver_cpu.hh"

#include "sim/logging.hh"

namespace genie
{

DriverCpu::DriverCpu(std::string name, EventQueue &eq, ClockDomain domain,
                     FlushEngine &flushEngine_, IoctlRegistry &registry_,
                     Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      flushEngine(flushEngine_), registry(registry_),
      statOps(stats().add("ops", "driver ops executed")),
      statSpinTicks(stats().add("spinTicks",
                                "ticks spent spin-waiting"))
{
    eq.registerStats(stats());
}

void
DriverCpu::run(std::vector<DriverOp> prog, std::function<void()> done)
{
    GENIE_ASSERT(!running, "driver CPU already running a program");
    program = std::move(prog);
    onDone = std::move(done);
    pc = 0;
    running = true;
    flagSet = false;
    waitingOnFlag = false;
    eventq.scheduleIn(0, [this] { step(); }, "cpu.step");
}

void
DriverCpu::signalFlag()
{
    flagSet = true;
    if (waitingOnFlag) {
        waitingOnFlag = false;
        statSpinTicks += static_cast<double>(
            eventq.curTick() - spinStart + params.spinNoticeLatency);
        // The flag was consumed by the pending SpinWait.
        flagSet = false;
        eventq.scheduleIn(params.spinNoticeLatency, [this] { step(); },
                          "cpu.step");
    }
}

void
DriverCpu::step()
{
    if (pc >= program.size()) {
        running = false;
        if (onDone)
            onDone();
        return;
    }

    DriverOp &op = program[pc++];
    ++statOps;
    auto next = [this] { step(); };

    switch (op.kind) {
      case DriverOp::Kind::FlushRange:
        // Whole-program flushes are not chunked here; pipelined DMA
        // drives the flush engine directly with page-sized chunks.
        flushEngine.startFlush(op.bytes, op.bytes ? op.bytes : 1,
                               nullptr, next);
        break;
      case DriverOp::Kind::InvalidateRange:
        flushEngine.startInvalidate(op.bytes, next);
        break;
      case DriverOp::Kind::Compute:
        scheduleCycles(op.cycles, next, "cpu.compute");
        break;
      case DriverOp::Kind::Ioctl: {
        std::uint32_t command = op.command;
        scheduleCycles(params.ioctlCycles, [this, command] {
            // The device runs concurrently with the CPU; the driver
            // returns from ioctl immediately after starting it.
            registry.ioctl(aladdinFd, command, [this] {
                signalFlag();
            });
            step();
        }, "cpu.ioctl");
        break;
      }
      case DriverOp::Kind::SpinWait:
        if (flagSet) {
            flagSet = false;
            eventq.scheduleIn(0, next, "cpu.step");
        } else {
            spinStart = eventq.curTick();
            waitingOnFlag = true;
        }
        break;
      case DriverOp::Kind::Mfence:
        scheduleCycles(params.mfenceCycles, next, "cpu.mfence");
        break;
      case DriverOp::Kind::Call:
        if (op.callback)
            op.callback();
        eventq.scheduleIn(0, next, "cpu.step");
        break;
    }
}

} // namespace genie
