#include "driver_cpu.hh"

#include "sim/logging.hh"

namespace genie
{

DriverCpu::DriverCpu(std::string name, EventQueue &eq, ClockDomain domain,
                     FlushEngine &flushEngine_, IoctlRegistry &registry_,
                     Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      flushEngine(flushEngine_), registry(registry_),
      statOps(stats().add("ops", "driver ops executed")),
      statSpinTicks(stats().add("spinTicks",
                                "ticks spent spin-waiting")),
      statIoctls(stats().add("ioctls", "ioctl invocations issued"))
{
    eq.registerStats(stats());
}

void
DriverCpu::run(std::vector<DriverOp> prog, std::function<void()> done)
{
    GENIE_ASSERT(!running, "driver CPU already running a program");
    program = std::move(prog);
    onDone = std::move(done);
    pc = 0;
    running = true;
    flagSet = false;
    waitingOnFlag = false;
    intrPending = false;
    waitingOnIntr = false;
    eventq.scheduleFlowRawIn(0, [](void *c, std::uint64_t) {
        static_cast<DriverCpu *>(c)->step();
    }, this, 0, "cpu.step");
}

void
DriverCpu::setCompletionSink(std::function<void()> sink)
{
    completionSink = std::move(sink);
}

void
DriverCpu::signalFlag()
{
    flagSet = true;
    if (waitingOnFlag) {
        waitingOnFlag = false;
        statSpinTicks += static_cast<double>(
            eventq.curTick() - spinStart + params.spinNoticeLatency);
        // The flag was consumed by the pending SpinWait.
        flagSet = false;
        eventq.scheduleFlowRawIn(params.spinNoticeLatency,
                                 [](void *c, std::uint64_t) {
            static_cast<DriverCpu *>(c)->step();
        }, this, 0, "cpu.step");
    }
}

void
DriverCpu::raiseInterrupt()
{
    intrPending = true;
    if (waitingOnIntr) {
        waitingOnIntr = false;
        // The interrupt was consumed by the pending IntrWait. The
        // wakeup latency was already charged by the InterruptLine,
        // and a sleeping CPU burns no spin ticks.
        intrPending = false;
        eventq.scheduleFlowRawIn(0, [](void *c, std::uint64_t) {
        static_cast<DriverCpu *>(c)->step();
    }, this, 0, "cpu.step");
    }
}

void
DriverCpu::step()
{
    if (pc >= program.size()) {
        running = false;
        if (onDone)
            onDone();
        return;
    }

    DriverOp &op = program[pc++];
    ++statOps;
    auto next = [this] { step(); };

    switch (op.kind) {
      case DriverOp::Kind::FlushRange:
        // Whole-program flushes are not chunked here; pipelined DMA
        // drives the flush engine directly with page-sized chunks.
        flushEngine.startFlush(op.bytes, op.bytes ? op.bytes : 1,
                               nullptr, next);
        break;
      case DriverOp::Kind::InvalidateRange:
        flushEngine.startInvalidate(op.bytes, next);
        break;
      case DriverOp::Kind::Compute:
        scheduleCyclesRaw(op.cycles, [](void *c, std::uint64_t) {
            static_cast<DriverCpu *>(c)->step();
        }, this, 0, "cpu.compute");
        break;
      case DriverOp::Kind::Ioctl: {
        std::uint32_t command = op.command;
        ++statIoctls;
        scheduleCyclesRaw(params.ioctlCycles,
                          [](void *c, std::uint64_t cmd) {
            auto *self = static_cast<DriverCpu *>(c);
            auto command = static_cast<std::uint32_t>(cmd);
            // The device runs concurrently with the CPU; the driver
            // returns from ioctl immediately after starting it.
            // Completion routes through the configured sink (e.g. an
            // InterruptLine) or, by default, the coherent spin flag.
            self->registry.ioctl(aladdinFd, command, [self] {
                if (self->completionSink)
                    self->completionSink();
                else
                    self->signalFlag();
            });
            self->step();
        }, this, command, "cpu.ioctl");
        break;
      }
      case DriverOp::Kind::SpinWait:
        if (flagSet) {
            flagSet = false;
            eventq.scheduleFlowRawIn(0, [](void *c, std::uint64_t) {
                static_cast<DriverCpu *>(c)->step();
            }, this, 0, "cpu.step");
        } else {
            spinStart = eventq.curTick();
            waitingOnFlag = true;
        }
        break;
      case DriverOp::Kind::IntrWait:
        if (intrPending) {
            intrPending = false;
            eventq.scheduleFlowRawIn(0, [](void *c, std::uint64_t) {
                static_cast<DriverCpu *>(c)->step();
            }, this, 0, "cpu.step");
        } else {
            waitingOnIntr = true;
        }
        break;
      case DriverOp::Kind::Mfence:
        scheduleCyclesRaw(params.mfenceCycles,
                          [](void *c, std::uint64_t) {
            static_cast<DriverCpu *>(c)->step();
        }, this, 0, "cpu.mfence");
        break;
      case DriverOp::Kind::Call:
        if (op.callback)
            op.callback();
        eventq.scheduleFlowRawIn(0, [](void *c, std::uint64_t) {
                static_cast<DriverCpu *>(c)->step();
            }, this, 0, "cpu.step");
        break;
    }
}

} // namespace genie
