/**
 * @file
 * The ioctl-style CPU-accelerator invocation interface (Section III-E).
 *
 * gem5-Aladdin invokes accelerators through the ioctl system call: a
 * special file descriptor selects Aladdin, and command numbers select
 * individual accelerators. We model the same registry: accelerators
 * register under a command number; the driver CPU "calls ioctl" with a
 * command number, which starts the accelerator. Completion reaches the
 * CPU over one of two paths selected by the run's completion mode:
 * a shared status flag that a spinning CPU observes via cache
 * coherence (modeled as a fixed notice latency), or a posted
 * interrupt delivered through the Genie-Iface InterruptLine with a
 * wakeup latency. Either way the registry tracks the device as busy
 * from start to completion, so an overlapping start — which would
 * silently clobber the first invocation's completion callback — is a
 * loud error instead of a hang.
 */

#ifndef GENIE_CPU_IOCTL_HH
#define GENIE_CPU_IOCTL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/logging.hh"

namespace genie
{

/** Genie's reserved "device file descriptor" for Aladdin devices. */
constexpr int aladdinFd = 0x414c; // 'AL'

/** A start-able accelerator device. */
class IoctlDevice
{
  public:
    virtual ~IoctlDevice() = default;
    /** Begin execution; call @p onFinish when the device completes. */
    virtual void start(std::function<void()> onFinish) = 0;
};

/** Maps ioctl command numbers to accelerator devices. */
class IoctlRegistry
{
  public:
    void
    registerDevice(std::uint32_t command, IoctlDevice *device)
    {
        auto [it, inserted] = devices.emplace(command, device);
        (void)it;
        if (!inserted)
            fatal("ioctl command %u already registered", command);
    }

    /** Emulates ioctl(aladdinFd, command): starts the device. The
     * device is busy until it signals completion; starting it again
     * while busy is fatal (the second start would overwrite the
     * first invocation's completion callback and hang the first
     * caller). */
    void
    ioctl(int fd, std::uint32_t command, std::function<void()> onFinish)
    {
        if (fd != aladdinFd)
            fatal("ioctl on unknown fd %d", fd);
        auto it = devices.find(command);
        if (it == devices.end())
            fatal("ioctl: no device for command %u", command);
        if (busy.count(command)) {
            fatal("ioctl: device for command %u is still running — an "
                  "overlapping start would clobber its completion "
                  "callback; wait for completion first, or batch "
                  "invocations through the command queue "
                  "(queue_depth=N)",
                  command);
        }
        busy.insert(command);
        it->second->start(
            [this, command, onFinish = std::move(onFinish)] {
                busy.erase(command);
                if (onFinish)
                    onFinish();
            });
    }

    bool
    hasDevice(std::uint32_t command) const
    {
        return devices.count(command) != 0;
    }

    /** True while the device for @p command is running. */
    bool
    isBusy(std::uint32_t command) const
    {
        return busy.count(command) != 0;
    }

  private:
    std::unordered_map<std::uint32_t, IoctlDevice *> devices;
    std::unordered_set<std::uint32_t> busy;
};

} // namespace genie

#endif // GENIE_CPU_IOCTL_HH
