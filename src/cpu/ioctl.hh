/**
 * @file
 * The ioctl-style CPU-accelerator invocation interface (Section III-E).
 *
 * gem5-Aladdin invokes accelerators through the ioctl system call: a
 * special file descriptor selects Aladdin, and command numbers select
 * individual accelerators. We model the same registry: accelerators
 * register under a command number; the driver CPU "calls ioctl" with a
 * command number, which starts the accelerator; completion is signaled
 * through a shared status flag that the spinning CPU observes via
 * cache coherence (modeled as a fixed notice latency).
 */

#ifndef GENIE_CPU_IOCTL_HH
#define GENIE_CPU_IOCTL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/logging.hh"

namespace genie
{

/** Genie's reserved "device file descriptor" for Aladdin devices. */
constexpr int aladdinFd = 0x414c; // 'AL'

/** A start-able accelerator device. */
class IoctlDevice
{
  public:
    virtual ~IoctlDevice() = default;
    /** Begin execution; call @p onFinish when the device completes. */
    virtual void start(std::function<void()> onFinish) = 0;
};

/** Maps ioctl command numbers to accelerator devices. */
class IoctlRegistry
{
  public:
    void
    registerDevice(std::uint32_t command, IoctlDevice *device)
    {
        auto [it, inserted] = devices.emplace(command, device);
        (void)it;
        if (!inserted)
            fatal("ioctl command %u already registered", command);
    }

    /** Emulates ioctl(aladdinFd, command): starts the device. */
    void
    ioctl(int fd, std::uint32_t command, std::function<void()> onFinish)
    {
        if (fd != aladdinFd)
            fatal("ioctl on unknown fd %d", fd);
        auto it = devices.find(command);
        if (it == devices.end())
            fatal("ioctl: no device for command %u", command);
        it->second->start(std::move(onFinish));
    }

    bool
    hasDevice(std::uint32_t command) const
    {
        return devices.count(command) != 0;
    }

  private:
    std::unordered_map<std::uint32_t, IoctlDevice *> devices;
};

} // namespace genie

#endif // GENIE_CPU_IOCTL_HH
