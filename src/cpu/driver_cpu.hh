/**
 * @file
 * The driver CPU.
 *
 * The paper runs gem5 in syscall-emulation mode with a validated ARM
 * A9 CPU model; the CPU's role in every experiment is the software
 * offload flow: flush caches, program the DMA engine, invoke the
 * accelerator via ioctl, then wait for completion. Genie substitutes
 * a timed driver program — a sequence of DriverOps executed
 * sequentially, each charged its characterized latency — which
 * reproduces exactly the CPU-side costs the paper accounts for
 * (84 ns/line flushes, 71 ns/line invalidates, DMA setup, ioctl entry,
 * and the coherence-notice latency of the spin loop).
 *
 * Completion has two waiting styles (Genie-Iface completion modes):
 * SpinWait polls a coherent status flag, charging every waited tick
 * to spinTicks plus the coherence notice latency; IntrWait sleeps
 * until an InterruptLine delivery calls raiseInterrupt(), charging
 * no spin time at all — the wakeup latency is modeled by the line,
 * not the CPU.
 */

#ifndef GENIE_CPU_DRIVER_CPU_HH
#define GENIE_CPU_DRIVER_CPU_HH

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "cpu/ioctl.hh"
#include "dma/flush_model.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace genie
{

/** One step of the driver program. */
struct DriverOp
{
    enum class Kind : std::uint8_t
    {
        /** Flush @p bytes of input data from private caches. */
        FlushRange,
        /** Invalidate @p bytes of the output region. */
        InvalidateRange,
        /** Spend @p cycles of CPU work (setup, data generation...). */
        Compute,
        /** ioctl(aladdinFd, command): start an accelerator. */
        Ioctl,
        /** Spin until the accelerator's completion flag is seen. */
        SpinWait,
        /** Sleep until an interrupt is delivered (no spin time). */
        IntrWait,
        /** Full memory fence (drains; modeled as fixed latency). */
        Mfence,
        /** Run a user callback (no simulated time). */
        Call,
    };

    Kind kind;
    std::uint64_t bytes = 0;
    Cycles cycles = 0;
    std::uint32_t command = 0;
    std::function<void()> callback;
};

class DriverCpu : public SimObject, public Clocked
{
  public:
    struct Params
    {
        /** ioctl entry/exit overhead, CPU cycles. */
        Cycles ioctlCycles = 150;
        /** mfence drain cost, CPU cycles. */
        Cycles mfenceCycles = 30;
        /** Latency from the accelerator's flag write to the spinning
         * CPU observing it through coherence. */
        Tick spinNoticeLatency = 100 * tickPerNs;
    };

    DriverCpu(std::string name, EventQueue &eq, ClockDomain domain,
              FlushEngine &flushEngine, IoctlRegistry &registry,
              Params params);

    /** Execute @p program; @p onDone fires after the last op. */
    void run(std::vector<DriverOp> program, std::function<void()> onDone);

    /**
     * The accelerator-side completion signal: writing the shared flag.
     * A pending SpinWait completes spinNoticeLatency later.
     */
    void signalFlag();

    /**
     * Interrupt delivery (called by the InterruptLine handler): a
     * pending IntrWait completes immediately — the delivery latency
     * was already paid on the line — and no spin time is charged.
     */
    void raiseInterrupt();

    /**
     * Route device completions somewhere other than signalFlag()
     * (e.g. into an InterruptLine). Ioctl ops pass @p sink to the
     * registry as the completion callback; unset, completions write
     * the spin flag directly.
     */
    void setCompletionSink(std::function<void()> sink);

    bool idle() const { return !running; }

  private:
    void step();

    Params params;
    FlushEngine &flushEngine;
    IoctlRegistry &registry;

    std::vector<DriverOp> program;
    std::size_t pc = 0;
    bool running = false;
    bool flagSet = false;
    bool waitingOnFlag = false;
    bool intrPending = false;
    bool waitingOnIntr = false;
    Tick spinStart = 0;
    std::function<void()> onDone;
    std::function<void()> completionSink;

    Stat &statOps;
    Stat &statSpinTicks;
    Stat &statIoctls;
};

} // namespace genie

#endif // GENIE_CPU_DRIVER_CPU_HH
