#include "export.hh"
#include "sim/thread_safety.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "sim/logging.hh"

namespace genie
{

namespace
{

/** JSON string escaping (paths and descs are plain ASCII, but stay
 * safe on quotes/backslashes/control characters). */
void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
}

/** CSV field quoting: wrap when the field carries a comma or quote. */
std::string
csvField(const std::string &s)
{
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Collects one JSON object member list with deterministic order. */
struct JsonStatsWriter GENIE_THREAD_LOCAL_OK : StatVisitor
{
    std::string scalars;
    std::string dists;

    void
    scalar(const StatGroup &, const Stat &s) override
    {
        if (!scalars.empty())
            scalars += ",\n";
        scalars += "    \"";
        appendEscaped(scalars, s.name());
        scalars += "\": {\"value\": " + formatStatNumber(s.value()) +
                   ", \"desc\": \"";
        appendEscaped(scalars, s.desc());
        scalars += "\"}";
    }

    void
    distribution(const StatGroup &, const Distribution &d) override
    {
        if (!dists.empty())
            dists += ",\n";
        dists += "    \"";
        appendEscaped(dists, d.name());
        dists += "\": {\"desc\": \"";
        appendEscaped(dists, d.desc());
        dists += format("\", \"count\": %llu",
                        (unsigned long long)d.count());
        dists += ", \"min\": " + formatStatNumber(d.min());
        dists += ", \"max\": " + formatStatNumber(d.max());
        dists += ", \"mean\": " + formatStatNumber(d.mean());
        dists += ", \"p50\": " + formatStatNumber(d.p50());
        dists += ", \"p95\": " + formatStatNumber(d.p95());
        dists += ", \"p99\": " + formatStatNumber(d.p99());
        dists += format(", \"underflow\": %llu, \"overflow\": %llu",
                        (unsigned long long)d.underflow(),
                        (unsigned long long)d.overflow());
        dists += ", \"buckets\": [";
        bool first = true;
        for (const DistBucket &b : d.buckets()) {
            if (b.count == 0)
                continue; // sparse: empty bins carry no information
            if (!first)
                dists += ", ";
            first = false;
            dists += "[" + formatStatNumber(b.lo) + ", " +
                     formatStatNumber(b.hi) +
                     format(", %llu]", (unsigned long long)b.count);
        }
        dists += "]}";
    }
};

struct CsvStatsWriter GENIE_THREAD_LOCAL_OK : StatVisitor
{
    std::string out = "stat,value\n";

    void
    row(const std::string &name, double v)
    {
        out += csvField(name) + "," + formatStatNumber(v) + "\n";
    }

    void
    scalar(const StatGroup &, const Stat &s) override
    {
        row(s.name(), s.value());
    }

    void
    distribution(const StatGroup &, const Distribution &d) override
    {
        row(d.name() + "::count", static_cast<double>(d.count()));
        row(d.name() + "::min", d.min());
        row(d.name() + "::mean", d.mean());
        row(d.name() + "::max", d.max());
        row(d.name() + "::p50", d.p50());
        row(d.name() + "::p95", d.p95());
        row(d.name() + "::p99", d.p99());
        row(d.name() + "::underflow",
            static_cast<double>(d.underflow()));
        row(d.name() + "::overflow",
            static_cast<double>(d.overflow()));
    }
};

/** Run @p write against @p path, with "-" meaning stdout. */
template <typename Fn>
void
toFileOrStdout(const std::string &path, const char *what, Fn &&write)
{
    if (path == "-") {
        write(std::cout);
        std::cout.flush();
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot open %s output file '%s'", what, path.c_str());
    write(out);
}

} // namespace

std::string
formatStatNumber(double v)
{
    // Integral values (the overwhelmingly common case for counters)
    // print as integers; everything else uses shortest-round-trip
    // formatting so output is deterministic across runs and builds.
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9.007199254740992e15) {
        return format("%lld", (long long)v);
    }
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, ptr);
}

void
writeStatsJson(std::ostream &os, const StatRegistry &registry)
{
    JsonStatsWriter w;
    registry.visit(w);
    os << "{\"schema\": \"genie-stats-1\",\n  \"stats\": {\n"
       << w.scalars << "\n  },\n  \"distributions\": {\n" << w.dists
       << "\n  }\n}\n";
}

void
writeStatsCsv(std::ostream &os, const StatRegistry &registry)
{
    CsvStatsWriter w;
    registry.visit(w);
    os << w.out;
}

void
writeSamplesJson(std::ostream &os, const MetricsSampler &sampler)
{
    std::string out;
    out += format("{\"schema\": \"genie-samples-1\",\n"
                  "  \"period_ticks\": %llu,\n"
                  "  \"samples\": %zu,\n"
                  "  \"taken\": %llu,\n"
                  "  \"dropped\": %llu,\n",
                  (unsigned long long)sampler.period(),
                  sampler.numSamples(),
                  (unsigned long long)sampler.samplesTaken(),
                  (unsigned long long)sampler.droppedSamples());
    out += "  \"ticks\": [";
    bool first = true;
    for (Tick t : sampler.ticks()) {
        if (!first)
            out += ", ";
        first = false;
        out += format("%llu", (unsigned long long)t);
    }
    out += "],\n  \"series\": {\n";
    for (std::size_t s = 0; s < sampler.numSeries(); ++s) {
        if (s > 0)
            out += ",\n";
        out += "    \"";
        appendEscaped(out, sampler.paths()[s]);
        out += "\": [";
        first = true;
        for (double v : sampler.values(s)) {
            if (!first)
                out += ", ";
            first = false;
            out += formatStatNumber(v);
        }
        out += "]";
    }
    out += "\n  }\n}\n";
    os << out;
}

void
writeSamplesCsv(std::ostream &os, const MetricsSampler &sampler)
{
    std::string out = "tick";
    for (const std::string &p : sampler.paths())
        out += "," + csvField(p);
    out += "\n";
    const auto &ticks = sampler.ticks();
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        out += format("%llu", (unsigned long long)ticks[i]);
        for (std::size_t s = 0; s < sampler.numSeries(); ++s)
            out += "," + formatStatNumber(sampler.values(s)[i]);
        out += "\n";
    }
    os << out;
}

void
writeStatsJsonFile(const std::string &path,
                   const StatRegistry &registry)
{
    toFileOrStdout(path, "stats JSON",
                   [&](std::ostream &os) { writeStatsJson(os, registry); });
}

void
writeStatsCsvFile(const std::string &path, const StatRegistry &registry)
{
    toFileOrStdout(path, "stats CSV",
                   [&](std::ostream &os) { writeStatsCsv(os, registry); });
}

void
writeSamplesJsonFile(const std::string &path,
                     const MetricsSampler &sampler)
{
    toFileOrStdout(path, "samples JSON", [&](std::ostream &os) {
        writeSamplesJson(os, sampler);
    });
}

void
writeSamplesCsvFile(const std::string &path,
                    const MetricsSampler &sampler)
{
    toFileOrStdout(path, "samples CSV", [&](std::ostream &os) {
        writeSamplesCsv(os, sampler);
    });
}

} // namespace genie
