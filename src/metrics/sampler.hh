/**
 * @file
 * MetricsSampler: periodic time-series snapshots of registry stats.
 *
 * The sampler schedules itself on the system's EventQueue every
 * `period` ticks and records the current value of each tracked scalar
 * stat, turning end-of-run aggregates into per-run time series (bus
 * utilization over time, MSHR occupancy, DMA throughput, ...). It is
 * strictly passive: it only *reads* stat values, so a sampled run
 * produces byte-identical simulation results to an unsampled run —
 * the property tests/test_metrics.cc proves.
 *
 * Memory is ring-buffer bounded: only the most recent `capacity`
 * snapshots are kept, and droppedSamples() counts what aged out. The
 * sampler stops rescheduling as soon as it is the only live event,
 * so event-queue drains (and Soc::run's termination) are unaffected.
 */

#ifndef GENIE_METRICS_SAMPLER_HH
#define GENIE_METRICS_SAMPLER_HH

#include <deque>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/thread_safety.hh"
#include "sim/types.hh"

namespace genie
{

class MetricsSampler GENIE_THREAD_LOCAL_OK
{
  public:
    struct Params
    {
        /** Sampling period in ticks (> 0). */
        Tick period = 0;
        /** Ring capacity: most recent snapshots kept. */
        std::size_t capacity = 4096;
    };

    /** The registry must outlive the sampler. */
    MetricsSampler(EventQueue &eq, const StatRegistry &registry,
                   Params params);

    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;

    /** Track the scalar stat at dotted @p path; fatal() if unknown.
     * Must be called before start(). */
    void track(const std::string &path);

    /** Track every scalar stat currently in the registry. */
    void trackAllScalars();

    /** Schedule the first snapshot one period from now. */
    void start();

    Tick period() const { return params.period; }

    /** Dotted paths of the tracked series, in track() order. */
    const std::vector<std::string> &paths() const { return _paths; }

    std::size_t numSeries() const { return _paths.size(); }

    /** Snapshot ticks currently held (ring-truncated, oldest
     * first). */
    const std::deque<Tick> &ticks() const { return _ticks; }

    /** Values of series @p s, aligned with ticks(). */
    const std::deque<double> &
    values(std::size_t s) const
    {
        return series[s];
    }

    /** Snapshots currently held (== ticks().size()). */
    std::size_t numSamples() const { return _ticks.size(); }

    /** Total snapshots ever taken, including aged-out ones. */
    std::uint64_t samplesTaken() const { return taken; }

    /** Snapshots dropped off the ring's old end. */
    std::uint64_t droppedSamples() const { return dropped; }

  private:
    void sample();

    EventQueue &eventq;
    const StatRegistry &registry;
    Params params;

    std::vector<std::string> _paths;
    std::vector<const Stat *> tracked;

    std::deque<Tick> _ticks;
    std::vector<std::deque<double>> series;
    std::uint64_t taken = 0;
    std::uint64_t dropped = 0;
    bool started = false;
};

} // namespace genie

#endif // GENIE_METRICS_SAMPLER_HH
