/**
 * @file
 * Machine-readable exporters for registry stats and sampled series.
 *
 * Two artifact families, each in JSON and CSV:
 *
 *  - final stats (everything in a StatRegistry at end of run):
 *    writeStatsJson() emits `genie-stats-1` — a flat map of dotted
 *    scalar paths to {value, desc} plus per-distribution summaries
 *    with bin-estimated p50/p95/p99 and (lo, hi, count) bucket
 *    triples; writeStatsCsv() flattens the same data to
 *    `stat,value` rows.
 *  - sampled series (a MetricsSampler's ring): writeSamplesJson()
 *    emits `genie-samples-1` — tick array plus one value array per
 *    tracked path; writeSamplesCsv() emits a `tick,<path>...` table
 *    ready for plotting.
 *
 * All output is deterministic: registration/track order, and
 * shortest-round-trip number formatting — so exports byte-compare
 * across runs and golden-file tests stay stable.
 *
 * The *File variants treat "-" as stdout (for piping); they are the
 * sanctioned file sinks for statistics, mirroring src/trace for
 * timelines (see the trace-sink and stat-print lint rules).
 */

#ifndef GENIE_METRICS_EXPORT_HH
#define GENIE_METRICS_EXPORT_HH

#include <ostream>
#include <string>

#include "metrics/sampler.hh"
#include "sim/stats.hh"

namespace genie
{

/** Format @p v deterministically: integers without a decimal point,
 * everything else shortest-round-trip. */
std::string formatStatNumber(double v);

/** Final stats as `genie-stats-1` JSON. */
void writeStatsJson(std::ostream &os, const StatRegistry &registry);

/** Final stats as `stat,value` CSV rows (distributions flattened to
 * `name::field` rows). */
void writeStatsCsv(std::ostream &os, const StatRegistry &registry);

/** Sampled series as `genie-samples-1` JSON. */
void writeSamplesJson(std::ostream &os, const MetricsSampler &sampler);

/** Sampled series as a `tick,<path>...` CSV table. */
void writeSamplesCsv(std::ostream &os, const MetricsSampler &sampler);

/** File variants; @p path "-" writes to stdout, fatal() on
 * unwritable paths. */
void writeStatsJsonFile(const std::string &path,
                        const StatRegistry &registry);
void writeStatsCsvFile(const std::string &path,
                       const StatRegistry &registry);
void writeSamplesJsonFile(const std::string &path,
                          const MetricsSampler &sampler);
void writeSamplesCsvFile(const std::string &path,
                         const MetricsSampler &sampler);

} // namespace genie

#endif // GENIE_METRICS_EXPORT_HH
