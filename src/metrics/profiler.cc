#include "profiler.hh"

#include <algorithm>
#include <chrono>

#include "sim/logging.hh"

namespace genie
{

std::uint64_t
profilerNowNs()
{
    // The one sanctioned host-clock read in the library: profiling
    // and telemetry attribution only, never fed back into simulated
    // behavior.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace
{

std::uint64_t
nowNs()
{
    return profilerNowNs();
}

/** Handler latencies cluster well under 10 us; 100 ns bins cover
 * that span and percentile() interpolates overflow mass up to the
 * observed max, so outliers still report sanely. */
Distribution
makeLatencyDist()
{
    return Distribution("latency_ns", "per-event host latency (ns)",
                        0.0, 10000.0, 100);
}

} // namespace

void
HostProfiler::beginEvent(Tick when, const char *kind)
{
    (void)when;
    curKind = kind;
    inEvent = true;
    startNs = nowNs();
}

void
HostProfiler::endEvent()
{
    std::uint64_t end = nowNs();
    GENIE_ASSERT(inEvent, "profiler endEvent without beginEvent");
    inEvent = false;
    std::uint64_t ns = end >= startNs ? end - startNs : 0;

    // Kind-table fast path (Genie-Turbo): schedule sites pass static
    // string literals, so the pointer identity of `curKind` memoizes
    // the by-name lookup — one flat hash probe per event instead of a
    // string construction plus red-black-tree walk. Two distinct
    // pointers with equal text simply memoize the same by-name node
    // (std::map nodes are pointer-stable), so attribution output is
    // unchanged.
    KindProfile *kp;
    auto cached = kindCache.find(curKind);
    if (cached != kindCache.end()) {
        kp = cached->second;
    } else {
        auto [it, inserted] = kinds.try_emplace(
            curKind != nullptr ? curKind : "(untagged)");
        if (inserted)
            it->second.latencyNs = makeLatencyDist();
        kp = &it->second;
        kindCache.emplace(curKind, kp);
    }
    KindProfile &k = *kp;
    k.events += 1;
    k.wallNs += ns;
    k.latencyNs.sample(static_cast<double>(ns));
    _totalEvents += 1;
    _totalWallNs += ns;
}

double
HostProfiler::eventsPerSecond() const
{
    if (_totalWallNs == 0)
        return 0.0;
    return static_cast<double>(_totalEvents) /
           (static_cast<double>(_totalWallNs) * 1e-9);
}

std::vector<std::pair<std::string, HostProfiler::KindProfile>>
HostProfiler::sorted() const
{
    std::vector<std::pair<std::string, KindProfile>> out(
        kinds.begin(), kinds.end());
    std::stable_sort(out.begin(), out.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.wallNs > b.second.wallNs;
                     });
    return out;
}

void
HostProfiler::report(std::ostream &os) const
{
    os << format("%-28s %12s %12s %7s %9s %9s\n", "event kind",
                 "events", "wall ms", "share", "p50 ns", "p95 ns");
    for (const auto &[kind, k] : sorted()) {
        double share =
            _totalWallNs > 0
                ? 100.0 * static_cast<double>(k.wallNs) /
                      static_cast<double>(_totalWallNs)
                : 0.0;
        os << format("%-28s %12llu %12.3f %6.1f%% %9.0f %9.0f\n",
                     kind.c_str(), (unsigned long long)k.events,
                     static_cast<double>(k.wallNs) * 1e-6, share,
                     k.latencyNs.p50(), k.latencyNs.p95());
    }
    os << format("total: %llu events, %.3f ms, %.2f M events/s\n",
                 (unsigned long long)_totalEvents,
                 static_cast<double>(_totalWallNs) * 1e-6, meps());
}

void
HostProfiler::reset()
{
    kinds.clear();
    kindCache.clear();
    _totalEvents = 0;
    _totalWallNs = 0;
    inEvent = false;
    curKind = nullptr;
    startNs = 0;
}

} // namespace genie
