#include "sampler.hh"

#include "sim/logging.hh"

namespace genie
{

MetricsSampler::MetricsSampler(EventQueue &eq,
                               const StatRegistry &registry_,
                               Params p)
    : eventq(eq), registry(registry_), params(p)
{
    if (params.period == 0)
        fatal("metrics sampler period must be non-zero");
    if (params.capacity == 0)
        fatal("metrics sampler capacity must be non-zero");
}

void
MetricsSampler::track(const std::string &path)
{
    GENIE_ASSERT(!started, "track() after start()");
    const Stat *s = registry.lookup(path);
    if (s == nullptr)
        fatal("metrics sampler: unknown stat path '%s'", path.c_str());
    _paths.push_back(path);
    tracked.push_back(s);
    series.emplace_back();
}

void
MetricsSampler::trackAllScalars()
{
    for (const std::string &path : registry.scalarPaths())
        track(path);
}

void
MetricsSampler::start()
{
    GENIE_ASSERT(!started, "sampler started twice");
    started = true;
    eventq.scheduleIn(params.period, [this] { sample(); },
                      "metrics.sample");
}

void
MetricsSampler::sample()
{
    _ticks.push_back(eventq.curTick());
    for (std::size_t s = 0; s < tracked.size(); ++s)
        series[s].push_back(tracked[s]->value());
    ++taken;

    if (_ticks.size() > params.capacity) {
        _ticks.pop_front();
        for (auto &vs : series)
            vs.pop_front();
        ++dropped;
    }

    // Our own event has already fired, so a non-empty queue means the
    // simulation is still making progress; rescheduling then — and
    // only then — keeps run()'s drain-to-empty termination intact.
    if (!eventq.empty()) {
        eventq.scheduleIn(params.period, [this] { sample(); },
                          "metrics.sample");
    }
}

} // namespace genie
