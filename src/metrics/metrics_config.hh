/**
 * @file
 * Metrics knobs threaded through SocConfig, mirroring TraceConfig:
 * purely observational switches that never change simulated results.
 */

#ifndef GENIE_METRICS_METRICS_CONFIG_HH
#define GENIE_METRICS_METRICS_CONFIG_HH

#include <cstddef>
#include <string>

#include "sim/thread_safety.hh"

#include "sim/types.hh"

namespace genie
{

struct MetricsConfig GENIE_THREAD_LOCAL_OK
{
    /**
     * Time-series sampling period in accelerator-clock cycles; 0
     * disables the sampler. Sampling is strictly passive: a sampled
     * run's simulation results byte-match an unsampled run's.
     */
    Cycles samplePeriod = 0;

    /** Ring-buffer bound: the sampler keeps the most recent this-many
     * snapshots (older ones are dropped, with a counter). */
    std::size_t sampleCapacity = 4096;

    /** Final-stats export paths; empty = off, "-" = stdout. */
    std::string statsJsonPath;
    std::string statsCsvPath;

    /** Sampled-series export paths; empty = off, "-" = stdout. */
    std::string samplesJsonPath;
    std::string samplesCsvPath;

    /** True if any export or sampling is requested. */
    bool
    any() const
    {
        return samplePeriod > 0 || !statsJsonPath.empty() ||
               !statsCsvPath.empty() || !samplesJsonPath.empty() ||
               !samplesCsvPath.empty();
    }
};

} // namespace genie

#endif // GENIE_METRICS_METRICS_CONFIG_HH
