/**
 * @file
 * HostProfiler: wall-clock self-profiling of the simulation kernel.
 *
 * Attach one to an EventQueue (eq.setProfiler(&prof)) and every fired
 * event is timed on the host's monotonic clock and attributed to its
 * schedule-site kind tag ("bus.deliver", "dram.tick", ...; untagged
 * events pool under "(untagged)"). After a run the profiler answers:
 * where does the simulator itself spend host time, and how many
 * simulated events per second does it retire (MEPS = millions of
 * events/second) — the headline number tools/genie_bench tracks in
 * BENCH_genie.json.
 *
 * The profiler observes and never mutates simulation state, so
 * profiled and unprofiled runs produce identical simulated results.
 * Host-clock reads live only here, behind the EventProfiler hook —
 * the one sanctioned wall-clock site in the library (see the
 * determinism suppression in tools/genie_lint/suppressions.txt).
 */

#ifndef GENIE_METRICS_PROFILER_HH
#define GENIE_METRICS_PROFILER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/**
 * The sanctioned host-clock read (monotonic nanoseconds). Telemetry
 * callers (SweepEngine progress, bench harnesses) must use this
 * instead of touching std::chrono directly, so every wall-clock read
 * in the library funnels through one auditable site — and the
 * determinism lint rule stays tree-wide with a single suppression.
 * Host time read here must never feed back into simulated behavior.
 */
std::uint64_t profilerNowNs();

class HostProfiler GENIE_THREAD_LOCAL_OK : public EventProfiler
{
  public:
    /** Accumulated attribution for one event kind. */
    struct KindProfile
    {
        std::uint64_t events = 0;
        std::uint64_t wallNs = 0;
        /** Per-event handler latency histogram (ns), for the p50/p95
         * columns of report(). */
        Distribution latencyNs;
    };

    void beginEvent(Tick when, const char *kind) override;
    void endEvent() override;

    /** Events executed while attached. */
    std::uint64_t totalEvents() const { return _totalEvents; }

    /** Host nanoseconds spent inside event actions. */
    std::uint64_t totalWallNs() const { return _totalWallNs; }

    /** Simulated events retired per host second (0 before any
     * event completes). */
    double eventsPerSecond() const;

    /** eventsPerSecond() in millions (the MEPS headline). */
    double meps() const { return eventsPerSecond() / 1e6; }

    /** Attribution by kind tag; values sum exactly to totalEvents()
     * and totalWallNs(). */
    const std::map<std::string, KindProfile> &
    byKind() const
    {
        return kinds;
    }

    /** Kinds sorted by wall time, heaviest first. */
    std::vector<std::pair<std::string, KindProfile>> sorted() const;

    /** Human-readable table: kind, events, wall ms, share. */
    void report(std::ostream &os) const;

    void reset();

  private:
    std::map<std::string, KindProfile> kinds;
    /** Pointer-identity memo of the by-name lookup: kind tags are
     * static literals, so the same tag pointer recurs per site and
     * endEvent() resolves it with one hash probe (Genie-Turbo). */
    std::unordered_map<const char *, KindProfile *> kindCache;
    std::uint64_t _totalEvents = 0;
    std::uint64_t _totalWallNs = 0;

    // In-flight event state between beginEvent() and endEvent().
    std::uint64_t startNs = 0;
    const char *curKind = nullptr;
    bool inEvent = false;
};

} // namespace genie

#endif // GENIE_METRICS_PROFILER_HH
