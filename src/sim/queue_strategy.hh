/**
 * @file
 * The event-queue strategy axis (Genie-Turbo).
 *
 * The EventQueue's pending-event structure is pluggable: every
 * strategy must retire events in exactly the same (when, seq) order —
 * the strict total order the determinism suite depends on — so the
 * choice is purely a host-speed knob. It is deliberately NOT part of
 * the canonical config key or the fingerprint (core/fingerprint.cc):
 * two runs that differ only in queue strategy must produce
 * byte-identical records, stats, traces, and cache keys, and
 * tests/test_queue_diff.cc holds every strategy to that contract.
 */

#ifndef GENIE_SIM_QUEUE_STRATEGY_HH
#define GENIE_SIM_QUEUE_STRATEGY_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace genie
{

/** Pending-event container used by an EventQueue. */
enum class QueueStrategy : std::uint8_t
{
    /** Binary min-heap (std::priority_queue) — the original kernel.
     * O(log n) push/pop, no tuning state; the reference strategy the
     * differential suite compares everything else against. */
    Heap,
    /** Calendar/ladder queue with arena-friendly sorted buckets —
     * amortized O(1) push/pop, self-tuning bucket width from the
     * observed tick distribution. The default. */
    Ladder,
};

inline const char *
queueStrategyName(QueueStrategy s)
{
    switch (s) {
      case QueueStrategy::Heap:
        return "heap";
      case QueueStrategy::Ladder:
        return "ladder";
    }
    return "?";
}

/** Parse a strategy name ("heap" | "ladder"); fatal on anything
 * else so config typos fail loudly. */
inline QueueStrategy
parseQueueStrategy(const std::string &name)
{
    if (name == "heap")
        return QueueStrategy::Heap;
    if (name == "ladder")
        return QueueStrategy::Ladder;
    fatal("unknown queue strategy '%s' (expected heap|ladder)",
          name.c_str());
}

} // namespace genie

#endif // GENIE_SIM_QUEUE_STRATEGY_HH
