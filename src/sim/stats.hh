/**
 * @file
 * A light-weight statistics package in the spirit of gem5's Stats.
 *
 * Stats are plain counters owned by their SimObject; a StatGroup keeps
 * name/description metadata so reports can be dumped uniformly. Most
 * values are scalar aggregates per simulation run (all the paper's
 * headline results are); a binned Distribution covers quantities whose
 * shape matters, like cache miss latency and bus queue depth.
 *
 * The StatRegistry (Genie-Metrics) collects every StatGroup of one
 * simulated system under its dotted path ("system.bus",
 * "accel.cache", ...). Reports, exporters, the sampler, and the DSE
 * tooling walk the registry with a StatVisitor instead of
 * hand-plumbing individual counters; lookup() resolves a full dotted
 * stat path such as "accel.cache.misses" to the live counter.
 */

#ifndef GENIE_SIM_STATS_HH
#define GENIE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/thread_safety.hh"

namespace genie
{

/** A named scalar statistic. */
class Stat GENIE_THREAD_LOCAL_OK
{
  public:
    Stat() = default;
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    double value() const { return _value; }

    Stat &operator++() { _value += 1.0; return *this; }
    Stat &operator+=(double v) { _value += v; return *this; }
    Stat &operator=(double v) { _value = v; return *this; }

    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/** One distribution bin: samples in [lo, hi). */
struct DistBucket GENIE_THREAD_LOCAL_OK
{
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
};

/**
 * A named, linearly-binned distribution statistic. Samples between
 * [lo, hi) land in one of @p numBuckets equal-width buckets;
 * out-of-range samples are counted in underflow/overflow. min, max,
 * and mean are tracked exactly regardless of binning, so min()/max()
 * are symmetric with the exported bin edges: exporters and tests read
 * buckets()/percentile() instead of reimplementing the bin math.
 */
class Distribution GENIE_THREAD_LOCAL_OK
{
  public:
    Distribution() = default;
    Distribution(std::string name, std::string desc, double lo,
                 double hi, std::size_t numBuckets);

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double min() const { return _count > 0 ? _min : 0.0; }
    double max() const { return _count > 0 ? _max : 0.0; }
    double total() const { return _total; }
    double
    mean() const
    {
        return _count > 0 ? _total / static_cast<double>(_count) : 0.0;
    }

    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }

    /** All bins as (lo, hi, count) triples, in bin order. */
    std::vector<DistBucket> buckets() const;

    /** Raw per-bin counts (no bounds), in bin order. */
    const std::vector<std::uint64_t> &
    bucketCounts() const
    {
        return _buckets;
    }

    /**
     * Estimate the @p p quantile (0..1) from the bins by linear
     * interpolation within the covering bucket. Underflow mass is
     * spread over [min, lo] and overflow mass over [hi, max], so the
     * estimate always lands inside the observed [min, max] range.
     * Returns 0 for an empty distribution.
     */
    double percentile(double p) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    /** Inclusive lower bound of bucket @p i. */
    double bucketLo(std::size_t i) const;
    /** Exclusive upper bound of bucket @p i. */
    double bucketHi(std::size_t i) const;

    /** Dump "name::field value  # desc" lines (empty buckets
     * skipped). */
    void dump(std::ostream &os) const;

    void reset();

  private:
    std::string _name;
    std::string _desc;
    double _lo = 0.0;
    double _hi = 1.0;
    double _bucketWidth = 1.0;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _min = 0.0;
    double _max = 0.0;
    double _total = 0.0;
};

/**
 * A collection of named stats belonging to one component.
 * Registration returns references that stay valid for the group's
 * lifetime (stats are stored in a deque-like stable container).
 */
class StatGroup GENIE_THREAD_LOCAL_OK
{
  public:
    explicit StatGroup(std::string prefix)
        : _prefix(std::move(prefix))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a stat named "<prefix>.<name>". */
    Stat &add(const std::string &name, const std::string &desc);

    /** Create and register a binned distribution named
     * "<prefix>.<name>" over [lo, hi) with @p numBuckets buckets. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc, double lo,
                                  double hi, std::size_t numBuckets);

    /** Look up a distribution by short name; null if absent. */
    const Distribution *findDistribution(const std::string &name) const;

    /** Look up a stat by its short (unprefixed) name; null if absent. */
    const Stat *find(const std::string &name) const;

    /** Value of a stat by short name; 0 if absent. */
    double get(const std::string &name) const;

    /** All stats in registration order. */
    const std::vector<Stat *> &all() const { return order; }

    /** All distributions in registration order. */
    const std::vector<Distribution *> &
    allDistributions() const
    {
        return distOrder;
    }

    const std::string &prefix() const { return _prefix; }

    /** Dump "name value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** Reset every stat to zero. */
    void resetAll();

  private:
    std::string _prefix;
    std::map<std::string, Stat> stats;
    std::vector<Stat *> order;
    std::map<std::string, Distribution> dists;
    std::vector<Distribution *> distOrder;
};

/**
 * Double-dispatch walker over a StatRegistry. Implementations render
 * or collect; the registry guarantees deterministic visitation order
 * (groups in registration order, stats in declaration order).
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    /** Called before/after the stats of one group. */
    virtual void beginGroup(const StatGroup &group) { (void)group; }
    virtual void endGroup(const StatGroup &group) { (void)group; }

    virtual void scalar(const StatGroup &group, const Stat &stat) = 0;
    virtual void distribution(const StatGroup &group,
                              const Distribution &dist) = 0;
};

/**
 * The hierarchical statistics registry of one simulated system
 * (Genie-Metrics). Each StatGroup registers once under its dotted
 * prefix; the registry never owns the groups — the owning Soc keeps
 * both alive, exactly like the Tracer slot on the EventQueue.
 *
 * Every consumer of "all the stats" — the text report, the JSON/CSV
 * exporters, the MetricsSampler, DSE post-processing — walks this
 * registry instead of naming components one by one.
 */
class StatRegistry GENIE_THREAD_LOCAL_OK
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Register @p group under its prefix; panics on a duplicate
     * path (two components with the same name is a wiring bug). */
    void registerGroup(StatGroup &group);

    std::size_t numGroups() const { return order.size(); }

    /** Groups in registration order. */
    const std::vector<StatGroup *> &groups() const { return order; }

    /** The group registered under @p path, or null. */
    StatGroup *findGroup(const std::string &path) const;

    /**
     * Resolve a full dotted scalar path ("system.bus.packets"): the
     * longest registered group prefix, then the stat's short name.
     * Null if either part is unknown.
     */
    const Stat *lookup(const std::string &path) const;

    /** Resolve a dotted distribution path; null if unknown. */
    const Distribution *
    lookupDistribution(const std::string &path) const;

    /** Value at a dotted scalar path; 0 if absent. */
    double get(const std::string &path) const;

    /** Walk every stat in deterministic order. */
    void visit(StatVisitor &visitor) const;

    /** Full dotted paths of every scalar stat, in visit order. */
    std::vector<std::string> scalarPaths() const;

    /** Dump every group, gem5 stats.txt style (the registry-driven
     * replacement for per-component dump loops). */
    void dump(std::ostream &os) const;

    /** Reset every registered stat to zero. */
    void resetAll();

  private:
    /** Split @p path into (group prefix, short name) by its last
     * dot; returns the group or null. */
    StatGroup *splitPath(const std::string &path,
                         std::string &shortName) const;

    std::map<std::string, StatGroup *> byPath;
    std::vector<StatGroup *> order;
};

} // namespace genie

#endif // GENIE_SIM_STATS_HH
