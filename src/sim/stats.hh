/**
 * @file
 * A light-weight statistics package in the spirit of gem5's Stats.
 *
 * Stats are plain counters owned by their SimObject; a StatGroup keeps
 * name/description metadata so reports can be dumped uniformly. Most
 * values are scalar aggregates per simulation run (all the paper's
 * headline results are); a binned Distribution covers quantities whose
 * shape matters, like cache miss latency and bus queue depth.
 */

#ifndef GENIE_SIM_STATS_HH
#define GENIE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace genie
{

/** A named scalar statistic. */
class Stat
{
  public:
    Stat() = default;
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    double value() const { return _value; }

    Stat &operator++() { _value += 1.0; return *this; }
    Stat &operator+=(double v) { _value += v; return *this; }
    Stat &operator=(double v) { _value = v; return *this; }

    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * A named, linearly-binned distribution statistic. Samples between
 * [lo, hi) land in one of @p numBuckets equal-width buckets;
 * out-of-range samples are counted in underflow/overflow. min, max,
 * and mean are tracked exactly regardless of binning.
 */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::string name, std::string desc, double lo,
                 double hi, std::size_t numBuckets);

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double min() const { return _count > 0 ? _min : 0.0; }
    double max() const { return _count > 0 ? _max : 0.0; }
    double total() const { return _total; }
    double
    mean() const
    {
        return _count > 0 ? _total / static_cast<double>(_count) : 0.0;
    }

    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /** Inclusive lower bound of bucket @p i. */
    double bucketLo(std::size_t i) const;
    /** Exclusive upper bound of bucket @p i. */
    double bucketHi(std::size_t i) const;

    /** Dump "name::field value  # desc" lines (empty buckets
     * skipped). */
    void dump(std::ostream &os) const;

    void reset();

  private:
    std::string _name;
    std::string _desc;
    double _lo = 0.0;
    double _hi = 1.0;
    double _bucketWidth = 1.0;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _min = 0.0;
    double _max = 0.0;
    double _total = 0.0;
};

/**
 * A collection of named stats belonging to one component.
 * Registration returns references that stay valid for the group's
 * lifetime (stats are stored in a deque-like stable container).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix)
        : _prefix(std::move(prefix))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a stat named "<prefix>.<name>". */
    Stat &add(const std::string &name, const std::string &desc);

    /** Create and register a binned distribution named
     * "<prefix>.<name>" over [lo, hi) with @p numBuckets buckets. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc, double lo,
                                  double hi, std::size_t numBuckets);

    /** Look up a distribution by short name; null if absent. */
    const Distribution *findDistribution(const std::string &name) const;

    /** Look up a stat by its short (unprefixed) name; null if absent. */
    const Stat *find(const std::string &name) const;

    /** Value of a stat by short name; 0 if absent. */
    double get(const std::string &name) const;

    /** All stats in registration order. */
    const std::vector<Stat *> &all() const { return order; }

    /** All distributions in registration order. */
    const std::vector<Distribution *> &
    allDistributions() const
    {
        return distOrder;
    }

    const std::string &prefix() const { return _prefix; }

    /** Dump "name value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** Reset every stat to zero. */
    void resetAll();

  private:
    std::string _prefix;
    std::map<std::string, Stat> stats;
    std::vector<Stat *> order;
    std::map<std::string, Distribution> dists;
    std::vector<Distribution *> distOrder;
};

} // namespace genie

#endif // GENIE_SIM_STATS_HH
