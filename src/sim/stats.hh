/**
 * @file
 * A light-weight statistics package in the spirit of gem5's Stats.
 *
 * Stats are plain counters owned by their SimObject; a StatGroup keeps
 * name/description metadata so reports can be dumped uniformly. Values
 * are intentionally simple (no binning) — the paper's results are all
 * scalar aggregates per simulation run.
 */

#ifndef GENIE_SIM_STATS_HH
#define GENIE_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace genie
{

/** A named scalar statistic. */
class Stat
{
  public:
    Stat() = default;
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    double value() const { return _value; }

    Stat &operator++() { _value += 1.0; return *this; }
    Stat &operator+=(double v) { _value += v; return *this; }
    Stat &operator=(double v) { _value = v; return *this; }

    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * A collection of named stats belonging to one component.
 * Registration returns references that stay valid for the group's
 * lifetime (stats are stored in a deque-like stable container).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix)
        : _prefix(std::move(prefix))
    {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a stat named "<prefix>.<name>". */
    Stat &add(const std::string &name, const std::string &desc);

    /** Look up a stat by its short (unprefixed) name; null if absent. */
    const Stat *find(const std::string &name) const;

    /** Value of a stat by short name; 0 if absent. */
    double get(const std::string &name) const;

    /** All stats in registration order. */
    const std::vector<Stat *> &all() const { return order; }

    const std::string &prefix() const { return _prefix; }

    /** Dump "name value  # desc" lines. */
    void dump(std::ostream &os) const;

    /** Reset every stat to zero. */
    void resetAll();

  private:
    std::string _prefix;
    std::map<std::string, Stat> stats;
    std::vector<Stat *> order;
};

} // namespace genie

#endif // GENIE_SIM_STATS_HH
