/**
 * @file
 * A set of half-open tick intervals [begin, end) with union/intersect/
 * subtract operations.
 *
 * The paper's runtime breakdowns (Figures 2b, 5, 6) classify every
 * accelerator cycle by which activities (flush, DMA, compute) were in
 * flight. Each activity records its busy intervals; the breakdown is
 * then computed with set algebra over those intervals.
 */

#ifndef GENIE_SIM_INTERVAL_SET_HH
#define GENIE_SIM_INTERVAL_SET_HH

#include <algorithm>
#include <vector>

#include "sim/types.hh"

namespace genie
{

/** A normalized (sorted, disjoint, non-empty) set of [begin,end). */
class IntervalSet
{
  public:
    struct Interval
    {
        Tick begin;
        Tick end;
        bool operator==(const Interval &) const = default;
    };

    IntervalSet() = default;

    /** Add an interval; empty intervals are ignored. */
    void
    add(Tick begin, Tick end)
    {
        if (begin >= end)
            return;
        raw.push_back({begin, end});
        normalized = false;
    }

    bool empty() const { return raw.empty(); }

    /** Total covered ticks. */
    Tick
    measure() const
    {
        normalize();
        Tick total = 0;
        for (const auto &iv : raw)
            total += iv.end - iv.begin;
        return total;
    }

    /** Earliest covered tick (maxTick if empty). */
    Tick
    lo() const
    {
        normalize();
        return raw.empty() ? maxTick : raw.front().begin;
    }

    /** One past the latest covered tick (0 if empty). */
    Tick
    hi() const
    {
        normalize();
        return raw.empty() ? 0 : raw.back().end;
    }

    /** The normalized intervals. */
    const std::vector<Interval> &
    intervals() const
    {
        normalize();
        return raw;
    }

    /** Set union. */
    IntervalSet
    unionWith(const IntervalSet &other) const
    {
        IntervalSet r;
        normalize();
        other.normalize();
        r.raw = raw;
        r.raw.insert(r.raw.end(), other.raw.begin(), other.raw.end());
        r.normalized = false;
        return r;
    }

    /** Set intersection. */
    IntervalSet
    intersectWith(const IntervalSet &other) const
    {
        normalize();
        other.normalize();
        IntervalSet r;
        std::size_t i = 0, j = 0;
        while (i < raw.size() && j < other.raw.size()) {
            Tick lo = std::max(raw[i].begin, other.raw[j].begin);
            Tick hi = std::min(raw[i].end, other.raw[j].end);
            if (lo < hi)
                r.add(lo, hi);
            if (raw[i].end < other.raw[j].end)
                ++i;
            else
                ++j;
        }
        return r;
    }

    /** Set difference (this minus other). */
    IntervalSet
    subtract(const IntervalSet &other) const
    {
        normalize();
        other.normalize();
        IntervalSet r;
        std::size_t j = 0;
        for (const auto &iv : raw) {
            Tick cur = iv.begin;
            while (j < other.raw.size() &&
                   other.raw[j].end <= cur) {
                ++j;
            }
            std::size_t k = j;
            while (cur < iv.end) {
                if (k >= other.raw.size() ||
                    other.raw[k].begin >= iv.end) {
                    r.add(cur, iv.end);
                    break;
                }
                const auto &cut = other.raw[k];
                if (cut.begin > cur)
                    r.add(cur, cut.begin);
                cur = std::max(cur, cut.end);
                ++k;
            }
        }
        return r;
    }

    /** True if @p tick is covered. */
    bool
    contains(Tick tick) const
    {
        normalize();
        auto it = std::upper_bound(
            raw.begin(), raw.end(), tick,
            [](Tick t, const Interval &iv) { return t < iv.begin; });
        if (it == raw.begin())
            return false;
        --it;
        return tick >= it->begin && tick < it->end;
    }

  private:
    void
    normalize() const
    {
        if (normalized)
            return;
        auto &v = raw;
        std::sort(v.begin(), v.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.begin < b.begin ||
                             (a.begin == b.begin && a.end < b.end);
                  });
        std::vector<Interval> merged;
        for (const auto &iv : v) {
            if (!merged.empty() && iv.begin <= merged.back().end)
                merged.back().end = std::max(merged.back().end, iv.end);
            else
                merged.push_back(iv);
        }
        v = std::move(merged);
        normalized = true;
    }

    mutable std::vector<Interval> raw;
    mutable bool normalized = true;
};

} // namespace genie

#endif // GENIE_SIM_INTERVAL_SET_HH
