/**
 * @file
 * A self-tuning calendar/ladder queue for pending events
 * (Genie-Turbo).
 *
 * Drop-in pending-set replacement for the EventQueue's binary heap:
 * amortized O(1) push/pop by spreading events across an array of
 * tick-range buckets ("the calendar"), with far-future events parked
 * in an overflow heap until the window reaches them. The bucket
 * width and count retune themselves from the observed tick
 * distribution at every redistribution/rebuild, so clock-edge-dense
 * workloads and sparse DMA tails both land near one event per bucket.
 *
 * THE ORDERING CONTRACT (shared by every queue strategy, see
 * DESIGN.md §15): pop order is the strict total order
 *     (when ascending, then seq ascending)
 * — ties at a tick fire in schedule order, nothing else. Any two
 * strategies fed the same push/pop/erase sequence must pop the exact
 * same node sequence; tests/test_properties.cc proves this against a
 * sorted-vector reference model under randomized schedules, and
 * tests/test_queue_diff.cc proves it end-to-end (byte-identical stats
 * and traces vs the heap on the paper design points).
 *
 * Monotonicity assumption (matches the kernel: scheduling in the past
 * panics): every push(n) satisfies n->when >= the `when` of the most
 * recently popped node. Pushes below the current window's lower bound
 * can still occur — a fired event scheduling at the current tick after
 * the window advanced past it — and land in the sorted `front` spill,
 * which pop() always drains first (front nodes are strictly earlier
 * than every bucketed node by construction).
 *
 * The node type must expose `Tick when` and `std::uint64_t seq`
 * members; the ladder stores non-owning Node* and never touches node
 * lifetime (the EventQueue's ObjectArena owns storage).
 */

#ifndef GENIE_SIM_LADDER_QUEUE_HH
#define GENIE_SIM_LADDER_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace genie
{

template <typename Node>
class LadderQueue
{
  public:
    LadderQueue() { buckets.resize(std::size_t(1) << nbLog2); }

    /** Insert @p n keyed by (n->when, n->seq). */
    void
    push(Node *n)
    {
        ++count;
        if (n->when < windowLo) {
            // Late re-entry below the committed window (same-tick
            // schedule after the scan advanced): spill front, which
            // pop() drains before any bucket.
            sortedInsertDesc(front, n);
            return;
        }
        if (n->when >= windowEnd()) {
            overflow.push_back(n);
            std::push_heap(overflow.begin(), overflow.end(),
                           laterFirst);
            return;
        }
        std::size_t idx = bucketIndex(n->when);
        std::vector<Node *> &b = buckets[idx];
        ++inBuckets;
        if (idx == cur && curSorted)
            sortedInsertDesc(b, n);
        else
            b.push_back(n);
        // Occupancy outgrew the calendar: re-spread everything over a
        // retuned window before bucket scans degrade to linear.
        if (inBuckets > (std::size_t(8) << nbLog2))
            rebuild();
    }

    /** The earliest pending node by (when, seq), or nullptr. May
     * advance the window and sort the bucket it lands on. */
    Node *
    top()
    {
        if (!front.empty())
            return front.back();
        if (inBuckets == 0) {
            if (overflow.empty())
                return nullptr;
            redistribute();
        }
        seekBucket();
        return buckets[cur].back();
    }

    /** Remove the node top() returned. Call only after a non-null
     * top(). */
    void
    pop()
    {
        GENIE_ASSERT(count > 0, "LadderQueue::pop on empty queue");
        --count;
        if (!front.empty()) {
            front.pop_back();
            return;
        }
        // top() positioned cur on the sorted head bucket.
        buckets[cur].pop_back();
        --inBuckets;
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Current bucket width in ticks (test/inspection hook). */
    Tick bucketWidth() const { return Tick(1) << widthLog2; }

    /** Current bucket count (test/inspection hook). */
    std::size_t numBuckets() const { return buckets.size(); }

    /** Times the calendar retuned (redistribute/rebuild). */
    std::uint64_t numRetunes() const { return retunes; }

  private:
    // Fires-earlier comparison: ascending (when, seq).
    static bool earlierFirst(const Node *a, const Node *b)
    {
        if (a->when != b->when)
            return a->when < b->when;
        return a->seq < b->seq;
    }

    // Heap/descending-sort comparator: later events first so the
    // minimum sits at the vector back (pop_back) / heap top.
    static bool laterFirst(const Node *a, const Node *b)
    {
        return earlierFirst(b, a);
    }

    static void sortedInsertDesc(std::vector<Node *> &v, Node *n)
    {
        v.insert(std::upper_bound(v.begin(), v.end(), n, laterFirst),
                 n);
    }

    Tick windowEnd() const
    {
        return windowLo + (Tick(buckets.size()) << widthLog2);
    }

    std::size_t bucketIndex(Tick when) const
    {
        return std::size_t(when >> widthLog2) & (buckets.size() - 1);
    }

    /**
     * Pull every overflow node that now lies inside the window into
     * its bucket. Must run whenever windowLo advances: the window end
     * moves with it, and an overflow node falling inside the window
     * unnoticed would fire after later bucketed nodes — the ordering
     * contract's one structural hazard.
     */
    void
    pullOverflow()
    {
        while (!overflow.empty() &&
               overflow.front()->when < windowEnd()) {
            std::pop_heap(overflow.begin(), overflow.end(),
                          laterFirst);
            Node *n = overflow.back();
            overflow.pop_back();
            std::size_t idx = bucketIndex(n->when);
            if (idx == cur && curSorted)
                sortedInsertDesc(buckets[idx], n);
            else
                buckets[idx].push_back(n);
            ++inBuckets;
        }
    }

    /** Advance cur/windowLo to the first non-empty bucket and sort it
     * (requires inBuckets > 0). The commit is safe: pushes that later
     * land below the advanced windowLo go to `front`, and overflow is
     * drained into the window at every advance. */
    void
    seekBucket()
    {
        pullOverflow();
        while (buckets[cur].empty()) {
            cur = (cur + 1) & (buckets.size() - 1);
            windowLo += Tick(1) << widthLog2;
            curSorted = false;
            pullOverflow();
        }
        if (!curSorted) {
            std::sort(buckets[cur].begin(), buckets[cur].end(),
                      laterFirst);
            curSorted = true;
        }
    }

    /** All buckets and front empty: retune around the overflow
     * minimum and pull the near window out of the overflow heap. */
    void
    redistribute()
    {
        retune(overflow);
        windowLo = (overflow.front()->when >> widthLog2) << widthLog2;
        cur = bucketIndex(windowLo);
        curSorted = false;
        pullOverflow();
    }

    /** Collect every node and re-spread over a retuned calendar. */
    void
    rebuild()
    {
        std::vector<Node *> all;
        all.reserve(count);
        all.insert(all.end(), front.begin(), front.end());
        front.clear();
        for (std::vector<Node *> &b : buckets) {
            all.insert(all.end(), b.begin(), b.end());
            b.clear();
        }
        all.insert(all.end(), overflow.begin(), overflow.end());
        overflow.clear();
        inBuckets = 0;
        retune(all);
        // Re-anchor the window at the pending minimum; monotonicity
        // keeps future pushes at or above it (late same-tick pushes
        // spill to front as usual).
        Tick lo = maxTick;
        for (const Node *n : all)
            lo = std::min(lo, n->when);
        windowLo = (lo >> widthLog2) << widthLog2;
        cur = bucketIndex(windowLo);
        curSorted = false;
        for (Node *n : all) {
            if (n->when >= windowEnd()) {
                overflow.push_back(n);
            } else {
                buckets[bucketIndex(n->when)].push_back(n);
                ++inBuckets;
            }
        }
        std::make_heap(overflow.begin(), overflow.end(), laterFirst);
    }

    /**
     * Deterministic self-tuning from the pending tick distribution:
     * bucket width ~ the average inter-event gap of @p pending
     * (power of two, so bucket indexing is shift-and-mask) and bucket
     * count ~ 2x the pending population (so occupancy stays near one
     * event per two buckets). Depends only on queue content — the
     * same schedule retunes identically on every host.
     */
    void
    retune(const std::vector<Node *> &pending)
    {
        ++retunes;
        Tick lo = maxTick, hi = 0;
        for (const Node *n : pending) {
            lo = std::min(lo, n->when);
            hi = std::max(hi, n->when);
        }
        std::size_t n = std::max<std::size_t>(pending.size(), 1);
        Tick gap = (hi > lo) ? (hi - lo) / Tick(n) : 0;
        unsigned wl = 0;
        while ((Tick(1) << wl) < gap && wl < 40)
            ++wl;
        widthLog2 = std::max(wl, 4u); // floor: 16-tick buckets
        unsigned nl = 6; // floor: 64 buckets
        while ((std::size_t(1) << nl) < 2 * n && nl < 16)
            ++nl;
        nbLog2 = nl;
        buckets.assign(std::size_t(1) << nbLog2, {});
    }

    // Calendar geometry: power-of-two bucket width and count so the
    // tick→bucket map is shift-and-mask. Defaults suit the ~10000-ps
    // clock periods of the paper design points before the first
    // retune.
    unsigned widthLog2 = 14;
    unsigned nbLog2 = 8;
    Tick windowLo = 0;
    std::size_t cur = 0;
    bool curSorted = false;

    std::vector<std::vector<Node *>> buckets;
    /** Spill for pushes below windowLo; sorted descending (min at
     * back), strictly earlier than every bucketed node. */
    std::vector<Node *> front;
    /** Min-heap (via laterFirst) of nodes at/after windowEnd(). */
    std::vector<Node *> overflow;

    std::size_t count = 0;
    std::size_t inBuckets = 0;
    std::uint64_t retunes = 0;
};

} // namespace genie

#endif // GENIE_SIM_LADDER_QUEUE_HH
