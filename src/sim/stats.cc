#include "stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace genie
{

Stat &
StatGroup::add(const std::string &name, const std::string &desc)
{
    auto [it, inserted] =
        stats.emplace(name, Stat(_prefix + "." + name, desc));
    if (!inserted)
        panic("duplicate stat '%s' in group '%s'", name.c_str(),
              _prefix.c_str());
    order.push_back(&it->second);
    return it->second;
}

const Stat *
StatGroup::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : &it->second;
}

double
StatGroup::get(const std::string &name) const
{
    const Stat *s = find(name);
    return s ? s->value() : 0.0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : order) {
        os << std::left << std::setw(44) << s->name() << ' '
           << std::setw(16) << s->value() << " # " << s->desc() << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (Stat *s : order)
        s->reset();
}

} // namespace genie
