#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"

namespace genie
{

Distribution::Distribution(std::string name, std::string desc,
                           double lo, double hi,
                           std::size_t numBuckets)
    : _name(std::move(name)), _desc(std::move(desc)), _lo(lo), _hi(hi)
{
    if (numBuckets == 0 || hi <= lo)
        panic("distribution '%s': need hi > lo and >= 1 bucket",
              _name.c_str());
    _buckets.assign(numBuckets, 0);
    _bucketWidth = (_hi - _lo) / static_cast<double>(numBuckets);
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _total += v;
    ++_count;

    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
        // Guard against floating-point edge cases at the top bound.
        idx = std::min(idx, _buckets.size() - 1);
        ++_buckets[idx];
    }
}

std::vector<DistBucket>
Distribution::buckets() const
{
    std::vector<DistBucket> out;
    out.reserve(_buckets.size());
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        out.push_back({bucketLo(i), bucketHi(i), _buckets[i]});
    return out;
}

double
Distribution::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    double target = p * static_cast<double>(_count);
    double cum = 0.0;

    // A mass region covering [lo, hi] with `n` samples; interpolate
    // linearly once the cumulative count crosses the target.
    auto within = [&](double lo, double hi,
                      std::uint64_t n) -> double {
        double f = (target - cum) / static_cast<double>(n);
        return lo + f * (hi - lo);
    };

    // Interpolation works on bin edges, which can poke past the
    // observed extremes (the top of the last occupied bucket is an
    // edge, not a sample); clamp to keep the documented [min, max]
    // guarantee.
    double est = [&]() -> double {
        if (_underflow > 0) {
            if (target <= cum + static_cast<double>(_underflow))
                return within(std::min(_min, _lo), _lo, _underflow);
            cum += static_cast<double>(_underflow);
        }
        for (std::size_t i = 0; i < _buckets.size(); ++i) {
            if (_buckets[i] == 0)
                continue;
            if (target <= cum + static_cast<double>(_buckets[i]))
                return within(bucketLo(i), bucketHi(i), _buckets[i]);
            cum += static_cast<double>(_buckets[i]);
        }
        if (_overflow > 0)
            return within(_hi, std::max(_max, _hi), _overflow);
        return max();
    }();
    return std::min(std::max(est, min()), max());
}

double
Distribution::bucketLo(std::size_t i) const
{
    return _lo + _bucketWidth * static_cast<double>(i);
}

double
Distribution::bucketHi(std::size_t i) const
{
    return _lo + _bucketWidth * static_cast<double>(i + 1);
}

void
Distribution::dump(std::ostream &os) const
{
    auto line = [&](const std::string &field, double value,
                    const std::string &desc) {
        os << std::left << std::setw(44) << (_name + "::" + field)
           << ' ' << std::setw(16) << value << " # " << desc << '\n';
    };
    line("count", static_cast<double>(_count), _desc);
    line("min", min(), _desc);
    line("mean", mean(), _desc);
    line("max", max(), _desc);
    if (_underflow > 0)
        line("underflow", static_cast<double>(_underflow), _desc);
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        line(format("%g-%g", bucketLo(i), bucketHi(i)),
             static_cast<double>(_buckets[i]), _desc);
    }
    if (_overflow > 0)
        line("overflow", static_cast<double>(_overflow), _desc);
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _count = 0;
    _min = 0.0;
    _max = 0.0;
    _total = 0.0;
}

Stat &
StatGroup::add(const std::string &name, const std::string &desc)
{
    auto [it, inserted] =
        stats.emplace(name, Stat(_prefix + "." + name, desc));
    if (!inserted)
        panic("duplicate stat '%s' in group '%s'", name.c_str(),
              _prefix.c_str());
    order.push_back(&it->second);
    return it->second;
}

Distribution &
StatGroup::addDistribution(const std::string &name,
                           const std::string &desc, double lo,
                           double hi, std::size_t numBuckets)
{
    auto [it, inserted] = dists.emplace(
        name,
        Distribution(_prefix + "." + name, desc, lo, hi, numBuckets));
    if (!inserted)
        panic("duplicate distribution '%s' in group '%s'",
              name.c_str(), _prefix.c_str());
    distOrder.push_back(&it->second);
    return it->second;
}

const Distribution *
StatGroup::findDistribution(const std::string &name) const
{
    auto it = dists.find(name);
    return it == dists.end() ? nullptr : &it->second;
}

const Stat *
StatGroup::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : &it->second;
}

double
StatGroup::get(const std::string &name) const
{
    const Stat *s = find(name);
    return s ? s->value() : 0.0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : order) {
        os << std::left << std::setw(44) << s->name() << ' '
           << std::setw(16) << s->value() << " # " << s->desc() << '\n';
    }
    for (const Distribution *d : distOrder)
        d->dump(os);
}

void
StatGroup::resetAll()
{
    for (Stat *s : order)
        s->reset();
    for (Distribution *d : distOrder)
        d->reset();
}

void
StatRegistry::registerGroup(StatGroup &group)
{
    auto [it, inserted] = byPath.emplace(group.prefix(), &group);
    (void)it;
    if (!inserted)
        panic("duplicate stat group path '%s'",
              group.prefix().c_str());
    order.push_back(&group);
}

StatGroup *
StatRegistry::findGroup(const std::string &path) const
{
    auto it = byPath.find(path);
    return it == byPath.end() ? nullptr : it->second;
}

StatGroup *
StatRegistry::splitPath(const std::string &path,
                        std::string &shortName) const
{
    // Stat short names never contain a dot, so the split point is the
    // last one; group prefixes ("system.bus") keep theirs.
    auto dot = path.rfind('.');
    if (dot == std::string::npos)
        return nullptr;
    shortName = path.substr(dot + 1);
    return findGroup(path.substr(0, dot));
}

const Stat *
StatRegistry::lookup(const std::string &path) const
{
    std::string shortName;
    StatGroup *g = splitPath(path, shortName);
    return g ? g->find(shortName) : nullptr;
}

const Distribution *
StatRegistry::lookupDistribution(const std::string &path) const
{
    std::string shortName;
    StatGroup *g = splitPath(path, shortName);
    return g ? g->findDistribution(shortName) : nullptr;
}

double
StatRegistry::get(const std::string &path) const
{
    const Stat *s = lookup(path);
    return s ? s->value() : 0.0;
}

void
StatRegistry::visit(StatVisitor &visitor) const
{
    for (StatGroup *g : order) {
        visitor.beginGroup(*g);
        for (const Stat *s : g->all())
            visitor.scalar(*g, *s);
        for (const Distribution *d : g->allDistributions())
            visitor.distribution(*g, *d);
        visitor.endGroup(*g);
    }
}

std::vector<std::string>
StatRegistry::scalarPaths() const
{
    std::vector<std::string> paths;
    for (const StatGroup *g : order) {
        for (const Stat *s : g->all())
            paths.push_back(s->name());
    }
    return paths;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const StatGroup *g : order)
        g->dump(os);
}

void
StatRegistry::resetAll()
{
    for (StatGroup *g : order)
        g->resetAll();
}

} // namespace genie
