/**
 * @file
 * Arena-pooled object storage for the event kernel (Genie-Turbo).
 *
 * ObjectArena<T> owns every T the EventQueue ever materializes:
 * storage is bump-allocated in fixed-size blocks, destroyed slots are
 * recycled through a freelist, and each slot carries a generation
 * counter so recycled storage can be told apart from the allocation a
 * stale handle was minted for. This replaces the kernel's historical
 * per-schedule new/delete pair — after Genie-Turbo, event allocation
 * happens here and nowhere else (the event-alloc lint rule in
 * tools/genie_lint polices that, and this header carries the one
 * sanctioned placement-new/raw-destroy suppression).
 *
 * Lifetime rules (the arena contract, see DESIGN.md §15):
 *  - create() placement-constructs a T in a recycled or fresh slot and
 *    returns it with its slot index; the arena owns the storage.
 *  - destroy(slot) runs ~T, bumps the slot generation (invalidating
 *    every handle minted for the old generation), and pushes the slot
 *    on the freelist. Double-destroy asserts.
 *  - get(slot, gen) returns the live object only if the slot is live
 *    AND the generation matches — a stale handle yields nullptr, never
 *    a different object's storage.
 *  - Blocks are never returned to the OS until the arena dies, so a
 *    T* stays valid (pointer-stable) until its destroy().
 *  - live() counts constructed-but-not-destroyed objects; the
 *    EventQueue's drain/leak invariants are built on it closing to 0.
 *
 * Generations are 32-bit; a single slot would need 2^32 recycles for
 * a stale handle to alias, far beyond any simulated run.
 */

#ifndef GENIE_SIM_EVENT_ARENA_HH
#define GENIE_SIM_EVENT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace genie
{

template <typename T>
class ObjectArena
{
  public:
    /** Slots per storage block; one block is allocated at a time as
     * the high-water mark grows. */
    static constexpr std::uint32_t blockSlots = 256;

    ObjectArena() = default;
    ObjectArena(const ObjectArena &) = delete;
    ObjectArena &operator=(const ObjectArena &) = delete;

    ~ObjectArena()
    {
        GENIE_ASSERT(liveCount == 0,
                     "ObjectArena destroyed with %zu live object(s)",
                     liveCount);
    }

    /** Construct a T in a fresh or recycled slot. @p slotOut receives
     * the slot index for later get()/destroy(). */
    template <typename... Args>
    T *
    create(std::uint32_t &slotOut, Args &&...args)
    {
        std::uint32_t slot;
        if (!freelist.empty()) {
            slot = freelist.back();
            freelist.pop_back();
        } else {
            slot = highWater++;
            if ((slot / blockSlots) >= blocks.size())
                blocks.push_back(std::make_unique<Slot[]>(blockSlots));
        }
        Slot &s = slotRef(slot);
        GENIE_ASSERT(!s.live, "arena slot %u double-allocated", slot);
        s.live = true;
        ++liveCount;
        slotOut = slot;
        return ::new (static_cast<void *>(s.storage))
            T(std::forward<Args>(args)...);
    }

    /** Destroy the object in @p slot: runs ~T, bumps the generation
     * (staling old handles) and recycles the storage. */
    void
    destroy(std::uint32_t slot)
    {
        Slot &s = slotRef(slot);
        GENIE_ASSERT(s.live, "arena slot %u double-destroyed", slot);
        objectAt(s)->~T();
        s.live = false;
        ++s.gen;
        GENIE_ASSERT(liveCount > 0, "arena live-count underflow");
        --liveCount;
        freelist.push_back(slot);
    }

    /** The live object at (@p slot, @p gen), or nullptr if the slot
     * was never allocated, is currently free, or has been recycled
     * since @p gen was minted. */
    T *
    get(std::uint32_t slot, std::uint32_t gen)
    {
        if (slot >= highWater)
            return nullptr;
        Slot &s = slotRef(slot);
        if (!s.live || s.gen != gen)
            return nullptr;
        return objectAt(s);
    }

    /** Current generation of @p slot (valid for any allocated slot;
     * pairs with the pointer create() returned to mint a handle). */
    std::uint32_t
    generation(std::uint32_t slot) const
    {
        GENIE_ASSERT(slot < highWater, "arena slot %u out of range",
                     slot);
        return blocks[slot / blockSlots][slot % blockSlots].gen;
    }

    /** Constructed-but-not-destroyed objects. */
    std::size_t live() const { return liveCount; }

    /** Slots ever allocated (capacity high-water mark). */
    std::size_t capacity() const { return highWater; }

  private:
    struct Slot
    {
        alignas(T) unsigned char storage[sizeof(T)];
        std::uint32_t gen = 0;
        bool live = false;
    };

    Slot &
    slotRef(std::uint32_t slot)
    {
        return blocks[slot / blockSlots][slot % blockSlots];
    }

    static T *objectAt(Slot &s)
    {
        return std::launder(reinterpret_cast<T *>(s.storage));
    }

    std::vector<std::unique_ptr<Slot[]>> blocks;
    std::vector<std::uint32_t> freelist;
    std::uint32_t highWater = 0;
    std::size_t liveCount = 0;
};

} // namespace genie

#endif // GENIE_SIM_EVENT_ARENA_HH
