#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "thread_safety.hh"

namespace genie
{

namespace
{
std::atomic<bool> quietFlag GENIE_SHARED_OK(atomic quiet switch
                                            flipped by sweep drivers
                                            and tests){false};
} // namespace

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace genie
