/**
 * @file
 * Thread-safety annotation vocabulary (Genie-Analyze).
 *
 * These macros document — and Genie-Analyze *enforces* — the
 * concurrency contract of every piece of mutable shared state in the
 * tree. They expand to nothing: the checker is the cross-TU analyzer
 * in tools/genie_lint (rule families `shared-state`, `guarded-by`),
 * not the compiler, so the build needs no clang attribute support and
 * gcc builds stay clean. The TSan CI job is the dynamic backstop for
 * what a token-level analyzer cannot prove.
 *
 * Vocabulary:
 *
 *  - GENIE_GUARDED_BY(m): the annotated field may only be read or
 *    written while mutex @p m (a sibling member, or `obj.m`) is held.
 *    The analyzer checks that every access inside the owning class's
 *    methods (and the functions of the declaring file) lexically
 *    follows a lock_guard/scoped_lock/unique_lock of @p m, sits in a
 *    function annotated GENIE_REQUIRES(m), or is in the constructor/
 *    destructor (single-owner phases).
 *
 *  - GENIE_REQUIRES(m): the annotated function may only be called
 *    with mutex @p m held; accesses to fields guarded by @p m inside
 *    it need no local lock statement.
 *
 *  - GENIE_THREAD_LOCAL_OK: the annotated field — or, placed after a
 *    class/struct name, every member of the type — is confined to one
 *    thread at a time (per-Soc state owned by whichever worker runs
 *    that Soc, value types handed across a join, ...). Confinement is
 *    the codebase's default sharing story: each Soc owns its
 *    EventQueue, Tracer, StatRegistry, and profiler precisely so
 *    sweeps can run thousands of simulations concurrently without a
 *    single shared lock.
 *
 *  - GENIE_SHARED_OK(why): the annotated field (or whole type) really
 *    is accessed by multiple threads concurrently and is safe for a
 *    stated structural reason: it is a std::atomic, it is internally
 *    synchronized, or it is written only before worker threads spawn
 *    and read-only afterwards. The reason is mandatory and is written
 *    as bare tokens, not a string literal, so the analyzer (which
 *    strips strings) can archive it in the shared-state inventory.
 *
 * Annotation placement:
 *
 *   std::map<K, V> entries GENIE_GUARDED_BY(mutex);
 *   std::atomic<bool> stop GENIE_SHARED_OK(atomic flag){false};
 *   class Tracer GENIE_THREAD_LOCAL_OK { ... };
 *   void drain() GENIE_REQUIRES(queueMutex);
 *
 * Scope: the analyzer requires an annotation on every mutable static
 * in src/ and on every mutable member of types declared in the
 * shared-reachability set (src/dse, src/sim/stats.hh, src/trace,
 * src/metrics — the types both SweepEngine workers and the main
 * thread can touch). New shared state therefore cannot land without
 * declaring its synchronization story; that annotated map is the
 * contract the parallel event kernel (ROADMAP item 1) and the
 * genie_serve daemon (item 2) build against.
 */

#ifndef GENIE_SIM_THREAD_SAFETY_HH
#define GENIE_SIM_THREAD_SAFETY_HH

#define GENIE_GUARDED_BY(...)
#define GENIE_REQUIRES(...)
#define GENIE_THREAD_LOCAL_OK
#define GENIE_SHARED_OK(...)

#endif // GENIE_SIM_THREAD_SAFETY_HH
