/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * data. A fixed default seed keeps every simulation bit-reproducible;
 * std::mt19937_64 would also work but xoshiro is faster and needs no
 * <random> machinery at call sites.
 */

#ifndef GENIE_SIM_RANDOM_HH
#define GENIE_SIM_RANDOM_HH

#include <cstdint>

namespace genie
{

/** splitmix64/xorshift-based deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform integer in [0, bound). @p bound must be non-zero.
     *
     * Uses rejection sampling: raw draws below `2^64 mod bound` are
     * discarded so every residue class is equally likely. A plain
     * `next() % bound` over-weights small values whenever bound does
     * not divide 2^64.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // 2^64 mod bound, computed without 128-bit arithmetic:
        // (0 - bound) wraps to 2^64 - bound, and
        // (2^64 - bound) mod bound == 2^64 mod bound.
        const std::uint64_t threshold = (0 - bound) % bound;
        std::uint64_t raw = next();
        while (raw < threshold)
            raw = next();
        return raw % bound;
    }

    /**
     * True with probability @p p. Degenerate probabilities (p <= 0,
     * p >= 1) short-circuit without consuming generator state, so a
     * zero-rate fault site draws nothing and cannot perturb the
     * random stream of any other site.
     */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return real() < p;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + (hi - lo) * real();
    }

  private:
    std::uint64_t state;
};

} // namespace genie

#endif // GENIE_SIM_RANDOM_HH
