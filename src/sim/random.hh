/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * data. A fixed default seed keeps every simulation bit-reproducible;
 * std::mt19937_64 would also work but xoshiro is faster and needs no
 * <random> machinery at call sites.
 */

#ifndef GENIE_SIM_RANDOM_HH
#define GENIE_SIM_RANDOM_HH

#include <cstdint>

namespace genie
{

/** splitmix64/xorshift-based deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + (hi - lo) * real();
    }

  private:
    std::uint64_t state;
};

} // namespace genie

#endif // GENIE_SIM_RANDOM_HH
