#include "event_queue.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace genie
{

void
EventQueue::registerStats(StatGroup &group)
{
    if (_statRegistry != nullptr)
        _statRegistry->registerGroup(group);
}

EventQueue::~EventQueue()
{
#if GENIE_CHECK_INVARIANTS
    // Event-leak-at-exit detector: live events at destruction usually
    // mean a component leaked a handshake (e.g. a response that never
    // arrived). Destroying a queue after run(until) legitimately
    // leaves future events, so this only warns; flows that must drain
    // completely should assert with checkDrained().
    if (liveEvents != 0) {
        warn("EventQueue destroyed with %zu live event(s) pending "
             "(first at tick %llu)",
             liveEvents, (unsigned long long)nextTick());
    }
#endif
    while (!heap.empty()) {
        Entry *e = heap.top();
        heap.pop();
        freeEntry(e);
    }
    GENIE_ASSERT(entriesAllocated == 0,
                 "EventQueue entry accounting leak: %zu entries "
                 "unfreed at destruction",
                 entriesAllocated);
}

void
EventQueue::freeEntry(const Entry *e) const
{
    GENIE_ASSERT(entriesAllocated > 0, "entry accounting underflow");
    --entriesAllocated;
    delete e;
}

EventId
EventQueue::schedule(Tick when, std::function<void()> action,
                     const char *kind)
{
    return scheduleImpl(when, std::move(action), kind, 0);
}

EventId
EventQueue::scheduleImpl(Tick when, std::function<void()> action,
                         const char *kind, std::uint64_t flowFrom)
{
    if (when < _curTick)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_curTick);
    auto *e = new Entry{when, nextSeq++, nextId++, std::move(action),
                        kind, flowFrom, false};
    ++entriesAllocated;
    heap.push(e);
    liveIndex.emplace(e->id, e);
    ++liveEvents;
    return e->id;
}

void
EventQueue::deschedule(EventId id)
{
    auto it = liveIndex.find(id);
    if (it == liveIndex.end())
        return; // already fired or cancelled
    it->second->cancelled = true;
    liveIndex.erase(it);
    --liveEvents;
}

void
EventQueue::skipCancelled() const
{
    while (!heap.empty() && heap.top()->cancelled) {
        Entry *e = heap.top();
        heap.pop();
        freeEntry(e);
    }
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap.empty() ? maxTick : heap.top()->when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    Entry *e = heap.top();
    heap.pop();
    GENIE_ASSERT(e->when >= _curTick, "event heap time went backwards");
    _curTick = e->when;
    // Erase from the live index *before* running so a deschedule() of
    // the now-firing id from inside the action is a harmless no-op
    // (the Entry is already gone) rather than a double free.
    liveIndex.erase(e->id);
    --liveEvents;
    ++executed;
    // Move the action out so the entry can be deleted before the action
    // runs: the action may reschedule and grow the heap.
    std::function<void()> action = std::move(e->action);
    const char *kind = e->kind;
    Tick when = e->when;
    std::uint64_t flowFrom = e->flowFrom;
    freeEntry(e);
    if (_tracer != nullptr) {
        // Hand the captured origin to the firing action: the first
        // span it records closes the flow edge, and inheriting the
        // origin as the cursor keeps causality threaded through
        // span-less intermediary events (e.g. a chain of cpu.step
        // events between a DMA completion and the next ioctl).
        _pendingOrigin = flowFrom;
        _flowCursor = flowFrom;
    }
    if (_profiler != nullptr) {
        _profiler->beginEvent(when, kind);
        action();
        _profiler->endEvent();
    } else {
        action();
    }
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (true) {
        Tick next = nextTick();
        if (next == maxTick || next > until)
            break;
        step();
    }
    if (until != maxTick && _curTick < until)
        _curTick = until;
    return _curTick;
}

void
EventQueue::checkDrained() const
{
    if (liveEvents != 0) {
        panic("EventQueue not drained: %zu live event(s) remain, "
              "next at tick %llu",
              liveEvents, (unsigned long long)nextTick());
    }
}

} // namespace genie
