#include "event_queue.hh"

#include "sim/logging.hh"

namespace genie
{

EventQueue::~EventQueue()
{
    while (!heap.empty()) {
        Entry *e = heap.top();
        heap.pop();
        delete e;
    }
}

EventId
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < _curTick)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_curTick);
    auto *e = new Entry{when, nextSeq++, nextId++, std::move(action),
                        false};
    heap.push(e);
    liveIndex.emplace(e->id, e);
    ++liveEvents;
    return e->id;
}

void
EventQueue::deschedule(EventId id)
{
    auto it = liveIndex.find(id);
    if (it == liveIndex.end())
        return; // already fired or cancelled
    it->second->cancelled = true;
    liveIndex.erase(it);
    --liveEvents;
}

void
EventQueue::skipCancelled() const
{
    while (!heap.empty() && heap.top()->cancelled) {
        Entry *e = heap.top();
        heap.pop();
        delete e;
    }
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap.empty() ? maxTick : heap.top()->when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap.empty())
        return false;
    Entry *e = heap.top();
    heap.pop();
    GENIE_ASSERT(e->when >= _curTick, "event heap time went backwards");
    _curTick = e->when;
    liveIndex.erase(e->id);
    --liveEvents;
    ++executed;
    // Move the action out so the entry can be deleted before the action
    // runs: the action may reschedule and grow the heap.
    std::function<void()> action = std::move(e->action);
    delete e;
    action();
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (true) {
        Tick next = nextTick();
        if (next == maxTick || next > until)
            break;
        step();
    }
    if (until != maxTick && _curTick < until)
        _curTick = until;
    return _curTick;
}

} // namespace genie
