#include "event_queue.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace genie
{

void
EventQueue::registerStats(StatGroup &group)
{
    if (_statRegistry != nullptr)
        _statRegistry->registerGroup(group);
}

EventQueue::~EventQueue()
{
#if GENIE_CHECK_INVARIANTS
    // Event-leak-at-exit detector: live events at destruction usually
    // mean a component leaked a handshake (e.g. a response that never
    // arrived). Destroying a queue after run(until) legitimately
    // leaves future events, so this only warns; flows that must drain
    // completely should assert with checkDrained().
    if (liveEvents != 0) {
        warn("EventQueue destroyed with %zu live event(s) pending "
             "(first at tick %llu)",
             liveEvents, (unsigned long long)nextTick());
    }
#endif
    for (Entry *e = pendingTop(); e != nullptr; e = pendingTop()) {
        pendingPop();
        freeEntry(e);
    }
    GENIE_ASSERT(arena.live() == 0,
                 "EventQueue entry accounting leak: %zu entries "
                 "unfreed at destruction",
                 arena.live());
}

void
EventQueue::freeEntry(const Entry *e) const
{
    arena.destroy(e->slot);
}

EventId
EventQueue::schedule(Tick when, std::function<void()> action,
                     const char *kind)
{
    return scheduleImpl(when, std::move(action), kind, 0);
}

EventQueue::Entry *
EventQueue::enqueueEntry(Tick when, const char *kind,
                         std::uint64_t flowFrom, EventId &idOut)
{
    if (when < _curTick)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_curTick);
    std::uint32_t slot;
    Entry *e = arena.create(slot);
    e->when = when;
    e->seq = nextSeq++;
    e->kind = kind;
    e->flowFrom = flowFrom;
    e->slot = slot;
    pendingPush(e);
    ++liveEvents;
    idOut = makeId(slot, arena.generation(slot));
    return e;
}

EventId
EventQueue::scheduleImpl(Tick when, std::function<void()> action,
                         const char *kind, std::uint64_t flowFrom)
{
    EventId id;
    Entry *e = enqueueEntry(when, kind, flowFrom, id);
    e->action = std::move(action);
    return id;
}

EventId
EventQueue::scheduleRawImpl(Tick when, RawEvent fn, void *ctx,
                            std::uint64_t arg, const char *kind,
                            std::uint64_t flowFrom)
{
    EventId id;
    Entry *e = enqueueEntry(when, kind, flowFrom, id);
    e->fn = fn;
    e->ctx = ctx;
    e->arg = arg;
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return;
    // O(1) arena probe: a stale generation (already fired, already
    // cancelled and reaped, or never valid) yields null.
    Entry *e = arena.get(std::uint32_t(id >> 32) - 1,
                         std::uint32_t(id));
    if (e == nullptr || e->cancelled)
        return; // already fired or cancelled
    e->cancelled = true;
    --liveEvents;
}

void
EventQueue::skipCancelled() const
{
    for (Entry *e = pendingTop();
         e != nullptr && e->cancelled;
         e = pendingTop()) {
        pendingPop();
        freeEntry(e);
    }
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    Entry *e = pendingTop();
    return e == nullptr ? maxTick : e->when;
}

bool
EventQueue::step()
{
    skipCancelled();
    Entry *e = pendingTop();
    if (e == nullptr)
        return false;
    pendingPop();
    GENIE_ASSERT(e->when >= _curTick, "event order went backwards");
    _curTick = e->when;
    --liveEvents;
    ++executed;
    // Pull the dispatch state out so the entry can be recycled before
    // the handler runs: the handler may reschedule and reuse the slot.
    // Recycling first also makes a deschedule() of the now-firing id
    // from inside the handler a harmless stale-generation no-op.
    const RawEvent fn = e->fn;
    void *const ctx = e->ctx;
    const std::uint64_t arg = e->arg;
    const char *const kind = e->kind;
    const Tick when = e->when;
    const std::uint64_t flowFrom = e->flowFrom;
    std::function<void()> action;
    if (fn == nullptr)
        action = std::move(e->action);
    freeEntry(e);
    if (_tracer != nullptr) {
        // Hand the captured origin to the firing action: the first
        // span it records closes the flow edge, and inheriting the
        // origin as the cursor keeps causality threaded through
        // span-less intermediary events (e.g. a chain of cpu.step
        // events between a DMA completion and the next ioctl).
        _pendingOrigin = flowFrom;
        _flowCursor = flowFrom;
    }
    if (_profiler != nullptr) {
        _profiler->beginEvent(when, kind);
        if (fn != nullptr)
            fn(ctx, arg);
        else
            action();
        _profiler->endEvent();
    } else {
        if (fn != nullptr)
            fn(ctx, arg);
        else
            action();
    }
    return true;
}

Tick
EventQueue::run(Tick until)
{
    while (true) {
        Tick next = nextTick();
        if (next == maxTick || next > until)
            break;
        step();
    }
    if (until != maxTick && _curTick < until)
        _curTick = until;
    return _curTick;
}

void
EventQueue::checkDrained() const
{
    if (liveEvents != 0) {
        panic("EventQueue not drained: %zu live event(s) remain, "
              "next at tick %llu",
              liveEvents, (unsigned long long)nextTick());
    }
}

} // namespace genie
