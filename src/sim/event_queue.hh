/**
 * @file
 * The discrete-event simulation kernel.
 *
 * An EventQueue owns the global tick counter for one simulated system.
 * There is deliberately no global/singleton queue: each Soc instance
 * owns its own EventQueue so that design-space sweeps can run thousands
 * of independent simulations concurrently on different threads.
 *
 * THE ORDERING CONTRACT: events fire in the strict total order
 * (when ascending, then seq ascending), where seq is the schedule
 * order — equal-tick events fire FIFO. Every queue strategy
 * (sim/queue_strategy.hh) implements exactly this order, which is why
 * the strategy knob is purely a host-speed choice: stats, traces and
 * fingerprints are byte-identical across strategies
 * (tests/test_queue_diff.cc).
 *
 * Entry lifetime (Genie-Turbo): entries live in an ObjectArena
 * (sim/event_arena.hh) — bump-allocated blocks with freelist
 * recycling, no per-schedule new/delete. An Entry is destroyed at
 * exactly one of three points: when it fires (step()), when a
 * cancelled entry is lazily reaped at the pending-set head
 * (skipCancelled()), or in the destructor. EventIds encode
 * (slot, generation) into the arena so deschedule() is an O(1) array
 * probe, and allocatedEntries() exposes the arena's live count so
 * tests can prove the accounting closes under any deschedule()/run()
 * interleaving.
 *
 * Hot-path dispatch: beside the std::function path, schedule sites
 * can pass a raw function pointer + context word
 * (scheduleFlowRaw()/...). The kernel then skips std::function
 * construction, move and destruction entirely — the devirtualized
 * fast path the hottest kinds (accel.tick, accel.nodeComplete,
 * cpu.step, bus.deliver, dram.finish) use.
 */

#ifndef GENIE_SIM_EVENT_QUEUE_HH
#define GENIE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_arena.hh"
#include "sim/ladder_queue.hh"
#include "sim/queue_strategy.hh"
#include "sim/types.hh"

namespace genie
{

class Tracer;
class StatGroup;
class StatRegistry;
class FaultInjector;

/**
 * Opaque handle identifying a scheduled event (for cancellation).
 * Encodes the arena (slot, generation) pair; a handle for a fired or
 * cancelled event goes stale (its slot's generation moves on) and
 * deschedule() on it is a safe no-op.
 */
using EventId = std::uint64_t;

/** Sentinel returned for "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Host-side execution observer (Genie-Metrics self-profiling). The
 * queue calls beginEvent()/endEvent() around every fired action so an
 * implementation can attribute wall-clock time and event counts per
 * event kind. Declared here as an abstract hook so the simulation
 * kernel never depends on host clocks itself; the concrete
 * wall-clock implementation lives in src/metrics/profiler.hh.
 */
class EventProfiler
{
  public:
    virtual ~EventProfiler() = default;

    /** An event tagged @p kind (may be null = untagged) is about to
     * execute at simulated time @p when. */
    virtual void beginEvent(Tick when, const char *kind) = 0;

    /** The event begun last has finished executing. */
    virtual void endEvent() = 0;
};

/**
 * The discrete event queue: deterministic (when, seq) ordering, O(1)
 * cancellation, arena-pooled entries, and a pluggable pending-set
 * strategy (binary heap or self-tuning ladder queue).
 */
class EventQueue
{
  public:
    /**
     * Raw-dispatch event handler: @p ctx is the scheduling component
     * (typically `this`), @p arg one payload word packed by the
     * schedule site. The devirtualized alternative to std::function
     * for hot kinds.
     */
    using RawEvent = void (*)(void *ctx, std::uint64_t arg);

    explicit EventQueue(QueueStrategy s = QueueStrategy::Ladder)
        : strat(s)
    {
    }
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The pending-set strategy this queue runs on. */
    QueueStrategy strategy() const { return strat; }

    /** Current simulated time in ticks. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule @p action to run at absolute time @p when. @p kind is
     * an optional static-string tag ("bus.deliver", "dram.tick", ...)
     * used by the attached EventProfiler to attribute host time per
     * component/event kind; untagged events profile as "(untagged)".
     * The string is not copied — pass a literal or a string that
     * outlives the event.
     * @return a handle usable with deschedule().
     */
    EventId schedule(Tick when, std::function<void()> action,
                     const char *kind = nullptr);

    /** Schedule @p action @p delta ticks in the future. */
    EventId
    scheduleIn(Tick delta, std::function<void()> action,
               const char *kind = nullptr)
    {
        return schedule(_curTick + delta, std::move(action), kind);
    }

    /**
     * Flow-aware variant of schedule() (Genie-Scope): the event
     * additionally captures the ambient flow cursor — the id of the
     * span most recently recorded in the currently executing event —
     * as its causal origin. When the event fires, the origin becomes
     * the pending flow source, and the first span the fired action
     * records closes a flowFrom edge back to it (trace/tracer.hh).
     * With tracing disabled the cursor is permanently 0 and this is
     * schedule() plus one integer copy; recording is strictly
     * passive either way — traced results stay byte-identical to
     * untraced.
     */
    EventId
    scheduleFlow(Tick when, std::function<void()> action,
                 const char *kind = nullptr)
    {
        return scheduleImpl(when, std::move(action), kind,
                            _flowCursor);
    }

    /** Flow-aware variant of scheduleIn(). */
    EventId
    scheduleFlowIn(Tick delta, std::function<void()> action,
                   const char *kind = nullptr)
    {
        return scheduleImpl(_curTick + delta, std::move(action), kind,
                            _flowCursor);
    }

    /**
     * Raw-dispatch schedule (Genie-Turbo fast path): @p fn fires as
     * fn(ctx, arg) with no std::function anywhere on the path. Flow
     * semantics match scheduleFlow(). Same ordering, cancellation and
     * profiling behavior as the std::function path — a site may be
     * converted freely without changing results.
     */
    EventId
    scheduleFlowRaw(Tick when, RawEvent fn, void *ctx,
                    std::uint64_t arg, const char *kind = nullptr)
    {
        return scheduleRawImpl(when, fn, ctx, arg, kind, _flowCursor);
    }

    /** Raw-dispatch scheduleFlowIn(). */
    EventId
    scheduleFlowRawIn(Tick delta, RawEvent fn, void *ctx,
                      std::uint64_t arg, const char *kind = nullptr)
    {
        return scheduleRawImpl(_curTick + delta, fn, ctx, arg, kind,
                               _flowCursor);
    }

    /** Raw-dispatch schedule() (no flow capture). */
    EventId
    scheduleRaw(Tick when, RawEvent fn, void *ctx, std::uint64_t arg,
                const char *kind = nullptr)
    {
        return scheduleRawImpl(when, fn, ctx, arg, kind, 0);
    }

    /** Cancel a previously scheduled event. Safe on fired events. */
    void deschedule(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveEvents == 0; }

    /** Number of live (scheduled, uncancelled, unfired) events. */
    std::size_t size() const { return liveEvents; }

    /** Tick of the next live event, or maxTick if none. */
    Tick nextTick() const;

    /**
     * Run events until the queue is empty or @p until is reached
     * (events at exactly @p until are executed).
     * @return the final current tick.
     */
    Tick run(Tick until = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    /** Total number of events executed since construction. */
    std::uint64_t numExecuted() const { return executed; }

    /**
     * Arena-owned Entry allocations currently alive (live events plus
     * cancelled-but-unreaped ones). Debug/test hook for the entry
     * arena; always >= size().
     */
    std::size_t allocatedEntries() const { return arena.live(); }

    /**
     * Attach the event recorder for this queue's system (see
     * trace/tracer.hh). The queue does not own the Tracer; the Soc
     * that owns both keeps the Tracer alive for the queue's lifetime.
     * Null (the default) means tracing is disabled and emission sites
     * skip all work.
     */
    void setTracer(Tracer *t) { _tracer = t; }

    /** The attached Tracer, or null when tracing is disabled. */
    Tracer *tracer() const { return _tracer; }

    /**
     * Attach this system's StatRegistry (see sim/stats.hh). Like the
     * Tracer slot, the queue does not own it; it is the rendezvous
     * point through which components register their StatGroups at
     * construction without extra constructor plumbing. Null (the
     * default) makes registerStats() a no-op.
     */
    void setStatRegistry(StatRegistry *r) { _statRegistry = r; }

    /** The attached registry, or null. */
    StatRegistry *statRegistry() const { return _statRegistry; }

    /** Register @p group with the attached registry, if any. The
     * one-liner every SimObject constructor calls. */
    void registerStats(StatGroup &group);

    /**
     * Attach this system's fault campaign engine (see
     * fault/fault_injector.hh). Same rendezvous pattern as the Tracer
     * and StatRegistry slots: the queue does not own the injector,
     * and null (the default, and the only state in fault-free runs)
     * means every injection site skips all work after one pointer
     * test — a fault-free build and a zero-rate campaign execute the
     * identical instruction stream.
     */
    void setFaultInjector(FaultInjector *f) { _faultInjector = f; }

    /** The attached fault injector, or null when faults are off. */
    FaultInjector *faultInjector() const { return _faultInjector; }

    /**
     * Attach a host-side execution profiler; every fired event is
     * bracketed with beginEvent()/endEvent(). Null (the default)
     * disables profiling at the cost of one pointer test per event.
     * Observability only: the profiler must never mutate simulation
     * state, so profiled and unprofiled runs produce identical
     * results.
     */
    void setProfiler(EventProfiler *p) { _profiler = p; }

    /** The attached profiler, or null. */
    EventProfiler *profiler() const { return _profiler; }

    // ---- Ambient flow cursor (Genie-Scope causal links) ----
    //
    // The queue carries two span ids that thread causality between
    // events without the kernel depending on the trace library: the
    // *cursor* (span most recently recorded while the current event
    // executes) and the *pending origin* (the firing event's captured
    // flowFrom, consumed by the first span the action records). Both
    // are written only by the attached Tracer and by step(); they are
    // observability state, so the setters are const like the lazily
    // reaped pending set.

    /** Span id the next scheduleFlow() call records as its origin. */
    std::uint64_t flowCursor() const { return _flowCursor; }

    /** Advance the cursor: @p spanId was just recorded in the
     * currently executing event (Tracer-only call). */
    void setFlowCursor(std::uint64_t spanId) const
    {
        _flowCursor = spanId;
    }

    /** The firing event's captured origin, or 0 once consumed. */
    std::uint64_t pendingFlowOrigin() const { return _pendingOrigin; }

    /** Consume the pending origin after recording its flow edge
     * (Tracer-only call). */
    void consumeFlowOrigin() const { _pendingOrigin = 0; }

    /**
     * Invariant check: panics if any live (scheduled, uncancelled,
     * unfired) event remains. Call after run() on a flow that must
     * drain completely; a leftover event is a leaked handshake or a
     * component that kept self-rescheduling past the end of the run.
     */
    void checkDrained() const;

  private:
    /**
     * One pending event. Layout is hot-path packed: the ordering key
     * (when, seq) leads so strategy comparisons touch the first cache
     * line; the 32-byte std::function tail is only visited on the
     * non-raw dispatch path.
     */
    struct Entry
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        RawEvent fn = nullptr; ///< non-null => raw fast dispatch
        void *ctx = nullptr;
        std::uint64_t arg = 0;
        const char *kind = nullptr; ///< profiler attribution tag
        /** Causal origin span captured by scheduleFlow(); 0 = none. */
        std::uint64_t flowFrom = 0;
        std::uint32_t slot = 0; ///< arena slot owning this entry
        bool cancelled = false;
        std::function<void()> action; ///< empty on the raw path
    };

    EventId scheduleImpl(Tick when, std::function<void()> action,
                         const char *kind, std::uint64_t flowFrom);
    EventId scheduleRawImpl(Tick when, RawEvent fn, void *ctx,
                            std::uint64_t arg, const char *kind,
                            std::uint64_t flowFrom);

    /** Allocate + enqueue a blank entry keyed (when, nextSeq) and
     * mint its (slot, generation) EventId. */
    Entry *enqueueEntry(Tick when, const char *kind,
                        std::uint64_t flowFrom, EventId &idOut);

    struct EntryCompare
    {
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    // EventId <-> arena (slot, generation) packing. slot+1 keeps every
    // valid id distinct from invalidEventId.
    static EventId makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (EventId(slot + 1) << 32) | EventId(gen);
    }

    // ---- Strategy seam: the pending set ----
    // Exactly one of `heap` / `ladder` is in use, chosen at
    // construction; both retire entries in identical (when, seq)
    // order. Mutable alongside the arena: lazy reaping of cancelled
    // entries happens from const queries (nextTick).

    void
    pendingPush(Entry *e) const
    {
        if (strat == QueueStrategy::Ladder)
            ladder.push(e);
        else
            heap.push(e);
    }

    Entry *
    pendingTop() const
    {
        if (strat == QueueStrategy::Ladder)
            return ladder.top();
        return heap.empty() ? nullptr : heap.top();
    }

    void
    pendingPop() const
    {
        if (strat == QueueStrategy::Ladder)
            ladder.pop();
        else
            heap.pop();
    }

    /** Pop cancelled entries off the head of the pending set. */
    void skipCancelled() const;

    /** Destroy @p e's arena slot, keeping the live count honest. */
    void freeEntry(const Entry *e) const;

    QueueStrategy strat;
    Tick _curTick = 0;
    Tracer *_tracer = nullptr;
    StatRegistry *_statRegistry = nullptr;
    EventProfiler *_profiler = nullptr;
    FaultInjector *_faultInjector = nullptr;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t liveEvents = 0;
    // Ambient flow state (see the accessor block above): written by
    // the attached Tracer through const handles, hence mutable.
    mutable std::uint64_t _flowCursor = 0;
    mutable std::uint64_t _pendingOrigin = 0;

    // Entry storage (see event_arena.hh): the pending structures hold
    // arena-owned pointers; cancellation marks the entry and the head
    // scan lazily destroys it.
    mutable ObjectArena<Entry> arena;
    mutable std::priority_queue<Entry *, std::vector<Entry *>,
                                EntryCompare> heap;
    mutable LadderQueue<Entry> ladder;
};

} // namespace genie

#endif // GENIE_SIM_EVENT_QUEUE_HH
