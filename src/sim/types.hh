/**
 * @file
 * Fundamental simulator-wide type definitions.
 *
 * Genie follows gem5's convention of a picosecond-granularity global
 * tick counter. All latencies in the model are ultimately expressed in
 * ticks; clocked objects convert between their local cycles and ticks
 * through their ClockDomain.
 */

#ifndef GENIE_SIM_TYPES_HH
#define GENIE_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace genie
{

/** Absolute simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A relative count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** A (simulated physical or trace) memory address. */
using Addr = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = 1000ull * 1000 * 1000;
constexpr Tick tickPerSec = 1000ull * 1000 * 1000 * 1000;

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMhz(std::uint64_t mhz)
{
    return tickPerSec / (mhz * 1000 * 1000);
}

/** Round @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, Addr align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True if @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a power-of-two value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) { v >>= 1; ++l; }
    return l;
}

} // namespace genie

#endif // GENIE_SIM_TYPES_HH
