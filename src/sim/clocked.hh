/**
 * @file
 * Clock domains and the Clocked mixin.
 *
 * A ClockDomain converts between a local cycle count and global ticks.
 * Clocked objects (caches, buses, datapaths, ...) schedule their work on
 * their own clock edges, mirroring gem5's ClockedObject.
 */

#ifndef GENIE_SIM_CLOCKED_HH
#define GENIE_SIM_CLOCKED_HH

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace genie
{

/** A clock domain: a period in ticks. */
class ClockDomain
{
  public:
    explicit ClockDomain(Tick period)
        : _period(period)
    {
        if (period == 0)
            fatal("clock domain period must be non-zero");
    }

    static ClockDomain fromMhz(std::uint64_t mhz)
    {
        return ClockDomain(periodFromMhz(mhz));
    }

    Tick period() const { return _period; }

    double frequencyMhz() const
    {
        return 1e6 / static_cast<double>(_period);
    }

  private:
    Tick _period;
};

/**
 * Mixin giving an object a clock and convenient cycle/tick conversion.
 * All clocks are assumed aligned at tick 0.
 */
class Clocked
{
  public:
    Clocked(EventQueue &eq, ClockDomain domain)
        : eventq(eq), clock(domain)
    {}

    Tick clockPeriod() const { return clock.period(); }

    /** Current time, in whole local cycles (floor). */
    Cycles curCycle() const { return eventq.curTick() / clock.period(); }

    /** Ticks corresponding to @p cycles of this clock. */
    Tick cyclesToTicks(Cycles cycles) const
    {
        return cycles * clock.period();
    }

    /** Whole cycles covering @p ticks (ceiling). */
    Cycles ticksToCycles(Tick ticks) const
    {
        return divCeil(ticks, clock.period());
    }

    /**
     * Absolute tick of the next clock edge at least @p cycles ahead.
     * clockEdge(0) is the current tick if exactly on an edge, else the
     * next edge.
     */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        Tick now = eventq.curTick();
        Tick edge = divCeil(now, clock.period()) * clock.period();
        return edge + cycles * clock.period();
    }

    EventQueue &eventQueue() { return eventq; }
    const EventQueue &eventQueue() const { return eventq; }

    /** Schedule @p action on the clock edge @p cycles ahead. @p kind
     * tags the event for profiler attribution. Flow-aware: Clocked
     * components are exactly the instrumented ones, so their events
     * carry the ambient span cursor as a causal origin. */
    EventId
    scheduleCycles(Cycles cycles, std::function<void()> action,
                   const char *kind = nullptr)
    {
        return eventq.scheduleFlow(clockEdge(cycles),
                                   std::move(action), kind);
    }

    /** Raw-dispatch scheduleCycles() (Genie-Turbo fast path): fires
     * fn(ctx, arg) with no std::function on the path. Same flow
     * capture and ordering as scheduleCycles(). */
    EventId
    scheduleCyclesRaw(Cycles cycles, EventQueue::RawEvent fn,
                      void *ctx, std::uint64_t arg,
                      const char *kind = nullptr)
    {
        return eventq.scheduleFlowRaw(clockEdge(cycles), fn, ctx, arg,
                                      kind);
    }

  protected:
    EventQueue &eventq;
    ClockDomain clock;
};

} // namespace genie

#endif // GENIE_SIM_CLOCKED_HH
