/**
 * @file
 * Logging and error-reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * - panic():  something happened that should never happen regardless of
 *             user input; a simulator bug. Aborts.
 * - fatal():  the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments). Throws FatalError
 *             so library users and tests can catch it.
 * - warn():   something may not be modeled as well as it could be.
 * - inform(): neutral status messages.
 */

#ifndef GENIE_SIM_LOGGING_HH
#define GENIE_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace genie
{

/** Exception thrown by fatal(): a user-caused, recoverable-by-caller
 * configuration or usage error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error by throwing FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious but non-fatal conditions on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report neutral status messages on stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (useful in large DSE sweeps). */
void setQuiet(bool quiet);
bool quiet();

} // namespace genie

/** Assert-like macro that survives NDEBUG builds and reports context. */
#define GENIE_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::genie::panic("assertion '%s' failed at %s:%d: %s", #cond,    \
                           __FILE__, __LINE__,                             \
                           ::genie::format(__VA_ARGS__).c_str());          \
        }                                                                  \
    } while (0)

#endif // GENIE_SIM_LOGGING_HH
