/**
 * @file
 * SimObject: the common base for named, stat-bearing model components.
 */

#ifndef GENIE_SIM_SIM_OBJECT_HH
#define GENIE_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/stats.hh"

namespace genie
{

/**
 * Base class for all simulated hardware components. Provides a
 * hierarchical name and a statistics group.
 */
class SimObject
{
  public:
    explicit SimObject(std::string name)
        : _name(std::move(name)), _stats(_name)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

  private:
    std::string _name;
    StatGroup _stats;
};

} // namespace genie

#endif // GENIE_SIM_SIM_OBJECT_HH
