#include "scratchpad.hh"

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

Scratchpad::Scratchpad(std::string name, EventQueue &eq,
                       ClockDomain domain)
    : SimObject(std::move(name)), Clocked(eq, domain),
      statReads(stats().add("reads", "scratchpad word reads")),
      statWrites(stats().add("writes", "scratchpad word writes")),
      statConflicts(stats().add("conflicts",
                                "accesses retried due to bank conflicts"))
{
    eq.registerStats(stats());
}

int
Scratchpad::addArray(const ArrayConfig &cfg)
{
    if (cfg.partitions == 0 || cfg.portsPerPartition == 0)
        fatal("scratchpad array '%s' needs >=1 partition and port",
              cfg.name.c_str());
    ArrayState st;
    st.cfg = cfg;
    st.used.assign(cfg.partitions, 0);
    arrays.push_back(std::move(st));
    return static_cast<int>(arrays.size() - 1);
}

bool
Scratchpad::tryAccess(int arrayId, Addr offset, bool isWrite)
{
    GENIE_ASSERT(arrayId >= 0 &&
                     static_cast<std::size_t>(arrayId) < arrays.size(),
                 "bad scratchpad array id %d", arrayId);
    ArrayState &st = arrays[static_cast<std::size_t>(arrayId)];

    Cycles now = curCycle();
    if (st.stamp != now) {
        st.stamp = now;
        std::fill(st.used.begin(), st.used.end(), 0);
    }

    std::size_t bank = (offset / st.cfg.wordBytes) % st.cfg.partitions;
    if (st.used[bank] >= st.cfg.portsPerPartition) {
        ++statConflicts;
        if (Tracer *t = tracerFor(eventq, TraceCategory::Spad))
            t->instant(TraceCategory::Spad, name(), "conflict");
        return false;
    }
    ++st.used[bank];
    if (isWrite) {
        ++statWrites;
        ++st.writes;
    } else {
        ++statReads;
        ++st.reads;
    }
    return true;
}

std::uint64_t
Scratchpad::arrayReads(int arrayId) const
{
    return arrays[static_cast<std::size_t>(arrayId)].reads;
}

std::uint64_t
Scratchpad::arrayWrites(int arrayId) const
{
    return arrays[static_cast<std::size_t>(arrayId)].writes;
}

const Scratchpad::ArrayConfig &
Scratchpad::arrayConfig(int arrayId) const
{
    GENIE_ASSERT(arrayId >= 0 &&
                     static_cast<std::size_t>(arrayId) < arrays.size(),
                 "bad scratchpad array id %d", arrayId);
    return arrays[static_cast<std::size_t>(arrayId)].cfg;
}

std::uint64_t
Scratchpad::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &a : arrays)
        total += a.cfg.sizeBytes;
    return total;
}

unsigned
Scratchpad::peakAccessesPerCycle() const
{
    unsigned total = 0;
    for (const auto &a : arrays)
        total += a.cfg.partitions * a.cfg.portsPerPartition;
    return total;
}

} // namespace genie
