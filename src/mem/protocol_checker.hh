/**
 * @file
 * Bus-side packet protocol checker (genie-verify runtime layer).
 *
 * Observes every request and response crossing the SystemBus and
 * enforces the request/response pairing discipline every client
 * relies on:
 *
 *  - each (port, reqId) pair is outstanding at most once;
 *  - every response matches an outstanding request from that port
 *    ("no response without a request");
 *  - the response command is the one Packet::makeResponse() defines
 *    for the request (ReadShared/ReadExclusive -> ReadResp,
 *    Upgrade/WriteReq/WriteInvalidate/Writeback -> WriteResp), or an
 *    ErrorResp —
 *    under fault injection any request may legally terminate with an
 *    error, and the requester's retry arrives as a fresh reqId;
 *  - at quiescence (checkQuiescent()), no request is still awaiting
 *    its response ("every reqId gets exactly one response").
 *
 * A violation is a simulator bug — a dropped handshake here is the
 * kind of defect that deadlocks one configuration in ten thousand
 * sweep points — so every check panics rather than warns. The
 * checker is allocated only when enabled (SystemBus::
 * enableProtocolChecker(), or by default under
 * GENIE_CHECK_INVARIANTS builds), so disabled runs pay a single
 * null-pointer test per packet.
 */

#ifndef GENIE_MEM_PROTOCOL_CHECKER_HH
#define GENIE_MEM_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <map>
#include <utility>

#include "mem/packet.hh"

namespace genie
{

class ProtocolChecker
{
  public:
    /** Record a request entering the bus; @p pkt.src must be final. */
    void onRequest(const Packet &pkt);

    /** Validate and retire a response against its request. */
    void onResponse(const Packet &pkt);

    /** Requests still awaiting a response. */
    std::size_t outstanding() const { return inFlight.size(); }

    /** Panic if any request never received its response. */
    void checkQuiescent() const;

    std::uint64_t requestsSeen() const { return numRequests; }
    std::uint64_t responsesSeen() const { return numResponses; }

  private:
    using Key = std::pair<BusPortId, std::uint64_t>;

    // Ordered map so diagnostics print the lowest leaked port/reqId
    // deterministically.
    std::map<Key, MemCmd> inFlight;
    std::uint64_t numRequests = 0;
    std::uint64_t numResponses = 0;
};

} // namespace genie

#endif // GENIE_MEM_PROTOCOL_CHECKER_HH
