#include "protocol_checker.hh"

#include "sim/logging.hh"

namespace genie
{

void
ProtocolChecker::onRequest(const Packet &pkt)
{
    if (pkt.isResponse()) {
        panic("protocol: response command %u sent on the request path "
              "(port %d, reqId %llu)",
              static_cast<unsigned>(pkt.cmd), pkt.src,
              (unsigned long long)pkt.reqId);
    }
    if (pkt.src == invalidBusPort)
        panic("protocol: request with no source port (reqId %llu)",
              (unsigned long long)pkt.reqId);
    auto [it, inserted] =
        inFlight.emplace(Key{pkt.src, pkt.reqId}, pkt.cmd);
    (void)it;
    if (!inserted) {
        panic("protocol: duplicate outstanding reqId %llu from port "
              "%d",
              (unsigned long long)pkt.reqId, pkt.src);
    }
    ++numRequests;
}

void
ProtocolChecker::onResponse(const Packet &pkt)
{
    if (!pkt.isResponse()) {
        panic("protocol: non-response command %u on the response path "
              "(port %d, reqId %llu)",
              static_cast<unsigned>(pkt.cmd), pkt.src,
              (unsigned long long)pkt.reqId);
    }
    auto it = inFlight.find(Key{pkt.src, pkt.reqId});
    if (it == inFlight.end()) {
        panic("protocol: response without a matching request (port "
              "%d, reqId %llu) — duplicate or spurious response",
              pkt.src, (unsigned long long)pkt.reqId);
    }
    Packet req;
    req.cmd = it->second;
    MemCmd expected = req.makeResponse().cmd;
    // An ErrorResp legally terminates any outstanding request: fault
    // injection may fail a read or a write at any memory boundary,
    // and the requester's retry (if any) arrives as a fresh reqId.
    if (pkt.cmd != expected && pkt.cmd != MemCmd::ErrorResp) {
        panic("protocol: wrong response pairing for port %d reqId "
              "%llu: request cmd %u expects response cmd %u, got %u",
              pkt.src, (unsigned long long)pkt.reqId,
              static_cast<unsigned>(it->second),
              static_cast<unsigned>(expected),
              static_cast<unsigned>(pkt.cmd));
    }
    inFlight.erase(it);
    ++numResponses;
}

void
ProtocolChecker::checkQuiescent() const
{
    if (inFlight.empty())
        return;
    const auto &[key, cmd] = *inFlight.begin();
    panic("protocol: %zu request(s) never received a response; first "
          "leaked: port %d reqId %llu cmd %u",
          inFlight.size(), key.first, (unsigned long long)key.second,
          static_cast<unsigned>(cmd));
}

} // namespace genie
