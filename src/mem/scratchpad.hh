/**
 * @file
 * Partitioned accelerator scratchpads.
 *
 * Each workload array mapped to local memory becomes one scratchpad
 * that can be partitioned into smaller banks (cyclic partitioning on
 * the word index) to increase memory bandwidth to the datapath lanes —
 * the paper's "scratchpad partitioning" design parameter. Every
 * partition accepts a limited number of accesses per accelerator cycle
 * (its ports); bank conflicts are resolved by the datapath retrying in
 * the next cycle.
 */

#ifndef GENIE_MEM_SCRATCHPAD_HH
#define GENIE_MEM_SCRATCHPAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace genie
{

class Scratchpad : public SimObject, public Clocked
{
  public:
    struct ArrayConfig
    {
        std::string name;
        std::uint64_t sizeBytes = 0;
        unsigned wordBytes = 4;
        unsigned partitions = 1;
        /** Read/write ports per partition per cycle. */
        unsigned portsPerPartition = 1;
    };

    Scratchpad(std::string name, EventQueue &eq, ClockDomain domain);

    /** Register an array; @return its array id. */
    int addArray(const ArrayConfig &cfg);

    /**
     * Try to perform an access in the current cycle.
     * @return true if a partition port was granted (data available
     * next cycle); false on a bank conflict.
     */
    bool tryAccess(int arrayId, Addr offset, bool isWrite);

    const ArrayConfig &arrayConfig(int arrayId) const;
    std::size_t numArrays() const { return arrays.size(); }

    /** Total bytes across all arrays (the SRAM sizing input). */
    std::uint64_t totalBytes() const;

    /** Peak words per cycle across all partitions (bandwidth input). */
    unsigned peakAccessesPerCycle() const;

    double reads() const { return statReads.value(); }
    double writes() const { return statWrites.value(); }
    double conflicts() const { return statConflicts.value(); }

    /** Per-array access counts (the power model needs per-bank sizes). */
    std::uint64_t arrayReads(int arrayId) const;
    std::uint64_t arrayWrites(int arrayId) const;

  private:
    struct ArrayState
    {
        ArrayConfig cfg;
        /** Per-partition usage counters, reset each cycle. */
        std::vector<unsigned> used;
        Cycles stamp = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    std::vector<ArrayState> arrays;

    Stat &statReads;
    Stat &statWrites;
    Stat &statConflicts;
};

} // namespace genie

#endif // GENIE_MEM_SCRATCHPAD_HH
