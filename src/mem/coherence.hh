/**
 * @file
 * The MOESI transition table, as data (genie-verify runtime layer).
 *
 * Every coherence state change in the cache model goes through
 * Cache::transition(), which consults this table and panics on an
 * edge the protocol does not define. Encoding the protocol as an
 * auditable table (rather than scattered assignments) is what lets a
 * refactor that accidentally introduces, say, S->E without a bus
 * transaction fail loudly in the first simulation instead of skewing
 * sweep results silently.
 *
 * The table mirrors the snooping MOESI protocol the bus implements:
 *
 *   fills:    I -> S (shared fill), I -> E (exclusive clean fill),
 *             I -> M (fill with intent to modify)
 *   stores:   E -> M, M -> M (silent upgrade on a writable line)
 *   upgrades: S -> M, O -> M (Upgrade transaction completed)
 *   snoops:   M -> O, O -> O (ReadShared hits a dirty owner),
 *             E -> S, S -> S (ReadShared hits a clean line),
 *             any valid -> I (ReadExclusive / Upgrade /
 *             WriteInvalidate invalidation)
 *   locals:   any -> I (eviction, flush, invalidate),
 *             any -> E/M (functional prefill before the measured run)
 */

#ifndef GENIE_MEM_COHERENCE_HH
#define GENIE_MEM_COHERENCE_HH

#include <cstdint>

namespace genie
{

/** MOESI line states. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

constexpr bool
stateDirty(CoherenceState s)
{
    return s == CoherenceState::Modified || s == CoherenceState::Owned;
}

constexpr bool
stateValid(CoherenceState s)
{
    return s != CoherenceState::Invalid;
}

constexpr bool
stateWritable(CoherenceState s)
{
    return s == CoherenceState::Modified ||
           s == CoherenceState::Exclusive;
}

/** What caused a coherence state change. */
enum class CoherenceEvent : std::uint8_t
{
    StoreHit,       ///< write hit on a writable line
    FillShared,     ///< line fill, another cache holds the line
    FillExclusive,  ///< line fill, no other sharer
    FillModified,   ///< line fill with intent to modify
    UpgradeDone,    ///< Upgrade transaction completed
    SnoopShared,    ///< snooped another cache's ReadShared
    SnoopExclusive, ///< snooped another cache's ReadExclusive
    SnoopUpgrade,   ///< snooped another cache's Upgrade
    SnoopWriteInv,  ///< snooped a one-way-coherent WriteInvalidate
    Evict,          ///< replacement victim
    Flush,          ///< explicit flush maintenance op
    Invalidate,     ///< explicit invalidate maintenance op
    Prefill,        ///< functional warm-up before the measured run
};

constexpr const char *
toString(CoherenceState s)
{
    switch (s) {
      case CoherenceState::Invalid:   return "I";
      case CoherenceState::Shared:    return "S";
      case CoherenceState::Exclusive: return "E";
      case CoherenceState::Owned:     return "O";
      case CoherenceState::Modified:  return "M";
    }
    return "?";
}

constexpr const char *
toString(CoherenceEvent e)
{
    switch (e) {
      case CoherenceEvent::StoreHit:       return "StoreHit";
      case CoherenceEvent::FillShared:     return "FillShared";
      case CoherenceEvent::FillExclusive:  return "FillExclusive";
      case CoherenceEvent::FillModified:   return "FillModified";
      case CoherenceEvent::UpgradeDone:    return "UpgradeDone";
      case CoherenceEvent::SnoopShared:    return "SnoopShared";
      case CoherenceEvent::SnoopExclusive: return "SnoopExclusive";
      case CoherenceEvent::SnoopUpgrade:   return "SnoopUpgrade";
      case CoherenceEvent::SnoopWriteInv:  return "SnoopWriteInv";
      case CoherenceEvent::Evict:          return "Evict";
      case CoherenceEvent::Flush:          return "Flush";
      case CoherenceEvent::Invalidate:     return "Invalidate";
      case CoherenceEvent::Prefill:        return "Prefill";
    }
    return "?";
}

/** True if the protocol defines the edge @p from -> @p to under
 * @p event. */
constexpr bool
moesiEdgeLegal(CoherenceState from, CoherenceState to,
               CoherenceEvent event)
{
    using S = CoherenceState;
    using E = CoherenceEvent;
    switch (event) {
      case E::StoreHit:
        return (from == S::Exclusive || from == S::Modified) &&
               to == S::Modified;
      case E::FillShared:
        return from == S::Invalid && to == S::Shared;
      case E::FillExclusive:
        return from == S::Invalid && to == S::Exclusive;
      case E::FillModified:
        return from == S::Invalid && to == S::Modified;
      case E::UpgradeDone:
        return (from == S::Shared || from == S::Owned) &&
               to == S::Modified;
      case E::SnoopShared:
        // Dirty owners supply data and (re)enter O; clean holders
        // demote to S.
        return ((from == S::Modified || from == S::Owned) &&
                to == S::Owned) ||
               ((from == S::Exclusive || from == S::Shared) &&
                to == S::Shared);
      case E::SnoopExclusive:
      case E::SnoopUpgrade:
      case E::SnoopWriteInv:
        // An ACP WriteInvalidate overwrites the whole region it
        // targets, so even a dirty holder simply drops its copy.
        return stateValid(from) && to == S::Invalid;
      case E::Evict:
      case E::Flush:
      case E::Invalidate:
        return to == S::Invalid;
      case E::Prefill:
        // Functional warm-up may install any line as clean-exclusive
        // or dirty, regardless of what it overwrites.
        return to == S::Exclusive || to == S::Modified;
    }
    return false;
}

static_assert(moesiEdgeLegal(CoherenceState::Modified,
                             CoherenceState::Owned,
                             CoherenceEvent::SnoopShared),
              "M must demote to O when a ReadShared is snooped");
static_assert(!moesiEdgeLegal(CoherenceState::Shared,
                              CoherenceState::Exclusive,
                              CoherenceEvent::FillExclusive),
              "S -> E without a bus transaction is illegal");
static_assert(!moesiEdgeLegal(CoherenceState::Owned,
                              CoherenceState::Exclusive,
                              CoherenceEvent::SnoopShared),
              "an owner never silently sheds dirty responsibility");
static_assert(moesiEdgeLegal(CoherenceState::Modified,
                             CoherenceState::Invalid,
                             CoherenceEvent::SnoopWriteInv),
              "a coherent ACP write must be able to invalidate a "
              "dirty CPU copy");
static_assert(!moesiEdgeLegal(CoherenceState::Modified,
                              CoherenceState::Owned,
                              CoherenceEvent::SnoopWriteInv),
              "a snooped WriteInvalidate never leaves a stale copy "
              "behind");
static_assert(!moesiEdgeLegal(CoherenceState::Invalid,
                              CoherenceState::Invalid,
                              CoherenceEvent::SnoopWriteInv),
              "snoop invalidations only apply to valid lines");

} // namespace genie

#endif // GENIE_MEM_COHERENCE_HH
