/**
 * @file
 * A table-based strided hardware prefetcher (the "Strided" entry in
 * the paper's Figure 3 parameter table).
 *
 * Streams are identified by the accessed array (the accelerator analog
 * of a load PC). Once a stream has produced the same address stride
 * twice in a row, prefetches are issued `degree` strides ahead.
 */

#ifndef GENIE_MEM_PREFETCHER_HH
#define GENIE_MEM_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace genie
{

class Cache;

class StridePrefetcher
{
  public:
    StridePrefetcher(Cache &cache, unsigned degree)
        : cache(cache), degree(degree)
    {}

    /** Observe a demand access and possibly issue prefetches. */
    void notify(int streamId, Addr addr);

  private:
    struct StreamEntry
    {
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        bool primed = false;
    };

    Cache &cache;
    unsigned degree;
    std::unordered_map<int, StreamEntry> table;
};

} // namespace genie

#endif // GENIE_MEM_PREFETCHER_HH
