/**
 * @file
 * The shared system bus.
 *
 * Models the paper's SoC interconnect: a single half-duplex shared bus
 * with a configurable data width (32 or 64 bits in the paper's sweeps),
 * round-robin arbitration across attached agents, and snooping cache
 * coherence. Bandwidth is width/8 bytes per bus cycle; every packet
 * occupies the bus for one header cycle plus its data cycles, so
 * contention between agents (DMA engine, accelerator cache, CPU cache)
 * appears as queueing delay — the paper's "shared resource contention"
 * consideration.
 *
 * An `infiniteBandwidth` switch reduces every occupancy to a single
 * cycle; it implements the unlimited-bandwidth configuration of the
 * Burger-style latency/bandwidth decomposition used for Figure 7.
 */

#ifndef GENIE_MEM_BUS_HH
#define GENIE_MEM_BUS_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/packet.hh"
#include "mem/protocol_checker.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace genie
{

/** Interface for request-initiating agents (caches, DMA engine). */
class BusClient
{
  public:
    virtual ~BusClient() = default;

    /** A response to one of this agent's requests arrived. */
    virtual void recvResponse(const Packet &pkt) = 0;

    /** Another agent's coherent request is being snooped. */
    virtual SnoopResult recvSnoop(const Packet &pkt)
    {
        (void)pkt;
        return {};
    }
};

/** Interface for the memory-side target (the DRAM controller). */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** Handle a request; the target must eventually respond through
     * SystemBus::sendResponse for reads and writes. */
    virtual void recvRequest(const Packet &pkt) = 0;
};

/** The shared system bus. */
class SystemBus : public SimObject, public Clocked
{
  public:
    struct Params
    {
        /** Data width in bits (32 or 64 in the paper). */
        unsigned widthBits = 32;
        /** Arbitration + address cycles charged per packet. */
        Cycles headerCycles = 1;
        /** Unlimited-bandwidth mode for Figure 7 decomposition. */
        bool infiniteBandwidth = false;
    };

    SystemBus(std::string name, EventQueue &eq, ClockDomain domain,
              Params params);

    /** Attach a requesting agent. @p snooper: participates in
     * coherence snooping. */
    BusPortId attachClient(BusClient *client, bool snooper);

    /** Set the memory-side target covering the whole address map. */
    void setTarget(BusTarget *target) { _target = target; }

    /** Queue a request from @p src. */
    void sendRequest(BusPortId src, Packet pkt);

    /** Queue a response destined for pkt.src (used by the target). */
    void sendResponse(Packet pkt);

    unsigned widthBits() const { return params.widthBits; }
    unsigned bytesPerCycle() const { return params.widthBits / 8; }

    /** Total ticks during which the bus was occupied. */
    Tick busyTicks() const { return static_cast<Tick>(statBusyTicks.value()); }

    /**
     * Attach a runtime protocol checker (genie-verify) that audits
     * every request/response pairing crossing this bus. Enabled by
     * default in GENIE_CHECK_INVARIANTS builds; idempotent.
     */
    void enableProtocolChecker();

    /** The attached checker, or nullptr when auditing is off. */
    ProtocolChecker *protocolChecker() { return checker.get(); }

  private:
    struct QueuedPacket
    {
        Packet pkt;
        bool isResponse;
    };

    /** Bus data-transfer occupancy for @p pkt, in bus cycles. */
    Cycles occupancyCycles(const Packet &pkt) const;

    /** Try to start the next transfer if the bus is free. */
    void arbitrate();

    /** Complete delivery of an in-flight packet. */
    void deliver(const QueuedPacket &qp);

    void scheduleArbitration(Tick when);

    Params params;
    BusTarget *_target = nullptr;

    std::vector<BusClient *> clients;
    std::vector<bool> snoopers;

    // Responses get a dedicated queue with priority over requests to
    // avoid protocol deadlock; requests use per-port queues served
    // round-robin.
    std::deque<QueuedPacket> respQueue;
    std::vector<std::deque<QueuedPacket>> reqQueues;
    std::size_t rrNext = 0;

    Tick busyUntil = 0;
    bool arbitrationScheduled = false;

    std::unique_ptr<ProtocolChecker> checker;

    Stat &statPackets;
    Stat &statDataBytes;
    Stat &statBusyTicks;
    Stat &statSnoops;
    Stat &statCacheToCache;
    /** Responses converted to ErrorResp NACKs by fault injection. */
    Stat &statErrors;
    /** Packets waiting (including the winner) at each arbitration. */
    Distribution &statQueueDepth;
};

} // namespace genie

#endif // GENIE_MEM_BUS_HH
