#include "bus.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

SystemBus::SystemBus(std::string name, EventQueue &eq, ClockDomain domain,
                     Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      statPackets(stats().add("packets", "packets transported")),
      statDataBytes(stats().add("dataBytes", "payload bytes moved")),
      statBusyTicks(stats().add("busyTicks", "ticks bus was occupied")),
      statSnoops(stats().add("snoops", "snooped coherent requests")),
      statCacheToCache(stats().add("cacheToCache",
                                   "owner-supplied data responses")),
      statErrors(stats().add("errors",
                             "responses NACKed by fault injection")),
      statQueueDepth(stats().addDistribution(
          "queueDepth", "queued packets seen at arbitration", 0.0,
          64.0, 16))
{
    if (params.widthBits % 8 != 0 || params.widthBits == 0)
        fatal("bus width must be a positive multiple of 8 bits");
    eq.registerStats(stats());
#if GENIE_CHECK_INVARIANTS
    enableProtocolChecker();
#endif
}

void
SystemBus::enableProtocolChecker()
{
    if (!checker)
        checker = std::make_unique<ProtocolChecker>();
}

BusPortId
SystemBus::attachClient(BusClient *client, bool snooper)
{
    clients.push_back(client);
    snoopers.push_back(snooper);
    reqQueues.emplace_back();
    return static_cast<BusPortId>(clients.size() - 1);
}

void
SystemBus::sendRequest(BusPortId src, Packet pkt)
{
    GENIE_ASSERT(src >= 0 && static_cast<std::size_t>(src) <
                     clients.size(),
                 "bad bus port %d", src);
    pkt.src = src;
    if (checker)
        checker->onRequest(pkt);
    reqQueues[static_cast<std::size_t>(src)].push_back({pkt, false});
    scheduleArbitration(clockEdge());
}

void
SystemBus::sendResponse(Packet pkt)
{
    GENIE_ASSERT(pkt.isResponse(), "sendResponse with non-response cmd");
    // Fault site: the bus NACKs an in-flight response — the payload
    // (if any) is dropped and the requester observes an ErrorResp
    // carrying the same reqId, so the (port, reqId) pairing the
    // ProtocolChecker audits stays intact and the requester's retry
    // machinery takes over. Responses that already carry an error
    // pass through untouched (no double injection).
    if (!pkt.isError()) {
        if (FaultInjector *fi = eventq.faultInjector();
            fi && fi->shouldFault(FaultSite::BusResp)) {
            pkt = pkt.makeError();
            ++statErrors;
        }
    }
    if (checker)
        checker->onResponse(pkt);
    respQueue.push_back({pkt, true});
    scheduleArbitration(clockEdge());
}

Cycles
SystemBus::occupancyCycles(const Packet &pkt) const
{
    if (params.infiniteBandwidth)
        return 1;
    Cycles cycles = params.headerCycles;
    if (cmdCarriesData(pkt.cmd))
        cycles += divCeil(pkt.size, bytesPerCycle());
    return cycles;
}

void
SystemBus::scheduleArbitration(Tick when)
{
    if (arbitrationScheduled)
        return;
    arbitrationScheduled = true;
    Tick at = std::max(when, std::max(busyUntil, eventq.curTick()));
    eventq.scheduleFlowRaw(at, [](void *c, std::uint64_t) {
        auto *self = static_cast<SystemBus *>(c);
        self->arbitrationScheduled = false;
        self->arbitrate();
    }, this, 0, "bus.arbitrate");
}

void
SystemBus::arbitrate()
{
    Tick now = eventq.curTick();
    if (now < busyUntil) {
        scheduleArbitration(busyUntil);
        return;
    }

    std::size_t depth = respQueue.size();
    for (const auto &q : reqQueues)
        depth += q.size();
    if (depth > 0)
        statQueueDepth.sample(static_cast<double>(depth));

    QueuedPacket qp;
    bool found = false;
    if (!respQueue.empty()) {
        qp = respQueue.front();
        respQueue.pop_front();
        found = true;
    } else {
        // Round-robin over request queues.
        for (std::size_t i = 0; i < reqQueues.size() && !found; ++i) {
            std::size_t port = (rrNext + i) % reqQueues.size();
            if (!reqQueues[port].empty()) {
                qp = reqQueues[port].front();
                reqQueues[port].pop_front();
                rrNext = (port + 1) % reqQueues.size();
                found = true;
            }
        }
    }
    if (!found)
        return;

    Cycles occ = occupancyCycles(qp.pkt);
    Tick done = clockEdge(occ);
    if (Tracer *t = tracerFor(eventq, TraceCategory::Bus)) {
        t->complete(TraceCategory::Bus, name(),
                    qp.isResponse ? "resp" : "req", now, done);
    }
    statBusyTicks += static_cast<double>(done - now);
    busyUntil = done;
    ++statPackets;
    if (cmdCarriesData(qp.pkt.cmd))
        statDataBytes += qp.pkt.size;

    eventq.scheduleFlow(done, [this, qp] { deliver(qp); },
                        "bus.deliver");

    // Let the next packet arbitrate once this transfer is done.
    bool more = !respQueue.empty();
    for (const auto &q : reqQueues)
        more = more || !q.empty();
    if (more)
        scheduleArbitration(done);
}

void
SystemBus::deliver(const QueuedPacket &qp)
{
    if (qp.isResponse) {
        GENIE_ASSERT(qp.pkt.src >= 0 &&
                         static_cast<std::size_t>(qp.pkt.src) <
                             clients.size(),
                     "response to bad port %d", qp.pkt.src);
        clients[static_cast<std::size_t>(qp.pkt.src)]
            ->recvResponse(qp.pkt);
        return;
    }

    const Packet &pkt = qp.pkt;

    // Snoop phase for coherent requests.
    SnoopResult snoop;
    if (cmdNeedsSnoop(pkt.cmd)) {
        ++statSnoops;
        for (std::size_t i = 0; i < clients.size(); ++i) {
            if (static_cast<BusPortId>(i) == pkt.src || !snoopers[i])
                continue;
            snoop.merge(clients[i]->recvSnoop(pkt));
        }
    }

    if (pkt.cmd == MemCmd::Upgrade) {
        // No data movement: sharers were invalidated during the snoop.
        Packet resp = pkt.makeResponse();
        sendResponse(resp);
        return;
    }

    if (snoop.ownerSupplies) {
        // MOESI cache-to-cache transfer: the owning cache supplies the
        // line after its array-access latency; memory is not involved.
        ++statCacheToCache;
        Packet resp = pkt.makeResponse();
        resp.cacheToCache = true;
        resp.sharerPresent = true;
        eventq.scheduleFlowIn(snoop.supplyLatency,
                          [this, resp] { sendResponse(resp); },
                          "bus.snoopSupply");
        return;
    }

    GENIE_ASSERT(_target != nullptr, "bus has no memory target");
    Packet fwd = pkt;
    fwd.sharerPresent = snoop.sharerPresent;
    _target->recvRequest(fwd);
}

} // namespace genie
