/**
 * @file
 * Full/empty ("ready") bits for DMA-triggered computation
 * (Section IV-B2).
 *
 * Data readiness is tracked at cache-line granularity, consistent with
 * the preceding flush operations. The bits live in a separate SRAM
 * structure indexed by a slice of the load address; a load checks the
 * bit in parallel with the data array and, if the bit is clear, the
 * issuing lane stalls until the DMA engine fills the line and sets the
 * bit, at which point registered waiters are woken.
 */

#ifndef GENIE_MEM_FULL_EMPTY_HH
#define GENIE_MEM_FULL_EMPTY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace genie
{

class FullEmptyBits : public SimObject
{
  public:
    using Waiter = std::function<void()>;

    FullEmptyBits(std::string name, unsigned granularityBytes);

    /** Register an array of @p sizeBytes; @return its id. All bits
     * start empty. */
    int addArray(std::uint64_t sizeBytes);

    /** Mark every bit of every array full (used when DMA-triggered
     * compute is disabled or data is preloaded). */
    void setAllFull();

    /** Mark [offset, offset+len) of @p arrayId full and wake waiters. */
    void fill(int arrayId, Addr offset, std::uint64_t len);

    /** True if the word at @p offset is ready. */
    bool isFull(int arrayId, Addr offset) const;

    /** Register a waiter woken when @p offset becomes full. The waiter
     * must re-check; spurious wakeups are allowed. */
    void wait(int arrayId, Addr offset, Waiter waiter);

    /** Estimated ready-bit SRAM bits (for the power model). */
    std::uint64_t storageBits() const;

    double fills() const { return statFills.value(); }
    double stalls() const { return statStalls.value(); }

  private:
    struct ArrayBits
    {
        std::vector<bool> full;
        std::unordered_map<std::size_t, std::vector<Waiter>> waiters;
    };

    std::size_t chunkIndex(Addr offset) const
    {
        return static_cast<std::size_t>(offset / granularity);
    }

    unsigned granularity;
    std::vector<ArrayBits> arrays;

    Stat &statFills;
    Stat &statStalls;
};

} // namespace genie

#endif // GENIE_MEM_FULL_EMPTY_HH
