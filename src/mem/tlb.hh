/**
 * @file
 * The accelerator TLB (Section III-D).
 *
 * gem5-Aladdin's accelerators are trace-driven, so the addresses in the
 * trace do not directly correspond to the simulated address space. The
 * Aladdin TLB translates a trace address to a simulated virtual address
 * and then to a simulated physical address. We model the same two-step
 * mapping: arrays registered with the TLB receive simulated virtual
 * bases, and pages are lazily mapped to sequential physical frames.
 *
 * Timing: a small fully-associative structure (8 entries in the paper)
 * with LRU replacement; hits are free (folded into the cache access);
 * misses cost a fixed pre-characterized page-walk penalty (200 ns).
 */

#ifndef GENIE_MEM_TLB_HH
#define GENIE_MEM_TLB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace genie
{

class AladdinTlb : public SimObject, public Clocked
{
  public:
    struct Params
    {
        unsigned entries = 8;
        Tick missLatency = 200 * tickPerNs;
        unsigned pageBytes = 4096;
        /** Simulated-physical base of the accelerator's data segment. */
        Addr physBase = 0x10000000;
    };

    using TranslateCallback = std::function<void(Addr paddr)>;

    AladdinTlb(std::string name, EventQueue &eq, ClockDomain domain,
               Params params);

    /**
     * Translate trace address @p vaddr. On a hit the callback runs
     * immediately (zero added latency); on a miss it runs after the
     * page-walk penalty.
     * @return true on hit.
     */
    bool translate(Addr vaddr, TranslateCallback cb);

    /** Functional translation with no timing side effects. */
    Addr translateFunctional(Addr vaddr);

    double hitRate() const;

    /** Number of distinct pages touched so far. */
    std::size_t pagesMapped() const { return pageTable.size(); }

  private:
    struct TlbEntry
    {
        Addr vpn = 0;
        Addr pfn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Addr vpn(Addr vaddr) const { return vaddr / params.pageBytes; }

    /** Look up / lazily allocate the physical frame for a page. */
    Addr frameOf(Addr vpn);

    void insert(Addr vpn, Addr pfn);

    Params params;
    std::vector<TlbEntry> entries;
    std::unordered_map<Addr, Addr> pageTable;
    /** Page walks in flight: later misses to the same page coalesce
     * onto the pending walk instead of launching their own (and
     * instead of inserting duplicate entries). */
    std::unordered_map<Addr, std::vector<std::pair<Addr, TranslateCallback>>>
        pendingWalks;
    Addr nextFrame = 0;
    std::uint64_t useCounter = 0;

    Stat &statHits;
    Stat &statMisses;
    Stat &statWalksCoalesced;
    /** Walk timeouts injected by the fault campaign. */
    Stat &statErrors;
    /** Walks reissued after a timeout. */
    Stat &statRetries;
    /** Walks that burned the whole retry budget before completing. */
    Stat &statRetryExhausted;
};

} // namespace genie

#endif // GENIE_MEM_TLB_HH
