#include "tlb.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

AladdinTlb::AladdinTlb(std::string name, EventQueue &eq,
                       ClockDomain domain, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      entries(p.entries),
      statHits(stats().add("hits", "TLB hits")),
      statMisses(stats().add("misses", "TLB misses")),
      statWalksCoalesced(stats().add("walksCoalesced",
                                     "misses merged onto an in-flight "
                                     "page walk")),
      statErrors(stats().add("errors",
                             "page walks timed out (injected)")),
      statRetries(stats().add("retries", "page walks re-walked")),
      statRetryExhausted(stats().add(
          "retryExhausted",
          "walks completed only after the full retry budget"))
{
    if (params.entries == 0)
        fatal("TLB must have at least one entry");
    if (!isPowerOf2(params.pageBytes))
        fatal("TLB page size must be a power of two");
    eq.registerStats(stats());
}

Addr
AladdinTlb::frameOf(Addr page)
{
    auto it = pageTable.find(page);
    if (it != pageTable.end())
        return it->second;
    Addr frame = nextFrame++;
    pageTable.emplace(page, frame);
    return frame;
}

void
AladdinTlb::insert(Addr page, Addr frame)
{
    // Refresh an existing entry rather than allocating a duplicate.
    TlbEntry *victim = nullptr;
    for (auto &e : entries) {
        if (e.valid && e.vpn == page) {
            victim = &e;
            break;
        }
    }
    if (!victim) {
        victim = &entries[0];
        for (auto &e : entries) {
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lastUse < victim->lastUse)
                victim = &e;
        }
    }
    victim->vpn = page;
    victim->pfn = frame;
    victim->valid = true;
    victim->lastUse = ++useCounter;
}

bool
AladdinTlb::translate(Addr vaddr, TranslateCallback cb)
{
    Addr page = vpn(vaddr);
    Addr offset = vaddr % params.pageBytes;

    for (auto &e : entries) {
        if (e.valid && e.vpn == page) {
            e.lastUse = ++useCounter;
            ++statHits;
            cb(params.physBase + e.pfn * params.pageBytes + offset);
            return true;
        }
    }

    ++statMisses;

    // Coalesce onto an in-flight walk for the same page.
    auto pending = pendingWalks.find(page);
    if (pending != pendingWalks.end()) {
        ++statWalksCoalesced;
        pending->second.emplace_back(offset, std::move(cb));
        return false;
    }

    pendingWalks[page].emplace_back(offset, std::move(cb));
    Addr frame = frameOf(page);

    // Fault site: the page walk times out and is re-walked. Each
    // timeout costs one full walk latency; after maxRetries timeouts
    // the walk is allowed to complete regardless (a wedged page table
    // would otherwise hang the accelerator — the watchdog exists for
    // genuine wedges, not injected delay).
    Tick walkLatency = params.missLatency;
    if (FaultInjector *fi = eventq.faultInjector()) {
        unsigned timeouts = 0;
        while (timeouts < fi->maxRetries() &&
               fi->shouldFault(FaultSite::TlbWalk)) {
            ++timeouts;
            ++statErrors;
            ++statRetries;
            walkLatency += params.missLatency;
        }
        if (timeouts == fi->maxRetries())
            ++statRetryExhausted;
    }

    TraceSpanId span = invalidTraceSpan;
    if (Tracer *t = tracerFor(eventq, TraceCategory::Tlb))
        span = t->begin(TraceCategory::Tlb, name(), "miss");
    eventq.scheduleFlowIn(walkLatency, [this, page, frame, span] {
        if (Tracer *t = eventq.tracer())
            t->end(span);
        insert(page, frame);
        auto it = pendingWalks.find(page);
        GENIE_ASSERT(it != pendingWalks.end(),
                     "page walk completed with no waiters");
        auto waiters = std::move(it->second);
        pendingWalks.erase(it);
        for (auto &[off, callback] : waiters) {
            callback(params.physBase + frame * params.pageBytes +
                     off);
        }
    }, "tlb.walk");
    return false;
}

Addr
AladdinTlb::translateFunctional(Addr vaddr)
{
    Addr page = vpn(vaddr);
    Addr offset = vaddr % params.pageBytes;
    return params.physBase + frameOf(page) * params.pageBytes + offset;
}

double
AladdinTlb::hitRate() const
{
    double total = statHits.value() + statMisses.value();
    return total > 0 ? statHits.value() / total : 0.0;
}

} // namespace genie
