/**
 * @file
 * A non-blocking, write-back, write-allocate, set-associative cache
 * with MOESI coherence, MSHRs (hit-under-miss and miss-under-miss),
 * LRU replacement, an optional strided prefetcher, and explicit
 * flush/invalidate maintenance operations.
 *
 * This is the "hardware-managed cache" accelerator memory interface of
 * the paper (Section III-D / IV-D): the accelerator datapath issues
 * accesses through a limited number of cache ports; hits complete in
 * hitLatency cycles; misses allocate an MSHR and fetch the line over
 * the snooping system bus, possibly supplied cache-to-cache by a MOESI
 * owner (e.g. the CPU's cache holding freshly produced input data).
 */

#ifndef GENIE_MEM_CACHE_HH
#define GENIE_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/bus.hh"
#include "mem/coherence.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"
#include "trace/tracer.hh"

namespace genie
{

class StridePrefetcher;

/** The cache model. */
class Cache : public SimObject, public BusClient, public Clocked
{
  public:
    struct Params
    {
        unsigned sizeBytes = 16 * 1024;
        unsigned lineBytes = 64;
        unsigned assoc = 4;
        /** Accelerator-side accesses accepted per cycle. */
        unsigned ports = 1;
        unsigned mshrs = 16;
        Cycles hitLatency = 1;
        /** Extra cycles from line fill to target response. */
        Cycles responseLatency = 1;
        bool prefetchEnabled = false;
        /** Lines ahead a prefetch stream runs. */
        unsigned prefetchDegree = 2;
        /** Figure-7 "processing time" mode: every access hits. */
        bool perfect = false;
    };

    /** Completion callback: (reqId, wasHit). */
    using AccessCallback =
        std::function<void(std::uint64_t reqId, bool hit)>;

    Cache(std::string name, EventQueue &eq, ClockDomain domain,
          SystemBus &bus, Params params);
    ~Cache() override;

    /** Install the demand-access completion callback. */
    void setCallback(AccessCallback cb) { callback = std::move(cb); }

    /** Why an access could not be accepted this cycle. */
    enum class Reject : std::uint8_t
    {
        None,       ///< accepted
        Ports,      ///< per-cycle port budget exhausted
        Mshrs,      ///< no MSHR available for a new miss
    };

    struct AccessOutcome
    {
        Reject reject = Reject::None;
        /** Valid when accepted: whether the access hit. */
        bool hit = false;
    };

    /**
     * Accelerator-side timing access. When accepted, the callback fires
     * once the access completes. @p streamId feeds the prefetcher
     * (use the accessed array's id).
     */
    AccessOutcome access(Addr addr, unsigned size, bool isWrite,
                         std::uint64_t reqId, int streamId);

    /** True if a new access could be accepted this cycle (port check
     * only; an actual miss may still be rejected for MSHRs). */
    bool portAvailable() const;

    // BusClient interface.
    void recvResponse(const Packet &pkt) override;
    SnoopResult recvSnoop(const Packet &pkt) override;

    /**
     * Functionally install lines covering [base, base+len) (used to
     * model data the CPU produced before offload). No bus traffic.
     */
    void prefill(Addr base, std::uint64_t len, bool dirty);

    /** Functionally write back + invalidate a range.
     * @return number of dirty lines that required writeback. */
    unsigned flushRange(Addr base, std::uint64_t len);

    /** Functionally invalidate a range.
     * @return number of lines invalidated. */
    unsigned invalidateRange(Addr base, std::uint64_t len);

    /** Look up the coherence state of the line containing @p addr. */
    CoherenceState lineState(Addr addr) const;

    /** Any misses or writebacks still in flight? */
    bool hasOutstanding() const;

    /** Live MSHRs (demand + prefetch), for watchdog diagnostics. */
    std::size_t outstandingMisses() const { return mshrTable.size(); }

    unsigned lineBytes() const { return params.lineBytes; }
    unsigned sizeBytes() const { return params.sizeBytes; }
    unsigned numPorts() const { return params.ports; }
    unsigned assoc() const { return params.assoc; }

    double missRate() const;

  private:
    struct Line
    {
        Addr tag = 0;
        CoherenceState state = CoherenceState::Invalid;
        std::uint64_t lastUse = 0;
        bool hasPendingMshr = false;
        bool wasPrefetched = false;
    };

    struct MshrTarget
    {
        std::uint64_t reqId;
        bool isWrite;
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        bool wantExclusive = false;
        bool isUpgrade = false;
        bool isPrefetch = false;
        std::vector<MshrTarget> targets;
        /** Reissues performed after error responses. */
        unsigned retries = 0;
        /** Tick the miss went out on the bus (for latency stats). */
        Tick issueTick = 0;
        /** Open trace span covering this miss's lifetime. */
        TraceSpanId traceSpan = invalidTraceSpan;
    };

    Addr lineAddr(Addr addr) const { return alignDown(addr, params.lineBytes); }
    std::size_t setIndex(Addr line_addr) const;

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;

    /** Choose a victim way in the set of @p line_addr; may write back. */
    Line &allocateLine(Addr line_addr);

    /** Account a tag+data array access and bump LRU state. */
    void touch(Line &line);

    /**
     * Change @p line's coherence state, asserting the edge is one the
     * MOESI table defines (see mem/coherence.hh). All state writes go
     * through here so an illegal transition panics at the site that
     * introduced it.
     */
    void transition(Line &line, CoherenceState to, CoherenceEvent ev);

    /** Handle a demand miss: allocate/append MSHR, issue bus request.
     * @return false if no MSHR was available. */
    bool handleMiss(Addr line_addr, bool isWrite, std::uint64_t reqId,
                    bool isPrefetch);

    /** Send the bus request for a fresh MSHR. */
    void issueMshr(std::uint64_t mshrId, const Mshr &mshr);

    /** Handle an ErrorResp: reissue the MSHR or writeback under the
     * bounded-backoff retry policy, or fail the run when the budget
     * is exhausted. */
    void handleErrorResponse(const Packet &pkt);

    /** Evict (and possibly write back) @p line. */
    void evict(Line &line, Addr line_addr);

    void respondToTarget(const MshrTarget &t, bool hit);

    friend class StridePrefetcher;
    /** Prefetcher hook: try to fetch @p line_addr into the cache. */
    void tryPrefetch(Addr line_addr);

    Params params;
    SystemBus &bus;
    BusPortId busPort = invalidBusPort;
    AccessCallback callback;

    std::size_t numSets = 0;
    std::vector<std::vector<Line>> sets;
    std::uint64_t useCounter = 0;

    // Outstanding transactions, keyed by our own bus reqIds.
    std::uint64_t nextBusReqId = 1;
    std::unordered_map<std::uint64_t, Mshr> mshrTable;   // reqId -> MSHR
    std::unordered_map<Addr, std::uint64_t> mshrByLine;  // line -> reqId
    unsigned outstandingWritebacks = 0;
    /** In-flight writebacks: reqId -> reissues so far. Needed to
     * retry a writeback whose WriteResp came back as an error. */
    std::unordered_map<std::uint64_t, unsigned> writebackRetries;

    // Per-cycle port accounting.
    mutable Cycles portCycleStamp = 0;
    mutable unsigned portsUsedThisCycle = 0;

    std::unique_ptr<StridePrefetcher> prefetcher;

    Stat &statHits;
    Stat &statMisses;
    Stat &statReads;
    Stat &statWrites;
    Stat &statEvictions;
    Stat &statWritebacks;
    Stat &statUpgrades;
    Stat &statMshrCoalesced;
    Stat &statPrefetches;
    Stat &statPrefetchHits;
    Stat &statSnoopsServiced;
    Stat &statSnoopInvalidations;
    Stat &statTagAccesses;
    Stat &statDataAccesses;
    /** Error responses received (injected faults). */
    Stat &statErrors;
    /** Requests reissued after an error response. */
    Stat &statRetries;
    /** Requests abandoned after exhausting the retry budget. */
    Stat &statRetryExhausted;
    /** Demand miss lifetime (issue to fill), in nanoseconds. */
    Distribution &statMissLatency;
};

} // namespace genie

#endif // GENIE_MEM_CACHE_HH
