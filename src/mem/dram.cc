#include "dram.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace genie
{

DramCtrl::DramCtrl(std::string name, EventQueue &eq, ClockDomain domain,
                   SystemBus &bus_, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      bus(bus_), banks(p.numBanks),
      statReads(stats().add("reads", "read requests serviced")),
      statWrites(stats().add("writes", "write requests serviced")),
      statRowHits(stats().add("rowHits", "row buffer hits")),
      statRowMisses(stats().add("rowMisses", "row buffer misses")),
      statQueueTicks(stats().add("queueTicks",
                                 "total ticks requests spent queued")),
      statReadErrors(stats().add("readErrors",
                                 "reads failed by fault injection"))
{
    if (!isPowerOf2(params.rowBytes) || !isPowerOf2(params.numBanks))
        fatal("DRAM rowBytes and numBanks must be powers of two");
    eq.registerStats(stats());
}

double
DramCtrl::rowHitRate() const
{
    double total = statRowHits.value() + statRowMisses.value();
    return total > 0 ? statRowHits.value() / total : 0.0;
}

unsigned
DramCtrl::bankIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params.rowBytes) %
                                 params.numBanks);
}

Addr
DramCtrl::rowIndex(Addr addr) const
{
    return addr / params.rowBytes / params.numBanks;
}

void
DramCtrl::recvRequest(const Packet &pkt)
{
    queue.push_back({pkt, eventq.curTick()});
    trySchedule();
}

void
DramCtrl::kick(Tick when)
{
    if (when >= pendingKickAt && pendingKickAt > eventq.curTick())
        return; // an earlier wakeup is already pending
    pendingKickAt = when;
    // Raw dispatch: the wakeup tick packs into the payload word.
    eventq.scheduleFlowRaw(when, [](void *c, std::uint64_t at) {
        auto *self = static_cast<DramCtrl *>(c);
        if (self->pendingKickAt == at)
            self->pendingKickAt = maxTick;
        self->trySchedule();
    }, this, when, "dram.kick");
}

void
DramCtrl::trySchedule()
{
    Tick now = eventq.curTick();
    while (!queue.empty()) {
        if (now < nextIssueAt) {
            kick(nextIssueAt);
            return;
        }

        // Row-hit-first among requests whose bank is free; fall back
        // to the oldest request with a free bank.
        std::size_t pick = queue.size();
        bool foundHit = false;
        Tick earliestBank = maxTick;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Bank &b = banks[bankIndex(queue[i].pkt.addr)];
            if (b.readyAt > now) {
                earliestBank = std::min(earliestBank, b.readyAt);
                continue;
            }
            if (b.rowOpen &&
                b.openRow == rowIndex(queue[i].pkt.addr)) {
                pick = i;
                foundHit = true;
                break;
            }
            if (pick == queue.size())
                pick = i;
        }
        (void)foundHit;
        if (pick == queue.size()) {
            // Every bank with pending work is busy.
            if (earliestBank != maxTick)
                kick(earliestBank);
            return;
        }

        Request req = queue[pick];
        queue.erase(queue.begin() +
                    static_cast<std::ptrdiff_t>(pick));

        Bank &bank = banks[bankIndex(req.pkt.addr)];
        statQueueTicks += static_cast<double>(now - req.arrival);

        Tick latency = params.tCtrl;
        const char *service = "service";
        if (!params.perfect) {
            bool hit = bank.rowOpen &&
                       bank.openRow == rowIndex(req.pkt.addr);
            if (hit) {
                ++statRowHits;
                latency += params.tCas;
            } else {
                ++statRowMisses;
                latency += (bank.rowOpen ? params.tRp : 0) +
                           params.tRcd + params.tCas;
            }
            service = hit ? "rowHit" : "rowMiss";
            latency += divCeil(req.pkt.size, 32) * params.tBurst32;
            bank.rowOpen = true;
            bank.openRow = rowIndex(req.pkt.addr);
            bank.readyAt = now + latency;
        }
        nextIssueAt = now + params.tIssue;

        if (Tracer *t = tracerFor(eventq, TraceCategory::Dram)) {
            t->complete(TraceCategory::Dram, name(), service, now,
                        now + latency);
        }
        eventq.scheduleFlowIn(latency, [this, req] { finish(req); },
                          "dram.finish");
    }
}

void
DramCtrl::finish(const Request &req)
{
    bool isRead = req.pkt.cmd == MemCmd::ReadShared ||
                  req.pkt.cmd == MemCmd::ReadExclusive;

    // Fault site: the read completes with an uncorrectable error —
    // full access latency was paid, but the requester gets an
    // ErrorResp instead of data and must reissue.
    if (isRead) {
        if (FaultInjector *fi = eventq.faultInjector();
            fi && fi->shouldFault(FaultSite::DramRead)) {
            ++statReadErrors;
            bus.sendResponse(req.pkt.makeError());
            trySchedule();
            return;
        }
    }

    if (isRead)
        ++statReads;
    else
        ++statWrites;

    Packet resp = req.pkt.makeResponse();
    // Writebacks are fire-and-forget from the cache's perspective, but
    // we still generate the response so requesters can drain; the cache
    // ignores Writeback WriteResp packets it did not register.
    bus.sendResponse(resp);

    trySchedule();
}

} // namespace genie
