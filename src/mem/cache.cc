#include "cache.hh"

#include "fault/fault_injector.hh"
#include "mem/prefetcher.hh"
#include "sim/logging.hh"

namespace genie
{

Cache::Cache(std::string name, EventQueue &eq, ClockDomain domain,
             SystemBus &bus_, Params p)
    : SimObject(std::move(name)), Clocked(eq, domain), params(p),
      bus(bus_),
      statHits(stats().add("hits", "demand hits")),
      statMisses(stats().add("misses", "demand misses")),
      statReads(stats().add("reads", "demand read accesses")),
      statWrites(stats().add("writes", "demand write accesses")),
      statEvictions(stats().add("evictions", "lines evicted")),
      statWritebacks(stats().add("writebacks", "dirty lines written back")),
      statUpgrades(stats().add("upgrades", "S/O -> M upgrade requests")),
      statMshrCoalesced(stats().add("mshrCoalesced",
                                    "misses merged into an existing MSHR")),
      statPrefetches(stats().add("prefetches", "prefetch requests issued")),
      statPrefetchHits(stats().add("prefetchHits",
                                   "demand hits on prefetched lines")),
      statSnoopsServiced(stats().add("snoopsServiced",
                                     "snoops answered with data")),
      statSnoopInvalidations(stats().add("snoopInvalidations",
                                         "lines invalidated by snoops")),
      statTagAccesses(stats().add("tagAccesses", "tag array accesses")),
      statDataAccesses(stats().add("dataAccesses", "data array accesses")),
      statErrors(stats().add("errors",
                             "error responses received")),
      statRetries(stats().add("retries",
                              "requests reissued after an error")),
      statRetryExhausted(stats().add(
          "retryExhausted",
          "requests abandoned after exhausting retries")),
      statMissLatency(stats().addDistribution(
          "missLatency", "demand miss lifetime (ns)", 0.0, 1000.0, 20))
{
    if (!isPowerOf2(params.lineBytes))
        fatal("cache line size must be a power of two");
    if (params.sizeBytes % (params.lineBytes * params.assoc) != 0)
        fatal("cache size must be divisible by line size * assoc");
    numSets = params.sizeBytes / (params.lineBytes * params.assoc);
    if (!isPowerOf2(numSets))
        fatal("cache set count must be a power of two");
    sets.assign(numSets, std::vector<Line>(params.assoc));
    busPort = bus.attachClient(this, /*snooper=*/true);
    eq.registerStats(stats());
    if (params.prefetchEnabled) {
        prefetcher = std::make_unique<StridePrefetcher>(
            *this, params.prefetchDegree);
    }
}

Cache::~Cache() = default;

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(line_addr / params.lineBytes) %
           numSets;
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    auto &set = sets[setIndex(line_addr)];
    for (auto &line : set) {
        if (stateValid(line.state) && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache *>(this)->findLine(line_addr);
}

void
Cache::touch(Line &line)
{
    line.lastUse = ++useCounter;
}

void
Cache::transition(Line &line, CoherenceState to, CoherenceEvent ev)
{
    GENIE_ASSERT(moesiEdgeLegal(line.state, to, ev),
                 "%s: illegal MOESI transition %s -> %s on %s",
                 name().c_str(), toString(line.state), toString(to),
                 toString(ev));
    line.state = to;
}

bool
Cache::portAvailable() const
{
    Cycles now = curCycle();
    if (now != portCycleStamp)
        return params.ports > 0;
    return portsUsedThisCycle < params.ports;
}

Cache::AccessOutcome
Cache::access(Addr addr, unsigned size, bool isWrite,
              std::uint64_t reqId, int streamId)
{
    GENIE_ASSERT(size <= params.lineBytes &&
                     lineAddr(addr) == lineAddr(addr + size - 1),
                 "access crosses a line boundary");

    Cycles now = curCycle();
    if (now != portCycleStamp) {
        portCycleStamp = now;
        portsUsedThisCycle = 0;
    }
    if (portsUsedThisCycle >= params.ports)
        return {Reject::Ports, false};

    Addr la = lineAddr(addr);
    ++statTagAccesses;

    if (params.perfect) {
        ++portsUsedThisCycle;
        ++statDataAccesses;
        if (isWrite) ++statWrites; else ++statReads;
        ++statHits;
        scheduleCycles(params.hitLatency,
                       [this, reqId] { callback(reqId, true); },
                       "cache.hit");
        return {Reject::None, true};
    }

    Line *line = findLine(la);
    bool hit = line != nullptr &&
               (!isWrite || stateWritable(line->state));

    // A line with a pending MSHR is not yet present; route through the
    // MSHR as a coalesced target.
    if (line && line->hasPendingMshr)
        hit = false;

    if (hit) {
        ++portsUsedThisCycle;
        ++statDataAccesses;
        ++statHits;
        if (line->wasPrefetched) {
            ++statPrefetchHits;
            line->wasPrefetched = false;
        }
        if (isWrite) {
            ++statWrites;
            transition(*line, CoherenceState::Modified,
                       CoherenceEvent::StoreHit);
        } else {
            ++statReads;
        }
        touch(*line);
        if (prefetcher)
            prefetcher->notify(streamId, addr);
        scheduleCycles(params.hitLatency,
                       [this, reqId] { callback(reqId, true); },
                       "cache.hit");
        return {Reject::None, true};
    }

    // Miss (or write to a non-writable line -> upgrade).
    if (!handleMiss(la, isWrite, reqId, /*isPrefetch=*/false))
        return {Reject::Mshrs, false};

    ++portsUsedThisCycle;
    ++statMisses;
    if (isWrite) ++statWrites; else ++statReads;
    if (prefetcher)
        prefetcher->notify(streamId, addr);
    return {Reject::None, false};
}

bool
Cache::handleMiss(Addr line_addr, bool isWrite, std::uint64_t reqId,
                  bool isPrefetch)
{
    auto it = mshrByLine.find(line_addr);
    if (it != mshrByLine.end()) {
        // Coalesce into the existing MSHR.
        Mshr &mshr = mshrTable.at(it->second);
        if (!isPrefetch) {
            mshr.targets.push_back({reqId, isWrite});
            mshr.wantExclusive = mshr.wantExclusive || isWrite;
            mshr.isPrefetch = false;
            ++statMshrCoalesced;
        }
        return true;
    }

    if (mshrTable.size() >= params.mshrs)
        return false;

    Mshr mshr;
    mshr.lineAddr = line_addr;
    mshr.wantExclusive = isWrite;
    mshr.isPrefetch = isPrefetch;
    if (!isPrefetch)
        mshr.targets.push_back({reqId, isWrite});

    // A write to a line we already hold in S or O needs only an
    // ownership upgrade, not a data fetch.
    Line *line = findLine(line_addr);
    if (line && !line->hasPendingMshr && isWrite &&
        stateValid(line->state) && !stateWritable(line->state)) {
        mshr.isUpgrade = true;
        line->hasPendingMshr = true;
        ++statUpgrades;
    }

    mshr.issueTick = eventq.curTick();
    if (Tracer *t = tracerFor(eventq, TraceCategory::Cache)) {
        const char *what = mshr.isPrefetch ? "prefetch"
                           : mshr.isUpgrade ? "upgrade"
                                            : "miss";
        mshr.traceSpan = t->begin(TraceCategory::Cache, name(), what);
    }

    std::uint64_t busReqId = nextBusReqId++;
    auto [mit, ok] = mshrTable.emplace(busReqId, std::move(mshr));
    GENIE_ASSERT(ok, "duplicate bus reqId");
    mshrByLine.emplace(line_addr, busReqId);
    issueMshr(busReqId, mit->second);
    return true;
}

void
Cache::issueMshr(std::uint64_t mshrId, const Mshr &mshr)
{
    Packet pkt;
    pkt.addr = mshr.lineAddr;
    pkt.size = params.lineBytes;
    pkt.reqId = mshrId;
    pkt.isPrefetch = mshr.isPrefetch;
    if (mshr.isUpgrade)
        pkt.cmd = MemCmd::Upgrade;
    else if (mshr.wantExclusive)
        pkt.cmd = MemCmd::ReadExclusive;
    else
        pkt.cmd = MemCmd::ReadShared;
    bus.sendRequest(busPort, pkt);
}

Cache::Line &
Cache::allocateLine(Addr line_addr)
{
    auto &set = sets[setIndex(line_addr)];
    Line *victim = nullptr;
    for (auto &line : set) {
        if (!stateValid(line.state) && !line.hasPendingMshr)
            return line;
        if (line.hasPendingMshr)
            continue; // never evict a line with an MSHR in flight
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    GENIE_ASSERT(victim != nullptr, "no evictable way in set");
    evict(*victim, victim->tag);
    return *victim;
}

void
Cache::evict(Line &line, Addr line_addr)
{
    ++statEvictions;
    if (stateDirty(line.state)) {
        ++statWritebacks;
        Packet pkt;
        pkt.cmd = MemCmd::Writeback;
        pkt.addr = line_addr;
        pkt.size = params.lineBytes;
        pkt.reqId = nextBusReqId++;
        ++outstandingWritebacks;
        writebackRetries.emplace(pkt.reqId, 0u);
        bus.sendRequest(busPort, pkt);
    }
    transition(line, CoherenceState::Invalid, CoherenceEvent::Evict);
}

void
Cache::recvResponse(const Packet &pkt)
{
    if (pkt.isError()) {
        handleErrorResponse(pkt);
        return;
    }

    auto it = mshrTable.find(pkt.reqId);
    if (it == mshrTable.end()) {
        // Writeback acknowledgment.
        GENIE_ASSERT(pkt.cmd == MemCmd::WriteResp,
                     "unexpected response with no MSHR");
        GENIE_ASSERT(outstandingWritebacks > 0,
                     "writeback ack with none outstanding");
        --outstandingWritebacks;
        writebackRetries.erase(pkt.reqId);
        return;
    }

    Mshr mshr = std::move(it->second);
    mshrTable.erase(it);
    mshrByLine.erase(mshr.lineAddr);

    if (Tracer *t = eventq.tracer())
        t->end(mshr.traceSpan);
    if (!mshr.isPrefetch) {
        statMissLatency.sample(
            static_cast<double>(eventq.curTick() - mshr.issueTick) /
            static_cast<double>(tickPerNs));
    }

    Line *line = nullptr;
    if (mshr.isUpgrade) {
        line = findLine(mshr.lineAddr);
        GENIE_ASSERT(line != nullptr, "upgrade response for absent line");
        line->hasPendingMshr = false;
        transition(*line, CoherenceState::Modified,
                   CoherenceEvent::UpgradeDone);
    } else {
        Line &l = allocateLine(mshr.lineAddr);
        l.tag = mshr.lineAddr;
        l.hasPendingMshr = false;
        l.wasPrefetched = mshr.isPrefetch;
        if (mshr.wantExclusive) {
            transition(l, CoherenceState::Modified,
                       CoherenceEvent::FillModified);
        } else if (pkt.cacheToCache) {
            // Supplied by an owner: we get a shared, clean copy; the
            // owner retains responsibility for the dirty data (O).
            transition(l, CoherenceState::Shared,
                       CoherenceEvent::FillShared);
        } else if (pkt.sharerPresent) {
            transition(l, CoherenceState::Shared,
                       CoherenceEvent::FillShared);
        } else {
            transition(l, CoherenceState::Exclusive,
                       CoherenceEvent::FillExclusive);
        }
        line = &l;
        ++statDataAccesses; // line fill writes the data array
    }
    touch(*line);

    if (mshr.isPrefetch && mshr.targets.empty())
        return;

    for (const auto &t : mshr.targets) {
        scheduleCycles(params.responseLatency, [this, t] {
            respondToTarget(t, false);
        }, "cache.fillResponse");
    }
}

void
Cache::handleErrorResponse(const Packet &pkt)
{
    ++statErrors;
    const unsigned maxRetries = faultMaxRetries(eventq);

    auto it = mshrTable.find(pkt.reqId);
    if (it == mshrTable.end()) {
        // A failed writeback: the dirty data must still reach memory,
        // so reissue under the same bounded backoff as misses.
        auto wit = writebackRetries.find(pkt.reqId);
        GENIE_ASSERT(wit != writebackRetries.end(),
                     "error response for unknown reqId %llu",
                     (unsigned long long)pkt.reqId);
        unsigned attempt = wit->second;
        writebackRetries.erase(wit);
        if (attempt >= maxRetries) {
            ++statRetryExhausted;
            fatal("%s: writeback of line %#llx still failing after "
                  "%u retries — memory is unreachable; lower the "
                  "fault rate or raise fault_max_retries=",
                  name().c_str(), (unsigned long long)pkt.addr,
                  attempt);
        }
        ++statRetries;
        const Addr addr = pkt.addr;
        const unsigned size = pkt.size;
        const std::uint64_t newId = nextBusReqId++;
        writebackRetries.emplace(newId, attempt + 1);
        scheduleCycles(
            static_cast<Cycles>(faultBackoffCycles(eventq, attempt)),
            [this, addr, size, newId] {
                Packet wb;
                wb.cmd = MemCmd::Writeback;
                wb.addr = addr;
                wb.size = size;
                wb.reqId = newId;
                bus.sendRequest(busPort, wb);
            },
            "cache.retryWriteback");
        return;
    }

    Mshr &mshr = it->second;
    if (mshr.isPrefetch && mshr.targets.empty()) {
        // A failed prefetch is just a dropped hint; no reissue.
        Mshr dead = std::move(mshr);
        mshrTable.erase(it);
        mshrByLine.erase(dead.lineAddr);
        if (Tracer *t = eventq.tracer())
            t->end(dead.traceSpan);
        return;
    }

    if (mshr.retries >= maxRetries) {
        ++statRetryExhausted;
        fatal("%s: miss for line %#llx still failing after %u "
              "retries — memory is unreachable; lower the fault rate "
              "or raise fault_max_retries=",
              name().c_str(), (unsigned long long)mshr.lineAddr,
              mshr.retries);
    }

    // Reissue under a fresh reqId after bounded exponential backoff.
    // The MSHR keeps its slot (and its coalesced targets) during the
    // backoff window, so new accesses to the line keep merging into
    // it; no response can arrive for the new id until issueMshr runs.
    const unsigned attempt = mshr.retries++;
    ++statRetries;
    Mshr moved = std::move(mshr);
    mshrTable.erase(it);
    const std::uint64_t newId = nextBusReqId++;
    mshrByLine[moved.lineAddr] = newId;
    auto [nit, ok] = mshrTable.emplace(newId, std::move(moved));
    GENIE_ASSERT(ok, "duplicate bus reqId");
    (void)nit;
    scheduleCycles(
        static_cast<Cycles>(faultBackoffCycles(eventq, attempt)),
        [this, newId] {
            auto rit = mshrTable.find(newId);
            GENIE_ASSERT(rit != mshrTable.end(),
                         "retried MSHR %llu vanished during backoff",
                         (unsigned long long)newId);
            issueMshr(newId, rit->second);
        },
        "cache.retryMiss");
}

void
Cache::respondToTarget(const MshrTarget &t, bool hit)
{
    ++statDataAccesses;
    callback(t.reqId, hit);
}

SnoopResult
Cache::recvSnoop(const Packet &pkt)
{
    SnoopResult result;
    Line *line = findLine(lineAddr(pkt.addr));
    if (!line || line->hasPendingMshr)
        return result;

    ++statTagAccesses;
    result.sharerPresent = true;

    switch (pkt.cmd) {
      case MemCmd::ReadShared:
        if (stateDirty(line->state)) {
            // M/O owner supplies the data and (re)enters Owned.
            result.ownerSupplies = true;
            result.supplyLatency = cyclesToTicks(params.hitLatency);
            ++statSnoopsServiced;
            ++statDataAccesses;
            transition(*line, CoherenceState::Owned,
                       CoherenceEvent::SnoopShared);
        } else if (line->state == CoherenceState::Exclusive) {
            transition(*line, CoherenceState::Shared,
                       CoherenceEvent::SnoopShared);
        }
        break;
      case MemCmd::ReadExclusive:
        if (stateDirty(line->state)) {
            result.ownerSupplies = true;
            result.supplyLatency = cyclesToTicks(params.hitLatency);
            ++statSnoopsServiced;
            ++statDataAccesses;
        }
        transition(*line, CoherenceState::Invalid,
                   CoherenceEvent::SnoopExclusive);
        ++statSnoopInvalidations;
        break;
      case MemCmd::Upgrade:
        transition(*line, CoherenceState::Invalid,
                   CoherenceEvent::SnoopUpgrade);
        ++statSnoopInvalidations;
        break;
      case MemCmd::WriteInvalidate:
        // A one-way-coherent (ACP) write replaces the whole target
        // region: drop our copy — dirty or clean — without supplying
        // data, so the writer's payload is the only copy left.
        transition(*line, CoherenceState::Invalid,
                   CoherenceEvent::SnoopWriteInv);
        ++statSnoopInvalidations;
        break;
      default:
        break;
    }
    return result;
}

void
Cache::prefill(Addr base, std::uint64_t len, bool dirty)
{
    // Functional state setup only (models data the CPU produced before
    // the offload window): victims are silently dropped so no bus
    // traffic predates the measured run.
    for (Addr a = alignDown(base, params.lineBytes); a < base + len;
         a += params.lineBytes) {
        Line *line = findLine(a);
        if (!line) {
            auto &set = sets[setIndex(a)];
            Line *victim = &set[0];
            for (auto &cand : set) {
                if (!stateValid(cand.state)) {
                    victim = &cand;
                    break;
                }
                if (cand.lastUse < victim->lastUse)
                    victim = &cand;
            }
            victim->tag = a;
            victim->hasPendingMshr = false;
            victim->wasPrefetched = false;
            line = victim;
        }
        transition(*line,
                   dirty ? CoherenceState::Modified
                         : CoherenceState::Exclusive,
                   CoherenceEvent::Prefill);
        touch(*line);
    }
}

unsigned
Cache::flushRange(Addr base, std::uint64_t len)
{
    unsigned dirty = 0;
    for (Addr a = alignDown(base, params.lineBytes); a < base + len;
         a += params.lineBytes) {
        Line *line = findLine(a);
        if (!line)
            continue;
        if (stateDirty(line->state)) {
            ++dirty;
            ++statWritebacks;
        }
        transition(*line, CoherenceState::Invalid,
                   CoherenceEvent::Flush);
    }
    return dirty;
}

unsigned
Cache::invalidateRange(Addr base, std::uint64_t len)
{
    unsigned count = 0;
    for (Addr a = alignDown(base, params.lineBytes); a < base + len;
         a += params.lineBytes) {
        Line *line = findLine(a);
        if (!line)
            continue;
        transition(*line, CoherenceState::Invalid,
                   CoherenceEvent::Invalidate);
        ++count;
    }
    return count;
}

CoherenceState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(lineAddr(addr));
    return line ? line->state : CoherenceState::Invalid;
}

bool
Cache::hasOutstanding() const
{
    return !mshrTable.empty() || outstandingWritebacks > 0;
}

double
Cache::missRate() const
{
    double total = statHits.value() + statMisses.value();
    return total > 0 ? statMisses.value() / total : 0.0;
}

void
Cache::tryPrefetch(Addr line_addr)
{
    if (params.perfect)
        return;
    Line *line = findLine(line_addr);
    if (line)
        return; // already present
    if (mshrByLine.count(line_addr))
        return; // already being fetched
    // Throttle: keep a reserve of MSHRs for demand misses so
    // prefetch streams never starve the datapath.
    constexpr unsigned demandReserve = 4;
    if (mshrTable.size() + demandReserve >= params.mshrs)
        return;
    ++statPrefetches;
    handleMiss(line_addr, /*isWrite=*/false, /*reqId=*/0,
               /*isPrefetch=*/true);
}

} // namespace genie
