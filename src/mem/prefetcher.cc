#include "prefetcher.hh"

#include "mem/cache.hh"

namespace genie
{

void
StridePrefetcher::notify(int streamId, Addr addr)
{
    StreamEntry &e = table[streamId];
    if (!e.primed) {
        e.lastAddr = addr;
        e.primed = true;
        return;
    }

    auto stride = static_cast<std::int64_t>(addr) -
                  static_cast<std::int64_t>(e.lastAddr);
    if (stride == 0)
        return;

    if (stride == e.stride) {
        if (e.confidence < 4)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = 1;
    }
    e.lastAddr = addr;

    if (e.confidence < 2)
        return;

    unsigned line = cache.lineBytes();
    for (unsigned d = 1; d <= degree; ++d) {
        std::int64_t target = static_cast<std::int64_t>(addr) +
                              e.stride * static_cast<std::int64_t>(d);
        if (target < 0)
            break;
        cache.tryPrefetch(alignDown(static_cast<Addr>(target), line));
    }
}

} // namespace genie
