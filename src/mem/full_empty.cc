#include "full_empty.hh"

#include "sim/logging.hh"

namespace genie
{

FullEmptyBits::FullEmptyBits(std::string name, unsigned granularityBytes)
    : SimObject(std::move(name)), granularity(granularityBytes),
      statFills(stats().add("fills", "line-granularity fill events")),
      statStalls(stats().add("stalls", "loads that waited on a bit"))
{
    if (granularity == 0)
        fatal("full/empty granularity must be non-zero");
}

int
FullEmptyBits::addArray(std::uint64_t sizeBytes)
{
    ArrayBits bits;
    bits.full.assign(divCeil(sizeBytes, granularity), false);
    arrays.push_back(std::move(bits));
    return static_cast<int>(arrays.size() - 1);
}

void
FullEmptyBits::setAllFull()
{
    for (auto &a : arrays)
        std::fill(a.full.begin(), a.full.end(), true);
}

void
FullEmptyBits::fill(int arrayId, Addr offset, std::uint64_t len)
{
    GENIE_ASSERT(arrayId >= 0 &&
                     static_cast<std::size_t>(arrayId) < arrays.size(),
                 "bad full/empty array id %d", arrayId);
    ArrayBits &a = arrays[static_cast<std::size_t>(arrayId)];
    std::size_t first = chunkIndex(offset);
    std::size_t last = chunkIndex(offset + len - 1);
    for (std::size_t i = first; i <= last && i < a.full.size(); ++i) {
        if (a.full[i])
            continue;
        a.full[i] = true;
        ++statFills;
        auto it = a.waiters.find(i);
        if (it != a.waiters.end()) {
            std::vector<Waiter> pending = std::move(it->second);
            a.waiters.erase(it);
            for (auto &w : pending)
                w();
        }
    }
}

bool
FullEmptyBits::isFull(int arrayId, Addr offset) const
{
    GENIE_ASSERT(arrayId >= 0 &&
                     static_cast<std::size_t>(arrayId) < arrays.size(),
                 "bad full/empty array id %d", arrayId);
    const ArrayBits &a = arrays[static_cast<std::size_t>(arrayId)];
    std::size_t i = chunkIndex(offset);
    GENIE_ASSERT(i < a.full.size(),
                 "full/empty query out of range (array %d)", arrayId);
    return a.full[i];
}

void
FullEmptyBits::wait(int arrayId, Addr offset, Waiter waiter)
{
    GENIE_ASSERT(arrayId >= 0 &&
                     static_cast<std::size_t>(arrayId) < arrays.size(),
                 "bad full/empty array id %d", arrayId);
    ArrayBits &a = arrays[static_cast<std::size_t>(arrayId)];
    std::size_t i = chunkIndex(offset);
    GENIE_ASSERT(i < a.full.size(), "full/empty wait out of range");
    ++statStalls;
    a.waiters[i].push_back(std::move(waiter));
}

std::uint64_t
FullEmptyBits::storageBits() const
{
    std::uint64_t bits = 0;
    for (const auto &a : arrays)
        bits += a.full.size();
    return bits;
}

} // namespace genie
