/**
 * @file
 * A DRAM controller with per-bank row buffers and row-hit-first
 * scheduling (FR-FCFS without the starvation corner cases).
 *
 * The paper's pipelined-DMA optimization chooses 4 KB (page-sized)
 * chunks specifically "to optimize for DRAM row buffer hits", so the
 * row buffer must be modeled for that design choice to matter.
 */

#ifndef GENIE_MEM_DRAM_HH
#define GENIE_MEM_DRAM_HH

#include <deque>
#include <vector>

#include "mem/bus.hh"
#include "mem/packet.hh"
#include "sim/clocked.hh"
#include "sim/sim_object.hh"

namespace genie
{

/** The memory-side bus target. */
class DramCtrl : public SimObject, public BusTarget, public Clocked
{
  public:
    struct Params
    {
        unsigned numBanks = 8;
        /** Row (page) size per bank in bytes. */
        unsigned rowBytes = 2048;
        /** Precharge / activate / CAS latencies. */
        Tick tRp = 15 * tickPerNs;
        Tick tRcd = 15 * tickPerNs;
        Tick tCas = 15 * tickPerNs;
        /** Internal transfer time per 32 bytes of payload. */
        Tick tBurst32 = 5 * tickPerNs;
        /** Fixed controller pipeline latency. */
        Tick tCtrl = 10 * tickPerNs;
        /** Minimum gap between request issues (command bus). */
        Tick tIssue = 3 * tickPerNs;
        /** Zero-latency mode for idealized studies. */
        bool perfect = false;
    };

    DramCtrl(std::string name, EventQueue &eq, ClockDomain domain,
             SystemBus &bus, Params params);

    void recvRequest(const Packet &pkt) override;

    double rowHitRate() const;

  private:
    struct Request
    {
        Packet pkt;
        Tick arrival;
    };

    struct Bank
    {
        bool rowOpen = false;
        Addr openRow = 0;
        /** Bank busy (servicing a burst) until this tick. */
        Tick readyAt = 0;
    };

    unsigned bankIndex(Addr addr) const;
    Addr rowIndex(Addr addr) const;

    /** Start servicing queued requests whose banks are free; banks
     * operate in parallel behind a shared command-issue port. */
    void trySchedule();

    /** Arrange for trySchedule to run at @p when (keeps at most one
     * pending scheduler event). */
    void kick(Tick when);

    /** Finish one request: respond via the bus. */
    void finish(const Request &req);

    Params params;
    SystemBus &bus;
    std::vector<Bank> banks;
    std::deque<Request> queue;
    Tick nextIssueAt = 0;
    Tick pendingKickAt = maxTick;

    Stat &statReads;
    Stat &statWrites;
    Stat &statRowHits;
    Stat &statRowMisses;
    Stat &statQueueTicks;
    /** Reads completed with an injected uncorrectable error. */
    Stat &statReadErrors;
};

} // namespace genie

#endif // GENIE_MEM_DRAM_HH
