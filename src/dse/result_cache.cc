#include "result_cache.hh"

namespace genie
{

bool
ResultCache::lookup(const std::string &key, SocResults &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end()) {
        ++_misses;
        return false;
    }
    ++_hits;
    lru.erase(it->second.lruPos);
    lru.push_back(key);
    it->second.lruPos = std::prev(lru.end());
    out = it->second.results;
    return true;
}

void
ResultCache::insert(const std::string &key, const SocResults &results)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (entries.count(key))
        return; // first writer wins
    if (_maxEntries != 0 && entries.size() >= _maxEntries) {
        auto victim = entries.find(lru.front());
        lru.pop_front();
        if (victim != entries.end())
            entries.erase(victim);
        ++_evictions;
    }
    lru.push_back(key);
    entries.emplace(key, Entry{results, std::prev(lru.end())});
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return _hits;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return _misses;
}

std::uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return _evictions;
}

} // namespace genie
