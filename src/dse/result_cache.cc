#include "result_cache.hh"

namespace genie
{

bool
ResultCache::lookup(const std::string &key, SocResults &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end()) {
        ++_misses;
        return false;
    }
    ++_hits;
    out = it->second;
    return true;
}

void
ResultCache::insert(const std::string &key, const SocResults &results)
{
    std::lock_guard<std::mutex> lock(mutex);
    entries.emplace(key, results);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return _hits;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return _misses;
}

} // namespace genie
