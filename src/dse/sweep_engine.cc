#include "sweep_engine.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/fingerprint.hh"
#include "core/soc.hh"
#include "dse/journal.hh"
#include "dse/result_store.hh"
#include "metrics/profiler.hh"
#include "sim/logging.hh"

namespace genie
{

/** Per-run scheduler and journal state, private to run(). */
struct SweepEngine::Impl
{
    // Inputs resolved for this run.
    /** Canonical key per index. */
    std::vector<std::string> keys GENIE_SHARED_OK(filled before
                                                  workers spawn and
                                                  read-only after);
    /** External or owned; the cache synchronizes internally. */
    ResultCache *cache GENIE_SHARED_OK(bound before workers spawn;
                                       pointee internally
                                       synchronized) = nullptr;
    ResultCache ownedCache GENIE_SHARED_OK(internally synchronized);

    // Work-stealing deques: the owner pops from the front, thieves
    // pop from the back, so a thief takes the victim's cheapest
    // remaining point and the owner keeps its expensive head.
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::size_t> items GENIE_GUARDED_BY(mutex);
    };
    std::vector<std::unique_ptr<WorkerQueue>> queues
        GENIE_SHARED_OK(sized and filled before workers spawn; the
                        elements lock themselves);

    // Shared counters.
    std::atomic<std::size_t> done GENIE_SHARED_OK(atomic){0};
    std::atomic<std::size_t> cachedHits GENIE_SHARED_OK(atomic){0};
    std::atomic<std::size_t> failed GENIE_SHARED_OK(atomic){0};
    std::atomic<std::size_t> freshStarted GENIE_SHARED_OK(atomic){0};
    std::atomic<std::size_t> storeHits GENIE_SHARED_OK(atomic){0};
    std::atomic<bool> stopped GENIE_SHARED_OK(atomic){false};
    std::atomic<std::uint64_t> events GENIE_SHARED_OK(atomic){0};
    std::atomic<std::uint64_t> wallNs GENIE_SHARED_OK(atomic){0};

    // Live-telemetry state (host-derived; never enters results).
    std::atomic<unsigned> activeWorkers GENIE_SHARED_OK(atomic){0};
    std::atomic<std::uint64_t> lastProgressNs
        GENIE_SHARED_OK(atomic){0};
    /** profilerNowNs() when run() started dispatching. */
    std::uint64_t startNs GENIE_SHARED_OK(set before workers spawn
                                          and read-only after) = 0;
    unsigned workerCount GENIE_SHARED_OK(set before workers spawn
                                         and read-only after) = 0;

    std::mutex failureMutex;
    std::vector<FailedPoint> failures GENIE_GUARDED_BY(failureMutex);

    std::mutex progressMutex; ///< serializes the user callback

    std::mutex journalMutex;
    std::ofstream journal GENIE_GUARDED_BY(journalMutex);
    /** Whether this run journals at all; the stream itself is only
     * touched under journalMutex. */
    bool journalEnabled GENIE_SHARED_OK(set before workers spawn and
                                        read-only after) = false;

    /** Pop the next index: own deque first, then steal. Returns
     * npos when every deque is empty. */
    std::size_t
    take(std::size_t self)
    {
        {
            WorkerQueue &own = *queues[self];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.items.empty()) {
                std::size_t i = own.items.front();
                own.items.pop_front();
                return i;
            }
        }
        for (std::size_t v = 0; v < queues.size(); ++v) {
            if (v == self)
                continue;
            WorkerQueue &victim = *queues[v];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.items.empty()) {
                std::size_t i = victim.items.back();
                victim.items.pop_back();
                return i;
            }
        }
        return static_cast<std::size_t>(-1);
    }
};

SweepEngine::SweepEngine(SweepOptions options)
    : opts(std::move(options))
{
    statTotal = &statGroup.add("points_total",
                               "design points in the sweep");
    statDone = &statGroup.add("points_done",
                              "points freshly simulated");
    statCached = &statGroup.add("points_cached",
                                "points served from the result cache");
    statFailed = &statGroup.add("points_failed",
                                "points whose simulation threw");
    statEvents = &statGroup.add("events",
                                "simulated events retired");
    statMeps = &statGroup.add(
        "meps", "aggregate simulated events per host second, "
                "in millions");
    statStoreHits = &statGroup.add(
        "store_hits", "points served from the durable result store");
    statJournalCorrupt = &statGroup.add(
        "journal_corrupt_lines",
        "corrupt interior journal lines skipped during resume");
}

SweepEngine::~SweepEngine() = default;

double
SweepEngine::configCost(const SocConfig &config)
{
    // Relative, not absolute: cache-mode points carry the coherence
    // protocol, MSHRs, and TLB walks (~4x a DMA point on the Fig. 8
    // spaces); within a mode the datapath dominates, and halving the
    // lanes roughly doubles the simulated compute cycles.
    double base = config.memType == MemInterface::Cache ? 4.0 : 1.0;
    double laneFactor =
        16.0 / static_cast<double>(std::max(1u, config.lanes));
    return base * (1.0 + laneFactor);
}

SweepProgress
SweepEngine::progress() const
{
    SweepProgress p;
    p.total = statTotal ? static_cast<std::size_t>(
                              statTotal->value())
                        : 0;
    if (impl) {
        p.done = impl->done.load();
        p.cached = impl->cachedHits.load();
        p.failed = impl->failed.load();
        std::uint64_t ns = impl->wallNs.load();
        p.meps = ns > 0 ? static_cast<double>(impl->events.load()) *
                              1e3 / static_cast<double>(ns)
                        : 0.0;
        p.workers = impl->workerCount;
        p.active = impl->activeWorkers.load();
        std::uint64_t now = profilerNowNs();
        std::uint64_t elapsed =
            now > impl->startNs ? now - impl->startNs : 0;
        p.elapsedSeconds = static_cast<double>(elapsed) * 1e-9;
        std::size_t completed = p.completed();
        if (elapsed > 0 && completed > 0) {
            p.pointsPerSecond = static_cast<double>(completed) /
                                p.elapsedSeconds;
            p.etaSeconds = static_cast<double>(p.remaining()) /
                           p.pointsPerSecond;
        }
        std::size_t resolved = p.done + p.cached;
        p.cacheHitRate =
            resolved > 0 ? static_cast<double>(p.cached) /
                               static_cast<double>(resolved)
                         : 0.0;
        p.occupancy = p.workers > 0
                          ? static_cast<double>(p.active) /
                                static_cast<double>(p.workers)
                          : 0.0;
    } else {
        p.done = static_cast<std::size_t>(statDone->value());
        p.cached = static_cast<std::size_t>(statCached->value());
        p.failed = static_cast<std::size_t>(statFailed->value());
        p.meps = statMeps->value();
    }
    return p;
}

double
SweepEngine::meps() const
{
    return _wallNs > 0 ? static_cast<double>(_events) * 1e3 /
                             static_cast<double>(_wallNs)
                       : 0.0;
}

void
SweepEngine::registerStats(StatRegistry &registry)
{
    registry.registerGroup(statGroup);
}

void
SweepEngine::publishStats()
{
    *statDone = static_cast<double>(impl->done.load());
    *statCached = static_cast<double>(impl->cachedHits.load());
    *statFailed = static_cast<double>(impl->failed.load());
    *statEvents = static_cast<double>(impl->events.load());
    *statMeps = meps();
    *statStoreHits = static_cast<double>(impl->storeHits.load());
    *statJournalCorrupt =
        static_cast<double>(_journalCorruptLines);
}

std::vector<DesignPoint>
SweepEngine::run(const std::vector<SocConfig> &configs,
                 const Trace &trace, const Dddg &dddg)
{
    std::vector<DesignPoint> points(configs.size());
    _failures.clear();
    _interrupted = false;
    _events = 0;
    _wallNs = 0;
    _storeHits = 0;
    _journalCorruptLines = 0;

    impl = std::make_unique<Impl>();
    Impl &st = *impl;
    *statTotal = static_cast<double>(configs.size());

    st.cache = opts.cache ? opts.cache : &st.ownedCache;

    // Resume: preload every journaled point into the cache. Points
    // of other spaces/workloads cost a map entry and nothing else —
    // keys only hit when the config truly matches. Interior corrupt
    // lines (real disk corruption, not a torn tail) are counted and
    // surfaced: the loader warns, and the count lands in the
    // journal_corrupt_lines stat and journalCorruptLines().
    if (!opts.resumePath.empty()) {
        JournalLoadResult loaded =
            loadJournalChecked(opts.resumePath);
        for (auto &rec : loaded.records)
            st.cache->insert(rec.key, rec.results);
        _journalCorruptLines = loaded.corruptLines;
    }

    // Journal: append when restarting onto the same file, otherwise
    // start a fresh one with the schema header.
    if (!opts.journalPath.empty()) {
        bool appending = opts.journalPath == opts.resumePath &&
                         std::ifstream(opts.journalPath).good();
        std::lock_guard<std::mutex> lock(st.journalMutex);
        st.journal.open(opts.journalPath,
                        appending ? std::ios::app : std::ios::trunc);
        if (!st.journal) {
            fatal("sweep journal %s: cannot open for writing",
                  opts.journalPath.c_str());
        }
        if (!appending)
            st.journal << journalHeaderLine() << std::flush;
        st.journalEnabled = true;
    }

    st.keys.resize(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        points[i].config = configs[i];
        st.keys[i] = configCanonicalKey(configs[i]);
    }

    unsigned threads = opts.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    threads = std::max<unsigned>(
        1, std::min<unsigned>(threads, static_cast<unsigned>(
                                           configs.size())));
    if (configs.empty())
        threads = 1;

    // Longest-job-first: sort by descending cost (stable tiebreak on
    // index keeps the deal deterministic), then deal round-robin so
    // every worker starts with a heavy point and keeps a cost-sorted
    // deque for thieves to take from the cheap end.
    std::vector<std::size_t> order(configs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return configCost(configs[a]) >
                                configCost(configs[b]);
                     });
    st.workerCount = threads;
    st.startNs = profilerNowNs();
    st.queues.resize(threads);
    for (unsigned t = 0; t < threads; ++t)
        st.queues[t] = std::make_unique<Impl::WorkerQueue>();
    for (std::size_t n = 0; n < order.size(); ++n) {
        Impl::WorkerQueue &q = *st.queues[n % threads];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.items.push_back(order[n]);
    }

    auto reportProgress = [&](bool force) {
        if (!opts.onProgress)
            return;
        if (!force && opts.progressIntervalNs != 0) {
            // Rate limit: only the worker that wins the CAS on the
            // last-delivery stamp reports; losers skip (their point
            // is covered by a later snapshot — the post-join forced
            // delivery guarantees the final state always lands).
            std::uint64_t now = profilerNowNs();
            std::uint64_t last = st.lastProgressNs.load();
            if (now - last < opts.progressIntervalNs ||
                !st.lastProgressNs.compare_exchange_strong(last,
                                                           now)) {
                return;
            }
        }
        // Snapshot inside the lock: taking it outside lets two
        // workers deliver reordered snapshots, so a callback could
        // observe counters going backwards.
        std::lock_guard<std::mutex> lock(st.progressMutex);
        opts.onProgress(progress());
    };

    auto process = [&](std::size_t i, HostProfiler &profiler) {
        SocResults cachedResults;
        if (st.cache->lookup(st.keys[i], cachedResults)) {
            points[i].results = cachedResults;
            st.cachedHits.fetch_add(1);
            reportProgress(false);
            return;
        }
        // Durable tier: a store hit is promoted into the in-memory
        // cache (so repeats stay cheap even if the store later
        // evicts or quarantines the record) and counts as cached.
        if (opts.store &&
            opts.store->lookup(st.keys[i], cachedResults)) {
            points[i].results = cachedResults;
            st.cache->insert(st.keys[i], cachedResults);
            st.storeHits.fetch_add(1);
            st.cachedHits.fetch_add(1);
            reportProgress(false);
            return;
        }
        // Drain check sits just before the expensive part: a stop
        // requested mid-queue keeps already-popped cached points
        // flowing but starts no new simulation.
        if (opts.stopRequested && opts.stopRequested->load()) {
            st.stopped.store(true);
            return;
        }
        if (opts.maxFreshPoints != 0 &&
            st.freshStarted.fetch_add(1) >= opts.maxFreshPoints) {
            st.stopped.store(true);
            return;
        }
        std::uint64_t eventsBefore = profiler.totalEvents();
        std::uint64_t nsBefore = profiler.totalWallNs();
        try {
            Soc soc(configs[i], trace, dddg);
            soc.eventQueue().setProfiler(&profiler);
            points[i].results = soc.run();
        } catch (const std::exception &e) {
            // Scope the lock to the push_back: reportProgress runs
            // the user callback, and calling out under failureMutex
            // imposes a lock order (failureMutex before
            // progressMutex) on every other path and deadlocks any
            // callback that reaches back into failure state.
            {
                std::lock_guard<std::mutex> lock(st.failureMutex);
                st.failures.push_back({i, configs[i], e.what()});
            }
            st.failed.fetch_add(1);
            reportProgress(false);
            return;
        }
        st.events.fetch_add(profiler.totalEvents() - eventsBefore);
        st.wallNs.fetch_add(profiler.totalWallNs() - nsBefore);
        st.cache->insert(st.keys[i], points[i].results);
        // Write-through: the point is durable the moment it
        // completes, so a killed process loses at most what was
        // still in flight.
        if (opts.store) {
            opts.store->insert(st.keys[i],
                               configFingerprint(configs[i]),
                               points[i].results);
        }
        if (st.journalEnabled) {
            std::string line = journalRecordLine(
                st.keys[i], configFingerprint(configs[i]),
                points[i].results);
            std::lock_guard<std::mutex> lock(st.journalMutex);
            st.journal << line << std::flush;
        }
        st.done.fetch_add(1);
        reportProgress(false);
    };

    auto worker = [&](std::size_t self) {
        HostProfiler profiler;
        while (!st.stopped.load()) {
            if (opts.stopRequested && opts.stopRequested->load()) {
                st.stopped.store(true);
                break;
            }
            std::size_t i = st.take(self);
            if (i == static_cast<std::size_t>(-1))
                break;
            st.activeWorkers.fetch_add(1);
            process(i, profiler);
            st.activeWorkers.fetch_sub(1);
        }
    };

    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }

    // With rate limiting on, the limiter may have eaten the last
    // per-point snapshot; deliver the final counters. (Without it,
    // every point already delivered — callers count on exactly one
    // callback per point.)
    if (opts.progressIntervalNs != 0)
        reportProgress(true);

    _interrupted = st.stopped.load();
    _events = st.events.load();
    _wallNs = st.wallNs.load();
    _storeHits = st.storeHits.load();
    {
        // The join is a happens-before edge, but take the lock
        // anyway: it keeps the guarded-by contract provable and
        // costs nothing post-join.
        std::lock_guard<std::mutex> lock(st.failureMutex);
        _failures = st.failures;
    }
    std::sort(_failures.begin(), _failures.end(),
              [](const FailedPoint &a, const FailedPoint &b) {
                  return a.index < b.index;
              });
    publishStats();
    if (st.journalEnabled) {
        std::lock_guard<std::mutex> lock(st.journalMutex);
        st.journal.close();
    }
    impl.reset();

    if (!_failures.empty() && !opts.continueOnError) {
        const FailedPoint &first = _failures.front();
        throw SweepError(
            format("sweep: %zu of %zu design points failed; first: "
                   "point %zu [%s]: %s",
                   _failures.size(), configs.size(), first.index,
                   configCanonicalKey(first.config).c_str(),
                   first.message.c_str()),
            _failures);
    }
    return points;
}

} // namespace genie
