/**
 * @file
 * SweepEngine: the work-stealing, memoizing, resumable sweep runner.
 *
 * The engine replaces the old static-partition thread pool with a
 * scheduler built for the paper-figure spaces:
 *
 *  - scheduling: design points are ordered longest-job-first by a
 *    config cost heuristic and dealt round-robin into per-thread
 *    deques; an idle worker pops its own deque from the front and
 *    steals from the back of a victim's, so one expensive cache-mode
 *    point never serializes the tail of a sweep.
 *  - memoization: every point is keyed by configCanonicalKey() and
 *    looked up in a ResultCache before simulating. The Fig. 6 and
 *    Fig. 8 DMA spaces overlap in their all-optimizations points, and
 *    explorer invocations repeat whole spaces; both dedupe to cache
 *    hits. Pass a shared cache in SweepOptions to dedupe across
 *    sweeps; otherwise the engine uses a private one.
 *  - checkpointing: with a journal path set, each freshly simulated
 *    point is appended (and flushed) as a `genie-sweep-1` JSON line;
 *    with a resume path set, the journal is preloaded into the cache
 *    so an interrupted sweep redoes only the missing points.
 *  - failure: a throw inside a worker never terminates the process
 *    and never silently drops the point. Failures are collected with
 *    the offending config attached and rethrown as one SweepError
 *    after the sweep (or reported in progress counters with
 *    continueOnError).
 *
 * Determinism: a design point's results depend only on its config
 * (each Soc owns its event queue), so sweep output is byte-identical
 * across thread counts, cold vs. warm caches, and interrupted-then-
 * resumed vs. uninterrupted runs — the golden-figure suite asserts
 * all three. Host time is read only through the sanctioned
 * HostProfiler, for the MEPS throughput report; it never enters
 * results or the journal (the sweep-determinism lint rule).
 */

#ifndef GENIE_DSE_SWEEP_ENGINE_HH
#define GENIE_DSE_SWEEP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/result_cache.hh"
#include "dse/sweep.hh"
#include "sim/stats.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class ResultStore;

/** Live counters reported through SweepOptions::onProgress and
 * mirrored into the "sweep" StatGroup. */
struct SweepProgress GENIE_THREAD_LOCAL_OK
{
    std::size_t total = 0;  ///< points in the sweep
    std::size_t done = 0;   ///< freshly simulated
    std::size_t cached = 0; ///< served from the ResultCache/journal
    std::size_t failed = 0; ///< worker exceptions (see failures())
    /** Aggregate simulator throughput so far: millions of simulated
     * events retired per host-second, summed over workers. */
    double meps = 0.0;

    // Live telemetry (populated only while a run is in flight; all
    // host-time-derived, so none of it ever enters results or the
    // journal).
    unsigned workers = 0; ///< worker threads in this run
    unsigned active = 0;  ///< workers currently simulating a point
    double elapsedSeconds = 0.0;  ///< host time since run() began
    double pointsPerSecond = 0.0; ///< completed points per second
    /** Estimated seconds to finish at the current rate (0 until the
     * rate is measurable). */
    double etaSeconds = 0.0;
    /** cached / (done + cached): how much of the sweep the result
     * cache and resume journal absorbed. */
    double cacheHitRate = 0.0;
    /** active / workers: the fraction of the pool doing useful work
     * (drops at the tail when deques drain). */
    double occupancy = 0.0;

    std::size_t completed() const { return done + cached + failed; }
    std::size_t
    remaining() const
    {
        std::size_t c = completed();
        return total > c ? total - c : 0;
    }
};

/** One design point whose simulation threw, with the offending
 * config attached. */
struct FailedPoint GENIE_THREAD_LOCAL_OK
{
    std::size_t index = 0; ///< position in the swept config vector
    SocConfig config;
    std::string message;
};

/** Thrown after the sweep when any worker failed (unless
 * SweepOptions::continueOnError). Carries every failure. */
class SweepError GENIE_THREAD_LOCAL_OK : public std::runtime_error
{
  public:
    SweepError(const std::string &what,
               std::vector<FailedPoint> failedPoints)
        : std::runtime_error(what), _failures(std::move(failedPoints))
    {}

    const std::vector<FailedPoint> &failures() const
    {
        return _failures;
    }

  private:
    std::vector<FailedPoint> _failures;
};

struct SweepOptions GENIE_SHARED_OK(written before run starts and
                                    read-only while workers exist)
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;

    /** Append a `genie-sweep-1` record per fresh simulation; "" =
     * no journal. Truncated unless it is also the resume path. */
    std::string journalPath;

    /** Preload this journal into the cache before sweeping; "" =
     * cold start. May equal journalPath (the restart case). */
    std::string resumePath;

    /** Stop cleanly after this many fresh simulations (0 = no
     * limit). Used to test and exercise interruption/resume. */
    std::size_t maxFreshPoints = 0;

    /** Collect failures in progress counters instead of throwing
     * SweepError after the sweep. */
    bool continueOnError = false;

    /** Share a cache across sweeps/invocations; null = private. */
    ResultCache *cache = nullptr;

    /**
     * Durable second tier behind the in-memory cache: on a cache
     * miss the engine consults the store (a store hit counts as
     * cached and is promoted into the cache), and every fresh
     * simulation is written through, so completed points survive the
     * process — the genie_serve crash-tolerance contract. The store
     * must be open; null = no persistence.
     */
    ResultStore *store = nullptr;

    /**
     * Cooperative stop: when the pointee becomes true (a signal
     * handler's drain request), workers stop dealing new points,
     * in-flight points finish and journal normally, and run()
     * returns with interrupted() set. Null = never stopped.
     */
    const std::atomic<bool> *stopRequested = nullptr;

    /** Called after every completed/cached/failed point. Invoked
     * under a lock: implementations need not be thread-safe. */
    std::function<void(const SweepProgress &)> onProgress;

    /** Minimum host nanoseconds between onProgress deliveries
     * (0 = report every point). Rate-limits terminal repaints on
     * cache-hot sweeps that retire thousands of points per second;
     * the final state of a run is always delivered. */
    std::uint64_t progressIntervalNs = 0;
};

class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /**
     * Simulate every configuration; results return in @p configs
     * order regardless of scheduling. Throws SweepError if any
     * worker threw (unless continueOnError). The trace and DDDG are
     * shared read-only across workers.
     */
    std::vector<DesignPoint> run(const std::vector<SocConfig> &configs,
                                 const Trace &trace, const Dddg &dddg);

    /** Counters of the last run (live during a run). */
    SweepProgress progress() const;

    /** Failures of the last run (always populated, also with
     * continueOnError). */
    const std::vector<FailedPoint> &failures() const
    {
        return _failures;
    }

    /** True when maxFreshPoints or stopRequested stopped the last
     * run early. */
    bool interrupted() const { return _interrupted; }

    /** Points of the last run served from the durable ResultStore
     * (a subset of the cached count). */
    std::uint64_t storeHits() const { return _storeHits; }

    /** Corrupt interior journal lines skipped while resuming the
     * last run (see JournalLoadResult::corruptLines); nonzero means
     * disk corruption and the affected points were re-simulated. */
    std::size_t journalCorruptLines() const
    {
        return _journalCorruptLines;
    }

    /** Simulated events retired across all workers (HostProfiler). */
    std::uint64_t simulatedEvents() const { return _events; }

    /** Host nanoseconds spent inside event actions, summed across
     * workers. */
    std::uint64_t hostWallNs() const { return _wallNs; }

    /** Aggregate MEPS of the last run. */
    double meps() const;

    /** Register the engine's "sweep" StatGroup (points_total/done/
     * cached/failed, events, meps) with @p registry. */
    void registerStats(StatRegistry &registry);

    /**
     * Relative host-cost heuristic for longest-job-first ordering.
     * Cache-mode points simulate the full coherence machinery and
     * cost several DMA points; within a mode, fewer lanes mean more
     * simulated compute cycles. Only the ordering matters.
     */
    static double configCost(const SocConfig &config);

  private:
    struct Impl;
    /** Set before workers spawn, reset after they join; workers reach
     * shared run state only through this pointer. */
    std::unique_ptr<Impl> impl GENIE_SHARED_OK(set before workers
                                               spawn and reset after
                                               the join);

    SweepOptions opts GENIE_SHARED_OK(written before run and
                                      read-only while workers exist);
    /** Stats are registered/written outside the worker phase; during
     * a run workers read only the pre-published points_total. */
    StatGroup statGroup GENIE_SHARED_OK(mutated only outside the
                                        worker phase){"sweep"};
    Stat *statTotal GENIE_SHARED_OK(bound in ctor; pointee written
                                    before workers spawn) = nullptr;
    Stat *statDone GENIE_SHARED_OK(bound in ctor; pointee written
                                   after workers join) = nullptr;
    Stat *statCached GENIE_SHARED_OK(bound in ctor; pointee written
                                     after workers join) = nullptr;
    Stat *statFailed GENIE_SHARED_OK(bound in ctor; pointee written
                                     after workers join) = nullptr;
    Stat *statEvents GENIE_SHARED_OK(bound in ctor; pointee written
                                     after workers join) = nullptr;
    Stat *statMeps GENIE_SHARED_OK(bound in ctor; pointee written
                                   after workers join) = nullptr;
    Stat *statStoreHits GENIE_SHARED_OK(bound in ctor; pointee
                                        written after workers
                                        join) = nullptr;
    Stat *statJournalCorrupt GENIE_SHARED_OK(bound in ctor; pointee
                                             written before workers
                                             spawn) = nullptr;

    /** Owner-thread mirrors of the last run, copied after the join. */
    std::vector<FailedPoint> _failures GENIE_THREAD_LOCAL_OK;
    bool _interrupted GENIE_THREAD_LOCAL_OK = false;
    std::uint64_t _events GENIE_THREAD_LOCAL_OK = 0;
    std::uint64_t _wallNs GENIE_THREAD_LOCAL_OK = 0;
    std::uint64_t _storeHits GENIE_THREAD_LOCAL_OK = 0;
    std::size_t _journalCorruptLines GENIE_THREAD_LOCAL_OK = 0;

    void publishStats();
};

} // namespace genie

#endif // GENIE_DSE_SWEEP_ENGINE_HH
