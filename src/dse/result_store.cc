#include "result_store.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <vector>

#include "core/fingerprint.hh"
#include "dse/journal.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace genie
{

namespace
{

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crcTable = makeCrcTable();

const char *recordSuffix = ".rec";
const char *tmpSuffix = ".tmp";

std::string
storeHeaderLine(std::uint32_t crc)
{
    return format("{\"schema\": \"genie-store-1\", \"crc32\": "
                  "\"%08x\"}\n",
                  crc);
}

/** Everything read out of one record file; stack-local to a read. */
struct ReadRecord GENIE_THREAD_LOCAL_OK
{
    bool ok = false;
    const char *why = "";  ///< failure reason when !ok
    std::string key;
    std::uint64_t fingerprint = 0;
    SocResults results;
    std::uint64_t bytes = 0; ///< on-disk size of the record
};

/**
 * Read and verify one record file: schema header, CRC32 of the
 * payload line, and a parseable payload. Verification happens on
 * every read — the store never trusts bytes it did not just check.
 */
ReadRecord
readRecordFile(const std::string &path)
{
    ReadRecord r;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        r.why = "unreadable";
        return r;
    }
    std::string header, payload;
    if (!std::getline(in, header)) {
        r.why = "empty file";
        return r;
    }
    if (header.find("\"schema\": \"genie-store-1\"") ==
        std::string::npos) {
        r.why = "missing genie-store-1 header";
        return r;
    }
    const std::string needle = "\"crc32\": \"";
    std::size_t pos = header.find(needle);
    if (pos == std::string::npos) {
        r.why = "header lacks crc32";
        return r;
    }
    std::uint32_t want = static_cast<std::uint32_t>(std::strtoul(
        header.c_str() + pos + needle.size(), nullptr, 16));
    if (!std::getline(in, payload)) {
        r.why = "truncated record (no payload line)";
        return r;
    }
    if (crc32Ieee(payload.data(), payload.size()) != want) {
        r.why = "crc32 mismatch";
        return r;
    }
    JournalRecord rec;
    if (!parseJournalLine(payload, rec)) {
        r.why = "unparseable payload";
        return r;
    }
    r.ok = true;
    r.key = rec.key;
    r.fingerprint = rec.fingerprint;
    r.results = rec.results;
    r.bytes = header.size() + payload.size() + 2; // + two newlines
    return r;
}

/** Best-effort fsync of the directory entry itself. */
void
syncDirectory(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

bool
writeFileDurably(const std::string &path, const std::string &contents)
{
    const std::string tmp = path + tmpSuffix;
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("result store: cannot create %s: %s", tmp.c_str(),
             std::strerror(errno));
        return false;
    }
    std::size_t off = 0;
    while (off < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + off,
                            contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("result store: write %s failed: %s", tmp.c_str(),
                 std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    // The fsync-before-rename is the durability contract: after the
    // rename is visible, the record's bytes are on disk, so a
    // kill -9 can only ever lose records still in their .tmp phase.
    if (::fsync(fd) != 0)
        warn("result store: fsync %s failed", tmp.c_str());
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result store: rename %s -> %s failed: %s", tmp.c_str(),
             path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

std::uint32_t
crc32Ieee(const void *data, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = crcTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::string
ResultStore::path(const std::string &file) const
{
    return _dir + "/" + file;
}

void
ResultStore::open(const std::string &dir, std::uint64_t maxBytes)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        fatal("result store: cannot create directory %s: %s",
              dir.c_str(), ec.message().c_str());
    }
    _dir = dir;
    _budget = maxBytes;
    index.clear();
    lru.clear();
    _bytes = 0;

    // Scan: collect well-formed records oldest-first so the LRU order
    // survives a reopen; sweep killed writers' .tmp debris; move
    // anything corrupt out of the way.
    struct Found
    {
        fs::file_time_type mtime;
        std::string name;
        std::string key;
        std::uint64_t bytes;
    };
    std::vector<Found> found;
    for (const auto &entry : fs::directory_iterator(_dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, tmpSuffix) == 0) {
            fs::remove(entry.path(), ec);
            continue;
        }
        if (name.size() <= 4 ||
            name.compare(name.size() - 4, 4, recordSuffix) != 0)
            continue;
        ReadRecord rec = readRecordFile(entry.path().string());
        if (!rec.ok) {
            quarantine(name, rec.why);
            continue;
        }
        found.push_back({entry.last_write_time(ec), name, rec.key,
                         rec.bytes});
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });
    for (auto &f : found) {
        if (index.count(f.key))
            continue; // duplicate content; keep the older file
        lru.push_back(f.key);
        index[f.key] =
            Record{f.name, f.bytes, std::prev(lru.end())};
        _bytes += f.bytes;
        ++counters.reloaded;
    }
    counters.records = index.size();
    counters.bytes = _bytes;
    evictToBudget();
}

bool
ResultStore::isOpen() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return !_dir.empty();
}

void
ResultStore::quarantine(const std::string &file, const char *why)
    GENIE_REQUIRES(mutex)
{
    std::error_code ec;
    const std::string qdir = _dir + "/" + quarantineSubdir();
    fs::create_directories(qdir, ec);
    fs::rename(path(file), qdir + "/" + file, ec);
    if (ec)
        fs::remove(path(file), ec);
    ++counters.corrupt;
    warn("result store: quarantined corrupt record %s (%s) — the "
         "point will be re-simulated",
         file.c_str(), why);
}

void
ResultStore::touch(const std::string &key) GENIE_REQUIRES(mutex)
{
    auto it = index.find(key);
    if (it == index.end())
        return;
    lru.erase(it->second.lruPos);
    lru.push_back(key);
    it->second.lruPos = std::prev(lru.end());
    // Mirror recency into the filesystem so LRU order survives a
    // reopen; purely best-effort.
    std::error_code ec;
    fs::last_write_time(path(it->second.file),
                        fs::file_time_type::clock::now(), ec);
}

bool
ResultStore::lookup(const std::string &key, SocResults &out)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(key);
    if (it == index.end()) {
        ++counters.misses;
        return false;
    }
    ReadRecord rec = readRecordFile(path(it->second.file));
    bool gone = !rec.ok && std::strcmp(rec.why, "unreadable") == 0;
    if (rec.ok && rec.key != key) {
        // The file changed identity since it was indexed (external
        // interference); it is valid for *some* point but not this
        // one. Leave it alone under its real key semantics and miss.
        rec.ok = false;
        rec.why = "canonical key mismatch";
    }
    if (!rec.ok) {
        if (!gone)
            quarantine(it->second.file, rec.why);
        _bytes -= std::min(_bytes, it->second.bytes);
        lru.erase(it->second.lruPos);
        index.erase(it);
        counters.records = index.size();
        counters.bytes = _bytes;
        ++counters.misses;
        return false;
    }
    out = rec.results;
    touch(key);
    ++counters.hits;
    return true;
}

void
ResultStore::insert(const std::string &key, std::uint64_t fingerprint,
                    const SocResults &results)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (_dir.empty())
        panic("result store: insert before open()");
    auto it = index.find(key);
    if (it != index.end()) {
        // First writer wins: an identical point was stored while we
        // simulated. Refresh recency only.
        touch(key);
        return;
    }

    std::string payload = journalRecordLine(key, fingerprint, results);
    if (!payload.empty() && payload.back() == '\n')
        payload.pop_back();
    std::uint32_t crc = crc32Ieee(payload.data(), payload.size());
    const std::string contents =
        storeHeaderLine(crc) + payload + "\n";

    // Content address: fingerprint names the file. On the (measure-
    // zero, but handled) chance two live keys share a fingerprint,
    // probe numbered siblings; the record's embedded key keeps every
    // outcome correct regardless.
    std::string base = fingerprintHex(fingerprint);
    std::string name = base + recordSuffix;
    for (unsigned probe = 1; probe < 16; ++probe) {
        bool taken = false;
        for (const auto &[k, r] : index) {
            if (r.file == name) {
                taken = true;
                break;
            }
        }
        if (!taken)
            break;
        name = base + "-" + std::to_string(probe) + recordSuffix;
    }

    if (!writeFileDurably(path(name), contents))
        return; // warned already; the store is a cache, not a gate
    syncDirectory(_dir);

    lru.push_back(key);
    index[key] = Record{name, contents.size(), std::prev(lru.end())};
    _bytes += contents.size();
    ++counters.inserts;
    counters.records = index.size();
    counters.bytes = _bytes;
    evictToBudget();
}

void
ResultStore::evictToBudget() GENIE_REQUIRES(mutex)
{
    if (_budget == 0)
        return;
    // The newest record is always retained, even when it alone
    // exceeds the budget — evicting what was just inserted would turn
    // a tight budget into a store that caches nothing.
    while (_bytes > _budget && lru.size() > 1) {
        const std::string victim = lru.front();
        auto it = index.find(victim);
        if (it == index.end()) {
            lru.pop_front();
            continue;
        }
        std::error_code ec;
        fs::remove(path(it->second.file), ec);
        _bytes -= std::min(_bytes, it->second.bytes);
        lru.pop_front();
        index.erase(it);
        ++counters.evictions;
    }
    counters.records = index.size();
    counters.bytes = _bytes;
}

ResultStoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

} // namespace genie
