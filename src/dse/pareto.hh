/**
 * @file
 * Pareto-frontier extraction, EDP-optimal selection, and the
 * isolated-vs-co-designed analysis behind Figures 1, 9, and 10.
 */

#ifndef GENIE_DSE_PARETO_HH
#define GENIE_DSE_PARETO_HH

#include <cstddef>
#include <vector>

#include "dse/sweep.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/**
 * Indices of the Pareto-optimal points minimizing (delay, power),
 * sorted by increasing delay.
 */
std::vector<std::size_t> paretoFrontier(
    const std::vector<DesignPoint> &points);

/** Index of the minimum-EDP point. */
std::size_t edpOptimal(const std::vector<DesignPoint> &points);

/** The Figure 9 Kiviat axes for one design point, normalized to a
 * reference design. */
struct KiviatAxes GENIE_THREAD_LOCAL_OK
{
    double lanes = 0.0;
    double sramSize = 0.0;
    double memBandwidth = 0.0;
};

KiviatAxes kiviatAxes(const DesignPoint &point,
                      const DesignPoint &reference);

/**
 * The Figure 1/10 co-design comparison for one scenario:
 *  - pick the EDP-optimal isolated design,
 *  - re-evaluate its parameters under full system effects,
 *  - compare against the EDP-optimal co-designed point.
 */
struct CodesignComparison GENIE_THREAD_LOCAL_OK
{
    DesignPoint isolatedOptimal;      ///< compute-only metrics
    DesignPoint isolatedUnderSystem;  ///< same design, system effects
    DesignPoint codesignedOptimal;    ///< best full-system design
    /** EDP(isolated under system) / EDP(co-designed optimal). */
    double edpImprovement = 0.0;
};

/**
 * Run the comparison. @p isolatedPoints must be the isolated sweep;
 * @p systemPoints the full-system sweep for the scenario;
 * @p evalIsolated maps the isolated-optimal config into the scenario
 * and simulates it (caller-provided because the mapping depends on
 * the scenario's memory interface).
 */
CodesignComparison compareCodesign(
    const std::vector<DesignPoint> &isolatedPoints,
    const std::vector<DesignPoint> &systemPoints,
    const std::function<DesignPoint(const SocConfig &)> &evalIsolated);

} // namespace genie

#endif // GENIE_DSE_PARETO_HH
