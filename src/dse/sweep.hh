/**
 * @file
 * Design-space enumeration and the multithreaded sweep runner.
 *
 * The sweeps mirror the paper's Figure 3 parameter table: datapath
 * lanes {1,2,4,8,16}, scratchpad partitioning {1,2,4,8,16}, transfer
 * mechanism {DMA, cache}, pipelined DMA and DMA-triggered compute
 * {on, off}, cache size {2..64 KB}, line size {16,32,64 B}, ports
 * {1,2,4,8}, associativity {4,8}, bus width {32,64 b}.
 *
 * Every Soc owns its own event queue, so design points are simulated
 * concurrently across hardware threads.
 */

#ifndef GENIE_DSE_SWEEP_HH
#define GENIE_DSE_SWEEP_HH

#include <vector>

#include "core/soc.hh"
#include "sim/thread_safety.hh"

namespace genie
{

struct DesignPoint GENIE_THREAD_LOCAL_OK
{
    SocConfig config;
    SocResults results;
};

class DesignSpace
{
  public:
    /** Standard sweep values from Figure 3. */
    static const std::vector<unsigned> &laneValues();
    static const std::vector<unsigned> &partitionValues();
    static const std::vector<unsigned> &cacheSizeValues();
    static const std::vector<unsigned> &cacheLineValues();
    static const std::vector<unsigned> &cachePortValues();
    static const std::vector<unsigned> &cacheAssocValues();

    /** Isolated accelerator designs: lanes x partitions, compute
     * phase only (the paper's "designed in isolation" space). */
    static std::vector<SocConfig> isolated(const SocConfig &base);

    /** Full-system DMA designs with all DMA optimizations applied
     * (the Figure 8 DMA space): lanes x partitions. */
    static std::vector<SocConfig> dma(const SocConfig &base);

    /** DMA designs across optimization settings (Figure 6 studies):
     * lanes x partitions x pipelined x triggered. */
    static std::vector<SocConfig> dmaOptions(const SocConfig &base);

    /** Full-system cache designs (the Figure 8 cache space):
     * lanes x size x line x ports x assoc. */
    static std::vector<SocConfig> cache(const SocConfig &base);

    /** Full-system ACP designs (Genie-Iface third regime): lanes x
     * partitions with every array moved over the coherency port —
     * no flush, no invalidate, loads snooping the dirty CPU L1. */
    static std::vector<SocConfig> acp(const SocConfig &base);

    /**
     * The combined SoC-interface space (fig08-style third frontier):
     * {spin, interrupt} completion x [the DMA space, the ACP space,
     * and one default-parameter cache design per lane count]. Plots
     * all three interface regimes on one Pareto chart.
     */
    static std::vector<SocConfig> iface(const SocConfig &base);

    /**
     * Map an isolated scratchpad design onto cache parameters the way
     * an isolation-minded designer would: a cache big enough to hold
     * the whole working set (@p workingSetBytes rounded up to a power
     * of two within the sweepable range) with ports matching the
     * scratchpad bandwidth.
     */
    static SocConfig isolatedAsCache(const SocConfig &isolated,
                                     std::uint64_t workingSetBytes);
};

/**
 * An axis-value subset of a design space, used to carve small,
 * reproducible slices of the Figure 3 spaces (golden-figure tests,
 * CI smoke sweeps, the genie_sweep --filter flag). An empty value
 * list leaves that axis unconstrained; the cache axes only constrain
 * cache-mode configs, so a mixed DMA+cache space filters sanely.
 */
struct SpaceFilter GENIE_THREAD_LOCAL_OK
{
    std::vector<unsigned> lanes;
    std::vector<unsigned> partitions;
    std::vector<unsigned> cacheKb;
    std::vector<unsigned> cacheLine;
    std::vector<unsigned> cachePorts;
    std::vector<unsigned> cacheAssoc;
    /** Interface regimes ("dma", "acp", "cache"); a config's regime
     * is cache when memType is Cache, acp when any array rides the
     * coherency port, dma otherwise. */
    std::vector<std::string> memTypes;
    /** Completion modes ("spin", "interrupt"). */
    std::vector<std::string> completions;

    bool accepts(const SocConfig &config) const;

    /**
     * Parse a spec such as "lanes=1,4;partitions=1,4;cache_kb=2,16"
     * or "mem_type=dma,acp;completion=interrupt". Axes: lanes,
     * partitions, cache_kb, cache_line, cache_ports, cache_assoc,
     * mem_type, completion. fatal() on unknown axes or malformed
     * values.
     */
    static SpaceFilter parse(const std::string &spec);
};

/** The subset of @p configs accepted by @p filter, in order. */
std::vector<SocConfig> filterConfigs(
    const std::vector<SocConfig> &configs, const SpaceFilter &filter);

/**
 * Simulate every configuration (in parallel when @p threads > 1).
 * Results are returned in the order of @p configs. A thin wrapper
 * over SweepEngine (see dse/sweep_engine.hh) with default options:
 * private cache, no journal, worker exceptions rethrown as
 * SweepError.
 */
std::vector<DesignPoint> runSweep(const std::vector<SocConfig> &configs,
                                  const Trace &trace, const Dddg &dddg,
                                  unsigned threads = 0);

} // namespace genie

#endif // GENIE_DSE_SWEEP_HH
