/**
 * @file
 * Design-space enumeration and the multithreaded sweep runner.
 *
 * The sweeps mirror the paper's Figure 3 parameter table: datapath
 * lanes {1,2,4,8,16}, scratchpad partitioning {1,2,4,8,16}, transfer
 * mechanism {DMA, cache}, pipelined DMA and DMA-triggered compute
 * {on, off}, cache size {2..64 KB}, line size {16,32,64 B}, ports
 * {1,2,4,8}, associativity {4,8}, bus width {32,64 b}.
 *
 * Every Soc owns its own event queue, so design points are simulated
 * concurrently across hardware threads.
 */

#ifndef GENIE_DSE_SWEEP_HH
#define GENIE_DSE_SWEEP_HH

#include <vector>

#include "core/soc.hh"

namespace genie
{

struct DesignPoint
{
    SocConfig config;
    SocResults results;
};

class DesignSpace
{
  public:
    /** Standard sweep values from Figure 3. */
    static const std::vector<unsigned> &laneValues();
    static const std::vector<unsigned> &partitionValues();
    static const std::vector<unsigned> &cacheSizeValues();
    static const std::vector<unsigned> &cacheLineValues();
    static const std::vector<unsigned> &cachePortValues();
    static const std::vector<unsigned> &cacheAssocValues();

    /** Isolated accelerator designs: lanes x partitions, compute
     * phase only (the paper's "designed in isolation" space). */
    static std::vector<SocConfig> isolated(const SocConfig &base);

    /** Full-system DMA designs with all DMA optimizations applied
     * (the Figure 8 DMA space): lanes x partitions. */
    static std::vector<SocConfig> dma(const SocConfig &base);

    /** DMA designs across optimization settings (Figure 6 studies):
     * lanes x partitions x pipelined x triggered. */
    static std::vector<SocConfig> dmaOptions(const SocConfig &base);

    /** Full-system cache designs (the Figure 8 cache space):
     * lanes x size x line x ports x assoc. */
    static std::vector<SocConfig> cache(const SocConfig &base);

    /**
     * Map an isolated scratchpad design onto cache parameters the way
     * an isolation-minded designer would: a cache big enough to hold
     * the whole working set (@p workingSetBytes rounded up to a power
     * of two within the sweepable range) with ports matching the
     * scratchpad bandwidth.
     */
    static SocConfig isolatedAsCache(const SocConfig &isolated,
                                     std::uint64_t workingSetBytes);
};

/**
 * Simulate every configuration (in parallel when @p threads > 1).
 * Results are returned in the order of @p configs.
 */
std::vector<DesignPoint> runSweep(const std::vector<SocConfig> &configs,
                                  const Trace &trace, const Dddg &dddg,
                                  unsigned threads = 0);

} // namespace genie

#endif // GENIE_DSE_SWEEP_HH
