/**
 * @file
 * ResultStore: the durable, self-verifying, content-addressed store
 * of simulated design points (schema `genie-store-1`).
 *
 * The in-memory ResultCache memoizes points for the lifetime of one
 * process; the ResultStore is its on-disk big sibling, shared across
 * processes, daemon restarts, and days. Records are addressed by
 * configuration content: the filename is the configCanonicalKey's
 * fingerprint (fingerprintHex), and the record itself carries the
 * full canonical key, so a fingerprint collision degrades to a miss,
 * never to a wrong result — the fingerprint is the index, the key is
 * the identity, exactly as in the ResultCache.
 *
 * Durability and self-verification:
 *
 *  - One record per file. A record is the genie-store-1 header line
 *    (carrying a CRC32 of the payload) followed by one payload line
 *    in the journal's `genie-sweep-1` record format, so results
 *    round-trip bit-exactly through the same serializer the
 *    checkpoint journal already proves.
 *  - Writes are atomic: the record is written to a `.tmp` sibling,
 *    fsync'd, then renamed into place. A `kill -9` at any instant
 *    leaves either the old state or the new record, never a torn
 *    visible record; stale `.tmp` debris is swept on open.
 *  - Every read re-verifies the CRC and the canonical key. A corrupt
 *    record — torn, truncated, bit-flipped, or semantically
 *    mismatched — is *quarantined* (moved to `quarantine/` for
 *    post-mortem) and reported as a miss, so the caller simply
 *    re-simulates the point. Corruption is loud (warn + counters)
 *    but never fatal and never poisons results.
 *  - Concurrent writers are safe by convergence: two processes that
 *    insert the same key write byte-identical records, and the
 *    rename makes whichever finishes last a no-op.
 *
 * Eviction: with a byte budget set, least-recently-used records are
 * unlinked until the store fits. Recency is tracked in memory and
 * mirrored best-effort into file mtimes so it survives reopen.
 */

#ifndef GENIE_DSE_RESULT_STORE_HH
#define GENIE_DSE_RESULT_STORE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "core/results.hh"
#include "sim/thread_safety.hh"

namespace genie
{

/** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG convention) of
 * @p size bytes at @p data. Exposed so tests can corrupt records
 * deliberately and so the worker protocol can checksum payloads. */
std::uint32_t crc32Ieee(const void *data, std::size_t size);

/**
 * Write @p contents to @p path atomically and durably: a `.tmp`
 * sibling is written, fsync'd, and renamed into place, so readers
 * see either the old file or the complete new one — never a torn
 * write. Returns false (after a warn) on IO failure; never throws.
 * Shared by the store's records, the daemon's job spool, and the
 * worker's result files.
 */
bool writeFileDurably(const std::string &path,
                      const std::string &contents);

/** Counters describing everything the store has done since open().
 * All monotonic except records/bytes, which track current content. */
struct ResultStoreStats GENIE_THREAD_LOCAL_OK
{
    std::uint64_t hits = 0;       ///< lookups served from disk
    std::uint64_t misses = 0;     ///< lookups that found nothing
    std::uint64_t inserts = 0;    ///< fresh records written
    std::uint64_t evictions = 0;  ///< records unlinked by the budget
    std::uint64_t corrupt = 0;    ///< records quarantined
    std::uint64_t reloaded = 0;   ///< records indexed by open()
    std::size_t records = 0;      ///< records currently indexed
    std::uint64_t bytes = 0;      ///< payload bytes currently indexed
};

class ResultStore
{
  public:
    ResultStore() = default;
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open (creating if needed) the store rooted at @p dir with an
     * optional byte budget (@p maxBytes, 0 = unbounded). Scans the
     * directory: well-formed records are indexed oldest-first (so
     * reopen preserves LRU order), corrupt records are quarantined,
     * and stale `.tmp` debris from killed writers is removed.
     * fatal() only when the directory itself cannot be created.
     */
    void open(const std::string &dir, std::uint64_t maxBytes = 0);

    bool isOpen() const;

    /**
     * If a record for @p key exists and verifies (CRC and canonical
     * key both match), copy its results into @p out and return true.
     * A corrupt record is quarantined and reported as a miss.
     */
    bool lookup(const std::string &key, SocResults &out);

    /**
     * Durably persist @p results under @p key / @p fingerprint
     * (atomic write-rename, fsync'd). First writer wins; inserting a
     * key that is already indexed only refreshes its recency. May
     * evict least-recently-used records to honor the byte budget.
     */
    void insert(const std::string &key, std::uint64_t fingerprint,
                const SocResults &results);

    /** Snapshot of the store counters. */
    ResultStoreStats stats() const;

    /** The directory this store was opened on ("" before open). */
    const std::string &directory() const { return _dir; }

    /** Subdirectory quarantined records are moved into. */
    static const char *quarantineSubdir() { return "quarantine"; }

  private:
    /** Index entry; only ever reached through the guarded index. */
    struct Record GENIE_THREAD_LOCAL_OK
    {
        std::string file; ///< filename within the store directory
        std::uint64_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex;
    /** Root directory; set once by open() before any sharing. */
    std::string _dir GENIE_SHARED_OK(written by open before the store
                                     is shared and read-only after);
    std::uint64_t _budget GENIE_SHARED_OK(written by open before the
                                          store is shared) = 0;
    std::map<std::string, Record> index GENIE_GUARDED_BY(mutex);
    /** Least recently used at the front. */
    std::list<std::string> lru GENIE_GUARDED_BY(mutex);
    std::uint64_t _bytes GENIE_GUARDED_BY(mutex) = 0;
    ResultStoreStats counters GENIE_GUARDED_BY(mutex);

    void quarantine(const std::string &file, const char *why)
        GENIE_REQUIRES(mutex);
    void evictToBudget() GENIE_REQUIRES(mutex);
    void touch(const std::string &key) GENIE_REQUIRES(mutex);
    std::string path(const std::string &file) const;
};

} // namespace genie

#endif // GENIE_DSE_RESULT_STORE_HH
