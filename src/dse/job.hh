/**
 * @file
 * JobDescriptor: the one job abstraction shared by every way of
 * running simulations — the genie_sweep CLI, the genie_serve daemon's
 * submission protocol, and the spool files its worker subprocesses
 * are handed.
 *
 * A job names a workload, a design space (or "single" for one point),
 * an optional axis filter, and the base configuration the space is
 * enumerated around. Everything downstream — enumeration order,
 * canonical keys, results serialization — is derived from the
 * descriptor by the same code regardless of who submitted it, which
 * is what makes a daemon-served sweep byte-identical to a plain
 * genie_sweep of the same space (the serve-smoke CI contract).
 *
 * The descriptor serializes to one JSON line (jobJsonLine) used both
 * as the `genie-serve-1` submit payload and as the worker spool file
 * format; parsing lives in serve/protocol (it needs a JSON reader).
 */

#ifndef GENIE_DSE_JOB_HH
#define GENIE_DSE_JOB_HH

#include <string>
#include <vector>

#include "dse/sweep.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class SweepEngine;

struct JobDescriptor GENIE_THREAD_LOCAL_OK
{
    /** Server-assigned identity ("j-000042"); empty for CLI runs. */
    std::string id;
    /** Workload name (workloads/registry). */
    std::string workload;
    /** Design space: single|isolated|dma|fig6|cache|fig8|acp|iface. */
    std::string space = "single";
    /** SpaceFilter spec ("" = unfiltered). */
    std::string filter;
    /** Base-config `key=value` options the space is enumerated
     * around (core/config_parse). */
    std::vector<std::string> config;
    /** Worker threads for the sweep (0 = hardware concurrency). */
    unsigned threads = 1;
};

/**
 * Enumerate @p space around @p base. Spaces are the Figure 3 families
 * plus "single" (exactly the base point — the daemon's single-run
 * submission). fatal() on unknown names.
 */
std::vector<SocConfig> enumerateSpace(const std::string &space,
                                      const SocConfig &base);

/** The configs of @p job, in canonical enumeration order: parse the
 * base config, enumerate the space, apply the filter. fatal() when
 * the filter rejects every point. */
std::vector<SocConfig> jobConfigs(const JobDescriptor &job);

/** One-line human summary ("stencil-stencil2d space=fig6 ..."). */
std::string describeJob(const JobDescriptor &job);

/** Serialize @p job as one JSON line (trailing newline), the
 * `genie-serve-1` submit/spool form. */
std::string jobJsonLine(const JobDescriptor &job);

/**
 * Build the workload, enumerate the configs, and run them under
 * @p engine. Results come back in enumeration order; engine state
 * (progress, failures, stats) is the caller's to inspect. Throws
 * what SweepEngine::run throws.
 */
std::vector<DesignPoint> runJob(const JobDescriptor &job,
                                SweepEngine &engine);

} // namespace genie

#endif // GENIE_DSE_JOB_HH
