/**
 * @file
 * ResultCache: a thread-safe memo of simulated design points.
 *
 * Keys are the canonical config strings from configCanonicalKey(), so
 * equality of keys is exactly equality of result-affecting
 * configuration — a fingerprint hash collision can never produce a
 * false hit. One cache can be shared across sweeps (the Fig. 6 and
 * Fig. 8 spaces overlap in their all-optimizations DMA points) and
 * across repeated explorer invocations via the checkpoint journal.
 *
 * Bounding: a CLI sweep lives for one process and wants every point
 * memoized, so the default is unbounded. Long-lived processes (the
 * genie_serve daemon's workers, shared explorer caches) set a
 * max-entry budget instead: the least-recently-used entry is evicted
 * on overflow and counted in evictions(), so a service that sees
 * millions of distinct points over days holds memory flat instead of
 * growing without limit — the durable tier for those evicted points
 * is the on-disk ResultStore.
 */

#ifndef GENIE_DSE_RESULT_CACHE_HH
#define GENIE_DSE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "core/results.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class ResultCache
{
  public:
    /** @p maxEntries bounds the cache (LRU eviction); 0 = unbounded,
     * the right default for one-shot CLI sweeps. */
    explicit ResultCache(std::size_t maxEntries = 0)
        : _maxEntries(maxEntries)
    {}

    /** If @p key is cached, copy its results into @p out. Counts a
     * hit or a miss either way; a hit refreshes LRU recency. */
    bool lookup(const std::string &key, SocResults &out);

    /** Memoize @p results under @p key. The first writer wins; a
     * concurrent duplicate simulation of the same point produced the
     * identical results, so dropping the second copy is lossless.
     * With a budget set, the least-recently-used entry is evicted to
     * make room. */
    void insert(const std::string &key, const SocResults &results);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Entries dropped by the max-entry budget (0 when unbounded). */
    std::uint64_t evictions() const;
    /** The configured budget (0 = unbounded). */
    std::size_t maxEntries() const { return _maxEntries; }

  private:
    /** Cache slot; only ever reached through the guarded map. */
    struct Entry GENIE_THREAD_LOCAL_OK
    {
        SocResults results;
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex;
    /** Set at construction, before the cache is shared. */
    const std::size_t _maxEntries;
    std::map<std::string, Entry> entries GENIE_GUARDED_BY(mutex);
    /** Least recently used at the front. */
    std::list<std::string> lru GENIE_GUARDED_BY(mutex);
    std::uint64_t _hits GENIE_GUARDED_BY(mutex) = 0;
    std::uint64_t _misses GENIE_GUARDED_BY(mutex) = 0;
    std::uint64_t _evictions GENIE_GUARDED_BY(mutex) = 0;
};

} // namespace genie

#endif // GENIE_DSE_RESULT_CACHE_HH
