/**
 * @file
 * ResultCache: a thread-safe memo of simulated design points.
 *
 * Keys are the canonical config strings from configCanonicalKey(), so
 * equality of keys is exactly equality of result-affecting
 * configuration — a fingerprint hash collision can never produce a
 * false hit. One cache can be shared across sweeps (the Fig. 6 and
 * Fig. 8 spaces overlap in their all-optimizations DMA points) and
 * across repeated explorer invocations via the checkpoint journal.
 */

#ifndef GENIE_DSE_RESULT_CACHE_HH
#define GENIE_DSE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/results.hh"
#include "sim/thread_safety.hh"

namespace genie
{

class ResultCache
{
  public:
    /** If @p key is cached, copy its results into @p out. Counts a
     * hit or a miss either way. */
    bool lookup(const std::string &key, SocResults &out);

    /** Memoize @p results under @p key. The first writer wins; a
     * concurrent duplicate simulation of the same point produced the
     * identical results, so dropping the second copy is lossless. */
    void insert(const std::string &key, const SocResults &results);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;

  private:
    mutable std::mutex mutex;
    std::map<std::string, SocResults> entries GENIE_GUARDED_BY(mutex);
    std::uint64_t _hits GENIE_GUARDED_BY(mutex) = 0;
    std::uint64_t _misses GENIE_GUARDED_BY(mutex) = 0;
};

} // namespace genie

#endif // GENIE_DSE_RESULT_CACHE_HH
