#include "sweep.hh"

#include <atomic>
#include <thread>

#include "sim/logging.hh"

namespace genie
{

const std::vector<unsigned> &
DesignSpace::laneValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8, 16};
    return v;
}

const std::vector<unsigned> &
DesignSpace::partitionValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8, 16};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheSizeValues()
{
    static const std::vector<unsigned> v = {
        2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024,
        64 * 1024};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheLineValues()
{
    static const std::vector<unsigned> v = {16, 32, 64};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cachePortValues()
{
    static const std::vector<unsigned> v = {1, 2, 4, 8};
    return v;
}

const std::vector<unsigned> &
DesignSpace::cacheAssocValues()
{
    static const std::vector<unsigned> v = {4, 8};
    return v;
}

std::vector<SocConfig>
DesignSpace::isolated(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            SocConfig c = base;
            c.memType = MemInterface::ScratchpadDma;
            c.lanes = lanes;
            c.spadPartitions = parts;
            c.isolated = true;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::dma(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            SocConfig c = base;
            c.memType = MemInterface::ScratchpadDma;
            c.lanes = lanes;
            c.spadPartitions = parts;
            c.isolated = false;
            c.dma.pipelined = true;
            c.dma.triggeredCompute = true;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::dmaOptions(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned parts : partitionValues()) {
            for (int pipe = 0; pipe <= 1; ++pipe) {
                for (int trig = 0; trig <= 1; ++trig) {
                    SocConfig c = base;
                    c.memType = MemInterface::ScratchpadDma;
                    c.lanes = lanes;
                    c.spadPartitions = parts;
                    c.isolated = false;
                    c.dma.pipelined = pipe != 0;
                    c.dma.triggeredCompute = trig != 0;
                    configs.push_back(std::move(c));
                }
            }
        }
    }
    return configs;
}

std::vector<SocConfig>
DesignSpace::cache(const SocConfig &base)
{
    std::vector<SocConfig> configs;
    for (unsigned lanes : laneValues()) {
        for (unsigned size : cacheSizeValues()) {
            for (unsigned line : cacheLineValues()) {
                for (unsigned ports : cachePortValues()) {
                    for (unsigned assoc : cacheAssocValues()) {
                        SocConfig c = base;
                        c.memType = MemInterface::Cache;
                        c.lanes = lanes;
                        // Private scratchpads (intermediate data)
                        // are co-designed with the datapath: match
                        // their banking to the lane count.
                        c.spadPartitions = lanes;
                        c.isolated = false;
                        c.cache.sizeBytes = size;
                        c.cache.lineBytes = line;
                        c.cache.ports = ports;
                        c.cache.assoc = assoc;
                        configs.push_back(std::move(c));
                    }
                }
            }
        }
    }
    return configs;
}

SocConfig
DesignSpace::isolatedAsCache(const SocConfig &isolated,
                             std::uint64_t workingSetBytes)
{
    SocConfig c = isolated;
    c.memType = MemInterface::Cache;
    c.isolated = false;
    unsigned size = cacheSizeValues().front();
    for (unsigned s : cacheSizeValues()) {
        size = s;
        if (s >= workingSetBytes)
            break;
    }
    c.cache.sizeBytes = size;
    c.cache.lineBytes = 64;
    c.cache.assoc = 4;
    c.cache.ports = std::min(8u, isolated.spadPartitions);
    return c;
}

std::vector<DesignPoint>
runSweep(const std::vector<SocConfig> &configs, const Trace &trace,
         const Dddg &dddg, unsigned threads)
{
    std::vector<DesignPoint> points(configs.size());
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 4;
    }
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(configs.size()));
    if (threads <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            points[i].config = configs[i];
            points[i].results = runDesign(configs[i], trace, dddg);
        }
        return points;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        while (true) {
            std::size_t i = next.fetch_add(1);
            if (i >= configs.size())
                return;
            points[i].config = configs[i];
            points[i].results = runDesign(configs[i], trace, dddg);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return points;
}

} // namespace genie
